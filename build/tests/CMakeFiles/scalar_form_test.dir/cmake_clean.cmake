file(REMOVE_RECURSE
  "CMakeFiles/scalar_form_test.dir/scalar_form_test.cc.o"
  "CMakeFiles/scalar_form_test.dir/scalar_form_test.cc.o.d"
  "scalar_form_test"
  "scalar_form_test.pdb"
  "scalar_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
