# Empty dependencies file for scalar_form_test.
# This may be replaced when dependencies are built.
