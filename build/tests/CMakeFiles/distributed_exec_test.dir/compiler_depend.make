# Empty compiler generated dependencies file for distributed_exec_test.
# This may be replaced when dependencies are built.
