file(REMOVE_RECURSE
  "CMakeFiles/distributed_exec_test.dir/distributed_exec_test.cc.o"
  "CMakeFiles/distributed_exec_test.dir/distributed_exec_test.cc.o.d"
  "distributed_exec_test"
  "distributed_exec_test.pdb"
  "distributed_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
