# Empty dependencies file for plan_infra_test.
# This may be replaced when dependencies are built.
