file(REMOVE_RECURSE
  "CMakeFiles/plan_infra_test.dir/plan_infra_test.cc.o"
  "CMakeFiles/plan_infra_test.dir/plan_infra_test.cc.o.d"
  "plan_infra_test"
  "plan_infra_test.pdb"
  "plan_infra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_infra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
