file(REMOVE_RECURSE
  "CMakeFiles/partition_analysis_test.dir/partition_analysis_test.cc.o"
  "CMakeFiles/partition_analysis_test.dir/partition_analysis_test.cc.o.d"
  "partition_analysis_test"
  "partition_analysis_test.pdb"
  "partition_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
