# Empty compiler generated dependencies file for partition_analysis_test.
# This may be replaced when dependencies are built.
