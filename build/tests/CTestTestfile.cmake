# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/partition_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_exec_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/scalar_form_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/udaf_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/sliding_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/facade_test[1]_include.cmake")
include("/root/repo/build/tests/plan_infra_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_integration_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
