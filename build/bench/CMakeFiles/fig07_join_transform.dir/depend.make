# Empty dependencies file for fig07_join_transform.
# This may be replaced when dependencies are built.
