file(REMOVE_RECURSE
  "CMakeFiles/fig07_join_transform.dir/fig07_join_transform.cc.o"
  "CMakeFiles/fig07_join_transform.dir/fig07_join_transform.cc.o.d"
  "fig07_join_transform"
  "fig07_join_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_join_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
