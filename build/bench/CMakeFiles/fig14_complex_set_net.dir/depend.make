# Empty dependencies file for fig14_complex_set_net.
# This may be replaced when dependencies are built.
