# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_complex_set_net.
