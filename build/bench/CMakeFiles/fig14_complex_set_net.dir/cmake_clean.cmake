file(REMOVE_RECURSE
  "CMakeFiles/fig14_complex_set_net.dir/fig14_complex_set_net.cc.o"
  "CMakeFiles/fig14_complex_set_net.dir/fig14_complex_set_net.cc.o.d"
  "fig14_complex_set_net"
  "fig14_complex_set_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_complex_set_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
