# Empty compiler generated dependencies file for fig02_optimized_plan.
# This may be replaced when dependencies are built.
