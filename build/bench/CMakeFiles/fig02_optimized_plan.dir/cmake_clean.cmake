file(REMOVE_RECURSE
  "CMakeFiles/fig02_optimized_plan.dir/fig02_optimized_plan.cc.o"
  "CMakeFiles/fig02_optimized_plan.dir/fig02_optimized_plan.cc.o.d"
  "fig02_optimized_plan"
  "fig02_optimized_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_optimized_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
