
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/figlib.cc" "bench/CMakeFiles/sp_benchlib.dir/figlib.cc.o" "gcc" "bench/CMakeFiles/sp_benchlib.dir/figlib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/sp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/sp_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sp_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sp_udaf.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
