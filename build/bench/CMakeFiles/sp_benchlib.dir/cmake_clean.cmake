file(REMOVE_RECURSE
  "CMakeFiles/sp_benchlib.dir/figlib.cc.o"
  "CMakeFiles/sp_benchlib.dir/figlib.cc.o.d"
  "lib/libsp_benchlib.a"
  "lib/libsp_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
