file(REMOVE_RECURSE
  "lib/libsp_benchlib.a"
)
