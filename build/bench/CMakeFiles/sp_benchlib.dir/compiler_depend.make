# Empty compiler generated dependencies file for sp_benchlib.
# This may be replaced when dependencies are built.
