# Empty compiler generated dependencies file for fig13_complex_set_cpu.
# This may be replaced when dependencies are built.
