file(REMOVE_RECURSE
  "CMakeFiles/fig13_complex_set_cpu.dir/fig13_complex_set_cpu.cc.o"
  "CMakeFiles/fig13_complex_set_cpu.dir/fig13_complex_set_cpu.cc.o.d"
  "fig13_complex_set_cpu"
  "fig13_complex_set_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_complex_set_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
