# Empty compiler generated dependencies file for fig03_partition_agnostic_plan.
# This may be replaced when dependencies are built.
