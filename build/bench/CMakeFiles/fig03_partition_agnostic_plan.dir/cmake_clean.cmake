file(REMOVE_RECURSE
  "CMakeFiles/fig03_partition_agnostic_plan.dir/fig03_partition_agnostic_plan.cc.o"
  "CMakeFiles/fig03_partition_agnostic_plan.dir/fig03_partition_agnostic_plan.cc.o.d"
  "fig03_partition_agnostic_plan"
  "fig03_partition_agnostic_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_partition_agnostic_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
