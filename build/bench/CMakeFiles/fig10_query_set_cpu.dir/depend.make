# Empty dependencies file for fig10_query_set_cpu.
# This may be replaced when dependencies are built.
