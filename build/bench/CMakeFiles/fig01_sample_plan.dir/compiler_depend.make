# Empty compiler generated dependencies file for fig01_sample_plan.
# This may be replaced when dependencies are built.
