file(REMOVE_RECURSE
  "CMakeFiles/fig01_sample_plan.dir/fig01_sample_plan.cc.o"
  "CMakeFiles/fig01_sample_plan.dir/fig01_sample_plan.cc.o.d"
  "fig01_sample_plan"
  "fig01_sample_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sample_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
