# Empty dependencies file for fig12_partial_compat_plan.
# This may be replaced when dependencies are built.
