file(REMOVE_RECURSE
  "CMakeFiles/fig12_partial_compat_plan.dir/fig12_partial_compat_plan.cc.o"
  "CMakeFiles/fig12_partial_compat_plan.dir/fig12_partial_compat_plan.cc.o.d"
  "fig12_partial_compat_plan"
  "fig12_partial_compat_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_partial_compat_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
