# Empty compiler generated dependencies file for fig08_simple_agg_cpu.
# This may be replaced when dependencies are built.
