file(REMOVE_RECURSE
  "CMakeFiles/fig05_agg_partial_transform.dir/fig05_agg_partial_transform.cc.o"
  "CMakeFiles/fig05_agg_partial_transform.dir/fig05_agg_partial_transform.cc.o.d"
  "fig05_agg_partial_transform"
  "fig05_agg_partial_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_agg_partial_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
