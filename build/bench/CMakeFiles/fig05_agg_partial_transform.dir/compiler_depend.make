# Empty compiler generated dependencies file for fig05_agg_partial_transform.
# This may be replaced when dependencies are built.
