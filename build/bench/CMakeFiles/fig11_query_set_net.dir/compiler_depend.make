# Empty compiler generated dependencies file for fig11_query_set_net.
# This may be replaced when dependencies are built.
