file(REMOVE_RECURSE
  "CMakeFiles/fig11_query_set_net.dir/fig11_query_set_net.cc.o"
  "CMakeFiles/fig11_query_set_net.dir/fig11_query_set_net.cc.o.d"
  "fig11_query_set_net"
  "fig11_query_set_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_query_set_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
