file(REMOVE_RECURSE
  "CMakeFiles/fig06_join_original_plan.dir/fig06_join_original_plan.cc.o"
  "CMakeFiles/fig06_join_original_plan.dir/fig06_join_original_plan.cc.o.d"
  "fig06_join_original_plan"
  "fig06_join_original_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_join_original_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
