# Empty dependencies file for fig06_join_original_plan.
# This may be replaced when dependencies are built.
