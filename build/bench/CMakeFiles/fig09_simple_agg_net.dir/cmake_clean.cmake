file(REMOVE_RECURSE
  "CMakeFiles/fig09_simple_agg_net.dir/fig09_simple_agg_net.cc.o"
  "CMakeFiles/fig09_simple_agg_net.dir/fig09_simple_agg_net.cc.o.d"
  "fig09_simple_agg_net"
  "fig09_simple_agg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_simple_agg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
