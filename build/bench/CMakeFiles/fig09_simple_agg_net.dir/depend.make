# Empty dependencies file for fig09_simple_agg_net.
# This may be replaced when dependencies are built.
