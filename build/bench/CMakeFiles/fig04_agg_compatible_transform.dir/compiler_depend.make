# Empty compiler generated dependencies file for fig04_agg_compatible_transform.
# This may be replaced when dependencies are built.
