file(REMOVE_RECURSE
  "CMakeFiles/fig04_agg_compatible_transform.dir/fig04_agg_compatible_transform.cc.o"
  "CMakeFiles/fig04_agg_compatible_transform.dir/fig04_agg_compatible_transform.cc.o.d"
  "fig04_agg_compatible_transform"
  "fig04_agg_compatible_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_agg_compatible_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
