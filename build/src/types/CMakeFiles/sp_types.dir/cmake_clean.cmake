file(REMOVE_RECURSE
  "CMakeFiles/sp_types.dir/data_type.cc.o"
  "CMakeFiles/sp_types.dir/data_type.cc.o.d"
  "CMakeFiles/sp_types.dir/schema.cc.o"
  "CMakeFiles/sp_types.dir/schema.cc.o.d"
  "CMakeFiles/sp_types.dir/serde.cc.o"
  "CMakeFiles/sp_types.dir/serde.cc.o.d"
  "CMakeFiles/sp_types.dir/tuple.cc.o"
  "CMakeFiles/sp_types.dir/tuple.cc.o.d"
  "CMakeFiles/sp_types.dir/value.cc.o"
  "CMakeFiles/sp_types.dir/value.cc.o.d"
  "libsp_types.a"
  "libsp_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
