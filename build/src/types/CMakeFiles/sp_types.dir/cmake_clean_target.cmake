file(REMOVE_RECURSE
  "libsp_types.a"
)
