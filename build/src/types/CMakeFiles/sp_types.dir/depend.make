# Empty dependencies file for sp_types.
# This may be replaced when dependencies are built.
