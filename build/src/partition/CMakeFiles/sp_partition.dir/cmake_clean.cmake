file(REMOVE_RECURSE
  "CMakeFiles/sp_partition.dir/advisor.cc.o"
  "CMakeFiles/sp_partition.dir/advisor.cc.o.d"
  "CMakeFiles/sp_partition.dir/compatibility.cc.o"
  "CMakeFiles/sp_partition.dir/compatibility.cc.o.d"
  "CMakeFiles/sp_partition.dir/cost_model.cc.o"
  "CMakeFiles/sp_partition.dir/cost_model.cc.o.d"
  "CMakeFiles/sp_partition.dir/hardware.cc.o"
  "CMakeFiles/sp_partition.dir/hardware.cc.o.d"
  "CMakeFiles/sp_partition.dir/partition_set.cc.o"
  "CMakeFiles/sp_partition.dir/partition_set.cc.o.d"
  "CMakeFiles/sp_partition.dir/search.cc.o"
  "CMakeFiles/sp_partition.dir/search.cc.o.d"
  "libsp_partition.a"
  "libsp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
