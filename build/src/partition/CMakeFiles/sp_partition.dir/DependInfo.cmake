
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/advisor.cc" "src/partition/CMakeFiles/sp_partition.dir/advisor.cc.o" "gcc" "src/partition/CMakeFiles/sp_partition.dir/advisor.cc.o.d"
  "/root/repo/src/partition/compatibility.cc" "src/partition/CMakeFiles/sp_partition.dir/compatibility.cc.o" "gcc" "src/partition/CMakeFiles/sp_partition.dir/compatibility.cc.o.d"
  "/root/repo/src/partition/cost_model.cc" "src/partition/CMakeFiles/sp_partition.dir/cost_model.cc.o" "gcc" "src/partition/CMakeFiles/sp_partition.dir/cost_model.cc.o.d"
  "/root/repo/src/partition/hardware.cc" "src/partition/CMakeFiles/sp_partition.dir/hardware.cc.o" "gcc" "src/partition/CMakeFiles/sp_partition.dir/hardware.cc.o.d"
  "/root/repo/src/partition/partition_set.cc" "src/partition/CMakeFiles/sp_partition.dir/partition_set.cc.o" "gcc" "src/partition/CMakeFiles/sp_partition.dir/partition_set.cc.o.d"
  "/root/repo/src/partition/search.cc" "src/partition/CMakeFiles/sp_partition.dir/search.cc.o" "gcc" "src/partition/CMakeFiles/sp_partition.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/sp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sp_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sp_udaf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
