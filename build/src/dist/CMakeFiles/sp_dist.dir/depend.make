# Empty dependencies file for sp_dist.
# This may be replaced when dependencies are built.
