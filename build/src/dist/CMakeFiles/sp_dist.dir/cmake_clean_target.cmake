file(REMOVE_RECURSE
  "libsp_dist.a"
)
