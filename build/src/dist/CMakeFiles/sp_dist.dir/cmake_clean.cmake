file(REMOVE_RECURSE
  "CMakeFiles/sp_dist.dir/cluster_runtime.cc.o"
  "CMakeFiles/sp_dist.dir/cluster_runtime.cc.o.d"
  "CMakeFiles/sp_dist.dir/experiment.cc.o"
  "CMakeFiles/sp_dist.dir/experiment.cc.o.d"
  "CMakeFiles/sp_dist.dir/partitioner.cc.o"
  "CMakeFiles/sp_dist.dir/partitioner.cc.o.d"
  "libsp_dist.a"
  "libsp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
