file(REMOVE_RECURSE
  "libsp_parser.a"
)
