# Empty compiler generated dependencies file for sp_parser.
# This may be replaced when dependencies are built.
