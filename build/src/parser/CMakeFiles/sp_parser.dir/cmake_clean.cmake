file(REMOVE_RECURSE
  "CMakeFiles/sp_parser.dir/lexer.cc.o"
  "CMakeFiles/sp_parser.dir/lexer.cc.o.d"
  "CMakeFiles/sp_parser.dir/parser.cc.o"
  "CMakeFiles/sp_parser.dir/parser.cc.o.d"
  "CMakeFiles/sp_parser.dir/stream_def.cc.o"
  "CMakeFiles/sp_parser.dir/stream_def.cc.o.d"
  "libsp_parser.a"
  "libsp_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
