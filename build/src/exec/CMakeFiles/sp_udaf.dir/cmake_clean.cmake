file(REMOVE_RECURSE
  "CMakeFiles/sp_udaf.dir/udaf.cc.o"
  "CMakeFiles/sp_udaf.dir/udaf.cc.o.d"
  "libsp_udaf.a"
  "libsp_udaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_udaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
