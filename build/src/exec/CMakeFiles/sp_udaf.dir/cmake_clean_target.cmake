file(REMOVE_RECURSE
  "libsp_udaf.a"
)
