# Empty compiler generated dependencies file for sp_udaf.
# This may be replaced when dependencies are built.
