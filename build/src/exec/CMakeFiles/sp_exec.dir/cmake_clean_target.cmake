file(REMOVE_RECURSE
  "libsp_exec.a"
)
