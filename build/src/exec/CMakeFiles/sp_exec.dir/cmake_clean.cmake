file(REMOVE_RECURSE
  "CMakeFiles/sp_exec.dir/local_engine.cc.o"
  "CMakeFiles/sp_exec.dir/local_engine.cc.o.d"
  "CMakeFiles/sp_exec.dir/ops.cc.o"
  "CMakeFiles/sp_exec.dir/ops.cc.o.d"
  "CMakeFiles/sp_exec.dir/sliding.cc.o"
  "CMakeFiles/sp_exec.dir/sliding.cc.o.d"
  "libsp_exec.a"
  "libsp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
