# Empty compiler generated dependencies file for sp_exec.
# This may be replaced when dependencies are built.
