# Empty compiler generated dependencies file for sp_expr.
# This may be replaced when dependencies are built.
