file(REMOVE_RECURSE
  "CMakeFiles/sp_expr.dir/expr.cc.o"
  "CMakeFiles/sp_expr.dir/expr.cc.o.d"
  "CMakeFiles/sp_expr.dir/scalar_form.cc.o"
  "CMakeFiles/sp_expr.dir/scalar_form.cc.o.d"
  "libsp_expr.a"
  "libsp_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
