file(REMOVE_RECURSE
  "libsp_expr.a"
)
