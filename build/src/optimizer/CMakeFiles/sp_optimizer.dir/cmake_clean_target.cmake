file(REMOVE_RECURSE
  "libsp_optimizer.a"
)
