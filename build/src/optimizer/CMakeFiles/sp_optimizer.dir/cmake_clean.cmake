file(REMOVE_RECURSE
  "CMakeFiles/sp_optimizer.dir/dist_plan.cc.o"
  "CMakeFiles/sp_optimizer.dir/dist_plan.cc.o.d"
  "CMakeFiles/sp_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/sp_optimizer.dir/optimizer.cc.o.d"
  "libsp_optimizer.a"
  "libsp_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
