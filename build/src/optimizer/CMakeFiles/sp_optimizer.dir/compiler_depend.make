# Empty compiler generated dependencies file for sp_optimizer.
# This may be replaced when dependencies are built.
