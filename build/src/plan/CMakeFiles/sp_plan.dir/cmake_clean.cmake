file(REMOVE_RECURSE
  "CMakeFiles/sp_plan.dir/analyzer.cc.o"
  "CMakeFiles/sp_plan.dir/analyzer.cc.o.d"
  "CMakeFiles/sp_plan.dir/lineage.cc.o"
  "CMakeFiles/sp_plan.dir/lineage.cc.o.d"
  "CMakeFiles/sp_plan.dir/printer.cc.o"
  "CMakeFiles/sp_plan.dir/printer.cc.o.d"
  "CMakeFiles/sp_plan.dir/query_graph.cc.o"
  "CMakeFiles/sp_plan.dir/query_graph.cc.o.d"
  "CMakeFiles/sp_plan.dir/query_node.cc.o"
  "CMakeFiles/sp_plan.dir/query_node.cc.o.d"
  "libsp_plan.a"
  "libsp_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
