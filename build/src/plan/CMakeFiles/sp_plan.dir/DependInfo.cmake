
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/analyzer.cc" "src/plan/CMakeFiles/sp_plan.dir/analyzer.cc.o" "gcc" "src/plan/CMakeFiles/sp_plan.dir/analyzer.cc.o.d"
  "/root/repo/src/plan/lineage.cc" "src/plan/CMakeFiles/sp_plan.dir/lineage.cc.o" "gcc" "src/plan/CMakeFiles/sp_plan.dir/lineage.cc.o.d"
  "/root/repo/src/plan/printer.cc" "src/plan/CMakeFiles/sp_plan.dir/printer.cc.o" "gcc" "src/plan/CMakeFiles/sp_plan.dir/printer.cc.o.d"
  "/root/repo/src/plan/query_graph.cc" "src/plan/CMakeFiles/sp_plan.dir/query_graph.cc.o" "gcc" "src/plan/CMakeFiles/sp_plan.dir/query_graph.cc.o.d"
  "/root/repo/src/plan/query_node.cc" "src/plan/CMakeFiles/sp_plan.dir/query_node.cc.o" "gcc" "src/plan/CMakeFiles/sp_plan.dir/query_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/sp_udaf.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
