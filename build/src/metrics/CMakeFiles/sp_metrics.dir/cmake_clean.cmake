file(REMOVE_RECURSE
  "CMakeFiles/sp_metrics.dir/cpu_model.cc.o"
  "CMakeFiles/sp_metrics.dir/cpu_model.cc.o.d"
  "CMakeFiles/sp_metrics.dir/report.cc.o"
  "CMakeFiles/sp_metrics.dir/report.cc.o.d"
  "libsp_metrics.a"
  "libsp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
