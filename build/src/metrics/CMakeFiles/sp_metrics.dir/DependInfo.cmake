
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cpu_model.cc" "src/metrics/CMakeFiles/sp_metrics.dir/cpu_model.cc.o" "gcc" "src/metrics/CMakeFiles/sp_metrics.dir/cpu_model.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/metrics/CMakeFiles/sp_metrics.dir/report.cc.o" "gcc" "src/metrics/CMakeFiles/sp_metrics.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/sp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sp_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sp_udaf.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/sp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sp_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
