# Empty compiler generated dependencies file for sp_metrics.
# This may be replaced when dependencies are built.
