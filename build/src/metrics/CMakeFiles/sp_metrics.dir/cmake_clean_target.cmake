file(REMOVE_RECURSE
  "libsp_metrics.a"
)
