file(REMOVE_RECURSE
  "libsp_catalog.a"
)
