file(REMOVE_RECURSE
  "CMakeFiles/sp_catalog.dir/catalog.cc.o"
  "CMakeFiles/sp_catalog.dir/catalog.cc.o.d"
  "libsp_catalog.a"
  "libsp_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
