# Empty dependencies file for sp_catalog.
# This may be replaced when dependencies are built.
