# Empty compiler generated dependencies file for sp_common.
# This may be replaced when dependencies are built.
