file(REMOVE_RECURSE
  "CMakeFiles/sp_common.dir/rng.cc.o"
  "CMakeFiles/sp_common.dir/rng.cc.o.d"
  "CMakeFiles/sp_common.dir/status.cc.o"
  "CMakeFiles/sp_common.dir/status.cc.o.d"
  "CMakeFiles/sp_common.dir/strings.cc.o"
  "CMakeFiles/sp_common.dir/strings.cc.o.d"
  "libsp_common.a"
  "libsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
