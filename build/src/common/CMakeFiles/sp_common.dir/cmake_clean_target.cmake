file(REMOVE_RECURSE
  "libsp_common.a"
)
