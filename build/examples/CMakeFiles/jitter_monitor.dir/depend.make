# Empty dependencies file for jitter_monitor.
# This may be replaced when dependencies are built.
