file(REMOVE_RECURSE
  "CMakeFiles/jitter_monitor.dir/jitter_monitor.cpp.o"
  "CMakeFiles/jitter_monitor.dir/jitter_monitor.cpp.o.d"
  "jitter_monitor"
  "jitter_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
