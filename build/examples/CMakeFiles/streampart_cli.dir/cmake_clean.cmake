file(REMOVE_RECURSE
  "CMakeFiles/streampart_cli.dir/streampart_cli.cpp.o"
  "CMakeFiles/streampart_cli.dir/streampart_cli.cpp.o.d"
  "streampart_cli"
  "streampart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streampart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
