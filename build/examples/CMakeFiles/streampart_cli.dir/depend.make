# Empty dependencies file for streampart_cli.
# This may be replaced when dependencies are built.
