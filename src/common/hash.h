#pragma once

/// \file hash.h
/// \brief Hashing primitives used by the partitioner and the hash-aggregation
/// operator.
///
/// The stream partitioner (paper §3.3) maps a tuple to partition i when
/// i*R/M <= H(A) < (i+1)*R/M for a hash H over the partitioning set A. We use
/// a 64-bit finalizer-style mix (splitmix64) which spreads low-entropy inputs
/// such as IPv4 addresses well enough to keep simulated hosts balanced.

#include <cstdint>
#include <string_view>

namespace streampart {

/// \brief splitmix64 finalizer; a fast, well-distributed 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// \brief FNV-1a over arbitrary bytes, finalized through Mix64.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace streampart
