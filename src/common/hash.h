#pragma once

/// \file hash.h
/// \brief Hashing primitives used by the partitioner and the hash-aggregation
/// operator.
///
/// The stream partitioner (paper §3.3) maps a tuple to partition i when
/// i*R/M <= H(A) < (i+1)*R/M for a hash H over the partitioning set A. We use
/// a 64-bit finalizer-style mix (splitmix64) which spreads low-entropy inputs
/// such as IPv4 addresses well enough to keep simulated hosts balanced.

#include <cstdint>
#include <string_view>

namespace streampart {

/// \brief splitmix64 finalizer; a fast, well-distributed 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// \brief FNV-1a over arbitrary bytes, finalized through Mix64.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// \brief Word-at-a-time hash for hot fixed-width keys (packed group keys).
/// Consumes 8 bytes per step instead of FNV's byte-serial multiply chain;
/// quality comes from the Mix64 finalizer per word. Produces different
/// values than HashBytes — only use where the hash never leaves the process.
inline uint64_t HashBytesWide(const char* data, size_t size) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (size * 0xff51afd7ed558ccdULL);
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= size; i += sizeof(uint64_t)) {
    uint64_t w;
    __builtin_memcpy(&w, data + i, sizeof(uint64_t));
    h = (h ^ Mix64(w)) * 0x100000001b3ULL;
  }
  if (i < size) {
    uint64_t tail = 0;
    __builtin_memcpy(&tail, data + i, size - i);
    h = (h ^ Mix64(tail)) * 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashBytesWide(std::string_view bytes) {
  return HashBytesWide(bytes.data(), bytes.size());
}

}  // namespace streampart
