#pragma once

/// \file result.h
/// \brief Result<T>: a value or an error Status (Arrow-style).

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace streampart {

/// \brief Holds either a successfully computed value of type T or the Status
/// describing why the computation failed.
///
/// Accessing the value of a failed Result aborts the process (it is a
/// programming error; check ok() or use SP_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Aborts if \p status is OK —
  /// a success Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SP_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  /// \brief The error status; Status::OK() if this result holds a value.
  const Status& status() const { return status_; }

  /// \brief Borrow the contained value. Requires ok().
  const T& ValueOrDie() const& {
    SP_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    SP_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  /// \brief Move the contained value out. Requires ok().
  T ValueOrDie() && {
    SP_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value, or \p alternative when this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace streampart
