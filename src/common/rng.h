#pragma once

/// \file rng.h
/// \brief Deterministic random-number helpers.
///
/// Every stochastic component (trace generation, property-test case
/// generation) draws from a seeded Rng so experiments reproduce bit-for-bit.

#include <cstdint>
#include <random>
#include <vector>

namespace streampart {

/// \brief Thin wrapper over mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// \brief Uniform double in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// \brief Bernoulli draw with success probability \p p.
  bool Chance(double p) { return UniformReal() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipf(s, n) sampler over ranks {1..n} using precomputed CDF.
///
/// Used by the trace generator to model heavy-tailed flow-size and
/// host-popularity distributions observed in backbone traffic.
class ZipfDistribution {
 public:
  /// \param n number of ranks; \param s skew exponent (s=0 is uniform).
  ZipfDistribution(size_t n, double s);

  /// \brief Draws a rank in [1, n].
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace streampart
