#include "common/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace streampart {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatIpv4(uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

bool ParseIpv4(std::string_view text, uint32_t* out) {
  uint32_t parts[4];
  int part = 0;
  uint64_t cur = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c == '.') {
      if (!have_digit || part >= 3) return false;
      parts[part++] = static_cast<uint32_t>(cur);
      cur = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<uint64_t>(c - '0');
      if (cur > 255) return false;
      have_digit = true;
    } else {
      return false;
    }
  }
  if (!have_digit || part != 3) return false;
  parts[3] = static_cast<uint32_t>(cur);
  *out = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
  return true;
}

}  // namespace streampart
