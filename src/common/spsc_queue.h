#pragma once

/// \file spsc_queue.h
/// \brief Bounded lock-free single-producer/single-consumer ring buffer.
///
/// The inter-host channels of the parallel cluster scheduler
/// (dist/parallel_exec.h) are SPSC by construction: each directed host pair
/// (and each driver->host work queue) has exactly one producer and one
/// consumer *at a time*. "At a time" because work-stealing hands a host's
/// consumer role between threads — the host-claim CAS in the scheduler is an
/// acquire/release handoff, so the single-consumer invariant holds across
/// the transfer (see docs/THREADING.md).
///
/// Memory-order contract (the entire synchronization story of one queue):
///  * The producer writes the slot, then publishes it with a release store
///    of `tail_`. The consumer's acquire load of `tail_` therefore observes
///    a fully constructed value (release/acquire pairing on `tail_`).
///  * The consumer moves the value out, then retires the slot with a
///    release store of `head_`. The producer's acquire load of `head_`
///    therefore never overwrites a slot still being read (release/acquire
///    pairing on `head_`).
///  * Indices are monotonically increasing uint64 and are masked into the
///    power-of-two buffer, so full/empty are `tail - head == capacity` and
///    `tail == head` with no wraparound ambiguity.
///
/// TryPush/TryPop never block and never allocate after construction; the
/// caller decides the backoff policy (the scheduler yields and drains its
/// own inbound rings while an outbound push is full, which is what makes
/// the ring mesh deadlock-free).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace streampart {

template <typename T>
class SpscQueue {
 public:
  /// \p capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// \brief Producer side. Returns false when the ring is full.
  bool TryPush(T&& value) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Refresh the cached head only when the ring looks full: the common
    // case costs no cross-core traffic on head_.
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buffer_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// \brief Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// \brief Racy emptiness probe (either side): exact for the calling role,
  /// conservative for observers — used only to decide whether claiming a
  /// host is worthwhile, never for correctness.
  bool EmptyApprox() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  // Producer and consumer indices live on separate cache lines so the two
  // sides never false-share; each side additionally keeps a local cache of
  // the other's index (plain members — each is touched by one side only).
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer-owned
  uint64_t head_cache_ = 0;                    // producer-owned cache of head_
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer-owned
  uint64_t tail_cache_ = 0;                    // consumer-owned cache of tail_
  alignas(64) std::vector<T> buffer_;
  size_t mask_ = 0;
};

}  // namespace streampart
