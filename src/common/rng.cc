#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace streampart {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  SP_CHECK(n > 0) << "Zipf needs at least one rank";
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformReal();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size();
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

}  // namespace streampart
