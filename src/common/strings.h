#pragma once

/// \file strings.h
/// \brief Small string utilities shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace streampart {

/// \brief Joins \p parts with \p sep ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits \p s on \p sep; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief ASCII lower-casing (GSQL keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// \brief ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Renders an IPv4 address stored as a host-order uint32.
std::string FormatIpv4(uint32_t ip);

/// \brief Parses dotted-quad IPv4 into host-order uint32; returns false on
/// malformed input.
bool ParseIpv4(std::string_view text, uint32_t* out);

}  // namespace streampart
