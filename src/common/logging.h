#pragma once

/// \file logging.h
/// \brief Minimal logging and invariant-checking facilities.
///
/// SP_CHECK(cond) aborts with a message when cond is false, and supports
/// streaming extra context: SP_CHECK(n > 0) << "n was " << n. It is reserved
/// for programming errors (violated invariants); anticipated failures use
/// Status/Result instead.

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace streampart {
namespace internal {

/// \brief Accumulates a message and aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// \brief Makes the streaming expression in SP_CHECK have type void, so the
/// ternary's two arms agree. operator& binds looser than operator<<.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace streampart

#define SP_CHECK(cond)                                              \
  (cond) ? (void)0                                                  \
         : ::streampart::internal::Voidify() &                      \
               ::streampart::internal::FatalLogMessage(__FILE__, __LINE__) \
                       .stream()                                    \
                   << #cond << " "

#define SP_DCHECK(cond) SP_CHECK(cond)
