#include "common/status.h"

namespace streampart {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPartitioningError:
      return "PartitioningError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->msg);
}

}  // namespace streampart
