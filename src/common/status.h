#pragma once

/// \file status.h
/// \brief Error-handling primitives for the streampart library.
///
/// Library code never throws exceptions across API boundaries; fallible
/// operations return Status (or Result<T>, see result.h). The design follows
/// the Apache Arrow / RocksDB idiom: a small, cheaply-movable status object
/// carrying an error code and a human-readable message.

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace streampart {

/// \brief Category of a failure reported by a streampart API.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument was malformed or out of range.
  kInvalidArgument = 1,
  /// A named entity (stream, query, column, UDAF) was not found.
  kNotFound = 2,
  /// An entity with the same name already exists.
  kAlreadyExists = 3,
  /// GSQL text failed to lex or parse.
  kParseError = 4,
  /// Query text parsed but failed semantic analysis (unknown column, type
  /// mismatch, unsupported construct).
  kAnalysisError = 5,
  /// The requested operation is not supported by this build.
  kNotImplemented = 6,
  /// An internal invariant was violated; indicates a library bug.
  kInternal = 7,
  /// Partitioning analysis could not produce a usable result (e.g. empty
  /// reconciled partitioning set where one was required).
  kPartitioningError = 8,
  /// The simulated cluster or runtime was misconfigured.
  kRuntimeError = 9,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: success, or a code + message.
///
/// The success path stores no heap state; error state is a single
/// heap-allocated record, so Status is one pointer wide and cheap to move.
class Status {
 public:
  /// Constructs a success status.
  Status() noexcept = default;

  /// Constructs an error status. \p code must not be StatusCode::kOk.
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// \brief True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// \brief The status code (kOk when ok()).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// \brief The error message; empty when ok().
  const std::string& message() const;

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Prepends context to the message, keeping the code. No-op if ok.
  Status WithContext(const std::string& context) const;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AnalysisError(Args&&... args) {
    return Make(StatusCode::kAnalysisError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status PartitioningError(Args&&... args) {
    return Make(StatusCode::kPartitioningError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status RuntimeError(Args&&... args) {
    return Make(StatusCode::kRuntimeError, std::forward<Args>(args)...);
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsAnalysisError() const { return code() == StatusCode::kAnalysisError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsPartitioningError() const {
    return code() == StatusCode::kPartitioningError;
  }
  bool IsRuntimeError() const { return code() == StatusCode::kRuntimeError; }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream ss;
    (ss << ... << args);
    return Status(code, ss.str());
  }

  std::unique_ptr<State> state_;
};

/// \brief Propagates an error status from the evaluated expression.
#define SP_RETURN_NOT_OK(expr)                      \
  do {                                              \
    ::streampart::Status _sp_status = (expr);       \
    if (!_sp_status.ok()) return _sp_status;        \
  } while (false)

#define SP_CONCAT_IMPL(x, y) x##y
#define SP_CONCAT(x, y) SP_CONCAT_IMPL(x, y)

/// \brief Evaluates a Result<T> expression; on success binds the value to
/// \p lhs, on failure returns the error status.
#define SP_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  SP_ASSIGN_OR_RETURN_IMPL(SP_CONCAT(_sp_result_, __LINE__), lhs, rexpr)

#define SP_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).ValueOrDie()

}  // namespace streampart
