#pragma once

/// \file stats.h
/// \brief Always-on per-operator telemetry: a per-engine registry of named
/// counters, gauges and histograms.
///
/// The paper's entire evaluation is a measurement exercise (CPU load and
/// packets/sec on the aggregator), and regressions inside operators —
/// group-table probe storms, batch fragmentation, late-tuple drops — are
/// invisible in end-of-run totals. This registry gives every operator cheap
/// named instruments that the run ledger (metrics/report.h) serializes.
///
/// Cost model:
///  * Compiled out entirely with -DSTREAMPART_TELEMETRY=0 (CMake option
///    STREAMPART_TELEMETRY): GetScope() returns nullptr, so no scope is ever
///    created and every recording site folds to a null check.
///  * Runtime toggle: StatsRegistry::set_enabled(false) before operators
///    bind makes GetScope() return nullptr — identical zero-cost shape.
///  * When enabled, instruments are plain single-writer machine words (no
///    locks, no atomics): each registry belongs to one engine thread, and
///    readers (the ledger) snapshot after the run. bench/micro_engine
///    records the end-to-end overhead of both modes in BENCH_engine.json.
///
/// Determinism: instruments marked deterministic carry identical values on
/// the per-tuple and batched execution paths (tests/metrics_test.cc and
/// bench/micro_engine enforce ledger bit-identity). Instruments that count
/// delivery granularity itself (batches) are marked advisory and excluded
/// from the default ledger.
///
/// Every instrument any operator can export is declared in the catalog at
/// the bottom of this file; docs/METRICS.md must document each one (the
/// StatsDocTest doc-lint in tests/metrics_test.cc enforces 100% coverage).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#ifndef STREAMPART_TELEMETRY
#define STREAMPART_TELEMETRY 1
#endif

namespace streampart {

enum class StatKind { kCounter, kGauge, kHistogram };

/// \brief Static definition of one instrument: identity + documentation
/// metadata. Instances live in stats.cc so the catalog has stable addresses.
struct StatDef {
  const char* name;  ///< canonical name, unique within a scope
  StatKind kind;
  const char* unit;  ///< "tuples", "bytes", "groups", ...
  /// True when the value depends on delivery granularity (per-tuple vs
  /// batched). Advisory instruments are excluded from default run ledgers so
  /// the ledger stays bit-identical across execution paths.
  bool advisory;
  const char* help;  ///< one-line "when it increments"
};

/// \brief Monotonic event count. Single-writer; zero-initialized.
class Counter {
 public:
  void Inc() { ++v_; }
  void Add(uint64_t n) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

/// \brief Point-in-time level (e.g. peak open groups).
class Gauge {
 public:
  void Set(int64_t v) { v_ = v; }
  void SetMax(int64_t v) {
    if (v > v_) v_ = v;
  }
  int64_t value() const { return v_; }

 private:
  int64_t v_ = 0;
};

/// \brief Power-of-two histogram over uint64 samples: bucket i counts
/// samples whose bit width is i (bucket 0 holds the value 0, bucket i>0
/// holds [2^(i-1), 2^i - 1]). Fixed layout, so serialization is
/// deterministic.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t v) {
    ++buckets_[BucketOf(v)];
    sum_ += v;
    ++count_;
  }
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// \brief (inclusive upper bound, count) of every non-empty bucket, in
  /// increasing bound order.
  std::vector<std::pair<uint64_t, uint64_t>> NonZeroBuckets() const;

 private:
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  uint64_t buckets_[kBuckets] = {};
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

/// \brief One structured trace event (e.g. a window flush), recorded only
/// when the registry's event log is enabled (--trace-events).
struct TraceEvent {
  std::string scope;  ///< owning operator scope name
  const char* kind;   ///< "window_flush", "window_join", ...
  std::string epoch;  ///< logical window key (printed Value), "" if none
  uint64_t groups = 0;   ///< kind-specific: groups / buffered tuples
  uint64_t emitted = 0;  ///< kind-specific: tuples emitted
};

/// \brief The instruments of one operator instance, keyed by instance name
/// (catalog name, or catalog name + ".<port>" for per-port instruments).
class StatsScope {
 public:
  explicit StatsScope(std::string name) : name_(std::move(name)) {}
  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  const std::string& name() const { return name_; }

  /// \brief Finds or creates the instrument for \p def. Returned pointers
  /// are stable for the registry's lifetime.
  Counter* counter(const StatDef& def);
  /// \brief Per-port counter instance: "<def.name>.<port>".
  Counter* counter(const StatDef& def, size_t port);
  Gauge* gauge(const StatDef& def);
  Histogram* histogram(const StatDef& def);

  struct Entry {
    const StatDef* def = nullptr;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  /// \brief Visits every instrument in instance-name order (deterministic).
  void ForEach(
      const std::function<void(const std::string&, const Entry&)>& fn) const;
  size_t size() const { return entries_.size(); }

 private:
  Entry* Resolve(const StatDef& def, std::string instance_name);

  std::string name_;
  std::map<std::string, Entry> entries_;  // ordered -> deterministic ledger
};

/// \brief Per-engine instrument registry. One registry per engine thread
/// (LocalEngine) or per simulated host (ClusterRuntime); the run ledger
/// folds them together.
class StatsRegistry {
 public:
  /// False when the whole subsystem is compiled out
  /// (-DSTREAMPART_TELEMETRY=0): GetScope() always returns nullptr and no
  /// storage exists behind the registry.
  static constexpr bool kCompiledIn = STREAMPART_TELEMETRY != 0;

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// \brief Runtime toggle. Must be set before operators bind: a disabled
  /// registry hands out no scopes, so already-bound instruments keep
  /// recording.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_ && kCompiledIn; }

  /// \brief Opt-in structured event log (--trace-events).
  void set_events_enabled(bool enabled) { events_enabled_ = enabled; }
  bool events_enabled() const { return events_enabled_ && enabled(); }

  /// \brief Finds or creates the scope \p name; nullptr when disabled or
  /// compiled out (callers must treat nullptr as "telemetry off").
  StatsScope* GetScope(const std::string& name);

  void RecordEvent(TraceEvent event);
  const std::vector<TraceEvent>& events() const { return events_; }

  /// \brief Visits scopes in name order (deterministic).
  void ForEachScope(const std::function<void(const StatsScope&)>& fn) const;
  size_t num_scopes() const { return scopes_.size(); }
  bool empty() const { return scopes_.empty(); }

 private:
  bool enabled_ = true;
  bool events_enabled_ = false;
  std::map<std::string, StatsScope> scopes_;
  std::vector<TraceEvent> events_;
};

// ---------------------------------------------------------------------------
// Instrument catalog — every instrument any operator exports. New
// instruments MUST be added here and documented in docs/METRICS.md
// (StatsDocTest fails otherwise).
// ---------------------------------------------------------------------------
namespace stats {

// OpStats mirrors, exported once per operator at Finish (the cost-model
// currency of metrics/cpu_model.h).
extern const StatDef kTuplesIn;
extern const StatDef kTuplesOut;
extern const StatDef kBytesOut;
extern const StatDef kGroupProbes;
extern const StatDef kGroupInserts;
extern const StatDef kJoinProbes;
extern const StatDef kPredicateEvals;
extern const StatDef kLateTuples;

// Live per-port delivery instruments (Operator base class).
extern const StatDef kPortTuplesIn;
extern const StatDef kPortBatchesIn;  // advisory
extern const StatDef kBatchesOut;     // advisory

// Columnar delivery (exec/column_batch.h, Operator::PushColumns). All
// advisory: they count delivery granularity on the columnar path and stay
// zero on the tuple/batch paths, so default ledgers remain byte-identical
// across execution modes.
extern const StatDef kColBatchesIn;     // advisory
extern const StatDef kColRowsIn;        // advisory
extern const StatDef kColFallbackRows;  // advisory

// Aggregation (AggregateOp / SlidingAggregateOp).
extern const StatDef kWindowFlushes;
extern const StatDef kGroupsFlushed;
extern const StatDef kWindowGroups;  // histogram
extern const StatDef kGroupsPeak;    // gauge
extern const StatDef kPaneFlushes;   // sliding only

// Join (JoinOp).
extern const StatDef kJoinWindows;
extern const StatDef kJoinWindowTuples;  // histogram

// Degraded cross-host channels (dist/fault.h). Recorded under scope
// `channel#<from>-><to>` in the sending host's registry.
extern const StatDef kChanSent;
extern const StatDef kChanDelivered;
extern const StatDef kChanDropped;
extern const StatDef kChanDupExtras;
extern const StatDef kChanReordered;
extern const StatDef kChanQueueDropped;

// Acked-channel retransmission (dist/checkpoint.h). kChanRetxSent lives in
// the channel scope `channel#<from>-><to>`; the dup-discard / escalation
// counters are recorded by the runtime under the same scope.
extern const StatDef kChanRetxSent;
extern const StatDef kChanRetxDupDiscarded;
extern const StatDef kChanRetxEscalated;

// Checkpoint / recovery coordinator (dist/checkpoint.h). Recorded under
// scope `checkpoint#<host>` in the owning host's registry.
extern const StatDef kCkptSnapshots;
extern const StatDef kCkptOpsSerialized;
extern const StatDef kCkptOpsSkipped;
extern const StatDef kCkptBytes;
extern const StatDef kCkptRestores;
extern const StatDef kCkptRestoredBytes;
extern const StatDef kCkptReplayedTuples;

// Overload control (dist/overload.h). Recorded under scope
// `overload#<host>` in the host's registry, bound lazily on the first
// event so disengaged runs create no scope.
extern const StatDef kShedTuples;
extern const StatDef kBudgetDeferrals;
extern const StatDef kBudgetQueueDropped;
extern const StatDef kBudgetOverEpochs;
extern const StatDef kSkewMoves;

// Adaptive placement (dist/adaptive.h). Recorded under scope `adaptive` in
// host 0's registry, bound lazily on the first drift event or decision so
// disengaged runs create no scope.
extern const StatDef kAdaptDriftEvents;
extern const StatDef kAdaptMovesTaken;
extern const StatDef kAdaptMovesSuppressed;
extern const StatDef kAdaptRollbacks;

// Membership lifecycle (dist/fault.h partition/heal/rejoin). Recorded under
// scope `membership` in host 0's registry, bound lazily when the first
// membership event applies so plans whose events never fire create no scope.
extern const StatDef kMemberPartitions;
extern const StatDef kMemberHeals;
extern const StatDef kMemberRejoins;
extern const StatDef kMemberRejoinsSuppressed;
extern const StatDef kMemberSendsRefused;
extern const StatDef kMemberMovedBytes;

// Morsel-driven parallel execution (dist/parallel_exec.h). Recorded in the
// runtime's separate scheduler registry (ClusterRuntime::
// scheduler_registry()) under scope `scheduler` (sched_*) and `worker#<h>`
// (worker_*), never in the per-host registries — the RunLedger stays
// byte-identical across execution modes. All advisory: thread counts,
// queue traffic, and wall clocks are scheduling artifacts, not workload
// properties.
extern const StatDef kSchedThreads;
extern const StatDef kSchedBarriers;
extern const StatDef kSchedMorsels;
extern const StatDef kSchedWallMs;  // gauge
extern const StatDef kWorkerMorsels;
extern const StatDef kWorkerTuples;
extern const StatDef kWorkerStagedMsgs;
extern const StatDef kWorkerSteals;

// Sketch execution leg (exec/sketch_op.h, docs/SKETCHES.md). Host-side
// SketchOp instruments (sketch_updates, sketch_summaries,
// sketch_summary_bytes) live in its operator scope; aggregator-side
// SketchMergeOp instruments (sketch_merged_summaries, sketch_merged_bytes,
// sketch_estimates) in the merge operator's scope; sketch_epoch_flushes in
// both.
extern const StatDef kSketchUpdates;
extern const StatDef kSketchSummaries;
extern const StatDef kSketchSummaryBytes;
extern const StatDef kSketchEpochFlushes;
extern const StatDef kSketchMergedSummaries;
extern const StatDef kSketchMergedBytes;
extern const StatDef kSketchEstimates;

/// \brief Every StatDef above, in declaration order. The doc-lint and the
/// run-ledger schema iterate this.
const std::vector<const StatDef*>& EngineStatCatalog();

}  // namespace stats
}  // namespace streampart
