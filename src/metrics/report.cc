#include "metrics/report.h"

#include <cstdio>
#include <iostream>

namespace streampart {
namespace {

/// JSON string escaping (control characters, quotes, backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

/// Deterministic double rendering for every ledger number.
std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string OpStatsJson(const OpStats& s) {
  std::string out = "{";
  out += "\"tuples_in\":" + std::to_string(s.tuples_in);
  out += ",\"tuples_out\":" + std::to_string(s.tuples_out);
  out += ",\"bytes_out\":" + std::to_string(s.bytes_out);
  out += ",\"group_probes\":" + std::to_string(s.group_probes);
  out += ",\"group_inserts\":" + std::to_string(s.group_inserts);
  out += ",\"join_probes\":" + std::to_string(s.join_probes);
  out += ",\"predicate_evals\":" + std::to_string(s.predicate_evals);
  out += ",\"late_tuples\":" + std::to_string(s.late_tuples);
  out += "}";
  return out;
}

std::string HostRowJson(const LedgerHostRow& row) {
  std::string out = "{\"record\":\"host\"";
  out += ",\"host\":" + std::to_string(row.host);
  out += ",\"source_tuples\":" + std::to_string(row.metrics.source_tuples);
  out += ",\"net_tuples_in\":" + std::to_string(row.metrics.net_tuples_in);
  out += ",\"net_bytes_in\":" + std::to_string(row.metrics.net_bytes_in);
  out += ",\"net_tuples_out\":" + std::to_string(row.metrics.net_tuples_out);
  out += ",\"net_bytes_out\":" + std::to_string(row.metrics.net_bytes_out);
  out += ",\"cpu_seconds\":" + JsonDouble(row.cpu_seconds);
  out += ",\"cpu_load_pct\":" + JsonDouble(row.cpu_load_pct);
  out += ",\"net_tuples_in_per_sec\":" + JsonDouble(row.net_tuples_in_per_sec);
  out += ",\"ops\":" + OpStatsJson(row.metrics.ops);
  out += ",\"merge_ops\":" + OpStatsJson(row.metrics.merge_ops);
  out += ",\"ckpt_bytes\":" + std::to_string(row.metrics.ckpt_bytes);
  out += ",\"ckpt_restored_bytes\":" +
         std::to_string(row.metrics.ckpt_restored_bytes);
  out += "}";
  return out;
}

std::string FaultSectionJson(const FaultSection& f) {
  std::string out = "{\"record\":\"faults\"";
  out += ",\"hosts_killed\":[";
  bool first = true;
  for (int h : f.hosts_killed) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(h);
  }
  out += "]";
  out += ",\"source_tuples_lost\":" + std::to_string(f.source_tuples_lost);
  out += ",\"net_tuples_lost\":" + std::to_string(f.net_tuples_lost);
  out += ",\"flush_tuples_suppressed\":" +
         std::to_string(f.flush_tuples_suppressed);
  out += ",\"panes_invalidated\":" + std::to_string(f.panes_invalidated);
  out += ",\"inflight_tuples_lost\":" + std::to_string(f.inflight_tuples_lost);
  out += ",\"repartitions\":" + std::to_string(f.repartitions);
  out += ",\"repartition_state_tuples\":" +
         std::to_string(f.repartition_state_tuples);
  out += ",\"repartition_cost_cycles\":" + JsonDouble(f.repartition_cost_cycles);
  out += ",\"invalidations\":[";
  first = true;
  for (const FaultInvalidationRow& row : f.invalidations) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":" + std::to_string(row.host);
    out += ",\"scope\":" + JsonStr(row.scope);
    out += ",\"panes\":" + std::to_string(row.panes);
    out += ",\"tuples\":" + std::to_string(row.tuples) + "}";
  }
  out += "]";
  out += ",\"channels\":[";
  first = true;
  for (const FaultChannelRow& row : f.channels) {
    if (!first) out += ",";
    first = false;
    out += "{\"from_host\":" + std::to_string(row.from_host);
    out += ",\"to_host\":" + std::to_string(row.to_host);
    out += ",\"sent\":" + std::to_string(row.sent);
    out += ",\"delivered\":" + std::to_string(row.delivered);
    out += ",\"dropped\":" + std::to_string(row.dropped);
    out += ",\"dup_extras\":" + std::to_string(row.dup_extras);
    out += ",\"reordered\":" + std::to_string(row.reordered);
    out += ",\"queue_dropped\":" + std::to_string(row.queue_dropped);
    out += ",\"retransmitted\":" + std::to_string(row.retransmitted) + "}";
  }
  out += "]}";
  return out;
}

std::string RecoverySectionJson(const RecoverySection& r) {
  std::string out = "{\"record\":\"recovery\"";
  out += ",\"checkpoint_interval\":" + std::to_string(r.checkpoint_interval);
  out += ",\"epoch_width\":" + std::to_string(r.epoch_width);
  out += ",\"checkpoints\":" + std::to_string(r.checkpoints);
  out += ",\"ops_serialized\":" + std::to_string(r.ops_serialized);
  out += ",\"ops_skipped\":" + std::to_string(r.ops_skipped);
  out += ",\"checkpoint_bytes\":" + std::to_string(r.checkpoint_bytes);
  out += ",\"restores\":" + std::to_string(r.restores);
  out += ",\"restored_bytes\":" + std::to_string(r.restored_bytes);
  out += ",\"replayed_tuples\":" + std::to_string(r.replayed_tuples);
  out += ",\"replay_suppressed\":" + std::to_string(r.replay_suppressed);
  out += ",\"ops_migrated\":" + std::to_string(r.ops_migrated);
  out += ",\"retx_sent\":" + std::to_string(r.retx_sent);
  out += ",\"retx_dup_discarded\":" + std::to_string(r.retx_dup_discarded);
  out += ",\"retx_escalated\":" + std::to_string(r.retx_escalated);
  out += ",\"reliable_sent\":" + std::to_string(r.reliable_sent);
  out += ",\"reliable_applied\":" + std::to_string(r.reliable_applied);
  out += ",\"checkpoint_cost_cycles\":" + JsonDouble(r.checkpoint_cost_cycles);
  out += "}";
  return out;
}

std::string OverloadSectionJson(const OverloadSection& o) {
  std::string out = "{\"record\":\"overload\"";
  out += ",\"intake_offered\":" + std::to_string(o.intake_offered);
  out += ",\"intake_processed\":" + std::to_string(o.intake_processed);
  out += ",\"intake_deferred\":" + std::to_string(o.intake_deferred);
  out += ",\"shed_tuples\":" + std::to_string(o.shed_tuples);
  out += ",\"bp_queue_dropped\":" + std::to_string(o.bp_queue_dropped);
  out += ",\"shed_epochs\":" + std::to_string(o.shed_epochs);
  out += ",\"max_shed_m\":" + std::to_string(o.max_shed_m);
  out += ",\"estimated_source_tuples\":" +
         JsonDouble(o.estimated_source_tuples);
  out += ",\"shed_rel_error_bound\":" + JsonDouble(o.shed_rel_error_bound);
  out += std::string(",\"exact\":") + (o.exact ? "true" : "false");
  out += ",\"inexact_reasons\":[";
  bool first = true;
  for (const std::string& reason : o.inexact_reasons) {
    if (!first) out += ",";
    first = false;
    out += JsonStr(reason);
  }
  out += "]";
  out += ",\"skew_repartitions\":" + std::to_string(o.skew_repartitions);
  out += ",\"skew_moved_partitions\":[";
  first = true;
  for (int p : o.skew_moved_partitions) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(p);
  }
  out += "]";
  out += ",\"skew_move_cost_bytes\":" + JsonDouble(o.skew_move_cost_bytes);
  out += ",\"skew_advice_only\":" + std::to_string(o.skew_advice_only);
  out += ",\"hosts\":[";
  first = true;
  for (const OverloadHostRow& row : o.hosts) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":" + std::to_string(row.host);
    out += ",\"budget_cycles\":" + JsonDouble(row.budget_cycles);
    out += ",\"reserve\":" + JsonDouble(row.reserve);
    out += ",\"guard_deferrals\":" + std::to_string(row.guard_deferrals);
    out += ",\"queue_dropped\":" + std::to_string(row.queue_dropped);
    out += ",\"over_budget_epochs\":" +
           std::to_string(row.over_budget_epochs);
    out += ",\"max_epoch_cycles\":" + JsonDouble(row.max_epoch_cycles) + "}";
  }
  out += "]}";
  return out;
}

std::string AdaptiveSectionJson(const AdaptiveSection& a) {
  std::string out = "{\"record\":\"adaptive\"";
  out += ",\"epochs\":" + std::to_string(a.epochs);
  out += ",\"drift_events\":" + std::to_string(a.drift_events);
  out += ",\"candidates_considered\":" +
         std::to_string(a.candidates_considered);
  out += ",\"moves_taken\":" + std::to_string(a.moves_taken);
  out += ",\"moves_suppressed\":" + std::to_string(a.moves_suppressed);
  out += ",\"rollbacks\":" + std::to_string(a.rollbacks);
  out += ",\"probes\":" + std::to_string(a.probes);
  out += ",\"moved_state_bytes\":" + std::to_string(a.moved_state_bytes);
  out += ",\"decisions\":[";
  bool first = true;
  for (const AdaptiveDecisionRow& row : a.decisions) {
    if (!first) out += ",";
    first = false;
    out += "{\"epoch\":" + std::to_string(row.epoch);
    out += ",\"action\":" + JsonStr(row.action);
    out += ",\"stage\":" + std::to_string(row.stage);
    out += ",\"from_host\":" + std::to_string(row.from_host);
    out += ",\"to_host\":" + std::to_string(row.to_host);
    out += ",\"gain_pct\":" + JsonDouble(row.gain_pct);
    out += ",\"move_cycles\":" + JsonDouble(row.move_cycles);
    out += ",\"reason\":" + JsonStr(row.reason) + "}";
  }
  out += "]}";
  return out;
}

std::string MembershipSectionJson(const MembershipSection& m) {
  std::string out = "{\"record\":\"membership\"";
  out += ",\"partitions\":" + std::to_string(m.partitions);
  out += ",\"heals\":" + std::to_string(m.heals);
  out += ",\"rejoins\":" + std::to_string(m.rejoins);
  out += ",\"rejoins_suppressed\":" + std::to_string(m.rejoins_suppressed);
  out += ",\"sends_refused\":" + std::to_string(m.sends_refused);
  out += ",\"moved_bytes\":" + std::to_string(m.moved_bytes);
  out += ",\"rejoin_cost_cycles\":" + JsonDouble(m.rejoin_cost_cycles);
  out += ",\"events\":[";
  bool first = true;
  for (const MembershipEventRow& row : m.events) {
    if (!first) out += ",";
    first = false;
    out += "{\"epoch\":" + std::to_string(row.epoch);
    out += ",\"kind\":" + JsonStr(row.kind);
    out += ",\"hosts\":[";
    bool h_first = true;
    for (int h : row.hosts) {
      if (!h_first) out += ",";
      h_first = false;
      out += std::to_string(h);
    }
    out += "]";
    out += ",\"moved_bytes\":" + std::to_string(row.moved_bytes);
    out += ",\"refused\":" + std::to_string(row.refused) + "}";
  }
  out += "]}";
  return out;
}

std::string SketchSectionJson(const SketchSection& s) {
  std::string out = "{\"record\":\"sketch\"";
  out += ",\"eps\":" + JsonDouble(s.eps);
  out += ",\"confidence\":" + JsonDouble(s.confidence);
  out += ",\"width\":" + std::to_string(s.width);
  out += ",\"depth\":" + std::to_string(s.depth);
  out += ",\"merged_summaries\":" + std::to_string(s.merged_summaries);
  out += ",\"merged_bytes\":" + std::to_string(s.merged_bytes);
  out += ",\"epochs\":" + std::to_string(s.epochs);
  out += ",\"estimates\":" + std::to_string(s.estimates);
  out += ",\"max_epoch_mass\":" + std::to_string(s.max_epoch_mass);
  out += ",\"abs_error_bound\":" + JsonDouble(s.abs_error_bound);
  out += std::string(",\"exact\":") + (s.exact ? "true" : "false");
  out += ",\"inexact_reasons\":[";
  bool first = true;
  for (const std::string& reason : s.inexact_reasons) {
    if (!first) out += ",";
    first = false;
    out += JsonStr(reason);
  }
  out += "]";
  out += ",\"hosts\":[";
  first = true;
  for (const SketchHostRow& row : s.hosts) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":" + std::to_string(row.host);
    out += ",\"updates\":" + std::to_string(row.updates);
    out += ",\"summaries\":" + std::to_string(row.summaries);
    out += ",\"summary_bytes\":" + std::to_string(row.summary_bytes);
    out += ",\"epochs\":" + std::to_string(row.epochs) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

SeriesTable::SeriesTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void SeriesTable::SetValueFormat(std::string printf_format) {
  format_ = std::move(printf_format);
}

void SeriesTable::AddRow(const std::string& label,
                         const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), format_.c_str(), v);
    cells.emplace_back(buf);
  }
  rows_.push_back(std::move(cells));
}

void SeriesTable::AddTextRow(const std::string& label,
                             const std::vector<std::string>& cells) {
  std::vector<std::string> row;
  row.push_back(label);
  row.insert(row.end(), cells.begin(), cells.end());
  rows_.push_back(std::move(row));
}

std::string SeriesTable::ToString() const {
  // Column widths.
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };
  std::string out = title_ + "\n";
  std::string header;
  for (size_t i = 0; i < columns_.size(); ++i) {
    header += pad(columns_[i], widths[i]) + "  ";
  }
  out += header + "\n";
  out += std::string(header.size(), '-') + "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      out += pad(row[i], widths[i]) + "  ";
    }
    out += "\n";
  }
  return out;
}

void SeriesTable::Print() const { std::cout << ToString() << std::endl; }

RunLedger::RunLedger(RunLedgerOptions options) : options_(options) {}

void RunLedger::SetMeta(const std::string& key, const std::string& value) {
  meta_[key] = JsonStr(value);
}

void RunLedger::SetMeta(const std::string& key, uint64_t value) {
  meta_[key] = std::to_string(value);
}

void RunLedger::SetMeta(const std::string& key, double value) {
  meta_[key] = JsonDouble(value);
}

void RunLedger::AddHost(int host, const HostMetrics& metrics,
                        const CpuCostParams& params, double duration_sec) {
  LedgerHostRow row;
  row.host = host;
  row.metrics = metrics;
  row.cpu_seconds = HostCpuSeconds(metrics, params);
  row.cpu_load_pct = HostCpuLoadPercent(metrics, params, duration_sec);
  row.net_tuples_in_per_sec = HostNetworkTuplesPerSec(metrics, duration_sec);
  hosts_.push_back(std::move(row));
}

void RunLedger::AddRegistry(int host, const StatsRegistry& registry) {
  registry.ForEachScope([&](const StatsScope& scope) {
    OperatorRow row;
    row.host = host;
    row.scope = scope.name();
    scope.ForEach([&](const std::string& name, const StatsScope::Entry& e) {
      if (e.def->advisory && !options_.include_advisory) return;
      InstrumentRow inst;
      inst.name = name;
      switch (e.def->kind) {
        case StatKind::kCounter:
          inst.json = std::to_string(e.counter.value());
          break;
        case StatKind::kGauge:
          inst.json = std::to_string(e.gauge.value());
          break;
        case StatKind::kHistogram: {
          std::string h = "{\"count\":" + std::to_string(e.histogram.count());
          h += ",\"sum\":" + std::to_string(e.histogram.sum());
          h += ",\"buckets\":[";
          bool first = true;
          for (const auto& [bound, count] : e.histogram.NonZeroBuckets()) {
            if (!first) h += ",";
            first = false;
            h += "[" + std::to_string(bound) + "," + std::to_string(count) +
                 "]";
          }
          h += "]}";
          inst.json = std::move(h);
          break;
        }
      }
      row.instruments.push_back(std::move(inst));
    });
    operators_.push_back(std::move(row));
  });
  if (options_.include_events) {
    for (const TraceEvent& e : registry.events()) {
      events_.push_back({host, e});
    }
  }
}

void RunLedger::AddOutput(const std::string& stream, uint64_t tuples) {
  outputs_[stream] = tuples;
}

void RunLedger::SetFaults(FaultSection faults) {
  if (!faults.active) return;
  faults_ = std::move(faults);
}

void RunLedger::SetRecovery(RecoverySection recovery) {
  if (!recovery.active) return;
  recovery_ = std::move(recovery);
}

void RunLedger::SetOverload(OverloadSection overload) {
  if (!overload.active || !overload.engaged) return;
  overload_ = std::move(overload);
}

void RunLedger::SetAdaptive(AdaptiveSection adaptive) {
  if (!adaptive.active || !adaptive.engaged) return;
  adaptive_ = std::move(adaptive);
}

void RunLedger::SetMembership(MembershipSection membership) {
  if (!membership.active || !membership.engaged) return;
  membership_ = std::move(membership);
}

void RunLedger::SetSketch(SketchSection sketch) {
  if (!sketch.active) return;
  sketch_ = std::move(sketch);
}

std::string RunLedger::ToJsonl() const {
  std::string out;
  // Record 1: run metadata.
  out += "{\"record\":\"run\"";
  for (const auto& [key, value] : meta_) {
    out += "," + JsonStr(key) + ":" + value;
  }
  out += "}\n";
  for (const LedgerHostRow& row : hosts_) {
    out += HostRowJson(row) + "\n";
  }
  for (const OperatorRow& row : operators_) {
    out += "{\"record\":\"operator\",\"host\":" + std::to_string(row.host);
    out += ",\"scope\":" + JsonStr(row.scope) + ",\"stats\":{";
    bool first = true;
    for (const InstrumentRow& inst : row.instruments) {
      if (!first) out += ",";
      first = false;
      out += JsonStr(inst.name) + ":" + inst.json;
    }
    out += "}}\n";
  }
  for (const EventRow& row : events_) {
    out += "{\"record\":\"event\",\"host\":" + std::to_string(row.host);
    out += ",\"scope\":" + JsonStr(row.event.scope);
    out += ",\"kind\":" + JsonStr(row.event.kind);
    out += ",\"epoch\":" + JsonStr(row.event.epoch);
    out += ",\"groups\":" + std::to_string(row.event.groups);
    out += ",\"emitted\":" + std::to_string(row.event.emitted);
    out += "}\n";
  }
  if (faults_.active) out += FaultSectionJson(faults_) + "\n";
  if (recovery_.active) out += RecoverySectionJson(recovery_) + "\n";
  if (overload_.engaged) out += OverloadSectionJson(overload_) + "\n";
  if (adaptive_.engaged) out += AdaptiveSectionJson(adaptive_) + "\n";
  if (membership_.engaged) out += MembershipSectionJson(membership_) + "\n";
  if (sketch_.active) out += SketchSectionJson(sketch_) + "\n";
  for (const auto& [stream, tuples] : outputs_) {
    out += "{\"record\":\"output\",\"stream\":" + JsonStr(stream);
    out += ",\"tuples\":" + std::to_string(tuples) + "}\n";
  }
  return out;
}

std::string RunLedger::ToSummaryJson() const {
  std::string out = "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    if (!first) out += ",";
    first = false;
    out += "\n    " + JsonStr(key) + ": " + value;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"hosts\": [";
  double total_cpu = 0;
  uint64_t total_net_tuples = 0, total_net_bytes = 0, total_source = 0;
  first = true;
  for (const LedgerHostRow& row : hosts_) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"host\":" + std::to_string(row.host);
    out += ",\"cpu_seconds\":" + JsonDouble(row.cpu_seconds);
    out += ",\"cpu_load_pct\":" + JsonDouble(row.cpu_load_pct);
    out +=
        ",\"net_tuples_in_per_sec\":" + JsonDouble(row.net_tuples_in_per_sec);
    out += ",\"source_tuples\":" + std::to_string(row.metrics.source_tuples);
    out += "}";
    total_cpu += row.cpu_seconds;
    total_net_tuples += row.metrics.net_tuples_in;
    total_net_bytes += row.metrics.net_bytes_in;
    total_source += row.metrics.source_tuples;
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"totals\": {";
  out += "\"cpu_seconds\":" + JsonDouble(total_cpu);
  out += ",\"source_tuples\":" + std::to_string(total_source);
  out += ",\"net_tuples_in\":" + std::to_string(total_net_tuples);
  out += ",\"net_bytes_in\":" + std::to_string(total_net_bytes);
  out += ",\"operator_scopes\":" + std::to_string(operators_.size());
  out += ",\"trace_events\":" + std::to_string(events_.size());
  out += "}";
  if (faults_.active) {
    out += ",\n  \"faults\": {";
    out += "\"hosts_killed\":" + std::to_string(faults_.hosts_killed.size());
    out +=
        ",\"source_tuples_lost\":" + std::to_string(faults_.source_tuples_lost);
    out += ",\"net_tuples_lost\":" + std::to_string(faults_.net_tuples_lost);
    out += ",\"panes_invalidated\":" + std::to_string(faults_.panes_invalidated);
    out += ",\"repartitions\":" + std::to_string(faults_.repartitions);
    out += ",\"repartition_cost_cycles\":" +
           JsonDouble(faults_.repartition_cost_cycles);
    out += "}";
  }
  if (recovery_.active) {
    out += ",\n  \"recovery\": {";
    out += "\"checkpoints\":" + std::to_string(recovery_.checkpoints);
    out += ",\"checkpoint_bytes\":" +
           std::to_string(recovery_.checkpoint_bytes);
    out += ",\"ops_migrated\":" + std::to_string(recovery_.ops_migrated);
    out += ",\"replayed_tuples\":" + std::to_string(recovery_.replayed_tuples);
    out += ",\"retx_sent\":" + std::to_string(recovery_.retx_sent);
    out += ",\"reliable_sent\":" + std::to_string(recovery_.reliable_sent);
    out += ",\"reliable_applied\":" +
           std::to_string(recovery_.reliable_applied);
    out += ",\"checkpoint_cost_cycles\":" +
           JsonDouble(recovery_.checkpoint_cost_cycles);
    out += "}";
  }
  if (overload_.engaged) {
    out += ",\n  \"overload\": {";
    out += "\"shed_tuples\":" + std::to_string(overload_.shed_tuples);
    out += ",\"intake_deferred\":" +
           std::to_string(overload_.intake_deferred);
    out += ",\"bp_queue_dropped\":" +
           std::to_string(overload_.bp_queue_dropped);
    out += ",\"max_shed_m\":" + std::to_string(overload_.max_shed_m);
    out += ",\"shed_rel_error_bound\":" +
           JsonDouble(overload_.shed_rel_error_bound);
    out += std::string(",\"exact\":") + (overload_.exact ? "true" : "false");
    out += ",\"skew_repartitions\":" +
           std::to_string(overload_.skew_repartitions);
    out += "}";
  }
  if (adaptive_.engaged) {
    out += ",\n  \"adaptive\": {";
    out += "\"drift_events\":" + std::to_string(adaptive_.drift_events);
    out += ",\"moves_taken\":" + std::to_string(adaptive_.moves_taken);
    out += ",\"moves_suppressed\":" +
           std::to_string(adaptive_.moves_suppressed);
    out += ",\"rollbacks\":" + std::to_string(adaptive_.rollbacks);
    out += ",\"probes\":" + std::to_string(adaptive_.probes);
    out += ",\"moved_state_bytes\":" +
           std::to_string(adaptive_.moved_state_bytes);
    out += "}";
  }
  if (membership_.engaged) {
    out += ",\n  \"membership\": {";
    out += "\"partitions\":" + std::to_string(membership_.partitions);
    out += ",\"heals\":" + std::to_string(membership_.heals);
    out += ",\"rejoins\":" + std::to_string(membership_.rejoins);
    out += ",\"rejoins_suppressed\":" +
           std::to_string(membership_.rejoins_suppressed);
    out += ",\"sends_refused\":" + std::to_string(membership_.sends_refused);
    out += ",\"moved_bytes\":" + std::to_string(membership_.moved_bytes);
    out += ",\"rejoin_cost_cycles\":" +
           JsonDouble(membership_.rejoin_cost_cycles);
    out += "}";
  }
  if (sketch_.active) {
    out += ",\n  \"sketch\": {";
    out += "\"eps\":" + JsonDouble(sketch_.eps);
    out += ",\"confidence\":" + JsonDouble(sketch_.confidence);
    out += ",\"merged_summaries\":" +
           std::to_string(sketch_.merged_summaries);
    out += ",\"merged_bytes\":" + std::to_string(sketch_.merged_bytes);
    out += ",\"estimates\":" + std::to_string(sketch_.estimates);
    out += ",\"abs_error_bound\":" + JsonDouble(sketch_.abs_error_bound);
    out += std::string(",\"exact\":") + (sketch_.exact ? "true" : "false");
    out += "}";
  }
  if (!outputs_.empty()) {
    out += ",\n  \"outputs\": {";
    first = true;
    for (const auto& [stream, tuples] : outputs_) {
      if (!first) out += ",";
      first = false;
      out += "\n    " + JsonStr(stream) + ": " + std::to_string(tuples);
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace streampart
