#include "metrics/report.h"

#include <cstdio>
#include <iostream>

namespace streampart {

SeriesTable::SeriesTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void SeriesTable::SetValueFormat(std::string printf_format) {
  format_ = std::move(printf_format);
}

void SeriesTable::AddRow(const std::string& label,
                         const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), format_.c_str(), v);
    cells.emplace_back(buf);
  }
  rows_.push_back(std::move(cells));
}

void SeriesTable::AddTextRow(const std::string& label,
                             const std::vector<std::string>& cells) {
  std::vector<std::string> row;
  row.push_back(label);
  row.insert(row.end(), cells.begin(), cells.end());
  rows_.push_back(std::move(row));
}

std::string SeriesTable::ToString() const {
  // Column widths.
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };
  std::string out = title_ + "\n";
  std::string header;
  for (size_t i = 0; i < columns_.size(); ++i) {
    header += pad(columns_[i], widths[i]) + "  ";
  }
  out += header + "\n";
  out += std::string(header.size(), '-') + "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      out += pad(row[i], widths[i]) + "  ";
    }
    out += "\n";
  }
  return out;
}

void SeriesTable::Print() const { std::cout << ToString() << std::endl; }

}  // namespace streampart
