#include "metrics/stats.h"

namespace streampart {

std::vector<std::pair<uint64_t, uint64_t>> Histogram::NonZeroBuckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    uint64_t bound = i == 0 ? 0
                     : i >= 64 ? ~uint64_t{0}
                               : (uint64_t{1} << i) - 1;
    out.emplace_back(bound, buckets_[i]);
  }
  return out;
}

StatsScope::Entry* StatsScope::Resolve(const StatDef& def,
                                       std::string instance_name) {
  auto [it, inserted] = entries_.try_emplace(std::move(instance_name));
  if (inserted) it->second.def = &def;
  return &it->second;
}

Counter* StatsScope::counter(const StatDef& def) {
  return &Resolve(def, def.name)->counter;
}

Counter* StatsScope::counter(const StatDef& def, size_t port) {
  return &Resolve(def, std::string(def.name) + "." + std::to_string(port))
              ->counter;
}

Gauge* StatsScope::gauge(const StatDef& def) {
  return &Resolve(def, def.name)->gauge;
}

Histogram* StatsScope::histogram(const StatDef& def) {
  return &Resolve(def, def.name)->histogram;
}

void StatsScope::ForEach(
    const std::function<void(const std::string&, const Entry&)>& fn) const {
  for (const auto& [name, entry] : entries_) fn(name, entry);
}

StatsScope* StatsRegistry::GetScope(const std::string& name) {
#if STREAMPART_TELEMETRY
  if (!enabled()) return nullptr;
  auto [it, inserted] = scopes_.try_emplace(name, name);
  return &it->second;
#else
  (void)name;
  return nullptr;
#endif
}

void StatsRegistry::RecordEvent(TraceEvent event) {
#if STREAMPART_TELEMETRY
  if (events_enabled()) events_.push_back(std::move(event));
#else
  (void)event;
#endif
}

void StatsRegistry::ForEachScope(
    const std::function<void(const StatsScope&)>& fn) const {
  for (const auto& [name, scope] : scopes_) fn(scope);
}

namespace stats {

const StatDef kTuplesIn = {"tuples_in", StatKind::kCounter, "tuples", false,
                           "tuples delivered to the operator (all ports)"};
const StatDef kTuplesOut = {"tuples_out", StatKind::kCounter, "tuples", false,
                            "tuples emitted downstream"};
const StatDef kBytesOut = {"bytes_out", StatKind::kCounter, "bytes", false,
                           "wire size of emitted tuples"};
const StatDef kGroupProbes = {"group_probes", StatKind::kCounter, "probes",
                              false,
                              "group-table probes that found an existing "
                              "group"};
const StatDef kGroupInserts = {"group_inserts", StatKind::kCounter, "groups",
                               false, "new groups created"};
const StatDef kJoinProbes = {"join_probes", StatKind::kCounter, "pairs", false,
                             "join pair evaluations"};
const StatDef kPredicateEvals = {"predicate_evals", StatKind::kCounter,
                                 "evals", false,
                                 "WHERE/HAVING/residual predicate "
                                 "evaluations"};
const StatDef kLateTuples = {"late_tuples", StatKind::kCounter, "tuples",
                             false,
                             "tuples dropped because their tumbling window "
                             "already closed"};

const StatDef kPortTuplesIn = {"port_tuples_in", StatKind::kCounter, "tuples",
                               false, "tuples delivered to one input port"};
const StatDef kPortBatchesIn = {"port_batches_in", StatKind::kCounter,
                                "batches", true,
                                "PushBatch calls on one input port "
                                "(delivery-granularity dependent)"};
const StatDef kBatchesOut = {"batches_out", StatKind::kCounter, "batches",
                             true,
                             "EmitBatch calls issued downstream "
                             "(delivery-granularity dependent)"};

const StatDef kColBatchesIn = {"col_batches_in", StatKind::kCounter,
                               "batches", true,
                               "PushColumns deliveries accepted (columnar "
                               "path only)"};
const StatDef kColRowsIn = {"col_rows_in", StatKind::kCounter, "tuples", true,
                            "selected rows delivered via PushColumns "
                            "(columnar path only)"};
const StatDef kColFallbackRows = {"col_fallback_rows", StatKind::kCounter,
                                  "tuples", true,
                                  "columnar rows materialized back to the "
                                  "row-batch path by the default "
                                  "DoPushColumns fallback"};

const StatDef kWindowFlushes = {"window_flushes", StatKind::kCounter,
                                "windows", false,
                                "non-empty tumbling/sliding windows "
                                "finalized"};
const StatDef kGroupsFlushed = {"groups_flushed", StatKind::kCounter,
                                "groups", false,
                                "group states finalized across all window "
                                "flushes"};
const StatDef kWindowGroups = {"window_groups", StatKind::kHistogram,
                               "groups", false,
                               "group-table occupancy at each window flush"};
const StatDef kGroupsPeak = {"groups_peak", StatKind::kGauge, "groups", false,
                             "peak open-group count over the run"};
const StatDef kPaneFlushes = {"pane_flushes", StatKind::kCounter, "panes",
                              false,
                              "sliding-window panes closed (sub-aggregation "
                              "boundaries)"};

const StatDef kJoinWindows = {"join_windows", StatKind::kCounter, "windows",
                              false, "join windows evaluated"};
const StatDef kJoinWindowTuples = {"join_window_tuples", StatKind::kHistogram,
                                   "tuples", false,
                                   "buffered tuples (both sides) per join "
                                   "window at evaluation"};

const StatDef kChanSent = {"chan_sent", StatKind::kCounter, "tuples", false,
                           "tuples entering a degraded cross-host channel"};
const StatDef kChanDelivered = {"chan_delivered", StatKind::kCounter, "tuples",
                                false,
                                "channel tuples handed to a live receiver"};
const StatDef kChanDropped = {"chan_dropped", StatKind::kCounter, "tuples",
                              false,
                              "channel tuples lost to the drop probability"};
const StatDef kChanDupExtras = {"chan_dup_extras", StatKind::kCounter,
                                "tuples", false,
                                "extra channel tuple copies created by "
                                "duplication"};
const StatDef kChanReordered = {"chan_reordered", StatKind::kCounter, "tuples",
                                false,
                                "channel tuples held back by the reorder "
                                "stage"};
const StatDef kChanQueueDropped = {"chan_queue_dropped", StatKind::kCounter,
                                   "tuples", false,
                                   "drop-oldest evictions of a bounded "
                                   "channel queue"};

const StatDef kChanRetxSent = {"chan_retx_sent", StatKind::kCounter, "tuples",
                               false,
                               "unacked tuples resent through the channel "
                               "after a retransmit timeout"};
const StatDef kChanRetxDupDiscarded = {"chan_retx_dup_discarded",
                                       StatKind::kCounter, "tuples", false,
                                       "arrivals discarded by the receiver "
                                       "as already-applied duplicates"};
const StatDef kChanRetxEscalated = {"chan_retx_escalated", StatKind::kCounter,
                                    "tuples", false,
                                    "unacked tuples delivered directly after "
                                    "exhausting bounded retransmit attempts"};

const StatDef kCkptSnapshots = {"ckpt_snapshots", StatKind::kCounter,
                                "snapshots", false,
                                "epoch-aligned checkpoint rounds the host "
                                "participated in"};
const StatDef kCkptOpsSerialized = {"ckpt_ops_serialized", StatKind::kCounter,
                                    "operators", false,
                                    "operator states serialized into the "
                                    "checkpoint store"};
const StatDef kCkptOpsSkipped = {"ckpt_ops_skipped", StatKind::kCounter,
                                 "operators", false,
                                 "operator snapshots skipped because the "
                                 "state was unchanged (incremental "
                                 "checkpointing)"};
const StatDef kCkptBytes = {"ckpt_bytes", StatKind::kCounter, "bytes", false,
                            "serialized operator-state bytes written to the "
                            "checkpoint store"};
const StatDef kCkptRestores = {"ckpt_restores", StatKind::kCounter,
                               "operators", false,
                               "operator states restored from the checkpoint "
                               "store during migration"};
const StatDef kCkptRestoredBytes = {"ckpt_restored_bytes", StatKind::kCounter,
                                    "bytes", false,
                                    "serialized operator-state bytes read "
                                    "back during migration"};
const StatDef kCkptReplayedTuples = {"ckpt_replayed_tuples",
                                     StatKind::kCounter, "tuples", false,
                                     "post-checkpoint tuples replayed into "
                                     "migrated operators from delivery logs"};

const StatDef kShedTuples = {"shed_tuples", StatKind::kCounter, "tuples",
                             false,
                             "source tuples shed at the capture tap by the "
                             "keep-1-in-m policy before any capture cost"};
const StatDef kBudgetDeferrals = {"budget_deferrals", StatKind::kCounter,
                                  "tuples", false,
                                  "source tuples parked in the host's "
                                  "backpressure queue by the epoch budget "
                                  "guard"};
const StatDef kBudgetQueueDropped = {"budget_queue_dropped",
                                     StatKind::kCounter, "tuples", false,
                                     "drop-oldest evictions of the host's "
                                     "bounded backpressure queue"};
const StatDef kBudgetOverEpochs = {"budget_over_epochs", StatKind::kCounter,
                                   "epochs", false,
                                   "epochs whose charged model cycles "
                                   "exceeded the host's budget"};
const StatDef kSkewMoves = {"skew_moves", StatKind::kCounter, "moves", false,
                            "hot partitions migrated off this host by the "
                            "skew detector"};

const StatDef kAdaptDriftEvents = {"adapt_drift_events", StatKind::kCounter,
                                   "epochs", false,
                                   "epochs whose fast/slow EWMA rates "
                                   "diverged past the drift threshold"};
const StatDef kAdaptMovesTaken = {"adapt_moves_taken", StatKind::kCounter,
                                  "moves", false,
                                  "stage migrations the adaptive controller "
                                  "executed (probes included)"};
const StatDef kAdaptMovesSuppressed = {"adapt_moves_suppressed",
                                       StatKind::kCounter, "moves", false,
                                       "winning candidates vetoed by a "
                                       "robustness guard (hysteresis, "
                                       "cooldown, damper, amortization)"};
const StatDef kAdaptRollbacks = {"adapt_rollbacks", StatKind::kCounter,
                                 "moves", false,
                                 "stage moves reverted after failing to "
                                 "improve measured cost in their watch "
                                 "window"};

const StatDef kMemberPartitions = {"member_partitions", StatKind::kCounter,
                                   "events", false,
                                   "network-partition events applied (the "
                                   "cluster split into isolated groups)"};
const StatDef kMemberHeals = {"member_heals", StatKind::kCounter, "events",
                              false,
                              "heal events applied (connectivity restored, "
                              "retransmit backlog drained)"};
const StatDef kMemberRejoins = {"member_rejoins", StatKind::kCounter,
                                "events", false,
                                "hosts re-admitted with state rebalanced "
                                "back onto them"};
const StatDef kMemberRejoinsSuppressed = {"member_rejoins_suppressed",
                                          StatKind::kCounter, "events", false,
                                          "rejoin rebalances vetoed by the "
                                          "cooldown guard (host admitted, no "
                                          "state moved)"};
const StatDef kMemberSendsRefused = {"member_sends_refused",
                                     StatKind::kCounter, "tuples", false,
                                     "cross-group sends refused at the "
                                     "sender while a partition held"};
const StatDef kMemberMovedBytes = {"member_moved_bytes", StatKind::kCounter,
                                   "bytes", false,
                                   "serialized state bytes migrated back to "
                                   "rejoining hosts"};

const StatDef kSchedThreads = {"sched_threads", StatKind::kCounter, "threads",
                               true,
                               "worker threads the parallel scheduler ran "
                               "with"};
const StatDef kSchedBarriers = {"sched_barriers", StatKind::kCounter,
                                "barriers", true,
                                "epoch barriers the driver ran (quiesce + "
                                "exact-order replay of staged sends)"};
const StatDef kSchedMorsels = {"sched_morsels", StatKind::kCounter, "morsels",
                               true,
                               "work items dispatched to host workers "
                               "(summed over hosts)"};
const StatDef kSchedWallMs = {"sched_wall_ms", StatKind::kGauge, "ms", true,
                              "wall-clock of the parallel region, Build to "
                              "pool join"};
const StatDef kWorkerMorsels = {"worker_morsels", StatKind::kCounter,
                                "morsels", true,
                                "work items processed under this host's "
                                "claim"};
const StatDef kWorkerTuples = {"worker_tuples", StatKind::kCounter, "tuples",
                               true,
                               "source tuples processed under this host's "
                               "claim"};
const StatDef kWorkerStagedMsgs = {"worker_staged_msgs", StatKind::kCounter,
                                   "messages", true,
                                   "cross-host messages this host staged "
                                   "into its SPSC rings"};
const StatDef kWorkerSteals = {"worker_steals", StatKind::kCounter, "drains",
                               true,
                               "times a non-preferred thread claimed and "
                               "drained this host's work"};

const StatDef kSketchUpdates = {"sketch_updates", StatKind::kCounter,
                                "updates", false,
                                "count-min point updates applied by the "
                                "host-side sketch operator"};
const StatDef kSketchSummaries = {"sketch_summaries", StatKind::kCounter,
                                  "summaries", false,
                                  "per-epoch sketch summaries emitted toward "
                                  "the aggregator"};
const StatDef kSketchSummaryBytes = {"sketch_summary_bytes",
                                     StatKind::kCounter, "bytes", false,
                                     "serialized bytes of all emitted sketch "
                                     "summaries"};
const StatDef kSketchEpochFlushes = {"sketch_epoch_flushes",
                                     StatKind::kCounter, "epochs", false,
                                     "sketch epochs closed (host: summary "
                                     "built; aggregator: estimates emitted)"};
const StatDef kSketchMergedSummaries = {"sketch_merged_summaries",
                                        StatKind::kCounter, "summaries",
                                        false,
                                        "host summaries folded into the "
                                        "aggregator's merged sketch"};
const StatDef kSketchMergedBytes = {"sketch_merged_bytes", StatKind::kCounter,
                                    "bytes", false,
                                    "serialized summary bytes received and "
                                    "merged at the aggregator"};
const StatDef kSketchEstimates = {"sketch_estimates", StatKind::kCounter,
                                  "estimates", false,
                                  "approximate group rows answered from the "
                                  "merged sketch"};

const std::vector<const StatDef*>& EngineStatCatalog() {
  static const std::vector<const StatDef*> kCatalog = {
      &kTuplesIn,      &kTuplesOut,    &kBytesOut,      &kGroupProbes,
      &kGroupInserts,  &kJoinProbes,   &kPredicateEvals, &kLateTuples,
      &kPortTuplesIn,  &kPortBatchesIn, &kBatchesOut,
      &kColBatchesIn,  &kColRowsIn,    &kColFallbackRows, &kWindowFlushes,
      &kGroupsFlushed, &kWindowGroups, &kGroupsPeak,    &kPaneFlushes,
      &kJoinWindows,   &kJoinWindowTuples,
      &kChanSent,      &kChanDelivered, &kChanDropped,  &kChanDupExtras,
      &kChanReordered, &kChanQueueDropped,
      &kChanRetxSent,  &kChanRetxDupDiscarded, &kChanRetxEscalated,
      &kCkptSnapshots, &kCkptOpsSerialized, &kCkptOpsSkipped, &kCkptBytes,
      &kCkptRestores,  &kCkptRestoredBytes, &kCkptReplayedTuples,
      &kShedTuples,    &kBudgetDeferrals, &kBudgetQueueDropped,
      &kBudgetOverEpochs, &kSkewMoves,
      &kAdaptDriftEvents, &kAdaptMovesTaken, &kAdaptMovesSuppressed,
      &kAdaptRollbacks,
      &kMemberPartitions, &kMemberHeals, &kMemberRejoins,
      &kMemberRejoinsSuppressed, &kMemberSendsRefused, &kMemberMovedBytes,
      &kSchedThreads,  &kSchedBarriers, &kSchedMorsels, &kSchedWallMs,
      &kWorkerMorsels, &kWorkerTuples, &kWorkerStagedMsgs, &kWorkerSteals,
      &kSketchUpdates, &kSketchSummaries, &kSketchSummaryBytes,
      &kSketchEpochFlushes, &kSketchMergedSummaries, &kSketchMergedBytes,
      &kSketchEstimates,
  };
  return kCatalog;
}

}  // namespace stats
}  // namespace streampart
