#pragma once

/// \file cpu_model.h
/// \brief Simulated-CPU cost model mapping operator work counters to cycles.
///
/// The cluster simulation executes the real operators; what it cannot do is
/// experience the real per-packet software overheads (NIC ring handling,
/// memory copies, scheduling) that dominate a production DSMS — the paper
/// opens with "even a fast 4GHz server can spend at most 26 cycles per
/// tuple". This model restores those costs: every work counter recorded by
/// the operators (tuples, group probes, predicate evaluations, remote-tuple
/// receives) is charged a calibrated cycle weight. Remote tuples carry a
/// large weight, reflecting the paper's observation that processing remote
/// tuples costs far more than local ones.
///
/// Defaults are calibrated so one simulated 3 GHz host running the §6.1
/// suspicious-flows query at ~100k packets/sec sits near the paper's 80%
/// single-host utilization.

#include <cstdint>

#include "exec/operator.h"

namespace streampart {

/// \brief Per-event cycle weights plus host capacity.
struct CpuCostParams {
  /// Packet capture + decode per locally captured source tuple.
  double cycles_per_source_tuple = 20000;
  /// Base cost of pushing one tuple through one operator.
  double cycles_per_tuple_in = 4000;
  /// Cost of materializing and emitting one output tuple.
  double cycles_per_tuple_out = 2500;
  double cycles_per_byte_out = 40;
  double cycles_per_group_probe = 2500;
  double cycles_per_group_insert = 9000;
  double cycles_per_join_probe = 4000;
  double cycles_per_predicate = 1200;
  /// Merge (stream union) operators mostly forward pointers; their per-tuple
  /// cost is far below a full operator push.
  double cycles_per_merge_tuple = 500;
  /// Receiving + deserializing one tuple from the network (paper: "the
  /// significant overhead involved in processing remote tuples" — kernel TCP
  /// stack, copies and scheduling on 2003-era hardware).
  double cycles_per_remote_tuple = 120000;
  double cycles_per_remote_byte = 100;
  /// Serializing one operator-state byte into (or out of) the checkpoint
  /// store (dist/checkpoint.h). Charged on ckpt_bytes + ckpt_restored_bytes,
  /// so checkpoint overhead shows up in the same cpu_seconds currency the
  /// figures plot.
  double cycles_per_checkpoint_byte = 50;
  /// Effective per-host cycle budget per second. The paper's servers are
  /// 3.0 GHz Xeons, but a DSMS burns most cycles in capture/stack overheads
  /// the counters above summarize coarsely; this normalized budget is
  /// calibrated so one host at ~20k pkts/s of the §6.1 workload sits near
  /// the paper's ~80% single-host utilization.
  double host_clock_hz = 8.0e8;
};

/// \brief Work and traffic ledger of one simulated host.
struct HostMetrics {
  /// Summed operator counters of every non-merge operator on this host.
  OpStats ops;
  /// Merge (union) operators, accounted at the cheaper merge rate.
  OpStats merge_ops;
  /// Source tuples captured by this host's NIC partitions.
  uint64_t source_tuples = 0;
  /// Tuples/bytes received from other hosts.
  uint64_t net_tuples_in = 0;
  uint64_t net_bytes_in = 0;
  /// Tuples/bytes sent to other hosts.
  uint64_t net_tuples_out = 0;
  uint64_t net_bytes_out = 0;
  /// Operator-state bytes this host serialized into the checkpoint store.
  uint64_t ckpt_bytes = 0;
  /// Operator-state bytes restored onto this host during migration.
  uint64_t ckpt_restored_bytes = 0;

  friend bool operator==(const HostMetrics&, const HostMetrics&) = default;
};

/// \brief Total simulated model cycles charged to a host — the budget
/// currency of the overload controller (dist/overload.h).
double HostCycles(const HostMetrics& host, const CpuCostParams& params);

/// \brief Total simulated CPU-seconds consumed on a host
/// (HostCycles / host_clock_hz).
double HostCpuSeconds(const HostMetrics& host, const CpuCostParams& params);

/// \brief Utilization percentage over a trace of \p duration_sec seconds.
/// Not clamped: values above 100 mean the host would drop tuples (the paper's
/// overloaded configurations).
double HostCpuLoadPercent(const HostMetrics& host, const CpuCostParams& params,
                          double duration_sec);

/// \brief Network tuples/sec into a host over the trace duration — the
/// quantity Figures 9/11/14 plot.
double HostNetworkTuplesPerSec(const HostMetrics& host, double duration_sec);

}  // namespace streampart
