#pragma once

/// \file report.h
/// \brief Experiment output: fixed-width tables and the structured run
/// ledger.
///
/// Every figure bench prints one SeriesTable whose rows mirror the series of
/// the corresponding paper figure (configurations × cluster sizes), so the
/// text output reads side-by-side against the paper. The RunLedger is the
/// machine-readable companion: one JSONL stream (plus a summary JSON object)
/// folding the per-host work/traffic ledgers, the CPU cost model, and every
/// per-operator telemetry scope of a run. docs/METRICS.md documents the
/// schema.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/cpu_model.h"
#include "metrics/stats.h"

namespace streampart {

/// \brief A simple column-aligned table printer.
class SeriesTable {
 public:
  /// \param title printed above the table.
  /// \param columns header labels; first column is the row label.
  SeriesTable(std::string title, std::vector<std::string> columns);

  /// \brief Adds a data row: label plus one value per remaining column.
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// \brief Adds a preformatted row.
  void AddTextRow(const std::string& label,
                  const std::vector<std::string>& cells);

  /// \brief Renders the table.
  std::string ToString() const;

  /// \brief Prints to stdout.
  void Print() const;

  /// \brief Number formatting for values (default "%.1f").
  void SetValueFormat(std::string printf_format);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::string format_ = "%.1f";
};

/// \brief Ledger construction switches.
struct RunLedgerOptions {
  /// Include instruments marked advisory (batch-granularity dependent).
  /// Default off so the ledger is bit-identical between the per-tuple and
  /// batched execution paths.
  bool include_advisory = false;
  /// Include structured trace events (registry event logs). Events are
  /// deterministic but verbose; --trace-events turns them on.
  bool include_events = false;
};

/// \brief One host's row of the ledger: the raw work/traffic ledger plus the
/// derived cost-model quantities the paper's figures plot.
struct LedgerHostRow {
  int host = 0;
  HostMetrics metrics;
  double cpu_seconds = 0;
  double cpu_load_pct = 0;
  double net_tuples_in_per_sec = 0;
};

/// \brief Epoch-timestamped structured record of one experiment run.
///
/// Deterministic by construction: meta keys, output streams, telemetry
/// scopes and instruments serialize in name order, hosts in id order, and
/// doubles render with "%.10g". Two runs with identical accounted work
/// produce byte-identical ledgers (micro_engine asserts this across the
/// per-tuple and batched execution paths).
class RunLedger {
 public:
  explicit RunLedger(RunLedgerOptions options = {});

  /// \brief Run-level metadata ("workload", "hosts", "epoch_unix", ...).
  /// Pass epoch_unix = 0 when ledgers must compare byte-identical.
  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, uint64_t value);
  void SetMeta(const std::string& key, double value);

  /// \brief Adds host \p host with derived quantities computed from the
  /// canonical cost-model functions (HostCpuSeconds etc.), so ledger numbers
  /// match the figure benches bit for bit.
  void AddHost(int host, const HostMetrics& metrics,
               const CpuCostParams& params, double duration_sec);

  /// \brief Snapshots every telemetry scope of \p registry under \p host.
  /// Advisory instruments and trace events follow the ledger options.
  void AddRegistry(int host, const StatsRegistry& registry);

  /// \brief Records the output cardinality of one sink stream.
  void AddOutput(const std::string& stream, uint64_t tuples);

  const std::vector<LedgerHostRow>& hosts() const { return hosts_; }

  /// \brief Full ledger: one JSON object per line, in record order
  /// run, host*, operator*, event*, output* (docs/METRICS.md schema).
  std::string ToJsonl() const;

  /// \brief Single JSON object: meta + per-host derived quantities +
  /// cluster totals. The "at a glance" companion of the JSONL stream.
  std::string ToSummaryJson() const;

 private:
  struct InstrumentRow {
    std::string name;  // instance name (catalog name, or name.<port>)
    std::string json;  // rendered value ("12", or a histogram object)
  };
  struct OperatorRow {
    int host;
    std::string scope;
    std::vector<InstrumentRow> instruments;  // name order
  };
  struct EventRow {
    int host;
    TraceEvent event;
  };

  RunLedgerOptions options_;
  std::map<std::string, std::string> meta_;  // key -> rendered JSON value
  std::vector<LedgerHostRow> hosts_;
  std::vector<OperatorRow> operators_;
  std::vector<EventRow> events_;
  std::map<std::string, uint64_t> outputs_;
};

}  // namespace streampart
