#pragma once

/// \file report.h
/// \brief Experiment output: fixed-width tables and the structured run
/// ledger.
///
/// Every figure bench prints one SeriesTable whose rows mirror the series of
/// the corresponding paper figure (configurations × cluster sizes), so the
/// text output reads side-by-side against the paper. The RunLedger is the
/// machine-readable companion: one JSONL stream (plus a summary JSON object)
/// folding the per-host work/traffic ledgers, the CPU cost model, and every
/// per-operator telemetry scope of a run. docs/METRICS.md documents the
/// schema.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/cpu_model.h"
#include "metrics/stats.h"

namespace streampart {

/// \brief A simple column-aligned table printer.
class SeriesTable {
 public:
  /// \param title printed above the table.
  /// \param columns header labels; first column is the row label.
  SeriesTable(std::string title, std::vector<std::string> columns);

  /// \brief Adds a data row: label plus one value per remaining column.
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// \brief Adds a preformatted row.
  void AddTextRow(const std::string& label,
                  const std::vector<std::string>& cells);

  /// \brief Renders the table.
  std::string ToString() const;

  /// \brief Prints to stdout.
  void Print() const;

  /// \brief Number formatting for values (default "%.1f").
  void SetValueFormat(std::string printf_format);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::string format_ = "%.1f";
};

/// \brief Ledger construction switches.
struct RunLedgerOptions {
  /// Include instruments marked advisory (batch-granularity dependent).
  /// Default off so the ledger is bit-identical between the per-tuple and
  /// batched execution paths.
  bool include_advisory = false;
  /// Include structured trace events (registry event logs). Events are
  /// deterministic but verbose; --trace-events turns them on.
  bool include_events = false;
};

/// \brief One host's row of the ledger: the raw work/traffic ledger plus the
/// derived cost-model quantities the paper's figures plot.
struct LedgerHostRow {
  int host = 0;
  HostMetrics metrics;
  double cpu_seconds = 0;
  double cpu_load_pct = 0;
  double net_tuples_in_per_sec = 0;
};

/// \brief Accounting of one degraded cross-host channel (dist/fault.h).
/// Conservation invariant while every host is alive:
/// delivered + dropped + queue_dropped == sent + dup_extras.
struct FaultChannelRow {
  int from_host = 0;
  int to_host = 0;
  uint64_t sent = 0;           ///< tuples entering the channel
  uint64_t delivered = 0;      ///< tuples handed to a live receiver
  uint64_t dropped = 0;        ///< lost to the per-tuple drop probability
  uint64_t dup_extras = 0;     ///< extra copies created by duplication
  uint64_t reordered = 0;      ///< tuples held back by the reorder stage
  uint64_t queue_dropped = 0;  ///< drop-oldest evictions of the bounded queue
  /// Sends that were retransmissions of an unacked tuple (lossless-recovery
  /// runs only). Each retransmission is a fresh Send, so the conservation
  /// invariant above is unchanged.
  uint64_t retransmitted = 0;
};

/// \brief One "window invalidation" marker: open state a dead host held at
/// the moment it was killed (panes that can never be emitted).
struct FaultInvalidationRow {
  int host = 0;
  std::string scope;    ///< operator scope name (label#plan-op-id)
  uint64_t panes = 0;   ///< open windows/panes lost
  uint64_t tuples = 0;  ///< buffered tuples / group states backing them
};

/// \brief The `faults` section of a run ledger: everything fault injection
/// (dist/fault.h) lost, suppressed, or paid for, so degradation is
/// measurable rather than silent. Serialized only when a non-empty
/// FaultPlan was attached — a fault-free run's ledger is byte-identical
/// with and without the fault machinery.
struct FaultSection {
  bool active = false;
  std::vector<int> hosts_killed;  ///< kill order
  /// Source tuples routed to a dead host's partitions (repartition off).
  uint64_t source_tuples_lost = 0;
  /// Cross-host deliveries whose destination host was dead.
  uint64_t net_tuples_lost = 0;
  /// Emissions of dead-host operators suppressed at host boundaries.
  uint64_t flush_tuples_suppressed = 0;
  /// Open windows/panes invalidated across all kills.
  uint64_t panes_invalidated = 0;
  /// Buffered tuples/groups lost inside invalidated panes.
  uint64_t inflight_tuples_lost = 0;
  /// Partitioner rebuilds over surviving hosts.
  uint64_t repartitions = 0;
  /// Survivor-side open state realigned by repartitions (tuples/groups).
  uint64_t repartition_state_tuples = 0;
  /// repartition_state_tuples charged at the remote-tuple cycle weight.
  double repartition_cost_cycles = 0;
  std::vector<FaultInvalidationRow> invalidations;
  std::vector<FaultChannelRow> channels;  ///< configured channels, creation order
};

/// \brief The `recovery` section of a run ledger: everything the lossless
/// recovery machinery (dist/checkpoint.h) snapshotted, retransmitted,
/// migrated and replayed, plus its model-cycle price. Serialized only when a
/// checkpoint interval was configured — lossy and fault-free runs stay
/// byte-identical to runs without the recovery machinery.
///
/// Zero-unrecovered-loss identity (asserted by the recovery battery): after
/// a completed run, reliable_sent == reliable_applied — every tuple entrusted
/// to an acked edge was applied at its consumer exactly once.
struct RecoverySection {
  bool active = false;
  uint64_t checkpoint_interval = 0;  ///< epochs between snapshots
  uint64_t epoch_width = 1;          ///< timestamp stride per epoch
  uint64_t checkpoints = 0;          ///< checkpoint rounds taken
  uint64_t ops_serialized = 0;       ///< operator states serialized
  uint64_t ops_skipped = 0;          ///< unchanged states skipped (incremental)
  uint64_t checkpoint_bytes = 0;     ///< serialized state bytes stored
  uint64_t restores = 0;             ///< operator states restored at migration
  uint64_t restored_bytes = 0;       ///< state bytes read back at migration
  uint64_t replayed_tuples = 0;      ///< post-checkpoint tuples replayed
  uint64_t replay_suppressed = 0;    ///< replay re-emissions suppressed at sinks
  uint64_t ops_migrated = 0;         ///< operators moved off dead hosts
  uint64_t retx_sent = 0;            ///< retransmissions routed via channels
  uint64_t retx_dup_discarded = 0;   ///< duplicate arrivals discarded by seq
  uint64_t retx_escalated = 0;       ///< direct deliveries after attempt cap
  uint64_t reliable_sent = 0;        ///< tuples entering acked edges
  uint64_t reliable_applied = 0;     ///< tuples applied at consumers
  /// (checkpoint_bytes + restored_bytes) priced at the checkpoint-byte
  /// cycle weight (CpuCostParams::cycles_per_checkpoint_byte).
  double checkpoint_cost_cycles = 0;
};

/// \brief One budgeted host's row of the overload section.
struct OverloadHostRow {
  int host = 0;
  double budget_cycles = 0;  ///< per-epoch cycle budget from the plan
  double reserve = 0;        ///< guard headroom fraction
  uint64_t guard_deferrals = 0;   ///< tuples deferred by the budget guard
  uint64_t queue_dropped = 0;     ///< drop-oldest evictions of the defer queue
  uint64_t over_budget_epochs = 0;  ///< epochs whose charge exceeded budget
  double max_epoch_cycles = 0;    ///< largest cycles charged in any epoch
};

/// \brief The `overload` section of a run ledger: what the overload
/// controller (dist/overload.h) deferred, dropped, or shed, and the
/// Horvitz–Thompson error bound shed answers carry. `active` means the
/// controller was armed (budget/shed directives present); `engaged` means it
/// actually intervened. Serialized only when engaged, so a run whose budget
/// always covered the load stays byte-identical to a run without budgets —
/// the differential battery's leg-1 gate.
///
/// Intake conservation identity (asserted by the fault battery): after a
/// completed run, intake_processed + shed_tuples + bp_queue_dropped ==
/// intake_offered. Shedding happens at the tap, before channels, so the
/// channel-level identity delivered + dropped + queue_dropped ==
/// sent + dup_extras is untouched.
struct OverloadSection {
  bool active = false;
  bool engaged = false;
  uint64_t intake_offered = 0;    ///< source tuples presented at the tap
  uint64_t intake_processed = 0;  ///< tuples admitted (now or after deferral)
  uint64_t intake_deferred = 0;   ///< guard deferrals (tuple may process later)
  uint64_t shed_tuples = 0;       ///< tuples shed at the tap
  uint64_t bp_queue_dropped = 0;  ///< defer-queue drop-oldest evictions
  uint64_t shed_epochs = 0;       ///< epochs that ran with shed rate m > 1
  uint64_t max_shed_m = 0;        ///< largest keep-1-in-m used
  /// Horvitz–Thompson estimate of the true (unshed) tuple count feeding the
  /// bound below: sum over epochs of kept*m plus unshed intake.
  double estimated_source_tuples = 0;
  /// 3-sigma relative error bound on COUNT-style answers:
  /// 3*sqrt(sum_i k_i*m_i*(m_i-1)) / estimated_source_tuples (docs/FAULTS.md
  /// derives it; SUM bounds scale by the summed attribute's dispersion).
  double shed_rel_error_bound = 0;
  /// False when shed tuples crossed a non-sampleable operator (MIN/MAX,
  /// joins, or an unbindable first stateful op) — the answers are then
  /// degraded without a computed bound.
  bool exact = true;
  std::vector<std::string> inexact_reasons;  ///< why exact is false
  uint64_t skew_repartitions = 0;  ///< hot-partition moves executed
  std::vector<int> skew_moved_partitions;  ///< partitions moved, in order
  double skew_move_cost_bytes = 0;  ///< advisor-priced state-move bytes
  /// Sustained hotspots detected but not movable (no recovery machinery or
  /// no underloaded target); advice recorded instead of executed.
  uint64_t skew_advice_only = 0;
  std::vector<OverloadHostRow> hosts;  ///< budgeted hosts, id order
};

/// \brief One decision of the adaptive placement controller
/// (dist/adaptive.h): something it took, rolled back, suppressed, or could
/// only advise — with the projection that justified it.
struct AdaptiveDecisionRow {
  uint64_t epoch = 0;
  /// "move" (stage migrated), "probe" (forced worst-candidate move),
  /// "rollback" (move reverted after failing its watch window), "commit"
  /// (move survived its watch window), "suppressed" (candidate beat the
  /// status quo but a robustness guard vetoed it), or "advice" (winning move
  /// not executable — no recovery machinery to migrate state through).
  std::string action;
  int stage = -1;      ///< stage id (component index, Build order)
  int from_host = -1;
  int to_host = -1;
  /// Projected relative bottleneck improvement of the candidate (percent;
  /// measured improvement for "commit", 0 when not applicable).
  double gain_pct = 0;
  /// Migration price: 2 * stage state bytes * cycles_per_checkpoint_byte
  /// (serialize + restore), 0 for rows that moved nothing.
  double move_cycles = 0;
  /// Why ("hysteresis", "cooldown", "damper", "amortization", "watch-fail",
  /// ...); empty for plain moves.
  std::string reason;
};

/// \brief The `adaptive` section of a run ledger: every decision the
/// feedback re-planner (dist/adaptive.h) made, plus the drift/stability
/// counters around them. `active` means the controller was armed (`adapt`
/// directive); `engaged` means it recorded at least one drift event or
/// decision. Serialized only when engaged, so a run whose plan never needed
/// adapting stays byte-identical to a run without the controller.
struct AdaptiveSection {
  bool active = false;
  bool engaged = false;
  uint64_t epochs = 0;        ///< epochs the controller observed
  uint64_t drift_events = 0;  ///< epochs whose EWMAs diverged past threshold
  uint64_t candidates_considered = 0;  ///< (stage, host) projections costed
  uint64_t moves_taken = 0;   ///< stage migrations executed (probes included)
  uint64_t moves_suppressed = 0;  ///< candidates vetoed by a guard
  uint64_t rollbacks = 0;     ///< moves reverted by the watch window
  uint64_t probes = 0;        ///< forced worst-candidate moves (probe_epoch)
  uint64_t moved_state_bytes = 0;  ///< state bytes migrated across all moves
  std::vector<AdaptiveDecisionRow> decisions;  ///< chronological
};

/// \brief One membership lifecycle event in a run ledger, chronological.
struct MembershipEventRow {
  uint64_t epoch = 0;
  /// "partition" (cluster split into groups), "heal" (connectivity
  /// restored, retransmit backlog drained), "rejoin" (host re-admitted,
  /// state migrated back), or "rejoin_suppressed" (cooldown guard vetoed
  /// the rejoin's rebalance; the host is admitted but no state moves).
  std::string kind;
  /// Hosts the event names: partition rows list every grouped host in
  /// directive order, rejoin rows the single rejoining host, heal rows none.
  std::vector<int> hosts;
  /// State bytes migrated back by a rejoin (serialize side; restore doubles
  /// it in the cycle price). 0 for other kinds.
  uint64_t moved_bytes = 0;
  /// Cross-group sends refused while this partition row was in force.
  /// 0 for non-partition kinds.
  uint64_t refused = 0;
};

/// \brief The `membership` section of a run ledger: the cluster-membership
/// lifecycle (dist/fault.h partition/heal/rejoin directives) — what was
/// severed, refused, healed, re-admitted and moved back. `active` means the
/// plan scheduled membership events; `engaged` means at least one actually
/// applied. Serialized only when engaged, so plans whose events never fire
/// stay byte-identical to membership-free runs.
///
/// Refusal identity (asserted by the membership battery): a refused send
/// never reaches a channel, so attempted = channel-level sent + sends_refused
/// and the channel conservation invariant is untouched.
struct MembershipSection {
  bool active = false;
  bool engaged = false;
  uint64_t partitions = 0;      ///< partition events applied
  uint64_t heals = 0;           ///< heal events applied
  uint64_t rejoins = 0;         ///< rejoins executed (state rebalanced)
  uint64_t rejoins_suppressed = 0;  ///< rejoins vetoed by the cooldown guard
  uint64_t sends_refused = 0;   ///< cross-group sends refused at the sender
  uint64_t moved_bytes = 0;     ///< state bytes migrated back by rejoins
  /// 2 * moved_bytes * cycles_per_checkpoint_byte (serialize + restore).
  double rejoin_cost_cycles = 0;
  std::vector<MembershipEventRow> events;  ///< chronological
};

/// \brief One host's sketch-leg row: what its SketchOp folded and shipped.
struct SketchHostRow {
  int host = 0;
  uint64_t updates = 0;        ///< count-min point updates applied
  uint64_t summaries = 0;      ///< summary tuples emitted
  uint64_t summary_bytes = 0;  ///< serialized bytes of those summaries
  uint64_t epochs = 0;         ///< epochs closed on this host
};

/// \brief The `sketch` section of a run ledger: the error budget and
/// accounting of the sketch execution leg (exec/sketch_op.h,
/// docs/SKETCHES.md). Serialized only when the optimizer actually chose the
/// sketch outcome, so exact-plan ledgers are byte-identical to runs built
/// without the sketch machinery. Answers produced through this leg are
/// always approximate: `exact` is false and every COUNT/SUM estimate
/// over-counts its true value by at most eps * N_epoch with probability >=
/// confidence (and never under-counts); abs_error_bound = eps *
/// max_epoch_mass is the widest absolute band any emitted estimate carries.
struct SketchSection {
  bool active = false;  ///< a sketch leg exists in the executed plan
  double eps = 0;
  double confidence = 0;
  uint64_t width = 0;  ///< count-min grid columns (ceil(e/eps))
  uint64_t depth = 0;  ///< count-min grid rows (ceil(ln(1/(1-confidence))))
  uint64_t merged_summaries = 0;  ///< host summaries folded at the aggregator
  uint64_t merged_bytes = 0;      ///< serialized summary bytes received
  uint64_t epochs = 0;            ///< epochs answered
  uint64_t estimates = 0;         ///< approximate group rows computed
  uint64_t max_epoch_mass = 0;    ///< largest per-epoch sketch mass
  double abs_error_bound = 0;     ///< eps * max_epoch_mass
  bool exact = false;             ///< always false while active
  std::vector<std::string> inexact_reasons;
  std::vector<SketchHostRow> hosts;  ///< sketching hosts, id order
};

/// \brief Epoch-timestamped structured record of one experiment run.
///
/// Deterministic by construction: meta keys, output streams, telemetry
/// scopes and instruments serialize in name order, hosts in id order, and
/// doubles render with "%.10g". Two runs with identical accounted work
/// produce byte-identical ledgers (micro_engine asserts this across the
/// per-tuple and batched execution paths).
class RunLedger {
 public:
  explicit RunLedger(RunLedgerOptions options = {});

  /// \brief Run-level metadata ("workload", "hosts", "epoch_unix", ...).
  /// Pass epoch_unix = 0 when ledgers must compare byte-identical.
  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, uint64_t value);
  void SetMeta(const std::string& key, double value);

  /// \brief Adds host \p host with derived quantities computed from the
  /// canonical cost-model functions (HostCpuSeconds etc.), so ledger numbers
  /// match the figure benches bit for bit.
  void AddHost(int host, const HostMetrics& metrics,
               const CpuCostParams& params, double duration_sec);

  /// \brief Snapshots every telemetry scope of \p registry under \p host.
  /// Advisory instruments and trace events follow the ledger options.
  void AddRegistry(int host, const StatsRegistry& registry);

  /// \brief Records the output cardinality of one sink stream.
  void AddOutput(const std::string& stream, uint64_t tuples);

  /// \brief Attaches the fault-injection accounting. A section with
  /// `active == false` is ignored entirely, keeping fault-free ledgers
  /// byte-identical to runs without the fault machinery.
  void SetFaults(FaultSection faults);

  /// \brief Attaches the lossless-recovery accounting. Like SetFaults, a
  /// section with `active == false` is ignored entirely.
  void SetRecovery(RecoverySection recovery);

  /// \brief Attaches the overload-control accounting. A section that never
  /// engaged (no shed/defer/drop/skew event) is ignored entirely, keeping
  /// covered-budget runs byte-identical to budget-free runs.
  void SetOverload(OverloadSection overload);

  /// \brief Attaches the adaptive-placement accounting. A section that
  /// never engaged (no drift event, no decision) is ignored entirely,
  /// keeping drift-free adaptive runs byte-identical to static runs.
  void SetAdaptive(AdaptiveSection adaptive);

  /// \brief Attaches the membership-lifecycle accounting. A section that
  /// never engaged (no event applied) is ignored entirely, keeping plans
  /// whose membership events never fire byte-identical to membership-free
  /// runs.
  void SetMembership(MembershipSection membership);

  /// \brief Attaches the sketch-leg accounting. A section with
  /// `active == false` is ignored entirely, keeping exact-plan ledgers
  /// byte-identical to runs without the sketch machinery.
  void SetSketch(SketchSection sketch);

  const std::vector<LedgerHostRow>& hosts() const { return hosts_; }
  const FaultSection& faults() const { return faults_; }
  const RecoverySection& recovery() const { return recovery_; }
  const OverloadSection& overload() const { return overload_; }
  const AdaptiveSection& adaptive() const { return adaptive_; }
  const MembershipSection& membership() const { return membership_; }
  const SketchSection& sketch() const { return sketch_; }

  /// \brief Full ledger: one JSON object per line, in record order
  /// run, host*, operator*, event*, faults?, recovery?, overload?,
  /// adaptive?, membership?, sketch?, output* (docs/METRICS.md schema).
  std::string ToJsonl() const;

  /// \brief Single JSON object: meta + per-host derived quantities +
  /// cluster totals. The "at a glance" companion of the JSONL stream.
  std::string ToSummaryJson() const;

 private:
  struct InstrumentRow {
    std::string name;  // instance name (catalog name, or name.<port>)
    std::string json;  // rendered value ("12", or a histogram object)
  };
  struct OperatorRow {
    int host;
    std::string scope;
    std::vector<InstrumentRow> instruments;  // name order
  };
  struct EventRow {
    int host;
    TraceEvent event;
  };

  RunLedgerOptions options_;
  std::map<std::string, std::string> meta_;  // key -> rendered JSON value
  std::vector<LedgerHostRow> hosts_;
  std::vector<OperatorRow> operators_;
  std::vector<EventRow> events_;
  std::map<std::string, uint64_t> outputs_;
  FaultSection faults_;        // serialized only when faults_.active
  RecoverySection recovery_;   // serialized only when recovery_.active
  OverloadSection overload_;   // serialized only when overload_.engaged
  AdaptiveSection adaptive_;   // serialized only when adaptive_.engaged
  MembershipSection membership_;  // serialized only when membership_.engaged
  SketchSection sketch_;       // serialized only when sketch_.active
};

}  // namespace streampart
