#pragma once

/// \file report.h
/// \brief Fixed-width table formatting for experiment output.
///
/// Every figure bench prints one SeriesTable whose rows mirror the series of
/// the corresponding paper figure (configurations × cluster sizes), so
/// bench_output.txt reads side-by-side against the paper.

#include <string>
#include <vector>

namespace streampart {

/// \brief A simple column-aligned table printer.
class SeriesTable {
 public:
  /// \param title printed above the table.
  /// \param columns header labels; first column is the row label.
  SeriesTable(std::string title, std::vector<std::string> columns);

  /// \brief Adds a data row: label plus one value per remaining column.
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// \brief Adds a preformatted row.
  void AddTextRow(const std::string& label,
                  const std::vector<std::string>& cells);

  /// \brief Renders the table.
  std::string ToString() const;

  /// \brief Prints to stdout.
  void Print() const;

  /// \brief Number formatting for values (default "%.1f").
  void SetValueFormat(std::string printf_format);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::string format_ = "%.1f";
};

}  // namespace streampart
