#include "metrics/cpu_model.h"

namespace streampart {

double HostCycles(const HostMetrics& host, const CpuCostParams& params) {
  double cycles = 0;
  cycles += params.cycles_per_source_tuple *
            static_cast<double>(host.source_tuples);
  cycles += params.cycles_per_tuple_in * static_cast<double>(host.ops.tuples_in);
  cycles +=
      params.cycles_per_tuple_out * static_cast<double>(host.ops.tuples_out);
  cycles += params.cycles_per_byte_out * static_cast<double>(host.ops.bytes_out);
  cycles += params.cycles_per_group_probe *
            static_cast<double>(host.ops.group_probes);
  cycles += params.cycles_per_group_insert *
            static_cast<double>(host.ops.group_inserts);
  cycles +=
      params.cycles_per_join_probe * static_cast<double>(host.ops.join_probes);
  cycles += params.cycles_per_predicate *
            static_cast<double>(host.ops.predicate_evals);
  cycles += params.cycles_per_merge_tuple *
            static_cast<double>(host.merge_ops.tuples_in);
  cycles += params.cycles_per_remote_tuple *
            static_cast<double>(host.net_tuples_in);
  cycles +=
      params.cycles_per_remote_byte * static_cast<double>(host.net_bytes_in);
  cycles += params.cycles_per_checkpoint_byte *
            static_cast<double>(host.ckpt_bytes + host.ckpt_restored_bytes);
  return cycles;
}

double HostCpuSeconds(const HostMetrics& host, const CpuCostParams& params) {
  return HostCycles(host, params) / params.host_clock_hz;
}

double HostCpuLoadPercent(const HostMetrics& host, const CpuCostParams& params,
                          double duration_sec) {
  if (duration_sec <= 0) return 0;
  return 100.0 * HostCpuSeconds(host, params) / duration_sec;
}

double HostNetworkTuplesPerSec(const HostMetrics& host, double duration_sec) {
  if (duration_sec <= 0) return 0;
  return static_cast<double>(host.net_tuples_in) / duration_sec;
}

}  // namespace streampart
