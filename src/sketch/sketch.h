#pragma once

/// \file sketch.h
/// \brief Mergeable bounded-error stream summaries (the third partitioning
/// outcome's data structures).
///
/// When the §5 optimizer can neither find a compatible partition set nor
/// afford raw-tuple shipping, it degrades the query to a *sketch leg*: every
/// host folds its local share of the stream into a small summary, ships the
/// summary instead of tuples, and the aggregator merges the summaries into a
/// bounded-error answer (docs/SKETCHES.md). This library holds the summaries
/// themselves, engine-independent: keys are raw bytes, timestamps are plain
/// integers, and nothing here knows about tuples or plans.
///
/// Layers, bottom up:
///
///  * CmSketch — count-min sketch (Cormode–Muthukrishnan). Point estimates
///    over-count by at most eps * total with probability >= 1 - delta, where
///    eps = e / width and delta = exp(-depth). Merging is cell-wise addition:
///    exact, commutative and associative.
///  * EhCell — exponential histogram (Datar et al.) for sliding-window
///    counts: EstimateSince(t) carries relative error <= 1 / (k - 1) against
///    the true count of items with timestamp >= t. Merging concatenates the
///    canonical bucket lists and recompresses deterministically.
///  * EcmSketch — the ECM composition (Papapetrou et al.): a count-min grid
///    whose cells are exponential histograms, giving per-key sliding-window
///    estimates with both error sources combined.
///  * HeavyHitterSketch — CmSketch plus a bounded candidate-key set; reports
///    every key whose estimated frequency clears a phi threshold.
///  * QuantileSketch — dyadic decomposition over a power-of-two value
///    universe with one CmSketch per level; answers rank and quantile
///    queries with error eps * total over log2(universe) levels.
///
/// All hashing is seeded and deterministic (common/hash.h Mix64 family): two
/// sketches built with the same parameters on different hosts are mergeable,
/// and serialization round-trips byte-identically — the property the
/// distributed runtime's checkpoint and ledger determinism contracts rely
/// on.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace streampart {
namespace sketch {

// ---------------------------------------------------------------------------
// Little-endian fixed-width encoding helpers (shared by every sketch's
// serialized form; byte-order independent).
// ---------------------------------------------------------------------------

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutBytes(std::string* out, std::string_view bytes);
Status GetU32(std::string_view data, size_t* offset, uint32_t* v);
Status GetU64(std::string_view data, size_t* offset, uint64_t* v);
Status GetBytes(std::string_view data, size_t* offset, std::string* out);

// ---------------------------------------------------------------------------
// Count-min sketch
// ---------------------------------------------------------------------------

/// \brief Dimensions and hash seed of a count-min grid. Two sketches are
/// mergeable iff their params compare equal.
struct CmParams {
  uint32_t width = 0;
  uint32_t depth = 0;
  uint64_t seed = 0;

  /// \brief Smallest grid guaranteeing over-count <= eps * total with
  /// probability >= 1 - delta: width = ceil(e / eps), depth = ceil(ln(1/delta)).
  static CmParams FromErrorBound(double eps, double delta, uint64_t seed);

  /// \brief The eps this grid guarantees (e / width); 0 when unsized.
  double eps() const;
  /// \brief The failure probability this grid guarantees (exp(-depth)).
  double delta() const;

  friend bool operator==(const CmParams&, const CmParams&) = default;
};

/// \brief Count-min sketch over 64-bit key hashes.
///
/// Estimates never under-count; the over-count is bounded by eps() * total()
/// with probability >= 1 - delta(). Merge is cell-wise addition, so merged
/// estimates carry the bound against the merged total.
class CmSketch {
 public:
  CmSketch() = default;
  explicit CmSketch(CmParams params);

  void Update(uint64_t key_hash, uint64_t delta);
  /// \brief Conservative update (Estan–Varghese): raises each row cell only
  /// to Estimate() + delta instead of adding delta everywhere. Estimates
  /// still never under-count — per row, cell >= the key's true mass is an
  /// invariant Update and UpdateConservative both maintain — and cells are
  /// pointwise <= the linear update's, so the eps/delta bound only tightens.
  /// Cell-wise-addition Merge remains sound across conservatively-updated
  /// sketches. The tradeoff: cell values become order-dependent, so only the
  /// linear Update keeps serialize-level merge associativity.
  void UpdateConservative(uint64_t key_hash, uint64_t delta);
  uint64_t Estimate(uint64_t key_hash) const;

  /// \brief Total mass folded in (sum of all Update deltas).
  uint64_t total() const { return total_; }
  const CmParams& params() const { return params_; }

  /// \brief Cell-wise addition; fails unless params match.
  Status Merge(const CmSketch& other);

  void Serialize(std::string* out) const;
  static Result<CmSketch> Deserialize(std::string_view data, size_t* offset);
  /// \brief Exact byte size Serialize() appends.
  size_t SerializedSize() const;

  friend bool operator==(const CmSketch&, const CmSketch&) = default;

 private:
  size_t Cell(uint32_t row, uint64_t key_hash) const;

  CmParams params_;
  std::vector<uint64_t> cells_;
  uint64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// Exponential histogram
// ---------------------------------------------------------------------------

/// \brief Exponential histogram over timestamped unit counts.
///
/// Keeps at most \p k buckets per power-of-two size class; when a class
/// overflows, its two oldest buckets merge (canonical compression, applied
/// identically after Add and Merge, so the structure is a deterministic
/// function of the multiset of inserted (timestamp, count) pairs — which
/// makes Merge commutative). EstimateSince() answers "how many items carry
/// timestamp >= t" with relative error <= 1 / (k - 1); total() is exact.
class EhCell {
 public:
  EhCell() = default;
  explicit EhCell(uint32_t k);

  /// \brief Smallest per-class capacity guaranteeing relative error <= eps.
  static uint32_t CapacityForError(double eps);

  /// \brief Folds \p count items at time \p ts. Timestamps may arrive in any
  /// order (merged summaries interleave hosts).
  void Add(uint64_t ts, uint64_t count = 1);

  uint64_t total() const { return total_; }
  uint32_t k() const { return k_; }
  size_t num_buckets() const { return buckets_.size(); }

  /// \brief Estimated count of items with timestamp >= \p since_ts.
  uint64_t EstimateSince(uint64_t since_ts) const;

  /// \brief Concatenates bucket lists and recompresses canonically; requires
  /// equal k (checked by the callers that own parameterized grids).
  void Merge(const EhCell& other);

  void Serialize(std::string* out) const;
  static Result<EhCell> Deserialize(std::string_view data, size_t* offset);

  friend bool operator==(const EhCell&, const EhCell&) = default;

 private:
  struct Bucket {
    uint64_t ts = 0;    ///< newest item timestamp in the bucket
    uint64_t size = 0;  ///< items folded into the bucket
    friend bool operator==(const Bucket&, const Bucket&) = default;
  };

  void Compress();

  uint32_t k_ = 0;
  std::vector<Bucket> buckets_;  ///< oldest first, canonical order
  uint64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// ECM sketch: count-min of exponential histograms
// ---------------------------------------------------------------------------

/// \brief Parameters of an ECM sketch: the count-min grid plus the per-cell
/// exponential-histogram capacity.
struct EcmParams {
  CmParams cm;
  uint32_t eh_k = 0;

  /// \brief Grid for over-count eps_cm/delta plus window error eps_window.
  static EcmParams FromErrorBound(double eps_cm, double delta,
                                  double eps_window, uint64_t seed);

  friend bool operator==(const EcmParams&, const EcmParams&) = default;
};

/// \brief Sliding-window count-min: each grid cell is an exponential
/// histogram, so per-key estimates are available for any suffix window.
/// The combined guarantee stacks both error sources: the count-min
/// over-count (<= eps_cm * window total, probability 1 - delta) and the
/// per-cell window approximation (relative 1 / (eh_k - 1)).
class EcmSketch {
 public:
  EcmSketch() = default;
  explicit EcmSketch(EcmParams params);

  void Update(uint64_t key_hash, uint64_t ts, uint64_t count = 1);

  /// \brief Estimated occurrences of \p key_hash with timestamp >= since_ts.
  uint64_t EstimateSince(uint64_t key_hash, uint64_t since_ts) const;
  /// \brief Estimated stream mass with timestamp >= since_ts (for bounds).
  uint64_t TotalSince(uint64_t since_ts) const;

  uint64_t total() const { return total_; }
  const EcmParams& params() const { return params_; }

  Status Merge(const EcmSketch& other);

  void Serialize(std::string* out) const;
  static Result<EcmSketch> Deserialize(std::string_view data, size_t* offset);

  friend bool operator==(const EcmSketch&, const EcmSketch&) = default;

 private:
  size_t Cell(uint32_t row, uint64_t key_hash) const;

  EcmParams params_;
  std::vector<EhCell> cells_;
  EhCell stream_;  ///< whole-stream histogram backing TotalSince
  uint64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// Heavy hitters
// ---------------------------------------------------------------------------

/// \brief Count-min sketch plus a bounded candidate-key set.
///
/// Every updated key joins the candidate set (evicting the smallest-estimate
/// candidate once \p max_candidates is exceeded), so with enough room every
/// true heavy hitter is reportable. HeavyHitters(phi) returns the candidates
/// whose estimate clears phi * total(), largest first — over-counting means
/// false positives are possible within the eps band but false negatives are
/// not (for keys still in the candidate set).
class HeavyHitterSketch {
 public:
  HeavyHitterSketch() = default;
  HeavyHitterSketch(CmParams params, size_t max_candidates);

  void Update(std::string_view key, uint64_t delta = 1);

  struct Hitter {
    std::string key;
    uint64_t estimate = 0;
    friend bool operator==(const Hitter&, const Hitter&) = default;
  };
  /// \brief Candidates with estimate >= phi * total(), sorted by estimate
  /// descending then key ascending (deterministic).
  std::vector<Hitter> HeavyHitters(double phi) const;

  uint64_t total() const { return cm_.total(); }
  const CmSketch& cm() const { return cm_; }
  size_t num_candidates() const { return candidates_.size(); }

  /// \brief Merges grids and unions candidate sets (then re-prunes).
  Status Merge(const HeavyHitterSketch& other);

  void Serialize(std::string* out) const;
  static Result<HeavyHitterSketch> Deserialize(std::string_view data,
                                               size_t* offset);

  friend bool operator==(const HeavyHitterSketch&,
                         const HeavyHitterSketch&) = default;

 private:
  void Prune();

  CmSketch cm_;
  uint64_t max_candidates_ = 0;
  /// Candidate keys; estimates are recomputed from cm_ on demand, the map
  /// only pins which keys are reportable.
  std::map<std::string, bool> candidates_;
};

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

/// \brief Dyadic count-min quantile sketch over [0, 2^log_universe).
///
/// One CmSketch per dyadic level; ranks decompose into at most
/// log_universe node lookups, so rank estimates carry additive error
/// log_universe * eps_level * total with high probability. Quantile(phi)
/// descends the implicit dyadic tree greedily.
class QuantileSketch {
 public:
  QuantileSketch() = default;
  QuantileSketch(CmParams per_level, uint32_t log_universe);

  /// \brief Grid sized so the *total* rank error is <= eps * total().
  static QuantileSketch FromErrorBound(double eps, double delta,
                                       uint32_t log_universe, uint64_t seed);

  void Update(uint64_t value, uint64_t count = 1);

  /// \brief Estimated number of items with value < \p value.
  uint64_t EstimateRank(uint64_t value) const;
  /// \brief Smallest value whose estimated rank reaches phi * total().
  uint64_t Quantile(double phi) const;

  uint64_t total() const { return total_; }
  uint32_t log_universe() const { return log_universe_; }

  Status Merge(const QuantileSketch& other);

  void Serialize(std::string* out) const;
  static Result<QuantileSketch> Deserialize(std::string_view data,
                                            size_t* offset);

  friend bool operator==(const QuantileSketch&,
                         const QuantileSketch&) = default;

 private:
  uint64_t NodeHash(uint32_t level, uint64_t node) const;

  uint32_t log_universe_ = 0;
  std::vector<CmSketch> levels_;  ///< levels_[l] counts value >> l prefixes
  uint64_t total_ = 0;
};

}  // namespace sketch
}  // namespace streampart
