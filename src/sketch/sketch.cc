#include "sketch/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace streampart {
namespace sketch {

namespace {

constexpr double kEuler = 2.718281828459045235;

/// Serialized-form magic bytes: one per structure, so a blob deserialized as
/// the wrong sketch fails loudly instead of producing garbage estimates.
constexpr uint32_t kCmMagic = 0x434d5331;   // "CMS1"
constexpr uint32_t kEhMagic = 0x45485331;   // "EHS1"
constexpr uint32_t kEcmMagic = 0x45434d31;  // "ECM1"
constexpr uint32_t kHhMagic = 0x48485331;   // "HHS1"
constexpr uint32_t kQsMagic = 0x51535331;   // "QSS1"

Status ExpectMagic(std::string_view data, size_t* offset, uint32_t magic,
                   const char* what) {
  uint32_t got = 0;
  Status st = GetU32(data, offset, &got);
  if (!st.ok()) return st;
  if (got != magic) {
    return Status::InvalidArgument("bad ", what, " sketch header");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU64(out, bytes.size());
  out->append(bytes.data(), bytes.size());
}

Status GetU32(std::string_view data, size_t* offset, uint32_t* v) {
  if (*offset + 4 > data.size()) {
    return Status::InvalidArgument("truncated sketch blob (u32)");
  }
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 4;
  *v = r;
  return Status::OK();
}

Status GetU64(std::string_view data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) {
    return Status::InvalidArgument("truncated sketch blob (u64)");
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *v = r;
  return Status::OK();
}

Status GetBytes(std::string_view data, size_t* offset, std::string* out) {
  uint64_t n = 0;
  Status st = GetU64(data, offset, &n);
  if (!st.ok()) return st;
  if (*offset + n > data.size()) {
    return Status::InvalidArgument("truncated sketch blob (bytes)");
  }
  out->assign(data.data() + *offset, n);
  *offset += n;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CmSketch
// ---------------------------------------------------------------------------

CmParams CmParams::FromErrorBound(double eps, double delta, uint64_t seed) {
  CmParams p;
  p.width = eps > 0 ? static_cast<uint32_t>(std::ceil(kEuler / eps)) : 1;
  p.depth = delta > 0 && delta < 1
                ? static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)))
                : 1;
  p.width = std::max<uint32_t>(p.width, 1);
  p.depth = std::max<uint32_t>(p.depth, 1);
  p.seed = seed;
  return p;
}

double CmParams::eps() const { return width > 0 ? kEuler / width : 0; }

double CmParams::delta() const {
  return depth > 0 ? std::exp(-static_cast<double>(depth)) : 1.0;
}

CmSketch::CmSketch(CmParams params) : params_(params) {
  cells_.assign(static_cast<size_t>(params_.width) * params_.depth, 0);
}

size_t CmSketch::Cell(uint32_t row, uint64_t key_hash) const {
  uint64_t h = Mix64(key_hash ^ Mix64(params_.seed + row));
  return static_cast<size_t>(row) * params_.width + h % params_.width;
}

void CmSketch::Update(uint64_t key_hash, uint64_t delta) {
  for (uint32_t r = 0; r < params_.depth; ++r) {
    cells_[Cell(r, key_hash)] += delta;
  }
  total_ += delta;
}

void CmSketch::UpdateConservative(uint64_t key_hash, uint64_t delta) {
  const uint64_t floor = Estimate(key_hash) + delta;
  for (uint32_t r = 0; r < params_.depth; ++r) {
    uint64_t& cell = cells_[Cell(r, key_hash)];
    if (cell < floor) cell = floor;
  }
  total_ += delta;
}

uint64_t CmSketch::Estimate(uint64_t key_hash) const {
  if (cells_.empty()) return 0;
  uint64_t est = cells_[Cell(0, key_hash)];
  for (uint32_t r = 1; r < params_.depth; ++r) {
    est = std::min(est, cells_[Cell(r, key_hash)]);
  }
  return est;
}

Status CmSketch::Merge(const CmSketch& other) {
  if (!(params_ == other.params_)) {
    return Status::InvalidArgument(
        "count-min merge requires identical width/depth/seed");
  }
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
  return Status::OK();
}

void CmSketch::Serialize(std::string* out) const {
  PutU32(out, kCmMagic);
  PutU32(out, params_.width);
  PutU32(out, params_.depth);
  PutU64(out, params_.seed);
  PutU64(out, total_);
  for (uint64_t c : cells_) PutU64(out, c);
}

size_t CmSketch::SerializedSize() const {
  return 4 + 4 + 4 + 8 + 8 + cells_.size() * 8;
}

Result<CmSketch> CmSketch::Deserialize(std::string_view data, size_t* offset) {
  Status st = ExpectMagic(data, offset, kCmMagic, "count-min");
  if (!st.ok()) return st;
  CmParams p;
  if (!(st = GetU32(data, offset, &p.width)).ok()) return st;
  if (!(st = GetU32(data, offset, &p.depth)).ok()) return st;
  if (!(st = GetU64(data, offset, &p.seed)).ok()) return st;
  CmSketch s(p);
  if (!(st = GetU64(data, offset, &s.total_)).ok()) return st;
  for (uint64_t& c : s.cells_) {
    if (!(st = GetU64(data, offset, &c)).ok()) return st;
  }
  return s;
}

// ---------------------------------------------------------------------------
// EhCell
// ---------------------------------------------------------------------------

EhCell::EhCell(uint32_t k) : k_(std::max<uint32_t>(k, 2)) {}

uint32_t EhCell::CapacityForError(double eps) {
  if (eps <= 0) return 64;
  return static_cast<uint32_t>(std::ceil(1.0 / eps)) + 1;
}

void EhCell::Add(uint64_t ts, uint64_t count) {
  if (count == 0) return;
  Bucket b{ts, count};
  // Insert preserving canonical order: ascending (ts, size). Out-of-order
  // timestamps only occur on merged summaries, so the common case appends.
  auto pos = buckets_.end();
  while (pos != buckets_.begin()) {
    auto prev = pos - 1;
    if (prev->ts < b.ts || (prev->ts == b.ts && prev->size <= b.size)) break;
    pos = prev;
  }
  buckets_.insert(pos, b);
  total_ += count;
  Compress();
}

namespace {
/// Power-of-two size class of a bucket (floor(log2(size))).
inline uint32_t SizeClass(uint64_t size) {
  return 63u - static_cast<uint32_t>(__builtin_clzll(size | 1));
}
}  // namespace

void EhCell::Compress() {
  // Canonical compression: while any size class holds more than k_ buckets,
  // merge that class's two oldest into one (ts = newer of the two). The
  // result depends only on the canonical bucket order, never on insertion
  // order — the property EhCell's commutative merge rests on.
  bool changed = true;
  while (changed) {
    changed = false;
    // Count buckets per class; classes are few (log of total).
    uint32_t counts[64] = {};
    for (const Bucket& b : buckets_) ++counts[SizeClass(b.size)];
    for (uint32_t cls = 0; cls < 64; ++cls) {
      if (counts[cls] <= k_) continue;
      // Merge the two oldest buckets of this class.
      size_t first = buckets_.size(), second = buckets_.size();
      for (size_t i = 0; i < buckets_.size(); ++i) {
        if (SizeClass(buckets_[i].size) != cls) continue;
        if (first == buckets_.size()) {
          first = i;
        } else {
          second = i;
          break;
        }
      }
      Bucket merged{std::max(buckets_[first].ts, buckets_[second].ts),
                    buckets_[first].size + buckets_[second].size};
      buckets_.erase(buckets_.begin() + second);
      buckets_.erase(buckets_.begin() + first);
      // Re-insert at the canonical position.
      auto pos = std::upper_bound(
          buckets_.begin(), buckets_.end(), merged,
          [](const Bucket& a, const Bucket& b) {
            return a.ts < b.ts || (a.ts == b.ts && a.size < b.size);
          });
      buckets_.insert(pos, merged);
      changed = true;
      break;
    }
  }
}

uint64_t EhCell::EstimateSince(uint64_t since_ts) const {
  uint64_t in_window = 0;
  uint64_t straddle = 0;  // oldest contributing bucket's size
  for (const Bucket& b : buckets_) {
    if (b.ts >= since_ts) {
      in_window += b.size;
      if (straddle == 0) straddle = b.size;  // buckets are oldest-first
    }
  }
  // The oldest contributing bucket may contain items older than since_ts;
  // split the difference (the classic EH estimator). Size-1 buckets are
  // exact.
  return in_window - straddle / 2;
}

void EhCell::Merge(const EhCell& other) {
  if (k_ == 0) k_ = other.k_;
  std::vector<Bucket> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  std::merge(buckets_.begin(), buckets_.end(), other.buckets_.begin(),
             other.buckets_.end(), std::back_inserter(merged),
             [](const Bucket& a, const Bucket& b) {
               return a.ts < b.ts || (a.ts == b.ts && a.size < b.size);
             });
  buckets_ = std::move(merged);
  total_ += other.total_;
  Compress();
}

void EhCell::Serialize(std::string* out) const {
  PutU32(out, kEhMagic);
  PutU32(out, k_);
  PutU64(out, total_);
  PutU64(out, buckets_.size());
  for (const Bucket& b : buckets_) {
    PutU64(out, b.ts);
    PutU64(out, b.size);
  }
}

Result<EhCell> EhCell::Deserialize(std::string_view data, size_t* offset) {
  Status st = ExpectMagic(data, offset, kEhMagic, "exponential-histogram");
  if (!st.ok()) return st;
  EhCell cell;
  if (!(st = GetU32(data, offset, &cell.k_)).ok()) return st;
  if (!(st = GetU64(data, offset, &cell.total_)).ok()) return st;
  uint64_t n = 0;
  if (!(st = GetU64(data, offset, &n)).ok()) return st;
  cell.buckets_.resize(n);
  for (Bucket& b : cell.buckets_) {
    if (!(st = GetU64(data, offset, &b.ts)).ok()) return st;
    if (!(st = GetU64(data, offset, &b.size)).ok()) return st;
  }
  return cell;
}

// ---------------------------------------------------------------------------
// EcmSketch
// ---------------------------------------------------------------------------

EcmParams EcmParams::FromErrorBound(double eps_cm, double delta,
                                    double eps_window, uint64_t seed) {
  EcmParams p;
  p.cm = CmParams::FromErrorBound(eps_cm, delta, seed);
  p.eh_k = EhCell::CapacityForError(eps_window);
  return p;
}

EcmSketch::EcmSketch(EcmParams params)
    : params_(params), stream_(params.eh_k) {
  cells_.assign(static_cast<size_t>(params_.cm.width) * params_.cm.depth,
                EhCell(params_.eh_k));
}

size_t EcmSketch::Cell(uint32_t row, uint64_t key_hash) const {
  uint64_t h = Mix64(key_hash ^ Mix64(params_.cm.seed + row));
  return static_cast<size_t>(row) * params_.cm.width + h % params_.cm.width;
}

void EcmSketch::Update(uint64_t key_hash, uint64_t ts, uint64_t count) {
  for (uint32_t r = 0; r < params_.cm.depth; ++r) {
    cells_[Cell(r, key_hash)].Add(ts, count);
  }
  stream_.Add(ts, count);
  total_ += count;
}

uint64_t EcmSketch::EstimateSince(uint64_t key_hash, uint64_t since_ts) const {
  if (cells_.empty()) return 0;
  uint64_t est = cells_[Cell(0, key_hash)].EstimateSince(since_ts);
  for (uint32_t r = 1; r < params_.cm.depth; ++r) {
    est = std::min(est, cells_[Cell(r, key_hash)].EstimateSince(since_ts));
  }
  return est;
}

uint64_t EcmSketch::TotalSince(uint64_t since_ts) const {
  return stream_.EstimateSince(since_ts);
}

Status EcmSketch::Merge(const EcmSketch& other) {
  if (!(params_ == other.params_)) {
    return Status::InvalidArgument(
        "ECM merge requires identical grid and histogram parameters");
  }
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
  stream_.Merge(other.stream_);
  total_ += other.total_;
  return Status::OK();
}

void EcmSketch::Serialize(std::string* out) const {
  PutU32(out, kEcmMagic);
  PutU32(out, params_.cm.width);
  PutU32(out, params_.cm.depth);
  PutU64(out, params_.cm.seed);
  PutU32(out, params_.eh_k);
  PutU64(out, total_);
  stream_.Serialize(out);
  for (const EhCell& c : cells_) c.Serialize(out);
}

Result<EcmSketch> EcmSketch::Deserialize(std::string_view data,
                                         size_t* offset) {
  Status st = ExpectMagic(data, offset, kEcmMagic, "ECM");
  if (!st.ok()) return st;
  EcmParams p;
  if (!(st = GetU32(data, offset, &p.cm.width)).ok()) return st;
  if (!(st = GetU32(data, offset, &p.cm.depth)).ok()) return st;
  if (!(st = GetU64(data, offset, &p.cm.seed)).ok()) return st;
  if (!(st = GetU32(data, offset, &p.eh_k)).ok()) return st;
  EcmSketch s(p);
  if (!(st = GetU64(data, offset, &s.total_)).ok()) return st;
  auto stream = EhCell::Deserialize(data, offset);
  if (!stream.ok()) return stream.status();
  s.stream_ = std::move(*stream);
  for (EhCell& c : s.cells_) {
    auto cell = EhCell::Deserialize(data, offset);
    if (!cell.ok()) return cell.status();
    c = std::move(*cell);
  }
  return s;
}

// ---------------------------------------------------------------------------
// HeavyHitterSketch
// ---------------------------------------------------------------------------

HeavyHitterSketch::HeavyHitterSketch(CmParams params, size_t max_candidates)
    : cm_(params), max_candidates_(max_candidates) {}

void HeavyHitterSketch::Update(std::string_view key, uint64_t delta) {
  cm_.Update(HashBytes(key), delta);
  candidates_.emplace(std::string(key), true);
  Prune();
}

void HeavyHitterSketch::Prune() {
  while (max_candidates_ > 0 && candidates_.size() > max_candidates_) {
    // Evict the smallest estimate; ties broken toward the larger key so the
    // survivor set is deterministic.
    auto victim = candidates_.begin();
    uint64_t victim_est = cm_.Estimate(HashBytes(victim->first));
    for (auto it = std::next(candidates_.begin()); it != candidates_.end();
         ++it) {
      uint64_t est = cm_.Estimate(HashBytes(it->first));
      if (est <= victim_est) {
        victim = it;
        victim_est = est;
      }
    }
    candidates_.erase(victim);
  }
}

std::vector<HeavyHitterSketch::Hitter> HeavyHitterSketch::HeavyHitters(
    double phi) const {
  const double threshold = phi * static_cast<double>(cm_.total());
  std::vector<Hitter> out;
  for (const auto& [key, unused] : candidates_) {
    uint64_t est = cm_.Estimate(HashBytes(key));
    if (static_cast<double>(est) >= threshold) out.push_back({key, est});
  }
  std::sort(out.begin(), out.end(), [](const Hitter& a, const Hitter& b) {
    if (a.estimate != b.estimate) return a.estimate > b.estimate;
    return a.key < b.key;
  });
  return out;
}

Status HeavyHitterSketch::Merge(const HeavyHitterSketch& other) {
  Status st = cm_.Merge(other.cm_);
  if (!st.ok()) return st;
  for (const auto& [key, unused] : other.candidates_) {
    candidates_.emplace(key, true);
  }
  Prune();
  return Status::OK();
}

void HeavyHitterSketch::Serialize(std::string* out) const {
  PutU32(out, kHhMagic);
  PutU64(out, max_candidates_);
  cm_.Serialize(out);
  PutU64(out, candidates_.size());
  for (const auto& [key, unused] : candidates_) PutBytes(out, key);
}

Result<HeavyHitterSketch> HeavyHitterSketch::Deserialize(std::string_view data,
                                                         size_t* offset) {
  Status st = ExpectMagic(data, offset, kHhMagic, "heavy-hitter");
  if (!st.ok()) return st;
  HeavyHitterSketch s;
  if (!(st = GetU64(data, offset, &s.max_candidates_)).ok()) return st;
  auto cm = CmSketch::Deserialize(data, offset);
  if (!cm.ok()) return cm.status();
  s.cm_ = std::move(*cm);
  uint64_t n = 0;
  if (!(st = GetU64(data, offset, &n)).ok()) return st;
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    if (!(st = GetBytes(data, offset, &key)).ok()) return st;
    s.candidates_.emplace(std::move(key), true);
  }
  return s;
}

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

QuantileSketch::QuantileSketch(CmParams per_level, uint32_t log_universe)
    : log_universe_(log_universe) {
  levels_.reserve(log_universe_);
  for (uint32_t l = 0; l < log_universe_; ++l) {
    CmParams p = per_level;
    p.seed = HashCombine(per_level.seed, l);
    levels_.emplace_back(p);
  }
}

QuantileSketch QuantileSketch::FromErrorBound(double eps, double delta,
                                              uint32_t log_universe,
                                              uint64_t seed) {
  // Rank error stacks one eps_level * total term per level.
  double eps_level = eps / std::max<uint32_t>(log_universe, 1);
  return QuantileSketch(CmParams::FromErrorBound(eps_level, delta, seed),
                        log_universe);
}

uint64_t QuantileSketch::NodeHash(uint32_t level, uint64_t node) const {
  return HashCombine(Mix64(level + 1), node);
}

void QuantileSketch::Update(uint64_t value, uint64_t count) {
  for (uint32_t l = 0; l < log_universe_; ++l) {
    levels_[l].Update(NodeHash(l, value >> l), count);
  }
  total_ += count;
}

uint64_t QuantileSketch::EstimateRank(uint64_t value) const {
  // Items < value: decompose [0, value) into dyadic nodes — one per set bit.
  uint64_t rank = 0;
  for (uint32_t l = 0; l < log_universe_; ++l) {
    if ((value >> l) & 1) {
      rank += levels_[l].Estimate(NodeHash(l, (value >> l) - 1));
    }
  }
  return rank;
}

uint64_t QuantileSketch::Quantile(double phi) const {
  if (log_universe_ == 0 || total_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(
      std::ceil(phi * static_cast<double>(total_)));
  target = std::max<uint64_t>(target, 1);
  // Greedy descent of the implicit dyadic tree: at each level pick the left
  // child if its (over-)estimated mass covers the remaining target.
  uint64_t node = 0;  // node id at the current level
  uint64_t remaining = target;
  for (uint32_t l = log_universe_; l-- > 0;) {
    uint64_t left = node << 1;
    uint64_t left_mass = levels_[l].Estimate(NodeHash(l, left));
    if (left_mass >= remaining) {
      node = left;
    } else {
      remaining -= left_mass;
      node = left + 1;
    }
  }
  return node;
}

Status QuantileSketch::Merge(const QuantileSketch& other) {
  if (log_universe_ != other.log_universe_) {
    return Status::InvalidArgument(
        "quantile merge requires identical universe size");
  }
  for (size_t l = 0; l < levels_.size(); ++l) {
    Status st = levels_[l].Merge(other.levels_[l]);
    if (!st.ok()) return st;
  }
  total_ += other.total_;
  return Status::OK();
}

void QuantileSketch::Serialize(std::string* out) const {
  PutU32(out, kQsMagic);
  PutU32(out, log_universe_);
  PutU64(out, total_);
  for (const CmSketch& l : levels_) l.Serialize(out);
}

Result<QuantileSketch> QuantileSketch::Deserialize(std::string_view data,
                                                   size_t* offset) {
  Status st = ExpectMagic(data, offset, kQsMagic, "quantile");
  if (!st.ok()) return st;
  QuantileSketch s;
  if (!(st = GetU32(data, offset, &s.log_universe_)).ok()) return st;
  if (!(st = GetU64(data, offset, &s.total_)).ok()) return st;
  s.levels_.reserve(s.log_universe_);
  for (uint32_t l = 0; l < s.log_universe_; ++l) {
    auto level = CmSketch::Deserialize(data, offset);
    if (!level.ok()) return level.status();
    s.levels_.push_back(std::move(*level));
  }
  return s;
}

}  // namespace sketch
}  // namespace streampart
