#pragma once

/// \file query_graph.h
/// \brief The DAG of named streaming queries (paper §4.2).
///
/// Queries are registered in dependency order (a query's FROM clause may name
/// source streams or previously registered queries). The graph provides the
/// structural services the partitioning analysis and distributed optimizer
/// rely on: topological order, parent/child navigation, and source lineage of
/// any derived-stream column.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/udaf.h"
#include "plan/query_node.h"

namespace streampart {

/// \brief A set of named queries over a catalog of source streams.
class QueryGraph {
 public:
  /// \param catalog must outlive the graph. \param registry defaults to the
  /// built-in UDAF registry.
  explicit QueryGraph(const Catalog* catalog,
                      const UdafRegistry* registry = nullptr);

  /// \brief Parses, analyzes, and registers \p gsql under \p name. Fails if
  /// the name collides with a source stream or existing query, or if
  /// analysis fails.
  Status AddQuery(const std::string& name, const std::string& gsql);

  /// \brief Registers an already analyzed node (used by tests).
  Status AddNode(QueryNodePtr node);

  Result<QueryNodePtr> GetQuery(const std::string& name) const;
  bool HasQuery(const std::string& name) const;

  /// \brief Schema of \p name, whether a source stream or a query output.
  Result<SchemaPtr> GetStreamSchema(const std::string& name) const;

  /// \brief True when \p name refers to a catalog source stream.
  bool IsSource(const std::string& name) const;

  /// \brief All nodes, children before parents.
  std::vector<QueryNodePtr> TopologicalOrder() const;

  /// \brief Queries that no other query consumes (outputs of the system).
  std::vector<QueryNodePtr> Roots() const;

  /// \brief Queries that directly consume \p name.
  std::vector<QueryNodePtr> Parents(const std::string& name) const;

  /// \brief Unbound scalar expression over the source stream computing
  /// column \p column of stream \p stream; null Expr when the column is
  /// aggregate-derived. Errors if the stream or column does not exist.
  Result<ExprPtr> ResolveColumnToSource(const std::string& stream,
                                        const std::string& column) const;

  const Catalog& catalog() const { return *catalog_; }
  const UdafRegistry& udaf_registry() const { return *registry_; }
  size_t num_queries() const { return order_.size(); }

 private:
  const Catalog* catalog_;
  const UdafRegistry* registry_;
  std::map<std::string, QueryNodePtr> queries_;
  std::vector<std::string> order_;  // registration (== topological) order
};

/// \brief Analyzes one parsed query against the graph, producing a bound
/// node. Exposed separately so tests can analyze without registering.
Result<QueryNodePtr> AnalyzeQuery(const std::string& name,
                                  const ParsedQuery& parsed,
                                  const QueryGraph& graph);

}  // namespace streampart
