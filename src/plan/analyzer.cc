#include <algorithm>
#include <set>

#include "common/strings.h"
#include "expr/scalar_form.h"
#include "plan/lineage.h"
#include "plan/query_graph.h"

namespace streampart {

namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

/// True if the unbound tree contains a call to a registered UDAF.
bool ContainsUdafCall(const ExprPtr& expr, const UdafRegistry& registry) {
  if (expr == nullptr) return false;
  if (expr->is_call() && registry.Contains(expr->call_name())) return true;
  if (expr->is_call()) {
    for (const ExprPtr& a : expr->args()) {
      if (ContainsUdafCall(a, registry)) return true;
    }
    return false;
  }
  if (expr->is_binary()) {
    return ContainsUdafCall(expr->left(), registry) ||
           ContainsUdafCall(expr->right(), registry);
  }
  if (expr->is_unary()) return ContainsUdafCall(expr->operand(), registry);
  return false;
}

/// Splits a predicate into top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out) {
  if (pred == nullptr) return;
  if (pred->is_binary() && pred->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(pred->left(), out);
    SplitConjuncts(pred->right(), out);
    return;
  }
  out->push_back(pred);
}

/// Rebuilds an AND chain from conjuncts; null for an empty list.
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    out = out ? Expr::Binary(BinaryOp::kAnd, out, c) : c;
  }
  return out;
}

/// Assigns unique output names: preferred name, with _2/_3... suffixes on
/// collision.
std::string UniquifyName(const std::string& preferred,
                         std::set<std::string>* used) {
  std::string name = preferred;
  int n = 2;
  while (used->count(name) > 0) {
    name = preferred + "_" + std::to_string(n++);
  }
  used->insert(name);
  return name;
}

/// Preferred output name for a select item: alias > column name > call name >
/// positional fallback.
std::string PreferredName(const SelectItem& item, size_t position) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->is_column()) return item.expr->column_name();
  if (item.expr && item.expr->is_call()) return item.expr->call_name();
  return "_col" + std::to_string(position);
}

/// True when \p source_expr (an unbound scalar over the source stream) is a
/// monotone function of an increasing source attribute — the condition for a
/// derived column to act as a tumbling-window (temporal) key.
bool IsMonotoneTemporal(const ExprPtr& source_expr,
                        const SchemaPtr& source_schema) {
  if (source_expr == nullptr) return false;
  auto analyzed = AnalyzeScalarExpr(source_expr);
  if (!analyzed.ok()) return false;
  auto idx = source_schema->FieldIndex(analyzed->base_column);
  if (!idx.has_value() || !source_schema->field(*idx).is_temporal()) {
    return false;
  }
  switch (analyzed->form.kind) {
    case ScalarFormKind::kIdentity:
    case ScalarFormKind::kDiv:
    case ScalarFormKind::kShift:
      return true;
    default:
      return false;  // Mask/Mod/Opaque are not order-preserving.
  }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  Analyzer(std::string name, const ParsedQuery& parsed, const QueryGraph& graph)
      : name_(std::move(name)),
        parsed_(parsed),
        graph_(graph),
        registry_(graph.udaf_registry()) {}

  Result<QueryNodePtr> Run() {
    auto node = std::make_shared<QueryNode>();
    node->name = name_;
    node->parsed = parsed_;

    SP_RETURN_NOT_OK(ResolveInputs(node.get()));
    SP_RETURN_NOT_OK(ClassifyKind(node.get()));

    switch (node->kind) {
      case QueryKind::kSelectProject:
        SP_RETURN_NOT_OK(AnalyzeSelectProject(node.get()));
        break;
      case QueryKind::kAggregate:
        SP_RETURN_NOT_OK(AnalyzeAggregate(node.get()));
        break;
      case QueryKind::kJoin:
        SP_RETURN_NOT_OK(AnalyzeJoin(node.get()));
        break;
    }
    return QueryNodePtr(node);
  }

 private:
  Status ResolveInputs(QueryNode* node) {
    if (parsed_.from.empty() || parsed_.from.size() > 2) {
      return Status::AnalysisError("query must read one stream or join two");
    }
    for (const TableRef& ref : parsed_.from) {
      SP_ASSIGN_OR_RETURN(SchemaPtr schema,
                          graph_.GetStreamSchema(ref.stream));
      node->inputs.push_back(ref.stream);
      node->aliases.push_back(ref.EffectiveAlias());
      node->input_schemas.push_back(std::move(schema));
    }
    if (node->inputs.size() == 2 &&
        node->aliases[0] == node->aliases[1]) {
      return Status::AnalysisError(
          "self-join requires distinct aliases for '", node->inputs[0], "'");
    }
    // Ultimate source stream (left side); children already cache theirs.
    if (graph_.IsSource(node->inputs[0])) {
      node->source_stream = node->inputs[0];
    } else {
      SP_ASSIGN_OR_RETURN(QueryNodePtr child, graph_.GetQuery(node->inputs[0]));
      node->source_stream = child->source_stream;
    }
    return Status::OK();
  }

  Status ClassifyKind(QueryNode* node) {
    bool has_agg = false;
    for (const SelectItem& item : parsed_.select_list) {
      if (ContainsUdafCall(item.expr, registry_)) has_agg = true;
    }
    if (ContainsUdafCall(parsed_.having, registry_)) has_agg = true;
    bool is_agg = parsed_.has_group_by() || has_agg;

    if (node->inputs.size() == 2) {
      if (is_agg) {
        return Status::NotImplemented(
            "aggregation directly over a join is not supported; register the "
            "join as a named query and aggregate over it");
      }
      node->kind = QueryKind::kJoin;
      node->join_type = parsed_.join_type;
      return Status::OK();
    }
    if (parsed_.having && !is_agg) {
      return Status::AnalysisError("HAVING requires GROUP BY or aggregates");
    }
    node->kind = is_agg ? QueryKind::kAggregate : QueryKind::kSelectProject;
    return Status::OK();
  }

  /// Substitutes a bound-over-inputs expression down to source level.
  ExprPtr BoundExprToSource(const QueryNode& node, const ExprPtr& expr) const {
    return NodeExprToSource(graph_, node, expr);
  }

  /// Builds the output schema from named outputs + lineage-based temporal
  /// propagation.
  void FinalizeOutputs(QueryNode* node) {
    SchemaPtr source_schema;
    auto src = graph_.GetStreamSchema(node->source_stream);
    if (src.ok()) source_schema = *src;
    std::vector<Field> fields;
    fields.reserve(node->outputs.size());
    for (size_t i = 0; i < node->outputs.size(); ++i) {
      Field f;
      f.name = node->outputs[i].name;
      f.type = node->outputs[i].type;
      f.order = TemporalOrder::kNone;
      if (source_schema &&
          IsMonotoneTemporal(node->output_source_exprs[i], source_schema)) {
        f.order = TemporalOrder::kIncreasing;
      }
      fields.push_back(std::move(f));
    }
    node->output_schema = Schema::Make(std::move(fields));
  }

  // ---- Selection / projection ------------------------------------------

  Status AnalyzeSelectProject(QueryNode* node) {
    BindingContext ctx;
    ctx.AddInput(node->aliases[0], node->input_schemas[0]);

    if (parsed_.where) {
      SP_ASSIGN_OR_RETURN(node->where, parsed_.where->Bind(ctx, &registry_));
      if (node->where->ContainsAggregate()) {
        return Status::AnalysisError("aggregates are not allowed in WHERE");
      }
    }
    std::set<std::string> used;
    for (size_t i = 0; i < parsed_.select_list.size(); ++i) {
      const SelectItem& item = parsed_.select_list[i];
      SP_ASSIGN_OR_RETURN(ExprPtr bound, item.expr->Bind(ctx, &registry_));
      NamedExpr out;
      out.name = UniquifyName(PreferredName(item, i), &used);
      out.type = bound->result_type();
      out.expr = std::move(bound);
      node->output_source_exprs.push_back(
          BoundExprToSource(*node, out.expr));
      node->outputs.push_back(std::move(out));
    }
    FinalizeOutputs(node);
    return Status::OK();
  }

  // ---- Aggregation -------------------------------------------------------

  Status AnalyzeAggregate(QueryNode* node) {
    BindingContext ctx;
    ctx.AddInput(node->aliases[0], node->input_schemas[0]);

    if (parsed_.where) {
      SP_ASSIGN_OR_RETURN(node->where, parsed_.where->Bind(ctx, &registry_));
      if (node->where->ContainsAggregate()) {
        return Status::AnalysisError("aggregates are not allowed in WHERE");
      }
    }

    // Group-by keys.
    std::set<std::string> group_names;
    for (size_t i = 0; i < parsed_.group_by.size(); ++i) {
      const SelectItem& item = parsed_.group_by[i];
      if (ContainsUdafCall(item.expr, registry_)) {
        return Status::AnalysisError("aggregates are not allowed in GROUP BY");
      }
      SP_ASSIGN_OR_RETURN(ExprPtr bound, item.expr->Bind(ctx, &registry_));
      NamedExpr key;
      key.name = PreferredName(item, i);
      if (group_names.count(key.name) > 0) {
        return Status::AnalysisError("duplicate group-by name '", key.name,
                                     "'");
      }
      group_names.insert(key.name);
      key.type = bound->result_type();
      key.expr = std::move(bound);
      node->group_by.push_back(std::move(key));
    }

    // Temporal (tumbling-window) key: first group key whose lineage is a
    // monotone function of an increasing source attribute.
    SchemaPtr source_schema;
    {
      auto src = graph_.GetStreamSchema(node->source_stream);
      if (src.ok()) source_schema = *src;
    }
    for (size_t i = 0; i < node->group_by.size(); ++i) {
      ExprPtr lineage = BoundExprToSource(*node, node->group_by[i].expr);
      if (source_schema && IsMonotoneTemporal(lineage, source_schema)) {
        node->temporal_group_idx = i;
        break;
      }
    }

    // Aggregate slots: every distinct UDAF call in SELECT and HAVING.
    std::vector<ExprPtr> raw_calls;
    auto collect = [&](const ExprPtr& e, auto&& self) -> void {
      if (e == nullptr) return;
      if (e->is_call() && registry_.Contains(e->call_name())) {
        for (const ExprPtr& existing : raw_calls) {
          if (Expr::Equal(existing, e)) return;
        }
        raw_calls.push_back(e);
        return;  // Nested aggregates are invalid; args scanned at bind time.
      }
      if (e->is_binary()) {
        self(e->left(), self);
        self(e->right(), self);
      } else if (e->is_unary()) {
        self(e->operand(), self);
      } else if (e->is_call()) {
        for (const ExprPtr& a : e->args()) self(a, self);
      }
    };
    for (const SelectItem& item : parsed_.select_list) {
      collect(item.expr, collect);
    }
    collect(parsed_.having, collect);

    for (size_t i = 0; i < raw_calls.size(); ++i) {
      const ExprPtr& call = raw_calls[i];
      AggregateSpec spec;
      spec.udaf = call->call_name();
      std::vector<DataType> arg_types;
      for (const ExprPtr& a : call->args()) {
        if (ContainsUdafCall(a, registry_)) {
          return Status::AnalysisError("nested aggregate in ", call->ToString());
        }
        SP_ASSIGN_OR_RETURN(ExprPtr bound, a->Bind(ctx, &registry_));
        arg_types.push_back(bound->result_type());
        spec.args.push_back(std::move(bound));
      }
      SP_ASSIGN_OR_RETURN(spec.out_type,
                          registry_.ResolveCall(spec.udaf, arg_types));
      spec.out_name = "_a" + std::to_string(i);
      node->aggregates.push_back(std::move(spec));
    }

    // Internal schema: group keys then aggregate slots.
    {
      std::vector<Field> fields;
      for (size_t i = 0; i < node->group_by.size(); ++i) {
        Field f;
        f.name = node->group_by[i].name;
        f.type = node->group_by[i].type;
        f.order = (node->temporal_group_idx == i) ? TemporalOrder::kIncreasing
                                                  : TemporalOrder::kNone;
        fields.push_back(std::move(f));
      }
      for (const AggregateSpec& spec : node->aggregates) {
        fields.push_back(Field{spec.out_name, spec.out_type,
                               TemporalOrder::kNone});
      }
      node->internal_schema = Schema::Make(std::move(fields));
    }

    // Rewrites SELECT/HAVING trees onto the internal schema: aggregate calls
    // become slot references; group-by expressions become key references.
    auto rewrite_to_internal = [&](const ExprPtr& e) -> ExprPtr {
      return Expr::Rewrite(e, [&](const ExprPtr& sub) -> ExprPtr {
        for (size_t i = 0; i < raw_calls.size(); ++i) {
          if (Expr::Equal(raw_calls[i], sub)) {
            return Expr::Column(node->aggregates[i].out_name);
          }
        }
        for (size_t i = 0; i < parsed_.group_by.size(); ++i) {
          if (Expr::Equal(parsed_.group_by[i].expr, sub)) {
            return Expr::Column(node->group_by[i].name);
          }
        }
        return nullptr;
      });
    };

    BindingContext internal_ctx;
    internal_ctx.AddInput("", node->internal_schema);

    std::set<std::string> used;
    for (size_t i = 0; i < parsed_.select_list.size(); ++i) {
      const SelectItem& item = parsed_.select_list[i];
      ExprPtr rewritten = rewrite_to_internal(item.expr);
      auto bound = rewritten->Bind(internal_ctx, &registry_);
      if (!bound.ok()) {
        return bound.status().WithContext(
            "SELECT item '" + item.expr->ToString() +
            "' must be a group-by expression or an aggregate");
      }
      NamedExpr out;
      out.name = UniquifyName(PreferredName(item, i), &used);
      out.type = (*bound)->result_type();
      out.expr = std::move(*bound);
      node->outputs.push_back(std::move(out));
    }

    if (parsed_.having) {
      ExprPtr rewritten = rewrite_to_internal(parsed_.having);
      auto bound = rewritten->Bind(internal_ctx, &registry_);
      if (!bound.ok()) {
        return bound.status().WithContext("in HAVING");
      }
      node->having = std::move(*bound);
    }

    // Lineage of outputs: substitute internal-schema columns — group keys
    // resolve through their own lineage; aggregate slots resolve to null.
    size_t num_groups = node->group_by.size();
    for (const NamedExpr& out : node->outputs) {
      ExprPtr lineage = SubstituteColumnsToSource(
          out.expr, [&](const Expr& col) -> ExprPtr {
            size_t idx = col.bound_index();
            if (idx >= num_groups) return nullptr;  // aggregate slot
            return BoundExprToSource(*node, node->group_by[idx].expr);
          });
      node->output_source_exprs.push_back(std::move(lineage));
    }
    FinalizeOutputs(node);
    return Status::OK();
  }

  // ---- Join ---------------------------------------------------------------

  /// Which input an expression's columns come from: 0 = left, 1 = right,
  /// -1 = mixed or unresolvable.
  Result<int> ExprSide(const QueryNode& node, const ExprPtr& e) const {
    std::vector<const Expr*> cols;
    e->CollectColumns(&cols);
    if (cols.empty()) return -1;
    int side = -2;
    for (const Expr* c : cols) {
      int s;
      if (c->qualifier() == node.aliases[0]) {
        s = 0;
      } else if (c->qualifier() == node.aliases[1]) {
        s = 1;
      } else if (c->qualifier().empty()) {
        bool in_left = node.input_schemas[0]->FieldIndex(c->column_name())
                           .has_value();
        bool in_right = node.input_schemas[1]->FieldIndex(c->column_name())
                            .has_value();
        if (in_left && in_right) {
          return Status::AnalysisError("ambiguous column '", c->column_name(),
                                       "' in join predicate; qualify it");
        }
        if (!in_left && !in_right) {
          return Status::AnalysisError("unknown column '", c->column_name(),
                                       "' in join predicate");
        }
        s = in_left ? 0 : 1;
      } else {
        return Status::AnalysisError("unknown qualifier '", c->qualifier(),
                                     "'");
      }
      if (side == -2) {
        side = s;
      } else if (side != s) {
        return -1;
      }
    }
    return side;
  }

  /// True when the bound expression references at least one temporal field
  /// of \p schema.
  static bool ReferencesTemporal(const ExprPtr& bound, const SchemaPtr& schema) {
    std::vector<const Expr*> cols;
    bound->CollectColumns(&cols);
    for (const Expr* c : cols) {
      size_t idx = c->bound_index();
      if (idx < schema->num_fields() && schema->field(idx).is_temporal()) {
        return true;
      }
    }
    return false;
  }

  Status AnalyzeJoin(QueryNode* node) {
    BindingContext ctx_left, ctx_right, ctx_both;
    ctx_left.AddInput(node->aliases[0], node->input_schemas[0]);
    ctx_right.AddInput(node->aliases[1], node->input_schemas[1]);
    ctx_both.AddInput(node->aliases[0], node->input_schemas[0]);
    ctx_both.AddInput(node->aliases[1], node->input_schemas[1]);

    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(parsed_.on, &conjuncts);
    SplitConjuncts(parsed_.where, &conjuncts);
    if (conjuncts.empty()) {
      return Status::AnalysisError("join requires a predicate");
    }

    std::vector<ExprPtr> residual_conjuncts;
    for (const ExprPtr& conj : conjuncts) {
      bool handled = false;
      if (conj->is_binary() && conj->binary_op() == BinaryOp::kEq) {
        SP_ASSIGN_OR_RETURN(int lside, ExprSide(*node, conj->left()));
        SP_ASSIGN_OR_RETURN(int rside, ExprSide(*node, conj->right()));
        if (lside >= 0 && rside >= 0 && lside != rside) {
          const ExprPtr& le = lside == 0 ? conj->left() : conj->right();
          const ExprPtr& re = lside == 0 ? conj->right() : conj->left();
          EquiPred pred;
          SP_ASSIGN_OR_RETURN(pred.left, le->Bind(ctx_left, &registry_));
          SP_ASSIGN_OR_RETURN(pred.right, re->Bind(ctx_right, &registry_));
          pred.temporal =
              ReferencesTemporal(pred.left, node->input_schemas[0]) &&
              ReferencesTemporal(pred.right, node->input_schemas[1]);
          // Source lineage of both key sides (used by partition inference).
          pred.left_src = SubstituteColumnsToSource(
              pred.left, [&](const Expr& col) -> ExprPtr {
                auto r = graph_.ResolveColumnToSource(
                    node->inputs[0],
                    node->input_schemas[0]->field(col.bound_index()).name);
                return r.ok() ? *r : nullptr;
              });
          pred.right_src = SubstituteColumnsToSource(
              pred.right, [&](const Expr& col) -> ExprPtr {
                auto r = graph_.ResolveColumnToSource(
                    node->inputs[1],
                    node->input_schemas[1]->field(col.bound_index()).name);
                return r.ok() ? *r : nullptr;
              });
          node->equi_preds.push_back(std::move(pred));
          handled = true;
        }
      }
      if (!handled) residual_conjuncts.push_back(conj);
    }

    if (node->equi_preds.empty()) {
      return Status::NotImplemented(
          "only equi-joins are supported; no equality predicate relates the "
          "two inputs");
    }

    ExprPtr residual_raw = AndAll(residual_conjuncts);
    if (residual_raw) {
      SP_ASSIGN_OR_RETURN(node->residual,
                          residual_raw->Bind(ctx_both, &registry_));
    }

    std::set<std::string> used;
    for (size_t i = 0; i < parsed_.select_list.size(); ++i) {
      const SelectItem& item = parsed_.select_list[i];
      SP_ASSIGN_OR_RETURN(ExprPtr bound, item.expr->Bind(ctx_both, &registry_));
      if (bound->ContainsAggregate()) {
        return Status::AnalysisError("aggregates are not allowed in a join");
      }
      NamedExpr out;
      out.name = UniquifyName(PreferredName(item, i), &used);
      out.type = bound->result_type();
      out.expr = std::move(bound);
      node->output_source_exprs.push_back(BoundExprToSource(*node, out.expr));
      node->outputs.push_back(std::move(out));
    }
    FinalizeOutputs(node);
    return Status::OK();
  }

  std::string name_;
  const ParsedQuery& parsed_;
  const QueryGraph& graph_;
  const UdafRegistry& registry_;
};

}  // namespace

Result<QueryNodePtr> AnalyzeQuery(const std::string& name,
                                  const ParsedQuery& parsed,
                                  const QueryGraph& graph) {
  Analyzer analyzer(name, parsed, graph);
  auto result = analyzer.Run();
  if (!result.ok()) {
    return result.status().WithContext("analyzing query '" + name + "'");
  }
  return result;
}

}  // namespace streampart
