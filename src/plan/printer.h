#pragma once

/// \file printer.h
/// \brief ASCII rendering of logical query DAGs (regenerates the paper's
/// plan diagrams, e.g. Figure 1).

#include <string>

#include "plan/query_graph.h"

namespace streampart {

/// \brief Renders the full query DAG as an indented tree, roots first.
/// Shared subtrees (a query consumed by several parents) are expanded at
/// their first occurrence and referenced as "(see above)" afterwards.
std::string PrintQueryDag(const QueryGraph& graph);

/// \brief Renders the subtree rooted at \p root.
std::string PrintQueryTree(const QueryGraph& graph, const std::string& root);

}  // namespace streampart
