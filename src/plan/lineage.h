#pragma once

/// \file lineage.h
/// \brief Source-lineage utilities shared by the analyzer and the
/// partitioning framework.

#include "expr/expr.h"
#include "plan/query_graph.h"
#include "plan/query_node.h"

namespace streampart {

/// \brief Translates \p bound_expr — bound over \p node's (concatenated)
/// input schemas — into an unbound scalar expression over the ultimate
/// source stream's attributes. Returns null when any referenced column is
/// aggregate-derived or otherwise not a pure scalar of the source.
ExprPtr NodeExprToSource(const QueryGraph& graph, const QueryNode& node,
                         const ExprPtr& bound_expr);

/// \brief Substitutes every column reference in \p expr via \p resolve
/// (returning null aborts the substitution). Trees containing calls resolve
/// to null. Exposed for the analyzer.
ExprPtr SubstituteColumnsToSource(
    const ExprPtr& expr,
    const std::function<ExprPtr(const Expr&)>& resolve);

}  // namespace streampart
