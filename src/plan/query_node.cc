#include "plan/query_node.h"

#include "common/strings.h"

namespace streampart {

const char* QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSelectProject:
      return "select";
    case QueryKind::kAggregate:
      return "aggregate";
    case QueryKind::kJoin:
      return "join";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  std::string out = udaf + "(";
  if (args.empty() && udaf == "count") out += "*";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString();
  }
  out += ")";
  return out;
}

std::string EquiPred::ToString() const {
  std::string out = left->ToString() + " = " + right->ToString();
  if (temporal) out += " [temporal]";
  return out;
}

std::string QueryNode::Summary() const {
  std::string out = name + ": " + QueryKindToString(kind) + "[";
  out += Join(inputs, ", ");
  out += "]";
  if (kind == QueryKind::kAggregate) {
    std::vector<std::string> keys;
    for (const NamedExpr& g : group_by) keys.push_back(g.expr->ToString());
    out += " group by (" + Join(keys, ", ") + ")";
    std::vector<std::string> aggs;
    for (const AggregateSpec& a : aggregates) aggs.push_back(a.ToString());
    if (!aggs.empty()) out += " aggs (" + Join(aggs, ", ") + ")";
    if (having) out += " having " + having->ToString();
  } else if (kind == QueryKind::kJoin) {
    std::vector<std::string> preds;
    for (const EquiPred& p : equi_preds) preds.push_back(p.ToString());
    out += " on (" + Join(preds, " AND ") + ")";
  }
  if (where) out += " where " + where->ToString();
  return out;
}

}  // namespace streampart
