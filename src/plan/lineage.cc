#include "plan/lineage.h"

namespace streampart {

ExprPtr SubstituteColumnsToSource(
    const ExprPtr& expr,
    const std::function<ExprPtr(const Expr&)>& resolve) {
  if (expr == nullptr) return nullptr;
  bool failed = false;
  ExprPtr out = Expr::Rewrite(expr, [&](const ExprPtr& e) -> ExprPtr {
    if (failed) return e;
    if (e->is_column()) {
      ExprPtr src = resolve(*e);
      if (src == nullptr) {
        failed = true;
        return e;
      }
      return src;
    }
    if (e->is_call()) {
      failed = true;
      return e;
    }
    return nullptr;
  });
  return failed ? nullptr : out;
}

ExprPtr NodeExprToSource(const QueryGraph& graph, const QueryNode& node,
                         const ExprPtr& bound_expr) {
  return SubstituteColumnsToSource(bound_expr, [&](const Expr& col) -> ExprPtr {
    size_t side = 0;
    size_t local = col.bound_index();
    if (node.input_schemas.size() == 2 &&
        local >= node.input_schemas[0]->num_fields()) {
      side = 1;
      local -= node.input_schemas[0]->num_fields();
    }
    if (local >= node.input_schemas[side]->num_fields()) return nullptr;
    const std::string& field = node.input_schemas[side]->field(local).name;
    auto lineage = graph.ResolveColumnToSource(node.inputs[side], field);
    return lineage.ok() ? *lineage : nullptr;
  });
}

}  // namespace streampart
