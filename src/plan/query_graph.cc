#include "plan/query_graph.h"

#include <algorithm>

#include "parser/parser.h"

namespace streampart {

QueryGraph::QueryGraph(const Catalog* catalog, const UdafRegistry* registry)
    : catalog_(catalog),
      registry_(registry != nullptr ? registry : &UdafRegistry::Default()) {}

Status QueryGraph::AddQuery(const std::string& name, const std::string& gsql) {
  if (catalog_->HasStream(name)) {
    return Status::AlreadyExists("'", name, "' names a source stream");
  }
  if (queries_.count(name) > 0) {
    return Status::AlreadyExists("query '", name, "' already registered");
  }
  SP_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(gsql));
  SP_ASSIGN_OR_RETURN(QueryNodePtr node, AnalyzeQuery(name, parsed, *this));
  queries_[name] = std::move(node);
  order_.push_back(name);
  return Status::OK();
}

Status QueryGraph::AddNode(QueryNodePtr node) {
  if (catalog_->HasStream(node->name) || queries_.count(node->name) > 0) {
    return Status::AlreadyExists("'", node->name, "' already registered");
  }
  order_.push_back(node->name);
  queries_[node->name] = std::move(node);
  return Status::OK();
}

Result<QueryNodePtr> QueryGraph::GetQuery(const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no query named '", name, "'");
  }
  return it->second;
}

bool QueryGraph::HasQuery(const std::string& name) const {
  return queries_.count(name) > 0;
}

Result<SchemaPtr> QueryGraph::GetStreamSchema(const std::string& name) const {
  if (catalog_->HasStream(name)) return catalog_->GetStream(name);
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no stream or query named '", name, "'");
  }
  return it->second->output_schema;
}

bool QueryGraph::IsSource(const std::string& name) const {
  return catalog_->HasStream(name);
}

std::vector<QueryNodePtr> QueryGraph::TopologicalOrder() const {
  // Registration order is topological: a query may only reference streams
  // that exist at its registration time.
  std::vector<QueryNodePtr> out;
  out.reserve(order_.size());
  for (const std::string& name : order_) out.push_back(queries_.at(name));
  return out;
}

std::vector<QueryNodePtr> QueryGraph::Roots() const {
  std::vector<QueryNodePtr> out;
  for (const std::string& name : order_) {
    if (Parents(name).empty()) out.push_back(queries_.at(name));
  }
  return out;
}

std::vector<QueryNodePtr> QueryGraph::Parents(const std::string& name) const {
  std::vector<QueryNodePtr> out;
  for (const std::string& qname : order_) {
    const QueryNodePtr& node = queries_.at(qname);
    if (std::find(node->inputs.begin(), node->inputs.end(), name) !=
        node->inputs.end()) {
      out.push_back(node);
    }
  }
  return out;
}

Result<ExprPtr> QueryGraph::ResolveColumnToSource(
    const std::string& stream, const std::string& column) const {
  if (IsSource(stream)) {
    SP_ASSIGN_OR_RETURN(SchemaPtr schema, catalog_->GetStream(stream));
    SP_RETURN_NOT_OK(schema->RequireFieldIndex(column).status());
    return ExprPtr(Expr::Column(column));
  }
  SP_ASSIGN_OR_RETURN(QueryNodePtr node, GetQuery(stream));
  for (size_t i = 0; i < node->outputs.size(); ++i) {
    if (node->outputs[i].name == column) {
      return node->output_source_exprs[i];  // may be null: aggregate-derived
    }
  }
  return Status::NotFound("no column '", column, "' in query '", stream, "'");
}

}  // namespace streampart
