#pragma once

/// \file query_node.h
/// \brief Analyzed (bound) logical query nodes.
///
/// A QueryNode is the semantic form of one named GSQL query: expressions are
/// bound to positional indexes, aggregates are extracted into slots, join
/// predicates are decomposed into temporal / equi / residual parts, and each
/// output column carries its *source lineage* — the scalar expression over
/// the source stream's attributes it is derived from (or null when it is
/// aggregate-derived). Lineage is what lets the partitioning analysis of
/// paper §3.5 reason about arbitrarily deep query DAGs.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "parser/ast.h"
#include "types/schema.h"

namespace streampart {

/// \brief Basic streaming query classes of paper §4.2 ("selection/projection,
/// union, aggregation, and join"). Merge (union) nodes are introduced by the
/// distributed optimizer, not by GSQL analysis.
enum class QueryKind : uint8_t {
  kSelectProject,
  kAggregate,
  kJoin,
};

const char* QueryKindToString(QueryKind kind);

/// \brief A named, typed, bound output expression.
struct NamedExpr {
  std::string name;
  ExprPtr expr;  // bound; evaluation context depends on the node kind
  DataType type = DataType::kNull;
};

/// \brief One aggregate slot of an aggregation node.
struct AggregateSpec {
  std::string udaf;             // lower-case UDAF name
  std::vector<ExprPtr> args;    // bound over the input schema (0 or 1 arg)
  std::string out_name;         // internal slot name
  DataType out_type = DataType::kNull;

  std::string ToString() const;
};

/// \brief One equality conjunct of a join predicate, se(L) = se(R).
struct EquiPred {
  ExprPtr left;        // bound over the left input schema
  ExprPtr right;       // bound over the right input schema
  ExprPtr left_src;    // unbound source-level lineage of `left` (may be null)
  ExprPtr right_src;   // unbound source-level lineage of `right` (may be null)
  /// True when both sides reference ordered (temporal) attributes — this
  /// conjunct defines the tumbling-window correlation (paper §3.1).
  bool temporal = false;

  std::string ToString() const;
};

/// \brief Analyzed logical query node. Field groups apply by `kind`.
struct QueryNode {
  std::string name;
  QueryKind kind = QueryKind::kSelectProject;
  /// Original statement, kept for plan printing and re-analysis.
  ParsedQuery parsed;

  /// Child stream names (source streams or other query names); 1 entry, or 2
  /// for joins. `aliases` are the effective FROM aliases.
  std::vector<std::string> inputs;
  std::vector<std::string> aliases;
  std::vector<SchemaPtr> input_schemas;

  /// Pre-aggregation / scan filter, bound over the (concatenated) input
  /// schema. Null when absent.
  ExprPtr where;

  /// Output columns. Evaluation context: input schema for kSelectProject and
  /// kJoin (concatenated inputs); the internal schema for kAggregate.
  std::vector<NamedExpr> outputs;
  SchemaPtr output_schema;

  // ---- kAggregate ------------------------------------------------------
  /// Group-by keys, bound over the input schema.
  std::vector<NamedExpr> group_by;
  std::vector<AggregateSpec> aggregates;
  /// HAVING, bound over the internal schema; null when absent.
  ExprPtr having;
  /// Internal schema: group-by columns followed by aggregate slots.
  SchemaPtr internal_schema;
  /// Index into group_by of the tumbling-window (temporal) key, if any.
  std::optional<size_t> temporal_group_idx;

  // ---- kJoin -----------------------------------------------------------
  JoinType join_type = JoinType::kInner;
  std::vector<EquiPred> equi_preds;
  /// Non-equality conjuncts, bound over the concatenated schema.
  ExprPtr residual;

  /// Ultimate source stream this node's data derives from (left side for
  /// joins). The analysis framework assumes all inputs of a query set share
  /// one partitioned source (paper §4's simplifying assumption).
  std::string source_stream;

  // ---- Lineage ---------------------------------------------------------
  /// Per output column: an unbound scalar expression over the *source*
  /// stream's attributes that computes this column, or null when the column
  /// is aggregate-derived (or otherwise not a pure scalar of the source).
  std::vector<ExprPtr> output_source_exprs;

  /// \brief One-line summary, e.g.
  /// "flows: aggregate[TCP] group by ((time / 60), srcIP, destIP)".
  std::string Summary() const;
};

using QueryNodePtr = std::shared_ptr<const QueryNode>;

}  // namespace streampart
