#include "plan/printer.h"

#include <set>

namespace streampart {

namespace {

void PrintNodeRec(const QueryGraph& graph, const std::string& stream,
                  const std::string& prefix, bool last, bool is_root,
                  std::set<std::string>* expanded, std::string* out) {
  std::string connector;
  std::string child_prefix;
  if (is_root) {
    connector = "";
    child_prefix = "";
  } else {
    connector = prefix + (last ? "`-- " : "|-- ");
    child_prefix = prefix + (last ? "    " : "|   ");
  }

  if (graph.IsSource(stream)) {
    *out += connector + stream + " [source]\n";
    return;
  }
  auto node_result = graph.GetQuery(stream);
  if (!node_result.ok()) {
    *out += connector + stream + " [unknown]\n";
    return;
  }
  const QueryNodePtr& node = *node_result;
  if (expanded->count(stream) > 0) {
    *out += connector + stream + " (see above)\n";
    return;
  }
  expanded->insert(stream);
  *out += connector + node->Summary() + "\n";
  for (size_t i = 0; i < node->inputs.size(); ++i) {
    PrintNodeRec(graph, node->inputs[i], child_prefix,
                 i + 1 == node->inputs.size(), /*is_root=*/false, expanded,
                 out);
  }
}

}  // namespace

std::string PrintQueryTree(const QueryGraph& graph, const std::string& root) {
  std::string out;
  std::set<std::string> expanded;
  PrintNodeRec(graph, root, "", /*last=*/true, /*is_root=*/true, &expanded,
               &out);
  return out;
}

std::string PrintQueryDag(const QueryGraph& graph) {
  std::string out;
  std::set<std::string> expanded;
  for (const QueryNodePtr& root : graph.Roots()) {
    PrintNodeRec(graph, root->name, "", /*last=*/true, /*is_root=*/true,
                 &expanded, &out);
  }
  return out;
}

}  // namespace streampart
