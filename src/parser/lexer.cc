#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

#include "common/strings.h"

namespace streampart {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEof:
      return "<end of input>";
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword " + text;
    case TokenKind::kIntLiteral:
      return "integer " + std::to_string(int_value);
    case TokenKind::kFloatLiteral:
      return "float " + std::to_string(float_value);
    case TokenKind::kStringLiteral:
      return "string '" + text + "'";
    case TokenKind::kIpLiteral:
      return "ip " + FormatIpv4(static_cast<uint32_t>(int_value));
    default:
      return "'" + text + "'";
  }
}

bool IsGsqlKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM", "WHERE", "GROUP", "BY",  "HAVING", "AS",
      "JOIN",   "LEFT", "RIGHT", "FULL",  "OUTER", "INNER", "ON",
      "AND",    "OR",   "NOT",   "TRUE",  "FALSE", "NULL",
      "APPROX", "CONFIDENCE",
  };
  return kKeywords.count(ToUpper(word)) > 0;
}

namespace {

struct LexState {
  const std::string& text;
  size_t pos = 0;
  size_t line = 1;
  size_t line_start = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek(size_t ahead = 0) const {
    return pos + ahead < text.size() ? text[pos + ahead] : '\0';
  }
  char Advance() {
    char c = text[pos++];
    if (c == '\n') {
      ++line;
      line_start = pos;
    }
    return c;
  }
  Token StartToken(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.offset = pos;
    t.line = line;
    t.column = pos - line_start + 1;
    return t;
  }
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Attempts to lex a dotted-quad IPv4 literal starting at s.pos; the caller
/// verified the current char is a digit. Returns true and fills \p out when
/// the next characters form d+.d+.d+.d+ (not followed by an identifier char).
bool TryLexIp(LexState* s, Token* out) {
  size_t p = s->pos;
  const std::string& t = s->text;
  int dots = 0;
  size_t q = p;
  while (q < t.size() && (IsDigit(t[q]) || t[q] == '.')) {
    if (t[q] == '.') {
      // Reject trailing dot or consecutive dots.
      if (q + 1 >= t.size() || !IsDigit(t[q + 1])) break;
      ++dots;
    }
    ++q;
  }
  if (dots != 3) return false;
  uint32_t ip = 0;
  if (!ParseIpv4(std::string_view(t).substr(p, q - p), &ip)) return false;
  *out = s->StartToken(TokenKind::kIpLiteral);
  out->int_value = ip;
  out->text = t.substr(p, q - p);
  while (s->pos < q) s->Advance();
  return true;
}

}  // namespace

Result<std::vector<Token>> LexGsql(const std::string& text) {
  std::vector<Token> tokens;
  LexState s{text};
  while (!s.AtEnd()) {
    char c = s.Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      s.Advance();
      continue;
    }
    // Line comment.
    if (c == '-' && s.Peek(1) == '-') {
      while (!s.AtEnd() && s.Peek() != '\n') s.Advance();
      continue;
    }
    if (IsIdentStart(c)) {
      Token t = s.StartToken(TokenKind::kIdentifier);
      std::string word;
      while (!s.AtEnd() && IsIdentChar(s.Peek())) word += s.Advance();
      if (IsGsqlKeyword(word)) {
        t.kind = TokenKind::kKeyword;
        t.text = ToUpper(word);
      } else {
        t.text = word;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (IsDigit(c)) {
      Token ip_tok;
      if (TryLexIp(&s, &ip_tok)) {
        tokens.push_back(std::move(ip_tok));
        continue;
      }
      Token t = s.StartToken(TokenKind::kIntLiteral);
      std::string num;
      bool is_hex = false;
      bool is_float = false;
      if (c == '0' && (s.Peek(1) == 'x' || s.Peek(1) == 'X')) {
        num += s.Advance();
        num += s.Advance();
        is_hex = true;
        while (!s.AtEnd() && std::isxdigit(static_cast<unsigned char>(s.Peek()))) {
          num += s.Advance();
        }
        if (num.size() == 2) {
          return Status::ParseError("malformed hex literal at line ", t.line);
        }
      } else {
        while (!s.AtEnd() && IsDigit(s.Peek())) num += s.Advance();
        if (s.Peek() == '.' && IsDigit(s.Peek(1))) {
          is_float = true;
          num += s.Advance();
          while (!s.AtEnd() && IsDigit(s.Peek())) num += s.Advance();
        }
      }
      if (is_float) {
        t.kind = TokenKind::kFloatLiteral;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.int_value = std::strtoull(num.c_str(), nullptr, is_hex ? 16 : 10);
      }
      t.text = std::move(num);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      Token t = s.StartToken(TokenKind::kStringLiteral);
      s.Advance();  // opening quote
      std::string str;
      bool closed = false;
      while (!s.AtEnd()) {
        char d = s.Advance();
        if (d == '\'') {
          closed = true;
          break;
        }
        str += d;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line ",
                                  t.line);
      }
      t.text = std::move(str);
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    Token t = s.StartToken(TokenKind::kEof);
    auto emit1 = [&](TokenKind k) {
      t.kind = k;
      t.text = std::string(1, s.Advance());
      tokens.push_back(t);
    };
    auto emit2 = [&](TokenKind k) {
      t.kind = k;
      t.text += s.Advance();
      t.text += s.Advance();
      tokens.push_back(t);
    };
    switch (c) {
      case ',': emit1(TokenKind::kComma); break;
      case '.': emit1(TokenKind::kDot); break;
      case '(': emit1(TokenKind::kLParen); break;
      case ')': emit1(TokenKind::kRParen); break;
      case '*': emit1(TokenKind::kStar); break;
      case '+': emit1(TokenKind::kPlus); break;
      case '-': emit1(TokenKind::kMinus); break;
      case '/': emit1(TokenKind::kSlash); break;
      case '%': emit1(TokenKind::kPercent); break;
      case '&': emit1(TokenKind::kAmp); break;
      case '|': emit1(TokenKind::kPipe); break;
      case '^': emit1(TokenKind::kCaret); break;
      case '~': emit1(TokenKind::kTilde); break;
      case '=': emit1(TokenKind::kEq); break;
      case '<':
        if (s.Peek(1) == '=') {
          emit2(TokenKind::kLe);
        } else if (s.Peek(1) == '>') {
          emit2(TokenKind::kNe);
        } else if (s.Peek(1) == '<') {
          emit2(TokenKind::kShiftLeft);
        } else {
          emit1(TokenKind::kLt);
        }
        break;
      case '>':
        if (s.Peek(1) == '=') {
          emit2(TokenKind::kGe);
        } else if (s.Peek(1) == '>') {
          emit2(TokenKind::kShiftRight);
        } else {
          emit1(TokenKind::kGt);
        }
        break;
      case '!':
        if (s.Peek(1) == '=') {
          emit2(TokenKind::kNe);
        } else {
          return Status::ParseError("unexpected character '!' at line ", s.line);
        }
        break;
      case ';':
        s.Advance();  // statement terminator: ignored
        break;
      default:
        return Status::ParseError("unexpected character '", std::string(1, c),
                                  "' at line ", s.line);
    }
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.offset = text.size();
  eof.line = s.line;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace streampart
