#pragma once

/// \file stream_def.h
/// \brief DDL for source streams: the paper's schema notation
/// `PKT(time increasing, srcIP, destIP, len)` (§3.1), extended with types.
///
/// Grammar:
///   stream_def := [CREATE] [STREAM] name '(' field (',' field)* ')'
///   field      := name [type] [INCREASING | DECREASING]
///   type       := UINT | INT | DOUBLE | BOOL | STRING | IP
/// A field without a type defaults to UINT, matching the paper's examples.

#include <string>

#include "common/result.h"
#include "types/schema.h"

namespace streampart {

/// \brief A parsed stream definition.
struct StreamDef {
  std::string name;
  SchemaPtr schema;
};

/// \brief Parses one stream definition.
Result<StreamDef> ParseStreamDef(const std::string& text);

}  // namespace streampart
