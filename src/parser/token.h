#pragma once

/// \file token.h
/// \brief Lexical tokens of the GSQL subset.

#include <cstdint>
#include <string>

namespace streampart {

/// \brief Token categories produced by the lexer.
enum class TokenKind : uint8_t {
  kEof,
  kIdentifier,   // srcIP, flows, S1 (case-preserving)
  kKeyword,      // SELECT, FROM, ... (normalized to upper case in text)
  kIntLiteral,   // 42, 0xFFF0
  kFloatLiteral, // 1.5
  kStringLiteral,// 'abc' (quotes stripped)
  kIpLiteral,    // 10.0.0.1 (host-order uint32 in int_value)
  // Punctuation / operators:
  kComma, kDot, kLParen, kRParen, kStar, kPlus, kMinus, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kShiftLeft, kShiftRight,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

/// \brief One lexed token with source position for error reporting.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier/keyword/string spelling
  uint64_t int_value = 0; // for kIntLiteral / kIpLiteral
  double float_value = 0; // for kFloatLiteral
  size_t offset = 0;      // byte offset in the query text
  size_t line = 1;
  size_t column = 1;

  bool is(TokenKind k) const { return kind == k; }
  /// \brief True when this token is the given (upper-case) keyword.
  bool IsKeyword(const char* kw) const;

  std::string Describe() const;
};

}  // namespace streampart
