#include "parser/parser.h"

#include <cstdio>

#include "common/strings.h"
#include "parser/lexer.h"

namespace streampart {

// ---------------------------------------------------------------------------
// AST rendering
// ---------------------------------------------------------------------------

std::string SelectItem::OutputName(size_t position) const {
  if (!alias.empty()) return alias;
  if (expr && expr->is_column()) return expr->column_name();
  return "_col" + std::to_string(position);
}

std::string SelectItem::ToString() const {
  std::string out = expr ? expr->ToString() : "?";
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

const char* JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner: return "JOIN";
    case JoinType::kLeftOuter: return "LEFT OUTER JOIN";
    case JoinType::kRightOuter: return "RIGHT OUTER JOIN";
    case JoinType::kFullOuter: return "FULL OUTER JOIN";
  }
  return "JOIN";
}

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].ToString();
  }
  out += " FROM " + from[0].stream;
  if (!from[0].alias.empty()) out += " AS " + from[0].alias;
  if (from.size() == 2) {
    out += std::string(" ") + JoinTypeToString(join_type) + " " +
           from[1].stream;
    if (!from[1].alias.empty()) out += " AS " + from[1].alias;
    if (on) out += " ON " + on->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i].ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (approx_eps > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " APPROX %.12g", approx_eps);
    out += buf;
    if (approx_confidence > 0) {
      std::snprintf(buf, sizeof(buf), " CONFIDENCE %.12g", approx_confidence);
      out += buf;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseStatement() {
    SP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    ParsedQuery q;
    SP_ASSIGN_OR_RETURN(q.select_list, ParseItemList());
    SP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SP_RETURN_NOT_OK(ParseFromClause(&q));
    if (AcceptKeyword("WHERE")) {
      SP_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      SP_RETURN_NOT_OK(ExpectKeyword("BY"));
      SP_ASSIGN_OR_RETURN(q.group_by, ParseItemList());
    }
    if (AcceptKeyword("HAVING")) {
      SP_ASSIGN_OR_RETURN(q.having, ParseExpr());
    }
    if (AcceptKeyword("APPROX")) {
      SP_ASSIGN_OR_RETURN(q.approx_eps, ParseNumberLiteral("APPROX"));
      if (q.approx_eps <= 0 || q.approx_eps >= 1) {
        return Status::ParseError("APPROX tolerance must lie in (0, 1), got ",
                                  q.approx_eps);
      }
      if (AcceptKeyword("CONFIDENCE")) {
        SP_ASSIGN_OR_RETURN(q.approx_confidence,
                            ParseNumberLiteral("CONFIDENCE"));
        if (q.approx_confidence <= 0 || q.approx_confidence >= 1) {
          return Status::ParseError(
              "APPROX ... CONFIDENCE must lie in (0, 1), got ",
              q.approx_confidence);
        }
      }
    }
    if (!Peek().is(TokenKind::kEof)) {
      return ErrorHere("unexpected trailing input");
    }
    return q;
  }

  Result<ExprPtr> ParseBareExpression() {
    SP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!Peek().is(TokenKind::kEof)) {
      return ErrorHere("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Accept(TokenKind k) {
    if (Peek().is(k)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected ", kw, ", found ",
                                Peek().Describe(), " at line ", Peek().line);
    }
    return Status::OK();
  }
  Status Expect(TokenKind k, const char* what) {
    if (!Accept(k)) {
      return Status::ParseError("expected ", what, ", found ",
                                Peek().Describe(), " at line ", Peek().line);
    }
    return Status::OK();
  }
  Status ErrorHere(const std::string& msg) const {
    return Status::ParseError(msg, ": found ", Peek().Describe(), " at line ",
                              Peek().line);
  }

  /// Numeric literal of the APPROX clause (int or float token).
  Result<double> ParseNumberLiteral(const char* clause) {
    const Token& t = Peek();
    if (t.is(TokenKind::kFloatLiteral)) {
      Advance();
      return t.float_value;
    }
    if (t.is(TokenKind::kIntLiteral)) {
      Advance();
      return static_cast<double>(t.int_value);
    }
    return ErrorHere(std::string("expected numeric literal after ") + clause);
  }

  Result<std::vector<SelectItem>> ParseItemList() {
    std::vector<SelectItem> items;
    do {
      SelectItem item;
      SP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (!Peek().is(TokenKind::kIdentifier)) {
          return ErrorHere("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().is(TokenKind::kIdentifier)) {
        // Bare alias ("time/60 tb") — only when not followed by '.' (which
        // would make it a qualified column of the next item).
        item.alias = Advance().text;
      }
      items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    return items;
  }

  Status ParseFromClause(ParsedQuery* q) {
    SP_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    q->from.push_back(std::move(first));
    // Comma-style join: FROM a S1, b S2.
    if (Accept(TokenKind::kComma)) {
      SP_ASSIGN_OR_RETURN(TableRef second, ParseTableRef());
      q->from.push_back(std::move(second));
      q->join_type = JoinType::kInner;
      return Status::OK();
    }
    // Explicit JOIN syntax.
    JoinType type = JoinType::kInner;
    bool has_join = false;
    if (AcceptKeyword("INNER")) {
      SP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      has_join = true;
    } else if (AcceptKeyword("LEFT")) {
      AcceptKeyword("OUTER");
      SP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      type = JoinType::kLeftOuter;
      has_join = true;
    } else if (AcceptKeyword("RIGHT")) {
      AcceptKeyword("OUTER");
      SP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      type = JoinType::kRightOuter;
      has_join = true;
    } else if (AcceptKeyword("FULL")) {
      AcceptKeyword("OUTER");
      SP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      type = JoinType::kFullOuter;
      has_join = true;
    } else if (AcceptKeyword("JOIN")) {
      has_join = true;
    }
    if (has_join) {
      SP_ASSIGN_OR_RETURN(TableRef second, ParseTableRef());
      q->from.push_back(std::move(second));
      q->join_type = type;
      if (AcceptKeyword("ON")) {
        SP_ASSIGN_OR_RETURN(q->on, ParseExpr());
      }
    }
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    if (!Peek().is(TokenKind::kIdentifier)) {
      return ErrorHere("expected stream name");
    }
    TableRef ref;
    ref.stream = Advance().text;
    if (AcceptKeyword("AS")) {
      if (!Peek().is(TokenKind::kIdentifier)) {
        return ErrorHere("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().is(TokenKind::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // ---- Expression grammar, precedence climbing ------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      SP_ASSIGN_OR_RETURN(ExprPtr sub, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(sub));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBitOr());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (Accept(TokenKind::kNe)) {
        op = BinaryOp::kNe;
      } else if (Accept(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (Accept(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else if (Accept(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (Accept(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else {
        break;
      }
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBitOr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseBitOr() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBitXor());
    while (Accept(TokenKind::kPipe)) {
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBitXor());
      lhs = Expr::Binary(BinaryOp::kBitOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseBitXor() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBitAnd());
    while (Accept(TokenKind::kCaret)) {
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBitAnd());
      lhs = Expr::Binary(BinaryOp::kBitXor, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseBitAnd() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseShift());
    while (Accept(TokenKind::kAmp)) {
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseShift());
      lhs = Expr::Binary(BinaryOp::kBitAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseShift() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kShiftLeft)) {
        op = BinaryOp::kShiftLeft;
      } else if (Accept(TokenKind::kShiftRight)) {
        op = BinaryOp::kShiftRight;
      } else {
        break;
      }
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Accept(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Accept(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Accept(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      SP_ASSIGN_OR_RETURN(ExprPtr sub, ParseUnary());
      return Expr::Unary(UnaryOp::kNegate, std::move(sub));
    }
    if (Accept(TokenKind::kTilde)) {
      SP_ASSIGN_OR_RETURN(ExprPtr sub, ParseUnary());
      return Expr::Unary(UnaryOp::kBitNot, std::move(sub));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return ExprPtr(UintLit(t.int_value));
      case TokenKind::kFloatLiteral:
        Advance();
        return ExprPtr(Expr::Literal(Value::Double(t.float_value)));
      case TokenKind::kStringLiteral:
        Advance();
        return ExprPtr(Expr::Literal(Value::String(t.text)));
      case TokenKind::kIpLiteral:
        Advance();
        return ExprPtr(
            Expr::Literal(Value::Ip(static_cast<uint32_t>(t.int_value))));
      case TokenKind::kKeyword:
        if (t.text == "TRUE") {
          Advance();
          return ExprPtr(Expr::Literal(Value::Bool(true)));
        }
        if (t.text == "FALSE") {
          Advance();
          return ExprPtr(Expr::Literal(Value::Bool(false)));
        }
        if (t.text == "NULL") {
          Advance();
          return ExprPtr(Expr::Literal(Value::Null()));
        }
        return ErrorHere("unexpected keyword in expression");
      case TokenKind::kLParen: {
        Advance();
        SP_ASSIGN_OR_RETURN(ExprPtr sub, ParseExpr());
        SP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return sub;
      }
      case TokenKind::kIdentifier: {
        std::string first = Advance().text;
        // Function call: name(args) or name(*).
        if (Peek().is(TokenKind::kLParen)) {
          Advance();
          std::vector<ExprPtr> args;
          if (Accept(TokenKind::kStar)) {
            // COUNT(*) style.
          } else if (!Peek().is(TokenKind::kRParen)) {
            do {
              SP_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              args.push_back(std::move(a));
            } while (Accept(TokenKind::kComma));
          }
          SP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
          return ExprPtr(Expr::Call(ToLower(first), std::move(args)));
        }
        // Qualified column: alias.column.
        if (Peek().is(TokenKind::kDot)) {
          Advance();
          if (!Peek().is(TokenKind::kIdentifier)) {
            return ErrorHere("expected column name after '.'");
          }
          std::string col = Advance().text;
          return ExprPtr(Expr::Column(first, std::move(col)));
        }
        return ExprPtr(Expr::Column(std::move(first)));
      }
      default:
        return ErrorHere("unexpected token in expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& gsql) {
  SP_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexGsql(gsql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  SP_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexGsql(text));
  Parser parser(std::move(tokens));
  return parser.ParseBareExpression();
}

}  // namespace streampart
