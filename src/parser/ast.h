#pragma once

/// \file ast.h
/// \brief Parse-tree (unbound) representation of a GSQL query.

#include <string>
#include <vector>

#include "expr/expr.h"

namespace streampart {

/// \brief One SELECT-list or GROUP-BY item: an expression with an optional
/// alias ("time/60 as tb").
struct SelectItem {
  ExprPtr expr;
  std::string alias;

  /// \brief The output column name: the alias if present, the column name for
  /// a bare column reference, otherwise a synthesized name "_colN".
  std::string OutputName(size_t position) const;

  std::string ToString() const;
};

/// \brief Join flavor of a two-input query.
enum class JoinType : uint8_t {
  kInner = 0,
  kLeftOuter = 1,
  kRightOuter = 2,
  kFullOuter = 3,
};

const char* JoinTypeToString(JoinType type);

/// \brief One FROM-clause entry: a stream (source or named query) with an
/// optional alias.
struct TableRef {
  std::string stream;
  std::string alias;

  const std::string& EffectiveAlias() const {
    return alias.empty() ? stream : alias;
  }
};

/// \brief Unbound parse tree of a single GSQL statement.
///
/// The grammar covers the paper's query classes: selection/projection,
/// tumbling-window aggregation with GROUP BY ... AS aliases and HAVING, and
/// two-way (self-)joins written either with explicit JOIN or as a
/// comma-separated FROM list with the join predicate in WHERE.
struct ParsedQuery {
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;  // one entry, or two for a join
  JoinType join_type = JoinType::kInner;
  ExprPtr on;                  // JOIN ... ON predicate (may be null)
  ExprPtr where;               // may be null
  std::vector<SelectItem> group_by;
  ExprPtr having;              // may be null

  /// APPROX clause: the query tolerates bounded-error answers. `approx_eps`
  /// is the relative error budget (0 = exact answers required);
  /// `approx_confidence` the success probability of the bound (defaulted by
  /// the optimizer when the clause omits CONFIDENCE). The §5 optimizer may
  /// only choose the sketch leg (docs/SKETCHES.md) for annotated queries or
  /// under an explicit session-wide tolerance.
  double approx_eps = 0;
  double approx_confidence = 0;

  bool is_join() const { return from.size() == 2; }
  bool has_group_by() const { return !group_by.empty(); }
  bool has_approx() const { return approx_eps > 0; }

  /// \brief Round-trippable GSQL rendering (canonical formatting).
  std::string ToString() const;
};

}  // namespace streampart
