#pragma once

/// \file lexer.h
/// \brief Lexer for the GSQL subset.
///
/// Keywords are case-insensitive. Identifiers preserve case (column names
/// like srcIP are case-sensitive). Integer literals accept decimal and 0x
/// hexadecimal. Dotted-quad IPv4 literals (10.1.2.3) lex as kIpLiteral.
/// Comments: `--` to end of line.

#include <string>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace streampart {

/// \brief Lexes \p text into a token stream terminated by kEof.
Result<std::vector<Token>> LexGsql(const std::string& text);

/// \brief True if \p word (any case) is a reserved GSQL keyword.
bool IsGsqlKeyword(const std::string& word);

}  // namespace streampart
