#include "parser/stream_def.h"

#include <set>

#include "common/strings.h"
#include "parser/lexer.h"

namespace streampart {

namespace {

Result<DataType> TypeFromWord(const std::string& word) {
  std::string lower = ToLower(word);
  if (lower == "uint" || lower == "ullong" || lower == "ulong") {
    return DataType::kUint;
  }
  if (lower == "int" || lower == "llong") return DataType::kInt;
  if (lower == "double" || lower == "float") return DataType::kDouble;
  if (lower == "bool") return DataType::kBool;
  if (lower == "string" || lower == "v_str") return DataType::kString;
  if (lower == "ip" || lower == "ipv4") return DataType::kIp;
  return Status::ParseError("unknown type '", word, "'");
}

bool IsTypeWord(const std::string& word) {
  return TypeFromWord(word).ok();
}

}  // namespace

Result<StreamDef> ParseStreamDef(const std::string& text) {
  SP_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexGsql(text));
  size_t pos = 0;
  auto peek = [&]() -> const Token& { return tokens[pos]; };
  auto advance = [&]() -> const Token& {
    return tokens[pos < tokens.size() - 1 ? pos++ : pos];
  };
  auto accept_word = [&](const char* word) {
    if (peek().is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(peek().text, word)) {
      advance();
      return true;
    }
    return false;
  };

  // Both `CREATE STREAM name (...)` and the paper's bare `name (...)`
  // notation are accepted.
  accept_word("create");
  accept_word("stream");
  if (!peek().is(TokenKind::kIdentifier)) {
    return Status::ParseError("expected stream name, found ",
                              peek().Describe());
  }
  StreamDef def;
  def.name = advance().text;
  if (!peek().is(TokenKind::kLParen)) {
    return Status::ParseError("expected '(' after stream name");
  }
  advance();

  std::vector<Field> fields;
  std::set<std::string> names;
  while (true) {
    if (!peek().is(TokenKind::kIdentifier)) {
      return Status::ParseError("expected field name, found ",
                                peek().Describe());
    }
    Field field;
    field.name = advance().text;
    if (!names.insert(field.name).second) {
      return Status::ParseError("duplicate field '", field.name, "'");
    }
    field.type = DataType::kUint;
    field.order = TemporalOrder::kNone;
    // Optional type word, then optional ordering word (in either order the
    // paper writes them: "time increasing" or "time uint increasing").
    if (peek().is(TokenKind::kIdentifier) && IsTypeWord(peek().text)) {
      SP_ASSIGN_OR_RETURN(field.type, TypeFromWord(advance().text));
    }
    if (peek().is(TokenKind::kIdentifier)) {
      if (EqualsIgnoreCase(peek().text, "increasing")) {
        field.order = TemporalOrder::kIncreasing;
        advance();
      } else if (EqualsIgnoreCase(peek().text, "decreasing")) {
        field.order = TemporalOrder::kDecreasing;
        advance();
      }
    }
    fields.push_back(std::move(field));
    if (peek().is(TokenKind::kComma)) {
      advance();
      continue;
    }
    break;
  }
  if (!peek().is(TokenKind::kRParen)) {
    return Status::ParseError("expected ')' or ',', found ",
                              peek().Describe());
  }
  advance();
  if (!peek().is(TokenKind::kEof)) {
    return Status::ParseError("unexpected trailing input: ",
                              peek().Describe());
  }
  if (fields.empty()) {
    return Status::ParseError("stream needs at least one field");
  }
  def.schema = Schema::Make(std::move(fields));
  return def;
}

}  // namespace streampart
