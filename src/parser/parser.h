#pragma once

/// \file parser.h
/// \brief Recursive-descent parser for the GSQL subset.
///
/// Grammar (keywords case-insensitive):
///
///   query      := SELECT select_list FROM from_clause
///                 [WHERE expr] [GROUP BY item_list] [HAVING expr]
///   from_clause:= table_ref [join_tail | ',' table_ref]
///   join_tail  := [INNER | {LEFT|RIGHT|FULL} [OUTER]] JOIN table_ref
///                 [ON expr]
///   table_ref  := identifier [[AS] identifier]
///   item_list  := item (',' item)*
///   item       := expr [[AS] identifier]
///
/// Expression precedence, loosest to tightest:
///   OR < AND < NOT < comparison (= <> != < <= > >=) < '|' < '^' < '&'
///      < shifts (<< >>) < additive (+ -) < multiplicative (* / %)
///      < unary (- ~) < primary
///
/// Note that unlike C, bitwise operators bind tighter than comparisons, so
/// `flags & 0x2 = 0x2` parses as `(flags & 0x2) = 0x2` (matching GSQL).

#include <string>

#include "common/result.h"
#include "parser/ast.h"

namespace streampart {

/// \brief Parses one GSQL statement. A trailing semicolon is permitted.
Result<ParsedQuery> ParseQuery(const std::string& gsql);

/// \brief Parses a standalone scalar expression (used for partitioning-set
/// specs such as "srcIP & 0xFFF0").
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace streampart
