#include "expr/scalar_form.h"

#include <numeric>

#include "common/logging.h"

namespace streampart {

namespace {

/// lcm with overflow guard; returns 0 on overflow (callers treat 0 as fail).
uint64_t SafeLcm(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  uint64_t g = std::gcd(a, b);
  uint64_t q = a / g;
  if (q > UINT64_MAX / b) return 0;
  return q * b;
}

/// 2^k as uint64, or 0 on overflow.
uint64_t PowerOfTwo(uint64_t k) { return k >= 64 ? 0 : (1ULL << k); }

}  // namespace

bool ScalarForm::Equals(const ScalarForm& other) const {
  if (kind != other.kind) return false;
  if (kind == ScalarFormKind::kOpaque) return Expr::Equal(opaque, other.opaque);
  if (kind == ScalarFormKind::kIdentity) return true;
  return param == other.param;
}

std::string ScalarForm::ToString(const std::string& attr) const {
  switch (kind) {
    case ScalarFormKind::kIdentity:
      return attr;
    case ScalarFormKind::kDiv:
      return attr + "/" + std::to_string(param);
    case ScalarFormKind::kMask: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "0x%llX",
                    static_cast<unsigned long long>(param));
      return attr + "&" + buf;
    }
    case ScalarFormKind::kShift:
      return attr + ">>" + std::to_string(param);
    case ScalarFormKind::kMod:
      return attr + "%" + std::to_string(param);
    case ScalarFormKind::kOpaque:
      return opaque ? opaque->ToString() : "<opaque>";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

namespace {

/// Extracts a non-negative integer constant from a literal expression.
std::optional<uint64_t> LiteralUint(const ExprPtr& e) {
  if (!e || !e->is_literal()) return std::nullopt;
  const Value& v = e->literal();
  switch (v.type()) {
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      return v.uint_value();
    case DataType::kInt:
      if (v.int_value() < 0) return std::nullopt;
      return static_cast<uint64_t>(v.int_value());
    default:
      return std::nullopt;
  }
}

/// Recursive analysis; returns the canonical form of \p expr as a function of
/// the (already verified unique) base column.
ScalarForm AnalyzeRec(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
      return ScalarForm::Identity();
    case ExprKind::kBinary: {
      BinaryOp op = expr->binary_op();
      const ExprPtr& l = expr->left();
      const ExprPtr& r = expr->right();
      // Recognize <subexpr> OP <literal> (and literal & subexpr for masks).
      ExprPtr sub;
      std::optional<uint64_t> c;
      if ((c = LiteralUint(r)).has_value()) {
        sub = l;
      } else if (op == BinaryOp::kBitAnd && (c = LiteralUint(l)).has_value()) {
        sub = r;
      } else {
        return ScalarForm::Opaque(expr);
      }
      ScalarForm inner = AnalyzeRec(sub);
      ScalarForm outer = ScalarForm::Opaque(expr);
      switch (op) {
        case BinaryOp::kDiv:
          if (*c == 0) return ScalarForm::Opaque(expr);
          outer = (*c == 1) ? ScalarForm::Identity() : ScalarForm::Div(*c);
          break;
        case BinaryOp::kBitAnd:
          outer = ScalarForm::Mask(*c);
          break;
        case BinaryOp::kShiftRight:
          outer = (*c == 0) ? ScalarForm::Identity() : ScalarForm::Shift(*c);
          break;
        case BinaryOp::kMod:
          if (*c == 0) return ScalarForm::Opaque(expr);
          outer = ScalarForm::Mod(*c);
          break;
        default:
          return ScalarForm::Opaque(expr);
      }
      return ComposeForms(outer, inner, expr);
    }
    default:
      return ScalarForm::Opaque(expr);
  }
}

}  // namespace

Result<AnalyzedScalar> AnalyzeScalarExpr(const ExprPtr& expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null expression");
  }
  std::vector<const Expr*> cols;
  expr->CollectColumns(&cols);
  if (cols.empty()) {
    return Status::AnalysisError(
        "partitioning expression references no column: ", expr->ToString());
  }
  const std::string& base = cols[0]->column_name();
  for (const Expr* c : cols) {
    if (c->column_name() != base) {
      return Status::AnalysisError(
          "partitioning expression must reference exactly one attribute, "
          "found '",
          base, "' and '", c->column_name(), "' in ", expr->ToString());
    }
  }
  AnalyzedScalar out;
  out.base_column = base;
  out.form = AnalyzeRec(expr);
  return out;
}

ScalarForm ComposeForms(const ScalarForm& outer, const ScalarForm& inner,
                        const ExprPtr& composed_expr) {
  using K = ScalarFormKind;
  if (inner.kind == K::kIdentity) return outer;
  if (outer.kind == K::kIdentity) return inner;
  if (inner.is_opaque() || outer.is_opaque()) {
    return ScalarForm::Opaque(composed_expr);
  }
  switch (outer.kind) {
    case K::kDiv:
      // (g(x)) / c
      if (inner.kind == K::kDiv) {
        // (x/a)/c == x/(a*c) for non-negative integers.
        uint64_t prod = (inner.param > UINT64_MAX / outer.param)
                            ? 0
                            : inner.param * outer.param;
        if (prod == 0) return ScalarForm::Opaque(composed_expr);
        return ScalarForm::Div(prod);
      }
      if (inner.kind == K::kShift) {
        uint64_t p = PowerOfTwo(inner.param);
        if (p == 0 || p > UINT64_MAX / outer.param) {
          return ScalarForm::Opaque(composed_expr);
        }
        return ScalarForm::Div(p * outer.param);
      }
      return ScalarForm::Opaque(composed_expr);
    case K::kShift:
      if (inner.kind == K::kShift) return ScalarForm::Shift(inner.param + outer.param);
      if (inner.kind == K::kDiv) {
        uint64_t p = PowerOfTwo(outer.param);
        if (p == 0 || p > UINT64_MAX / inner.param) {
          return ScalarForm::Opaque(composed_expr);
        }
        return ScalarForm::Div(p * inner.param);
      }
      return ScalarForm::Opaque(composed_expr);
    case K::kMask:
      if (inner.kind == K::kMask) {
        uint64_t m = inner.param & outer.param;
        return ScalarForm::Mask(m);
      }
      return ScalarForm::Opaque(composed_expr);
    case K::kMod:
      if (inner.kind == K::kMod && inner.param % outer.param == 0) {
        // (x % a) % c == x % c when c divides a.
        return ScalarForm::Mod(outer.param);
      }
      return ScalarForm::Opaque(composed_expr);
    default:
      return ScalarForm::Opaque(composed_expr);
  }
}

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

bool IsFunctionOf(const ScalarForm& coarse, const ScalarForm& fine) {
  using K = ScalarFormKind;
  if (fine.kind == K::kIdentity) return true;  // anything = h(x).
  if (coarse.Equals(fine)) return true;
  if (coarse.is_opaque() || fine.is_opaque()) return false;
  switch (coarse.kind) {
    case K::kIdentity:
      // x is a function of g(x) only when g is injective; none of the
      // non-identity canonical forms are.
      return false;
    case K::kDiv:
      if (fine.kind == K::kDiv) return coarse.param % fine.param == 0;
      if (fine.kind == K::kShift) {
        uint64_t p = PowerOfTwo(fine.param);
        return p != 0 && coarse.param % p == 0;
      }
      return false;
    case K::kShift:
      if (fine.kind == K::kShift) return coarse.param >= fine.param;
      if (fine.kind == K::kDiv) {
        uint64_t p = PowerOfTwo(coarse.param);
        return p != 0 && p % fine.param == 0;
      }
      if (fine.kind == K::kMask) {
        // x>>k from x&m: requires every bit at position >= k present in m —
        // domain-dependent; conservatively false.
        return false;
      }
      return false;
    case K::kMask:
      if (fine.kind == K::kMask) {
        return (coarse.param & fine.param) == coarse.param;
      }
      if (fine.kind == K::kShift) {
        // x&m from x>>k: possible when m has no bits below k, since then
        // x&m == ((x>>k) & (m>>k)) << k.
        uint64_t low = (fine.param >= 64) ? ~0ULL : ((1ULL << fine.param) - 1);
        return (coarse.param & low) == 0;
      }
      return false;
    case K::kMod:
      if (fine.kind == K::kMod) return fine.param % coarse.param == 0;
      return false;
    case K::kOpaque:
      return false;
  }
  return false;
}

std::optional<ScalarForm> ReconcileForms(const ScalarForm& a,
                                         const ScalarForm& b) {
  using K = ScalarFormKind;
  if (IsFunctionOf(a, b)) return a;
  if (IsFunctionOf(b, a)) return b;
  // Neither subsumes the other: look for a strict common coarsening.
  if (a.is_opaque() || b.is_opaque()) return std::nullopt;
  if (a.kind == K::kDiv && b.kind == K::kDiv) {
    uint64_t l = SafeLcm(a.param, b.param);
    if (l == 0) return std::nullopt;
    return ScalarForm::Div(l);
  }
  if ((a.kind == K::kDiv && b.kind == K::kShift) ||
      (a.kind == K::kShift && b.kind == K::kDiv)) {
    const ScalarForm& div = a.kind == K::kDiv ? a : b;
    const ScalarForm& shift = a.kind == K::kShift ? a : b;
    uint64_t p = PowerOfTwo(shift.param);
    if (p == 0) return std::nullopt;
    uint64_t l = SafeLcm(div.param, p);
    if (l == 0) return std::nullopt;
    return ScalarForm::Div(l);
  }
  if (a.kind == K::kMask && b.kind == K::kMask) {
    uint64_t m = a.param & b.param;
    if (m == 0) return std::nullopt;  // Constant function: useless.
    return ScalarForm::Mask(m);
  }
  if ((a.kind == K::kMask && b.kind == K::kShift) ||
      (a.kind == K::kShift && b.kind == K::kMask)) {
    const ScalarForm& mask = a.kind == K::kMask ? a : b;
    const ScalarForm& shift = a.kind == K::kShift ? a : b;
    uint64_t low = (shift.param >= 64) ? ~0ULL : ((1ULL << shift.param) - 1);
    uint64_t m = mask.param & ~low;
    if (m == 0) return std::nullopt;
    return ScalarForm::Mask(m);
  }
  if (a.kind == K::kMod && b.kind == K::kMod) {
    uint64_t g = std::gcd(a.param, b.param);
    if (g <= 1) return std::nullopt;
    return ScalarForm::Mod(g);
  }
  return std::nullopt;
}

ExprPtr FormToExpr(const ScalarForm& form, const std::string& column) {
  ExprPtr col = Expr::Column(column);
  switch (form.kind) {
    case ScalarFormKind::kIdentity:
      return col;
    case ScalarFormKind::kDiv:
      return Expr::Binary(BinaryOp::kDiv, col, UintLit(form.param));
    case ScalarFormKind::kMask:
      return Expr::Binary(BinaryOp::kBitAnd, col, UintLit(form.param));
    case ScalarFormKind::kShift:
      return Expr::Binary(BinaryOp::kShiftRight, col, UintLit(form.param));
    case ScalarFormKind::kMod:
      return Expr::Binary(BinaryOp::kMod, col, UintLit(form.param));
    case ScalarFormKind::kOpaque:
      return form.opaque;
  }
  return col;
}

}  // namespace streampart
