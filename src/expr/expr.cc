#include "expr/expr.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace streampart {

// The private-constructor access pattern: the factories need a shared_ptr of
// a privately-constructible type, so construction goes through a friend shim.
class ExprBuilderAccess {
 public:
  static std::shared_ptr<Expr> Make() { return std::shared_ptr<Expr>(new Expr()); }
};

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShiftLeft: return "<<";
    case BinaryOp::kShiftRight: return ">>";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNegate: return "-";
    case UnaryOp::kNot: return "NOT";
    case UnaryOp::kBitNot: return "~";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  return op >= BinaryOp::kEq && op <= BinaryOp::kGe;
}
bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}
bool IsBitwise(BinaryOp op) {
  return op >= BinaryOp::kBitAnd && op <= BinaryOp::kShiftRight;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

ExprPtr Expr::Column(std::string qualifier, std::string name) {
  auto e = ExprBuilderAccess::Make();
  e->kind_ = ExprKind::kColumnRef;
  e->qualifier_ = std::move(qualifier);
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = ExprBuilderAccess::Make();
  e->kind_ = ExprKind::kLiteral;
  e->result_type_ = v.type();
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  SP_CHECK(left && right) << "Binary expr with null child";
  auto e = ExprBuilderAccess::Make();
  e->kind_ = ExprKind::kBinary;
  e->bin_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  SP_CHECK(operand != nullptr) << "Unary expr with null child";
  auto e = ExprBuilderAccess::Make();
  e->kind_ = ExprKind::kUnary;
  e->un_op_ = op;
  e->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args) {
  auto e = ExprBuilderAccess::Make();
  e->kind_ = ExprKind::kCall;
  e->name_ = std::move(name);
  e->children_ = std::move(args);
  return e;
}

bool Expr::is_bound() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return bound_index_ != kUnboundIndex;
    case ExprKind::kLiteral:
      return true;
    default:
      for (const ExprPtr& c : children_) {
        if (!c->is_bound()) return false;
      }
      return true;
  }
}

// ---------------------------------------------------------------------------
// Structural operations
// ---------------------------------------------------------------------------

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumnRef:
      return qualifier_ == other.qualifier_ && name_ == other.name_;
    case ExprKind::kLiteral:
      return literal_ == other.literal_;
    case ExprKind::kBinary:
      if (bin_op_ != other.bin_op_) return false;
      break;
    case ExprKind::kUnary:
      if (un_op_ != other.un_op_) return false;
      break;
    case ExprKind::kCall:
      if (name_ != other.name_) return false;
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->Equals(*b);
}

uint64_t Expr::Hash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ExprKind::kColumnRef:
      h = HashCombine(h, HashBytes(qualifier_));
      h = HashCombine(h, HashBytes(name_));
      break;
    case ExprKind::kLiteral:
      h = HashCombine(h, literal_.Hash());
      break;
    case ExprKind::kBinary:
      h = HashCombine(h, static_cast<uint64_t>(bin_op_));
      break;
    case ExprKind::kUnary:
      h = HashCombine(h, static_cast<uint64_t>(un_op_));
      break;
    case ExprKind::kCall:
      h = HashCombine(h, HashBytes(name_));
      break;
  }
  for (const ExprPtr& c : children_) h = HashCombine(h, c->Hash());
  return h;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return qualifier_.empty() ? name_ : qualifier_ + "." + name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " + BinaryOpToString(bin_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string(UnaryOpToString(un_op_)) + "(" +
             children_[0]->ToString() + ")";
    case ExprKind::kCall: {
      std::string out = name_ + "(";
      if (children_.empty() && name_ == "count") out += "*";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

void Expr::CollectColumns(std::vector<const Expr*>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->push_back(this);
    return;
  }
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

bool Expr::ContainsAggregate() const {
  if (kind_ == ExprKind::kCall && is_aggregate_) return true;
  for (const ExprPtr& c : children_) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

void BindingContext::AddInput(std::string qualifier, SchemaPtr schema) {
  size_t width = schema->num_fields();
  inputs_.push_back(Input{std::move(qualifier), std::move(schema), total_width_});
  total_width_ += width;
}

Result<std::pair<size_t, DataType>> BindingContext::Resolve(
    const std::string& qualifier, const std::string& name) const {
  if (!qualifier.empty()) {
    for (const Input& in : inputs_) {
      if (in.qualifier == qualifier) {
        auto idx = in.schema->FieldIndex(name);
        if (!idx.has_value()) {
          return Status::AnalysisError("no column '", name, "' in input '",
                                       qualifier, "'");
        }
        return std::make_pair(in.offset + *idx, in.schema->field(*idx).type);
      }
    }
    return Status::AnalysisError("unknown input qualifier '", qualifier, "'");
  }
  // Unqualified: search all inputs; error on ambiguity.
  std::optional<std::pair<size_t, DataType>> found;
  for (const Input& in : inputs_) {
    auto idx = in.schema->FieldIndex(name);
    if (idx.has_value()) {
      if (found.has_value()) {
        return Status::AnalysisError("ambiguous column '", name,
                                     "': present in multiple inputs");
      }
      found = std::make_pair(in.offset + *idx, in.schema->field(*idx).type);
    }
  }
  if (!found.has_value()) {
    return Status::AnalysisError("unknown column '", name, "'");
  }
  return *found;
}

Result<ExprPtr> Expr::Bind(const BindingContext& ctx,
                           const FunctionTypeResolver* resolver) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      SP_ASSIGN_OR_RETURN(auto resolved, ctx.Resolve(qualifier_, name_));
      auto e = ExprBuilderAccess::Make();
      e->kind_ = ExprKind::kColumnRef;
      e->qualifier_ = qualifier_;
      e->name_ = name_;
      e->bound_index_ = resolved.first;
      e->result_type_ = resolved.second;
      return ExprPtr(e);
    }
    case ExprKind::kLiteral:
      return ExprPtr(Expr::Literal(literal_));
    case ExprKind::kBinary: {
      SP_ASSIGN_OR_RETURN(ExprPtr lhs, children_[0]->Bind(ctx, resolver));
      SP_ASSIGN_OR_RETURN(ExprPtr rhs, children_[1]->Bind(ctx, resolver));
      DataType lt = lhs->result_type();
      DataType rt = rhs->result_type();
      auto e = ExprBuilderAccess::Make();
      e->kind_ = ExprKind::kBinary;
      e->bin_op_ = bin_op_;
      e->children_ = {std::move(lhs), std::move(rhs)};
      if (IsComparison(bin_op_) || IsLogical(bin_op_)) {
        e->result_type_ = DataType::kBool;
      } else if (IsBitwise(bin_op_)) {
        // NULL operands (outer-join padding) pass through; they evaluate to
        // NULL at runtime.
        if ((!IsIntegral(lt) && lt != DataType::kNull) ||
            (!IsIntegral(rt) && rt != DataType::kNull)) {
          return Status::AnalysisError("bitwise operator ",
                                       BinaryOpToString(bin_op_),
                                       " requires integral operands");
        }
        e->result_type_ = DataType::kUint;
      } else {
        // Arithmetic with a NULL operand takes the other side's type (the
        // runtime result is NULL); this arises from outer-join padding.
        bool l_ok = IsNumeric(lt) || lt == DataType::kNull;
        bool r_ok = IsNumeric(rt) || rt == DataType::kNull;
        DataType promoted = DataType::kNull;
        if (l_ok && r_ok) {
          if (lt == DataType::kNull && rt == DataType::kNull) {
            promoted = DataType::kUint;
          } else if (lt == DataType::kNull) {
            promoted = rt;
          } else if (rt == DataType::kNull) {
            promoted = lt;
          } else {
            promoted = PromoteNumeric(lt, rt);
          }
        }
        if (promoted == DataType::kNull) {
          return Status::AnalysisError("arithmetic operator ",
                                       BinaryOpToString(bin_op_),
                                       " on non-numeric operands (",
                                       DataTypeToString(lt), ", ",
                                       DataTypeToString(rt), ")");
        }
        e->result_type_ = promoted;
      }
      return ExprPtr(e);
    }
    case ExprKind::kUnary: {
      SP_ASSIGN_OR_RETURN(ExprPtr sub, children_[0]->Bind(ctx, resolver));
      auto e = ExprBuilderAccess::Make();
      e->kind_ = ExprKind::kUnary;
      e->un_op_ = un_op_;
      switch (un_op_) {
        case UnaryOp::kNot:
          e->result_type_ = DataType::kBool;
          break;
        case UnaryOp::kBitNot:
          if (!IsIntegral(sub->result_type())) {
            return Status::AnalysisError("~ requires an integral operand");
          }
          e->result_type_ = DataType::kUint;
          break;
        case UnaryOp::kNegate:
          e->result_type_ = sub->result_type() == DataType::kDouble
                                ? DataType::kDouble
                                : DataType::kInt;
          break;
      }
      e->children_ = {std::move(sub)};
      return ExprPtr(e);
    }
    case ExprKind::kCall: {
      if (resolver == nullptr) {
        return Status::AnalysisError("function call '", name_,
                                     "' in a context that allows no calls");
      }
      std::vector<ExprPtr> bound_args;
      std::vector<DataType> arg_types;
      bound_args.reserve(children_.size());
      for (const ExprPtr& a : children_) {
        SP_ASSIGN_OR_RETURN(ExprPtr b, a->Bind(ctx, resolver));
        arg_types.push_back(b->result_type());
        bound_args.push_back(std::move(b));
      }
      SP_ASSIGN_OR_RETURN(DataType out_type,
                          resolver->ResolveCall(name_, arg_types));
      auto e = ExprBuilderAccess::Make();
      e->kind_ = ExprKind::kCall;
      e->name_ = name_;
      e->children_ = std::move(bound_args);
      e->is_aggregate_ = resolver->IsAggregate(name_);
      e->result_type_ = out_type;
      return ExprPtr(e);
    }
  }
  return Status::Internal("unreachable expression kind in Bind");
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

Value EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.type() == DataType::kDouble || r.type() == DataType::kDouble) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd: return Value::Double(a + b);
      case BinaryOp::kSub: return Value::Double(a - b);
      case BinaryOp::kMul: return Value::Double(a * b);
      case BinaryOp::kDiv: return b == 0.0 ? Value::Null() : Value::Double(a / b);
      case BinaryOp::kMod: return Value::Null();
      default: return Value::Null();
    }
  }
  if (l.type() == DataType::kInt || r.type() == DataType::kInt) {
    int64_t a = l.AsInt64();
    int64_t b = r.AsInt64();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv: return b == 0 ? Value::Null() : Value::Int(a / b);
      case BinaryOp::kMod: return b == 0 ? Value::Null() : Value::Int(a % b);
      default: return Value::Null();
    }
  }
  uint64_t a = l.AsUint64();
  uint64_t b = r.AsUint64();
  switch (op) {
    case BinaryOp::kAdd: return Value::Uint(a + b);
    case BinaryOp::kSub: return Value::Uint(a - b);
    case BinaryOp::kMul: return Value::Uint(a * b);
    case BinaryOp::kDiv: return b == 0 ? Value::Null() : Value::Uint(a / b);
    case BinaryOp::kMod: return b == 0 ? Value::Null() : Value::Uint(a % b);
    default: return Value::Null();
  }
}

Value EvalBitwise(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  uint64_t a = l.AsUint64();
  uint64_t b = r.AsUint64();
  switch (op) {
    case BinaryOp::kBitAnd: return Value::Uint(a & b);
    case BinaryOp::kBitOr: return Value::Uint(a | b);
    case BinaryOp::kBitXor: return Value::Uint(a ^ b);
    case BinaryOp::kShiftLeft: return Value::Uint(b >= 64 ? 0 : a << b);
    case BinaryOp::kShiftRight: return Value::Uint(b >= 64 ? 0 : a >> b);
    default: return Value::Null();
  }
}

int CompareValues(const Value& l, const Value& r) {
  if (l.type() == DataType::kString && r.type() == DataType::kString) {
    return l.string_value().compare(r.string_value());
  }
  if (l.type() == DataType::kDouble || r.type() == DataType::kDouble) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (l.type() == DataType::kInt || r.type() == DataType::kInt) {
    int64_t a = l.AsInt64();
    int64_t b = r.AsInt64();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  uint64_t a = l.AsUint64();
  uint64_t b = r.AsUint64();
  return a < b ? -1 : (a > b ? 1 : 0);
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = CompareValues(l, r);
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(c == 0);
    case BinaryOp::kNe: return Value::Bool(c != 0);
    case BinaryOp::kLt: return Value::Bool(c < 0);
    case BinaryOp::kLe: return Value::Bool(c <= 0);
    case BinaryOp::kGt: return Value::Bool(c > 0);
    case BinaryOp::kGe: return Value::Bool(c >= 0);
    default: return Value::Null();
  }
}

}  // namespace

Value Expr::Eval(const Tuple& tuple) const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      SP_DCHECK(bound_index_ != kUnboundIndex)
          << "evaluating unbound column " << name_;
      SP_DCHECK(bound_index_ < tuple.size());
      return tuple.at(bound_index_);
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kBinary: {
      if (IsLogical(bin_op_)) {
        // Short-circuit with three-valued truthiness collapsed to two: NULL
        // behaves as false, matching the filter-context semantics GSQL uses.
        bool lv = children_[0]->Eval(tuple).Truthy();
        if (bin_op_ == BinaryOp::kAnd) {
          return Value::Bool(lv && children_[1]->Eval(tuple).Truthy());
        }
        return Value::Bool(lv || children_[1]->Eval(tuple).Truthy());
      }
      Value l = children_[0]->Eval(tuple);
      Value r = children_[1]->Eval(tuple);
      if (IsComparison(bin_op_)) return EvalComparison(bin_op_, l, r);
      if (IsBitwise(bin_op_)) return EvalBitwise(bin_op_, l, r);
      return EvalArithmetic(bin_op_, l, r);
    }
    case ExprKind::kUnary: {
      Value v = children_[0]->Eval(tuple);
      switch (un_op_) {
        case UnaryOp::kNot:
          return Value::Bool(!v.Truthy());
        case UnaryOp::kBitNot:
          return v.is_null() ? Value::Null() : Value::Uint(~v.AsUint64());
        case UnaryOp::kNegate:
          if (v.is_null()) return Value::Null();
          if (v.type() == DataType::kDouble) return Value::Double(-v.AsDouble());
          return Value::Int(-v.AsInt64());
      }
      return Value::Null();
    }
    case ExprKind::kCall:
      // Aggregate calls are rewritten to column refs over aggregate slots by
      // the plan layer; reaching here means a scalar call survived, which the
      // engine does not evaluate directly.
      SP_CHECK(false) << "Eval on unexpanded call '" << name_ << "'";
  }
  return Value::Null();
}

ExprPtr Expr::Rewrite(const ExprPtr& expr, const RewriteFn& fn) {
  if (expr == nullptr) return nullptr;
  ExprPtr replaced = fn(expr);
  if (replaced != nullptr) return replaced;
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kBinary: {
      ExprPtr l = Rewrite(expr->left(), fn);
      ExprPtr r = Rewrite(expr->right(), fn);
      if (l == expr->left() && r == expr->right()) return expr;
      return Expr::Binary(expr->binary_op(), std::move(l), std::move(r));
    }
    case ExprKind::kUnary: {
      ExprPtr sub = Rewrite(expr->operand(), fn);
      if (sub == expr->operand()) return expr;
      return Expr::Unary(expr->unary_op(), std::move(sub));
    }
    case ExprKind::kCall: {
      bool changed = false;
      std::vector<ExprPtr> args;
      args.reserve(expr->args().size());
      for (const ExprPtr& a : expr->args()) {
        ExprPtr na = Rewrite(a, fn);
        changed |= (na != a);
        args.push_back(std::move(na));
      }
      if (!changed) return expr;
      return Expr::Call(expr->call_name(), std::move(args));
    }
  }
  return expr;
}

ExprPtr UintLit(uint64_t v) { return Expr::Literal(Value::Uint(v)); }
ExprPtr IntLit(int64_t v) { return Expr::Literal(Value::Int(v)); }

}  // namespace streampart
