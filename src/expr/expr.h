#pragma once

/// \file expr.h
/// \brief Scalar-expression AST for GSQL queries.
///
/// Expressions are immutable trees shared by shared_ptr<const Expr>. The same
/// representation serves three roles:
///   1. query surface syntax (SELECT/WHERE/GROUP BY/HAVING expressions),
///   2. partitioning sets — sets of scalar expressions over source-stream
///      attributes (paper §3.3: (sc_exp1(attr1), ..., sc_expn(attrn))),
///   3. runtime evaluation after binding against an input schema.
///
/// An unbound expression refers to columns by (qualifier, name); Bind()
/// resolves them to positional indexes and type-checks the tree, after which
/// Eval() is infallible.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace streampart {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Node discriminator.
enum class ExprKind : uint8_t {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
  kCall,
};

/// \brief Binary operators, in GSQL surface syntax order of appearance.
enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kBitXor, kShiftLeft, kShiftRight,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// \brief Unary operators.
enum class UnaryOp : uint8_t { kNegate, kNot, kBitNot };

/// \brief Token for the operator ("+", "&", "AND", ...).
const char* BinaryOpToString(BinaryOp op);
const char* UnaryOpToString(UnaryOp op);

/// \brief True for kEq..kGe.
bool IsComparison(BinaryOp op);
/// \brief True for kAnd/kOr.
bool IsLogical(BinaryOp op);
/// \brief True for the bit/shift operators.
bool IsBitwise(BinaryOp op);

/// \brief Resolves the result type of a (possibly aggregate) function call
/// during binding. Supplied by the plan layer, which owns the UDAF registry.
class FunctionTypeResolver {
 public:
  virtual ~FunctionTypeResolver() = default;
  /// \brief Result type of calling \p name on arguments of \p arg_types.
  virtual Result<DataType> ResolveCall(
      const std::string& name, const std::vector<DataType>& arg_types) const = 0;
  /// \brief True if \p name is an aggregate (UDAF) rather than a scalar
  /// function.
  virtual bool IsAggregate(const std::string& name) const = 0;
};

/// \brief Name-resolution scope for Bind(): one or more qualified inputs laid
/// out consecutively in the runtime tuple (a join binds two).
class BindingContext {
 public:
  /// \brief Adds an input with tuple offset = sum of prior input widths.
  void AddInput(std::string qualifier, SchemaPtr schema);

  /// \brief Resolves (qualifier, name) to absolute tuple index + type.
  /// Unqualified names search all inputs and fail on ambiguity.
  Result<std::pair<size_t, DataType>> Resolve(const std::string& qualifier,
                                              const std::string& name) const;

  size_t total_width() const { return total_width_; }
  size_t num_inputs() const { return inputs_.size(); }
  const SchemaPtr& schema(size_t i) const { return inputs_[i].schema; }
  const std::string& qualifier(size_t i) const { return inputs_[i].qualifier; }
  /// \brief Absolute tuple offset of input \p i.
  size_t offset(size_t i) const { return inputs_[i].offset; }

 private:
  struct Input {
    std::string qualifier;
    SchemaPtr schema;
    size_t offset;
  };
  std::vector<Input> inputs_;
  size_t total_width_ = 0;
};

/// \brief Immutable scalar-expression node.
class Expr {
 public:
  // ---- Factories -----------------------------------------------------

  /// \brief Unbound column reference; \p qualifier may be empty.
  static ExprPtr Column(std::string qualifier, std::string name);
  static ExprPtr Column(std::string name) { return Column("", std::move(name)); }
  static ExprPtr Literal(Value v);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  /// \brief Function or aggregate call. COUNT(*) is Call("count", {}).
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args);

  // ---- Accessors ------------------------------------------------------

  ExprKind kind() const { return kind_; }
  bool is_column() const { return kind_ == ExprKind::kColumnRef; }
  bool is_literal() const { return kind_ == ExprKind::kLiteral; }
  bool is_binary() const { return kind_ == ExprKind::kBinary; }
  bool is_unary() const { return kind_ == ExprKind::kUnary; }
  bool is_call() const { return kind_ == ExprKind::kCall; }

  /// Column fields (valid when is_column()).
  const std::string& qualifier() const { return qualifier_; }
  const std::string& column_name() const { return name_; }
  /// Bound tuple index; kUnboundIndex when unbound.
  size_t bound_index() const { return bound_index_; }
  bool is_bound() const;

  /// Literal value (valid when is_literal()).
  const Value& literal() const { return literal_; }

  /// Operator fields.
  BinaryOp binary_op() const { return bin_op_; }
  UnaryOp unary_op() const { return un_op_; }
  const ExprPtr& left() const { return children_[0]; }
  const ExprPtr& right() const { return children_[1]; }
  const ExprPtr& operand() const { return children_[0]; }

  /// Call fields (valid when is_call()).
  const std::string& call_name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return children_; }
  /// True once the binder resolved this call as an aggregate.
  bool is_aggregate_call() const { return is_aggregate_; }

  /// Result type; DataType::kNull until bound.
  DataType result_type() const { return result_type_; }

  // ---- Structural operations ------------------------------------------

  /// \brief Structural equality ignoring binding state: same shape, same
  /// names/operators/literals. Qualifier-sensitive.
  bool Equals(const Expr& other) const;
  static bool Equal(const ExprPtr& a, const ExprPtr& b);

  /// \brief Hash consistent with Equals.
  uint64_t Hash() const;

  /// \brief GSQL-ish rendering, fully parenthesized for operators:
  /// "(time / 60)", "srcIP & 0xFFF0" prints as "(srcIP & 61440)".
  std::string ToString() const;

  /// \brief Collects (qualifier, name) of every column referenced, in
  /// depth-first order with duplicates preserved.
  void CollectColumns(std::vector<const Expr*>* out) const;

  /// \brief True if any node is an aggregate call (requires binding or a
  /// resolver-tagged tree; unbound trees report syntactic aggregates if
  /// tagged by the analyzer).
  bool ContainsAggregate() const;

  // ---- Binding and evaluation -----------------------------------------

  /// \brief Resolves columns against \p ctx, type-checks, and returns a new
  /// bound tree. \p resolver may be null when the tree contains no calls.
  Result<ExprPtr> Bind(const BindingContext& ctx,
                       const FunctionTypeResolver* resolver = nullptr) const;

  /// \brief Evaluates a bound tree against \p tuple. Infallible: runtime
  /// anomalies (division by zero, NULL operands) yield NULL values.
  /// Requires is_bound() on every column ref; aggregate calls must have been
  /// replaced by column refs by the plan layer before evaluation.
  Value Eval(const Tuple& tuple) const;

  /// \brief Rewrites the tree, replacing nodes for which \p fn returns
  /// non-null. \p fn is applied pre-order; returning null recurses.
  using RewriteFn = std::function<ExprPtr(const ExprPtr&)>;
  static ExprPtr Rewrite(const ExprPtr& expr, const RewriteFn& fn);

  static constexpr size_t kUnboundIndex = static_cast<size_t>(-1);

 private:
  friend class ExprBuilderAccess;
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  // Column: qualifier_/name_/bound_index_. Call: name_ + children_ args.
  std::string qualifier_;
  std::string name_;
  size_t bound_index_ = kUnboundIndex;
  Value literal_;
  BinaryOp bin_op_ = BinaryOp::kAdd;
  UnaryOp un_op_ = UnaryOp::kNegate;
  std::vector<ExprPtr> children_;
  bool is_aggregate_ = false;
  DataType result_type_ = DataType::kNull;
};

/// \brief Convenience literal builders used across tests and benches.
ExprPtr UintLit(uint64_t v);
ExprPtr IntLit(int64_t v);

}  // namespace streampart
