#pragma once

/// \file scalar_form.h
/// \brief Canonical forms of single-attribute scalar expressions and the
/// reconciliation algebra of paper §4.1.
///
/// A partitioning-set entry is a scalar expression over one stream attribute
/// (paper §3.3: sc_exp_i(attr_i)). Analysis reduces such expressions to a
/// small canonical vocabulary:
///
///   Identity      x
///   Div(c)        x / c            (integer division; c > 1)
///   Mask(m)       x & m
///   Shift(k)      x >> k           (== Div(2^k) semantically, kept distinct
///                                   to print what the user wrote)
///   Mod(c)        x % c
///   Opaque(e)     anything else — reconciles only with a structurally equal
///                 expression
///
/// Two relations drive everything:
///  * IsFunctionOf(coarse, fine): coarse = h ∘ fine for some h. A partition
///    expression p is compatible with a group-by expression g iff
///    IsFunctionOf(p, g) — tuples agreeing on g then agree on p, so no group
///    straddles partitions.
///  * ReconcileForms(a, b): the finest form that is a function of both — the
///    "least common denominator" of §4.1. Reproduces the paper's examples:
///    Div(60) ⊕ Div(90) = Div(180); Identity ⊕ Mask(0xFFF0) = Mask(0xFFF0).

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "expr/expr.h"

namespace streampart {

/// \brief Kind of canonical scalar form.
enum class ScalarFormKind : uint8_t {
  kIdentity,
  kDiv,
  kMask,
  kShift,
  kMod,
  kOpaque,
};

/// \brief Canonical form of a single-attribute scalar expression. The base
/// attribute itself is tracked by the caller (AnalyzedScalar).
struct ScalarForm {
  ScalarFormKind kind = ScalarFormKind::kIdentity;
  /// Divisor, mask, shift count, or modulus, by kind.
  uint64_t param = 0;
  /// Original expression for kOpaque (structural-equality semantics).
  ExprPtr opaque;

  static ScalarForm Identity() { return {ScalarFormKind::kIdentity, 0, nullptr}; }
  static ScalarForm Div(uint64_t c) { return {ScalarFormKind::kDiv, c, nullptr}; }
  static ScalarForm Mask(uint64_t m) { return {ScalarFormKind::kMask, m, nullptr}; }
  static ScalarForm Shift(uint64_t k) { return {ScalarFormKind::kShift, k, nullptr}; }
  static ScalarForm Mod(uint64_t c) { return {ScalarFormKind::kMod, c, nullptr}; }
  static ScalarForm Opaque(ExprPtr e) {
    return {ScalarFormKind::kOpaque, 0, std::move(e)};
  }

  bool is_opaque() const { return kind == ScalarFormKind::kOpaque; }

  /// \brief Structural equality (opaque compares the stored expressions).
  bool Equals(const ScalarForm& other) const;

  /// \brief "x/60"-style rendering with \p attr substituted for x.
  std::string ToString(const std::string& attr) const;
};

/// \brief Result of analyzing a candidate partitioning expression: the base
/// attribute it references plus the canonical form applied to it.
struct AnalyzedScalar {
  /// Unqualified name of the single referenced column.
  std::string base_column;
  ScalarForm form;

  std::string ToString() const { return form.ToString(base_column); }
};

/// \brief Reduces \p expr to (base attribute, canonical form). Fails when the
/// expression references zero or more than one distinct column (a
/// partitioning-set entry must be a scalar expression of one attribute).
/// Expressions with one column but unrecognized structure come back as
/// kOpaque, not as an error.
Result<AnalyzedScalar> AnalyzeScalarExpr(const ExprPtr& expr);

/// \brief Composes outer ∘ inner where both apply to the same base attribute
/// (lineage tracing: a view column defined as g(x) referenced through f(...)
/// yields f ∘ g). Returns kOpaque(composed expr) when the composition leaves
/// the canonical vocabulary; \p composed_expr supplies that fallback tree.
ScalarForm ComposeForms(const ScalarForm& outer, const ScalarForm& inner,
                        const ExprPtr& composed_expr);

/// \brief True iff \p coarse is a function of \p fine (coarse = h ∘ fine).
bool IsFunctionOf(const ScalarForm& coarse, const ScalarForm& fine);

/// \brief The finest form that is a function of both, or nullopt when the
/// only common coarsening is the constant function (useless for
/// partitioning). Commutative.
std::optional<ScalarForm> ReconcileForms(const ScalarForm& a,
                                         const ScalarForm& b);

/// \brief Materializes the form back into an expression over \p column.
ExprPtr FormToExpr(const ScalarForm& form, const std::string& column);

}  // namespace streampart
