#pragma once

/// \file catalog.h
/// \brief Registry of source-stream schemas.
///
/// Source streams are the protocol feeds delivered by the capture hardware
/// (e.g. the TCP packet stream). Derived streams — outputs of named queries —
/// live in the query graph (plan/query_graph.h), not here.

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "types/schema.h"

namespace streampart {

/// \brief Maps stream names to schemas.
class Catalog {
 public:
  /// \brief Registers a source stream. Fails with AlreadyExists on
  /// duplicates.
  Status RegisterStream(const std::string& name, SchemaPtr schema);

  /// \brief Looks up a source stream schema.
  Result<SchemaPtr> GetStream(const std::string& name) const;

  bool HasStream(const std::string& name) const;

  const std::map<std::string, SchemaPtr>& streams() const { return streams_; }

 private:
  std::map<std::string, SchemaPtr> streams_;
};

/// \brief Column order of the canonical packet stream; kept in one place so
/// trace generation, examples, and tests agree.
enum PacketField : size_t {
  kPktTime = 0,
  kPktSrcIp = 1,
  kPktDestIp = 2,
  kPktSrcPort = 3,
  kPktDestPort = 4,
  kPktLen = 5,
  kPktFlags = 6,
  kPktProtocol = 7,
  kPktTimestamp = 8,
  kPktNumFields = 9,
};

/// \brief The paper's packet-stream schema:
/// TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags,
/// protocol, timestamp increasing). `time` is in seconds; `timestamp` is a
/// fine-grained (microsecond) clock used by MIN/MAX aggregates.
SchemaPtr MakePacketSchema();

/// \brief Catalog pre-loaded with the packet stream under both names the
/// paper uses ("TCP" and "PKT").
Catalog MakeDefaultCatalog();

}  // namespace streampart
