#include "catalog/catalog.h"

#include "common/logging.h"

namespace streampart {

Status Catalog::RegisterStream(const std::string& name, SchemaPtr schema) {
  if (streams_.count(name) > 0) {
    return Status::AlreadyExists("stream '", name, "' already registered");
  }
  streams_[name] = std::move(schema);
  return Status::OK();
}

Result<SchemaPtr> Catalog::GetStream(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("no source stream named '", name, "'");
  }
  return it->second;
}

bool Catalog::HasStream(const std::string& name) const {
  return streams_.count(name) > 0;
}

SchemaPtr MakePacketSchema() {
  return Schema::Make({
      Field{"time", DataType::kUint, TemporalOrder::kIncreasing},
      Field{"srcIP", DataType::kIp, TemporalOrder::kNone},
      Field{"destIP", DataType::kIp, TemporalOrder::kNone},
      Field{"srcPort", DataType::kUint, TemporalOrder::kNone},
      Field{"destPort", DataType::kUint, TemporalOrder::kNone},
      Field{"len", DataType::kUint, TemporalOrder::kNone},
      Field{"flags", DataType::kUint, TemporalOrder::kNone},
      Field{"protocol", DataType::kUint, TemporalOrder::kNone},
      Field{"timestamp", DataType::kUint, TemporalOrder::kIncreasing},
  });
}

Catalog MakeDefaultCatalog() {
  Catalog catalog;
  SchemaPtr pkt = MakePacketSchema();
  SP_CHECK(catalog.RegisterStream("TCP", pkt).ok());
  SP_CHECK(catalog.RegisterStream("PKT", pkt).ok());
  return catalog;
}

}  // namespace streampart
