#include "partition/search.h"

#include <algorithm>
#include <set>

namespace streampart {

namespace {

/// One frontier element: a reconciled set plus the nodes it covers.
struct Candidate {
  PartitionSet ps;
  std::set<std::string> covered;
};

/// Dedup key: partition set identity + covered nodes.
std::string CandidateKey(const Candidate& c) {
  std::string key = c.ps.ToString() + "|";
  for (const std::string& n : c.covered) {
    key += n;
    key += ",";
  }
  return key;
}

}  // namespace

PartitionSearch::PartitionSearch(const QueryGraph* graph,
                                 const CostModel* cost_model, Options options)
    : graph_(graph), cost_model_(cost_model), options_(options) {}

Result<SearchResult> PartitionSearch::FindOptimal() const {
  SearchResult result;
  SP_ASSIGN_OR_RETURN(PlanCost baseline, cost_model_->BaselineCost());
  result.baseline_cost_bytes = baseline.max_cost_bytes;
  result.best_cost_bytes = baseline.max_cost_bytes;

  // Per-node inferred sets; nullopt = unconstrained (select/project).
  std::map<std::string, PartitionSet> node_sets;
  // "Leaf" nodes in the paper's heuristic sense: the lowest
  // constraint-bearing nodes — no constrained node anywhere below them
  // (selections below do not count, they are compatible with anything).
  std::vector<std::string> leaf_nodes;
  std::map<std::string, bool> constrained_below;
  for (const QueryNodePtr& node : graph_->TopologicalOrder()) {
    SP_ASSIGN_OR_RETURN(auto inferred, InferNodePartitionSet(*graph_, node));
    bool constrained = inferred.has_value() && !inferred->empty();
    bool below = false;
    for (const std::string& in : node->inputs) {
      if (graph_->IsSource(in)) continue;
      auto it = constrained_below.find(in);
      if (it != constrained_below.end() && it->second) below = true;
      if (node_sets.count(in) > 0) below = true;
    }
    constrained_below[node->name] = below || constrained;
    if (constrained) {
      node_sets.emplace(node->name, std::move(*inferred));
      if (!below) leaf_nodes.push_back(node->name);
    }
  }

  // Seed candidates.
  std::vector<Candidate> frontier;
  std::set<std::string> seen;
  auto try_add = [&](Candidate cand, std::vector<Candidate>* out) -> Status {
    if (cand.ps.empty()) return Status::OK();
    std::string key = CandidateKey(cand);
    if (seen.count(key) > 0) return Status::OK();
    seen.insert(key);
    SP_ASSIGN_OR_RETURN(PlanCost cost, cost_model_->Cost(cand.ps));
    ++result.candidates_explored;
    if (cost.max_cost_bytes < result.best_cost_bytes) {
      result.best_cost_bytes = cost.max_cost_bytes;
      result.best = cand.ps;
    }
    if (out->size() < options_.max_candidates) {
      out->push_back(std::move(cand));
    }
    return Status::OK();
  };

  for (const auto& [name, ps] : node_sets) {
    if (options_.use_heuristics &&
        std::find(leaf_nodes.begin(), leaf_nodes.end(), name) ==
            leaf_nodes.end()) {
      continue;  // Heuristic: seed from leaf nodes only.
    }
    SP_RETURN_NOT_OK(try_add(Candidate{ps, {name}}, &frontier));
  }

  // Iterative expansion (candidate pairs, triples, ... of §4.2.2).
  while (!frontier.empty()) {
    ++result.rounds;
    std::vector<Candidate> next;
    for (const Candidate& cand : frontier) {
      for (const auto& [name, ps] : node_sets) {
        if (cand.covered.count(name) > 0) continue;
        if (options_.use_heuristics) {
          // Expansion heuristic: the new node must be a leaf or an immediate
          // parent of a covered node.
          bool eligible =
              std::find(leaf_nodes.begin(), leaf_nodes.end(), name) !=
              leaf_nodes.end();
          if (!eligible) {
            auto node = graph_->GetQuery(name);
            if (node.ok()) {
              for (const std::string& in : (*node)->inputs) {
                if (cand.covered.count(in) > 0) eligible = true;
              }
            }
          }
          if (!eligible) continue;
        }
        Candidate expanded;
        expanded.ps = ReconcilePartitionSets(cand.ps, ps);
        if (expanded.ps.empty()) continue;
        expanded.covered = cand.covered;
        expanded.covered.insert(name);
        SP_RETURN_NOT_OK(try_add(std::move(expanded), &next));
      }
    }
    frontier = std::move(next);
  }
  return result;
}

Result<PartitionSet> PartitionSearch::ChooseBestAmong(
    const std::vector<PartitionSet>& allowed) const {
  if (allowed.empty()) {
    return Status::InvalidArgument("no admissible partitioning sets");
  }
  const PartitionSet* best = nullptr;
  double best_cost = 0;
  for (const PartitionSet& ps : allowed) {
    SP_ASSIGN_OR_RETURN(PlanCost cost, cost_model_->Cost(ps));
    if (best == nullptr || cost.max_cost_bytes < best_cost) {
      best = &ps;
      best_cost = cost.max_cost_bytes;
    }
  }
  return *best;
}

}  // namespace streampart
