#pragma once

/// \file partition_set.h
/// \brief Partitioning sets (paper §3.3) and their reconciliation (§4.1).
///
/// A partitioning set is (sc_exp1(attr1), ..., sc_expn(attrn)) — one scalar
/// expression per distinct source-stream attribute. Tuples are routed by
/// hashing the vector of these expressions (see dist/partitioner.h).

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/scalar_form.h"

namespace streampart {

/// \brief A partitioning set: base attribute -> canonical scalar form.
///
/// Entries are keyed by base attribute, so a set holds at most one expression
/// per attribute (partitioning twice on the same attribute is redundant: the
/// pair (f(x), g(x)) routes like their reconciliation when one exists, and is
/// representable by an Opaque form otherwise).
class PartitionSet {
 public:
  PartitionSet() = default;

  /// \brief Builds from analyzed entries; later duplicates of a base
  /// attribute are reconciled in (dropped if irreconcilable).
  static PartitionSet FromScalars(const std::vector<AnalyzedScalar>& entries);

  /// \brief Parses a comma-separated spec like
  /// "srcIP & 0xFFF0, destIP" (the notation used throughout the paper).
  static Result<PartitionSet> Parse(const std::string& spec);

  /// \brief Analyzes raw expressions (each must reference one attribute).
  static Result<PartitionSet> FromExprs(const std::vector<ExprPtr>& exprs);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  const std::map<std::string, ScalarForm>& entries() const { return entries_; }

  /// \brief Adds (or reconciles in) one entry. Returns false when the
  /// attribute is already present with an irreconcilable form (entry kept
  /// unchanged).
  bool AddOrReconcile(const std::string& base_column, const ScalarForm& form);

  /// \brief The form for \p base_column, or null.
  const ScalarForm* Find(const std::string& base_column) const;

  /// \brief Materializes the set as expressions (hash-partitioner input).
  std::vector<ExprPtr> ToExprs() const;

  /// \brief "(srcIP&0xFFF0, destIP)"; "()" when empty.
  std::string ToString() const;

  bool Equals(const PartitionSet& other) const;
  uint64_t Hash() const;

 private:
  std::map<std::string, ScalarForm> entries_;
};

/// \brief Reconcile_Partn_Sets (paper §4.1): the largest partitioning set
/// compatible with everything both inputs are compatible with. Attributes
/// present in only one set drop out; shared attributes reconcile via the
/// scalar-form algebra (dropping the attribute when irreconcilable). An empty
/// result means reconciliation failed.
PartitionSet ReconcilePartitionSets(const PartitionSet& a,
                                    const PartitionSet& b);

}  // namespace streampart
