#include "partition/partition_set.h"

#include "common/hash.h"
#include "common/strings.h"
#include "parser/parser.h"

namespace streampart {

PartitionSet PartitionSet::FromScalars(
    const std::vector<AnalyzedScalar>& entries) {
  PartitionSet out;
  for (const AnalyzedScalar& e : entries) {
    out.AddOrReconcile(e.base_column, e.form);
  }
  return out;
}

Result<PartitionSet> PartitionSet::Parse(const std::string& spec) {
  PartitionSet out;
  std::string body(StripWhitespace(spec));
  if (!body.empty() && body.front() == '(' && body.back() == ')') {
    body = body.substr(1, body.size() - 2);
  }
  if (StripWhitespace(body).empty()) return out;
  for (const std::string& part : Split(body, ',')) {
    SP_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(std::string(
                                          StripWhitespace(part))));
    SP_ASSIGN_OR_RETURN(AnalyzedScalar scalar, AnalyzeScalarExpr(expr));
    out.AddOrReconcile(scalar.base_column, scalar.form);
  }
  return out;
}

Result<PartitionSet> PartitionSet::FromExprs(
    const std::vector<ExprPtr>& exprs) {
  PartitionSet out;
  for (const ExprPtr& e : exprs) {
    SP_ASSIGN_OR_RETURN(AnalyzedScalar scalar, AnalyzeScalarExpr(e));
    out.AddOrReconcile(scalar.base_column, scalar.form);
  }
  return out;
}

bool PartitionSet::AddOrReconcile(const std::string& base_column,
                                  const ScalarForm& form) {
  auto it = entries_.find(base_column);
  if (it == entries_.end()) {
    entries_.emplace(base_column, form);
    return true;
  }
  auto reconciled = ReconcileForms(it->second, form);
  if (!reconciled.has_value()) return false;
  it->second = *reconciled;
  return true;
}

const ScalarForm* PartitionSet::Find(const std::string& base_column) const {
  auto it = entries_.find(base_column);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<ExprPtr> PartitionSet::ToExprs() const {
  std::vector<ExprPtr> out;
  out.reserve(entries_.size());
  for (const auto& [base, form] : entries_) {
    out.push_back(FormToExpr(form, base));
  }
  return out;
}

std::string PartitionSet::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(entries_.size());
  for (const auto& [base, form] : entries_) {
    parts.push_back(form.ToString(base));
  }
  return "(" + Join(parts, ", ") + ")";
}

bool PartitionSet::Equals(const PartitionSet& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  auto it = entries_.begin();
  auto jt = other.entries_.begin();
  for (; it != entries_.end(); ++it, ++jt) {
    if (it->first != jt->first || !it->second.Equals(jt->second)) return false;
  }
  return true;
}

uint64_t PartitionSet::Hash() const {
  uint64_t h = Mix64(entries_.size());
  for (const auto& [base, form] : entries_) {
    h = HashCombine(h, HashBytes(base));
    h = HashCombine(h, static_cast<uint64_t>(form.kind));
    h = HashCombine(h, form.param);
    if (form.opaque) h = HashCombine(h, form.opaque->Hash());
  }
  return h;
}

PartitionSet ReconcilePartitionSets(const PartitionSet& a,
                                    const PartitionSet& b) {
  PartitionSet out;
  for (const auto& [base, form_a] : a.entries()) {
    const ScalarForm* form_b = b.Find(base);
    if (form_b == nullptr) continue;  // Not shared: drop (paper §4.1).
    auto reconciled = ReconcileForms(form_a, *form_b);
    if (!reconciled.has_value()) continue;  // Irreconcilable: drop.
    out.AddOrReconcile(base, *reconciled);
  }
  return out;
}

}  // namespace streampart
