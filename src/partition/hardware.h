#pragma once

/// \file hardware.h
/// \brief Capability model of the line-speed splitter hardware.
///
/// Paper §1: the OC-768 splitter is built from FPGAs and TCAMs whose limited
/// gate budget restricts the realizable partitionings — TCP-header fields
/// can be hashed at line speed, simple masks are feasible, but anything
/// requiring deeper inspection is not, and the scheme cannot be reconfigured
/// per query workload. HardwareCapability captures which partitioning sets
/// the deployed splitter can realize, so the optimizer can be pointed at the
/// best *admissible* set (PartitionSearch::ChooseBestAmong) rather than the
/// analytically optimal one.

#include <set>
#include <string>
#include <vector>

#include "partition/partition_set.h"

namespace streampart {

/// \brief What the deployed splitter can compute per tuple at line speed.
class HardwareCapability {
 public:
  /// \brief Capability that allows hashing any of \p columns with any of the
  /// canonical form kinds in \p allowed_forms (kIdentity is always allowed).
  HardwareCapability(std::set<std::string> columns,
                     std::set<ScalarFormKind> allowed_forms = {});

  /// \brief Convenience: TCP 5-tuple fields, identity and mask forms — the
  /// capability the paper describes for current hardware.
  static HardwareCapability TcpHeaderSplitter();

  /// \brief True when every entry of \p ps is realizable.
  bool Supports(const PartitionSet& ps) const;

  /// \brief Drops unsupported entries of \p ps. Note the result is *coarser*
  /// routing only if the remaining entries still anchor every query — the
  /// caller must re-check compatibility; this merely models what the
  /// hardware will actually do with a too-ambitious request.
  PartitionSet Restrict(const PartitionSet& ps) const;

  /// \brief Filters \p candidates down to the admissible ones.
  std::vector<PartitionSet> Admissible(
      const std::vector<PartitionSet>& candidates) const;

  std::string Describe() const;

 private:
  std::set<std::string> columns_;
  std::set<ScalarFormKind> allowed_forms_;
};

}  // namespace streampart
