#pragma once

/// \file search.h
/// \brief Optimal-partitioning search for query sets (paper §4.2.2).
///
/// Candidate partitioning sets are grown iteratively: start from the
/// compatible sets of individual nodes, then reconcile candidate sets with
/// further nodes' sets, keeping the minimum-cost candidate seen anywhere.
/// Two pruning heuristics from the paper (valid because a set compatible
/// with a node is necessarily compatible with the node's predecessors):
///   * seed candidates from leaf query nodes only;
///   * when expanding, only add a node that is an immediate parent of a
///     covered node, or another leaf.
/// Disabling heuristics (for the ablation bench) seeds from and expands with
/// every constraining node.

#include <vector>

#include "partition/cost_model.h"
#include "partition/partition_set.h"

namespace streampart {

/// \brief Outcome of the candidate search.
struct SearchResult {
  /// The minimum-cost partitioning set found; may be empty when no node
  /// yields a usable set (fall back to query-independent partitioning).
  PartitionSet best;
  double best_cost_bytes = 0;
  /// Cost of the empty set (centralized / query-independent baseline).
  double baseline_cost_bytes = 0;
  /// Candidates evaluated (cost-model invocations).
  size_t candidates_explored = 0;
  /// Reconciliation rounds executed.
  size_t rounds = 0;
};

/// \brief Implements the §4.2.2 search over a costed query graph.
class PartitionSearch {
 public:
  struct Options {
    bool use_heuristics = true;
    /// Safety bound on candidate-frontier growth.
    size_t max_candidates = 4096;
  };

  /// \param graph and \param cost_model must outlive the search.
  PartitionSearch(const QueryGraph* graph, const CostModel* cost_model)
      : PartitionSearch(graph, cost_model, Options()) {}
  PartitionSearch(const QueryGraph* graph, const CostModel* cost_model,
                  Options options);

  /// \brief Runs the full search.
  Result<SearchResult> FindOptimal() const;

  /// \brief Restricted-hardware variant: costs each admissible set and picks
  /// the cheapest (the paper's "take advantage of any partitioning" mode,
  /// used when the splitter hardware constrains the choices, §6.2).
  Result<PartitionSet> ChooseBestAmong(
      const std::vector<PartitionSet>& allowed) const;

 private:
  const QueryGraph* graph_;
  const CostModel* cost_model_;
  Options options_;
};

}  // namespace streampart
