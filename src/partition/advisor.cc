#include "partition/advisor.h"

#include <algorithm>
#include <cstdio>

namespace streampart {

std::string WorkloadAdvice::ToString() const {
  std::string out;
  char buf[160];
  out += "=== Workload partitioning advice ===\n";
  std::snprintf(buf, sizeof(buf),
                "baseline (query-independent) cost: %.3g bytes/epoch\n",
                baseline_cost_bytes);
  out += buf;
  std::snprintf(buf, sizeof(buf), "optimal set: %s  (cost %.3g, %zu candidates)\n",
                optimal.ToString().c_str(), optimal_cost_bytes,
                candidates_explored);
  out += buf;
  if (hardware_restricted) {
    std::snprintf(buf, sizeof(buf),
                  "hardware-restricted recommendation: %s  (cost %.3g)\n",
                  recommended.ToString().c_str(), recommended_cost_bytes);
    out += buf;
  } else {
    out += "recommendation: the optimal set is realizable as-is\n";
  }
  out += "per-query:\n";
  for (const QueryAdvice& q : queries) {
    std::snprintf(buf, sizeof(buf), "  %-20s %-10s prefers %-30s %s\n",
                  q.query.c_str(), QueryKindToString(q.kind),
                  q.preferred_set.empty() ? "(any)" : q.preferred_set.c_str(),
                  q.compatible_with_recommendation ? "[compatible]"
                                                   : "[INCOMPATIBLE]");
    out += buf;
  }
  return out;
}

Result<WorkloadAdvice> AdviseWorkload(const QueryGraph& graph,
                                      const AdvisorOptions& options) {
  WorkloadAdvice advice;
  SP_ASSIGN_OR_RETURN(CostModel model, CostModel::Make(&graph, options.cost));
  if (options.calibration_sample != nullptr) {
    SP_RETURN_NOT_OK(model.CalibrateFromTrace(options.calibration_source,
                                              *options.calibration_sample));
  }

  PartitionSearch search(&graph, &model);
  SP_ASSIGN_OR_RETURN(SearchResult found, search.FindOptimal());
  advice.optimal = found.best;
  advice.optimal_cost_bytes = found.best_cost_bytes;
  advice.baseline_cost_bytes = found.baseline_cost_bytes;
  advice.candidates_explored = found.candidates_explored;

  advice.recommended = advice.optimal;
  advice.recommended_cost_bytes = advice.optimal_cost_bytes;
  if (options.hardware.has_value() &&
      !options.hardware->Supports(advice.optimal)) {
    advice.hardware_restricted = true;
    PartitionSet restricted = options.hardware->Restrict(advice.optimal);
    // Candidates: the restricted optimum plus the realizable restriction of
    // each query's own set (a restriction is a subset, so it stays
    // compatible with that query).
    std::vector<PartitionSet> candidates;
    if (!restricted.empty()) candidates.push_back(restricted);
    for (const QueryNodePtr& node : graph.TopologicalOrder()) {
      SP_ASSIGN_OR_RETURN(auto inferred, InferNodePartitionSet(graph, node));
      if (!inferred.has_value() || inferred->empty()) continue;
      PartitionSet r = options.hardware->Restrict(*inferred);
      if (!r.empty()) candidates.push_back(std::move(r));
    }
    if (!candidates.empty()) {
      SP_ASSIGN_OR_RETURN(advice.recommended,
                          search.ChooseBestAmong(candidates));
      SP_ASSIGN_OR_RETURN(PlanCost cost, model.Cost(advice.recommended));
      advice.recommended_cost_bytes = cost.max_cost_bytes;
    } else {
      advice.recommended = PartitionSet();
      advice.recommended_cost_bytes = advice.baseline_cost_bytes;
    }
  }

  for (const QueryNodePtr& node : graph.TopologicalOrder()) {
    QueryAdvice qa;
    qa.query = node->name;
    qa.kind = node->kind;
    SP_ASSIGN_OR_RETURN(auto inferred, InferNodePartitionSet(graph, node));
    if (inferred.has_value()) qa.preferred_set = inferred->ToString();
    SP_ASSIGN_OR_RETURN(NodePartitionProfile profile,
                        ComputeNodeProfile(graph, node));
    qa.compatible_with_recommendation =
        IsNodeCompatible(profile, advice.recommended);
    advice.queries.push_back(std::move(qa));
  }
  return advice;
}

Result<RepartitionAdvice> AdviseRepartition(const QueryGraph& graph,
                                            const PartitionSet& current,
                                            const AdvisorOptions& options) {
  RepartitionAdvice advice;
  SP_ASSIGN_OR_RETURN(WorkloadAdvice workload, AdviseWorkload(graph, options));
  advice.candidates_explored = workload.candidates_explored;
  advice.recommended = workload.recommended;
  advice.cost_bytes = workload.hardware_restricted
                          ? workload.recommended_cost_bytes
                          : workload.optimal_cost_bytes;
  if (advice.recommended.Equals(current)) {
    // Keep the incumbent: stability beats churn when the search agrees.
    advice.recommended = current;
    advice.changed = false;
    return advice;
  }
  // An equal-cost tie also keeps the incumbent, provided it is realizable.
  SP_ASSIGN_OR_RETURN(CostModel model, CostModel::Make(&graph, options.cost));
  if (options.calibration_sample != nullptr) {
    SP_RETURN_NOT_OK(model.CalibrateFromTrace(options.calibration_source,
                                              *options.calibration_sample));
  }
  auto current_cost = model.Cost(current);
  // A challenger must beat the incumbent by more than the amortized one-off
  // cost of moving survivor-side state to the new slicing: repartitioning
  // during recovery is not free, and a marginal win is churn.
  double move_penalty =
      options.state_move_bytes /
      std::max(1.0, options.state_move_amortize_epochs);
  if (current_cost.ok() &&
      current_cost->max_cost_bytes <= advice.cost_bytes + move_penalty &&
      (!options.hardware.has_value() ||
       options.hardware->Supports(current))) {
    advice.recommended = current;
    advice.cost_bytes = current_cost->max_cost_bytes;
    advice.changed = false;
    return advice;
  }
  advice.changed = true;
  return advice;
}

}  // namespace streampart
