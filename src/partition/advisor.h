#pragma once

/// \file advisor.h
/// \brief One-call workload analysis: the operator-facing facade over the
/// analysis framework.
///
/// Given a registered query set (and optionally the splitter hardware's
/// capability and measured/assumed selectivities), the advisor answers the
/// questions of paper §3.2's walkthrough in one report:
///   1. which partitioning each query prefers,
///   2. the reconciled globally optimal set and its cost,
///   3. the best set the hardware can realize,
///   4. which queries each candidate leaves incompatible.

#include <optional>
#include <string>
#include <vector>

#include "partition/hardware.h"
#include "partition/search.h"

namespace streampart {

/// \brief Per-query line of the advisor report.
struct QueryAdvice {
  std::string query;
  QueryKind kind = QueryKind::kSelectProject;
  /// The query's own inferred compatible set; empty string for
  /// always-compatible nodes.
  std::string preferred_set;
  /// Compatible with the recommended set?
  bool compatible_with_recommendation = false;
};

/// \brief Full advisor output.
struct WorkloadAdvice {
  /// The analytic optimum of §4.2.2.
  PartitionSet optimal;
  double optimal_cost_bytes = 0;
  double baseline_cost_bytes = 0;
  /// The recommendation after applying the hardware capability (equals
  /// `optimal` when no capability was given or the optimum is realizable).
  PartitionSet recommended;
  double recommended_cost_bytes = 0;
  bool hardware_restricted = false;
  std::vector<QueryAdvice> queries;
  size_t candidates_explored = 0;

  /// \brief Human-readable multi-line report.
  std::string ToString() const;
};

/// \brief Advisor knobs.
struct AdvisorOptions {
  CostModel::Options cost;
  /// Optional splitter capability; unrestricted when absent.
  std::optional<HardwareCapability> hardware;
  /// Optional trace sample for selectivity calibration (source name +
  /// tuples). When absent, default selectivities apply.
  const TupleBatch* calibration_sample = nullptr;
  std::string calibration_source = "TCP";
  /// Recovery-aware repartitioning: switching away from the incumbent set
  /// forces survivor-side operator state to be re-sliced and moved, so
  /// AdviseRepartition charges a candidate this many one-off bytes (e.g.
  /// the last checkpoint's stored size) before it may displace the
  /// incumbent. 0 (the default) disables the penalty.
  double state_move_bytes = 0;
  /// Epochs the one-off move cost is amortized over when comparing against
  /// the per-epoch traffic cost.
  double state_move_amortize_epochs = 16;
};

/// \brief Runs the full analysis over \p graph.
Result<WorkloadAdvice> AdviseWorkload(const QueryGraph& graph,
                                      const AdvisorOptions& options);

/// \brief Recovery-time re-search result (surviving-host repartitioning).
struct RepartitionAdvice {
  /// The set to rebuild the partitioner with over the surviving hosts.
  PartitionSet recommended;
  /// False when the current set is kept (still optimal — reusing it avoids
  /// needless partition-map churn during recovery).
  bool changed = false;
  double cost_bytes = 0;
  size_t candidates_explored = 0;
};

/// \brief Re-runs the §4.2.2 search when the cluster loses hosts, answering
/// "which partition set should the rebuilt (smaller) partitioner use?".
///
/// The optimal *set* is a property of the query workload, not of the host
/// count — what shrinks is the partition space the set is hashed into — so
/// this usually confirms \p current and the recovery move is just a
/// rebuild of the hash-slice map over the survivors. The entry point
/// still re-searches (hardware capability included) so a plan whose
/// current set was hardware- or operator-constrained can pick a better one
/// when the workload allows it; `changed` tells the runtime whether
/// survivor-side state must be realigned.
Result<RepartitionAdvice> AdviseRepartition(const QueryGraph& graph,
                                            const PartitionSet& current,
                                            const AdvisorOptions& options = {});

}  // namespace streampart
