#pragma once

/// \file compatibility.h
/// \brief Partition-compatibility inference for query nodes (paper §3.4-3.5).
///
/// Definition (§3.4): partitioning set P is compatible with query Q iff for
/// every time window, output(Q) equals the stream union of Q run on each
/// partition of P. Operationally:
///
///  * selection/projection/union: compatible with every partitioning (§3.5).
///  * aggregation (§3.5.2): every entry of P must be a function of some
///    group-by expression of Q, traced through lineage to source attributes.
///  * two-way equijoin (§3.5.3): every entry of P must exactly match the
///    source-level form of some equality predicate whose two sides trace to
///    the *same* source-level expression (so matching tuples provably land in
///    the same partition). Following the paper, only subsets of the
///    predicate expressions themselves are admitted — coarsenings of a join
///    key, though safe, are deliberately not exploited, which is what allows
///    a partitioning to be "compatible only with the aggregation query"
///    (§6.2).
///
/// Temporal attributes are excluded from inferred sets (§3.5.1): partitioning
/// on time reassigns groups every epoch and breaks pane-based evaluation.

#include <optional>

#include "partition/partition_set.h"
#include "plan/query_graph.h"

namespace streampart {

/// \brief The group-by / join-key structure of a node reduced to source-level
/// canonical scalars; the basis of both inference and the compatibility test.
struct NodePartitionProfile {
  struct Anchor {
    AnalyzedScalar scalar;
    /// Join anchors require an exact form match (paper §3.5.3 admits only
    /// subsets of the predicate expressions themselves); aggregation anchors
    /// admit any coarsening (any function of a group-by expression).
    bool exact_form = false;
  };
  /// Source-level forms a partition expression may anchor to. For
  /// aggregations: the non-temporal group-by keys with scalar lineage. For
  /// joins: the non-temporal equi-keys whose sides agree at source level.
  std::vector<Anchor> anchors;
  /// True for selection/projection nodes: compatible with any partitioning.
  bool always_compatible = false;
};

/// \brief Computes the profile of \p node within \p graph.
Result<NodePartitionProfile> ComputeNodeProfile(const QueryGraph& graph,
                                                const QueryNodePtr& node);

/// \brief True iff non-empty \p ps is compatible with \p node (paper §3.4).
/// Empty sets are compatible with nothing (no partitioning to exploit).
bool IsNodeCompatible(const NodePartitionProfile& profile,
                      const PartitionSet& ps);

/// \brief The node's own preferred (largest inferred) compatible partitioning
/// set — PS(Qi) of §4.2.2 step 1. nullopt for always-compatible nodes (they
/// impose no constraint and generate no candidate). May be empty when an
/// aggregation/join has no usable anchor.
Result<std::optional<PartitionSet>> InferNodePartitionSet(
    const QueryGraph& graph, const QueryNodePtr& node);

/// \brief Profiles every node of the graph once (keyed by query name).
Result<std::map<std::string, NodePartitionProfile>> ProfileGraph(
    const QueryGraph& graph);

}  // namespace streampart
