#include "partition/compatibility.h"

#include "plan/lineage.h"

namespace streampart {

namespace {

/// True when \p base names a temporal attribute of the node's source stream.
bool IsTemporalSourceColumn(const QueryGraph& graph,
                            const QueryNodePtr& node,
                            const std::string& base) {
  auto schema = graph.GetStreamSchema(node->source_stream);
  if (!schema.ok()) return false;
  auto idx = (*schema)->FieldIndex(base);
  return idx.has_value() && (*schema)->field(*idx).is_temporal();
}

/// Analyzes a source-level lineage expression into a canonical scalar,
/// skipping nulls, multi-attribute expressions, and temporal attributes.
std::optional<AnalyzedScalar> AnalyzeAnchor(const QueryGraph& graph,
                                            const QueryNodePtr& node,
                                            const ExprPtr& source_expr) {
  if (source_expr == nullptr) return std::nullopt;
  auto analyzed = AnalyzeScalarExpr(source_expr);
  if (!analyzed.ok()) return std::nullopt;
  if (IsTemporalSourceColumn(graph, node, analyzed->base_column)) {
    return std::nullopt;  // §3.5.1: temporal attributes are excluded.
  }
  return *analyzed;
}

}  // namespace

Result<NodePartitionProfile> ComputeNodeProfile(const QueryGraph& graph,
                                                const QueryNodePtr& node) {
  NodePartitionProfile profile;
  switch (node->kind) {
    case QueryKind::kSelectProject:
      profile.always_compatible = true;
      return profile;

    case QueryKind::kAggregate: {
      for (const NamedExpr& key : node->group_by) {
        ExprPtr src = NodeExprToSource(graph, *node, key.expr);
        auto anchor = AnalyzeAnchor(graph, node, src);
        if (anchor.has_value()) {
          profile.anchors.push_back({*anchor, /*exact_form=*/false});
        }
      }
      return profile;
    }

    case QueryKind::kJoin: {
      for (const EquiPred& pred : node->equi_preds) {
        if (pred.temporal) continue;
        auto left = AnalyzeAnchor(graph, node, pred.left_src);
        auto right = AnalyzeAnchor(graph, node, pred.right_src);
        if (!left.has_value() || !right.has_value()) continue;
        // Conservative sufficiency: the two sides must compute the *same*
        // source-level function, so equal key values imply equal partition
        // routing (see header).
        if (left->base_column != right->base_column ||
            !left->form.Equals(right->form)) {
          continue;
        }
        profile.anchors.push_back({*left, /*exact_form=*/true});
      }
      return profile;
    }
  }
  return Status::Internal("unknown node kind in ComputeNodeProfile");
}

bool IsNodeCompatible(const NodePartitionProfile& profile,
                      const PartitionSet& ps) {
  if (ps.empty()) return false;
  if (profile.always_compatible) return true;
  for (const auto& [base, form] : ps.entries()) {
    bool anchored = false;
    for (const NodePartitionProfile::Anchor& anchor : profile.anchors) {
      if (anchor.scalar.base_column != base) continue;
      bool fits = anchor.exact_form ? form.Equals(anchor.scalar.form)
                                    : IsFunctionOf(form, anchor.scalar.form);
      if (fits) {
        anchored = true;
        break;
      }
    }
    if (!anchored) return false;
  }
  return true;
}

Result<std::optional<PartitionSet>> InferNodePartitionSet(
    const QueryGraph& graph, const QueryNodePtr& node) {
  SP_ASSIGN_OR_RETURN(NodePartitionProfile profile,
                      ComputeNodeProfile(graph, node));
  if (profile.always_compatible) return std::optional<PartitionSet>();
  std::vector<AnalyzedScalar> scalars;
  scalars.reserve(profile.anchors.size());
  for (const auto& anchor : profile.anchors) scalars.push_back(anchor.scalar);
  return std::optional<PartitionSet>(PartitionSet::FromScalars(scalars));
}

Result<std::map<std::string, NodePartitionProfile>> ProfileGraph(
    const QueryGraph& graph) {
  std::map<std::string, NodePartitionProfile> out;
  for (const QueryNodePtr& node : graph.TopologicalOrder()) {
    SP_ASSIGN_OR_RETURN(NodePartitionProfile profile,
                        ComputeNodeProfile(graph, node));
    out.emplace(node->name, std::move(profile));
  }
  return out;
}

}  // namespace streampart
