#pragma once

/// \file cost_model.h
/// \brief The network-load cost model of paper §4.2.1.
///
/// cost(Qplan, PS) = max over query nodes of the data a single host receives
/// over the network during one time epoch. Per node Qi the paper defines:
///
///   cost(Qi) = 0            if Qi processes only local data
///            = input_rate   if Qi is incompatible with PS
///            = output_rate  if Qi is compatible with PS
///
/// with output_rate(Qi) = (input_rate/in_tuple_size) * selectivity_factor *
/// out_tuple_size and input_rate recursively R at the leaves.
///
/// Two variants are provided:
///  * kLiteral — the formula exactly as printed above.
///  * kRefined (default) — resolves the "only local data" clause by placement
///    reasoning: a node is *effectively local* when it and its whole input
///    chain are compatible (the optimizer pushes it onto the leaf hosts). An
///    effectively-local non-root node costs 0 (its union is elided); an
///    effectively-local root costs its output_rate (the final union at the
///    aggregator); any other node runs at the aggregator and receives exactly
///    the output of its effectively-local children plus R per source child.
/// The ablation bench bench/ablation_cost_model contrasts the two.

#include <map>
#include <string>

#include "partition/compatibility.h"
#include "plan/query_graph.h"
#include "types/tuple.h"

namespace streampart {

enum class CostModelVariant : uint8_t { kRefined, kLiteral };

/// \brief Per-node outcome of a cost evaluation.
struct NodeCost {
  bool compatible = false;
  /// Whole input chain compatible — node runs on the leaf hosts.
  bool effectively_local = false;
  double input_tuples = 0;   // tuples/epoch entering the node
  double output_tuples = 0;  // tuples/epoch leaving the node
  double input_bytes = 0;
  double output_bytes = 0;
  /// Bytes/epoch this node's host receives over the network.
  double cost_bytes = 0;
};

/// \brief Result of costing one partitioning set against the query DAG.
struct PlanCost {
  /// max over nodes of cost_bytes — the objective of §4.2.1.
  double max_cost_bytes = 0;
  /// Node achieving the maximum.
  std::string bottleneck;
  std::map<std::string, NodeCost> per_node;
};

/// \brief Evaluates the §4.2.1 cost model over a query graph.
class CostModel {
 public:
  struct Options {
    /// R: source-stream tuples per time epoch.
    double source_tuples_per_epoch = 1e6;
    CostModelVariant variant = CostModelVariant::kRefined;
    /// Fallback selectivity for aggregation nodes without an explicit or
    /// calibrated estimate (output groups per input tuple).
    double default_aggregate_selectivity = 0.1;
    /// Fallback selectivity for join and selection nodes.
    double default_other_selectivity = 1.0;
  };

  /// \param graph must outlive the model.
  static Result<CostModel> Make(const QueryGraph* graph, Options options);

  /// \brief Overrides the selectivity estimate of one query.
  void SetSelectivity(const std::string& query, double selectivity);

  /// \brief Derives selectivities by executing the graph centrally over a
  /// trace sample and measuring per-operator tuples_out / tuples_in. This is
  /// the "measured" path a deployment would use; tests use SetSelectivity.
  Status CalibrateFromTrace(const std::string& source,
                            const TupleBatch& sample);

  /// \brief Costs the query plan under \p ps (empty = query-independent
  /// partitioning: nothing is compatible).
  Result<PlanCost> Cost(const PartitionSet& ps) const;

  /// \brief Centralized / query-independent baseline: Cost of the empty set.
  Result<PlanCost> BaselineCost() const { return Cost(PartitionSet()); }

  const Options& options() const { return options_; }
  const std::map<std::string, NodePartitionProfile>& profiles() const {
    return profiles_;
  }

 private:
  CostModel(const QueryGraph* graph, Options options,
            std::map<std::string, NodePartitionProfile> profiles)
      : graph_(graph),
        options_(options),
        profiles_(std::move(profiles)) {}

  double SelectivityOf(const QueryNodePtr& node) const;

  const QueryGraph* graph_;
  Options options_;
  std::map<std::string, NodePartitionProfile> profiles_;
  std::map<std::string, double> selectivity_;
};

}  // namespace streampart
