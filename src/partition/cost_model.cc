#include "partition/cost_model.h"

#include <set>

#include "exec/local_engine.h"

namespace streampart {

Result<CostModel> CostModel::Make(const QueryGraph* graph, Options options) {
  SP_ASSIGN_OR_RETURN(auto profiles, ProfileGraph(*graph));
  return CostModel(graph, options, std::move(profiles));
}

void CostModel::SetSelectivity(const std::string& query, double selectivity) {
  selectivity_[query] = selectivity;
}

Status CostModel::CalibrateFromTrace(const std::string& source,
                                     const TupleBatch& sample) {
  LocalEngine::Options eopts;
  eopts.collect_all = true;
  LocalEngine engine(graph_, eopts);
  SP_RETURN_NOT_OK(engine.Build());
  for (const Tuple& t : sample) engine.PushSource(source, t);
  engine.FinishSources();
  for (const QueryNodePtr& node : graph_->TopologicalOrder()) {
    SP_ASSIGN_OR_RETURN(OpStats stats, engine.StatsFor(node->name));
    if (stats.tuples_in > 0) {
      selectivity_[node->name] =
          static_cast<double>(stats.tuples_out) /
          static_cast<double>(stats.tuples_in);
    }
  }
  return Status::OK();
}

double CostModel::SelectivityOf(const QueryNodePtr& node) const {
  auto it = selectivity_.find(node->name);
  if (it != selectivity_.end()) return it->second;
  return node->kind == QueryKind::kAggregate
             ? options_.default_aggregate_selectivity
             : options_.default_other_selectivity;
}

Result<PlanCost> CostModel::Cost(const PartitionSet& ps) const {
  PlanCost plan;
  // Pass 1, bottom-up: rates, compatibility, effective locality.
  for (const QueryNodePtr& node : graph_->TopologicalOrder()) {
    NodeCost nc;
    const NodePartitionProfile& profile = profiles_.at(node->name);
    nc.compatible = IsNodeCompatible(profile, ps);

    bool children_local = true;
    for (const std::string& in : node->inputs) {
      if (graph_->IsSource(in)) {
        SP_ASSIGN_OR_RETURN(SchemaPtr schema, graph_->GetStreamSchema(in));
        nc.input_tuples += options_.source_tuples_per_epoch;
        nc.input_bytes += options_.source_tuples_per_epoch *
                          static_cast<double>(schema->WireTupleSize());
        // Source streams are partitioned by construction (they arrive split
        // by the capture hardware), so they never break locality.
        continue;
      }
      auto it = plan.per_node.find(in);
      if (it == plan.per_node.end()) {
        return Status::Internal("cost pass visited '", node->name,
                                "' before its input '", in, "'");
      }
      nc.input_tuples += it->second.output_tuples;
      nc.input_bytes += it->second.output_bytes;
      children_local = children_local && it->second.effectively_local;
    }
    nc.effectively_local = nc.compatible && children_local;

    double sel = SelectivityOf(node);
    nc.output_tuples = nc.input_tuples * sel;
    nc.output_bytes =
        nc.output_tuples *
        static_cast<double>(node->output_schema->WireTupleSize());
    plan.per_node.emplace(node->name, nc);
  }

  // Pass 2: network cost per node under the selected variant.
  for (const QueryNodePtr& node : graph_->TopologicalOrder()) {
    NodeCost& nc = plan.per_node.at(node->name);
    if (options_.variant == CostModelVariant::kLiteral) {
      nc.cost_bytes = nc.compatible ? nc.output_bytes : nc.input_bytes;
    } else {
      if (nc.effectively_local) {
        bool is_root = graph_->Parents(node->name).empty();
        // Non-root local nodes feed a co-located (or remote-charging) parent;
        // the root's final union lands on the aggregator.
        nc.cost_bytes = is_root ? nc.output_bytes : 0;
      } else {
        // Runs at the aggregator: receives R per source child plus the
        // output of every effectively-local child; centralized children are
        // co-located and free. A self-join's repeated input ships once.
        double received = 0;
        std::set<std::string> seen;
        for (const std::string& in : node->inputs) {
          if (!seen.insert(in).second) continue;
          if (graph_->IsSource(in)) {
            SP_ASSIGN_OR_RETURN(SchemaPtr schema, graph_->GetStreamSchema(in));
            received += options_.source_tuples_per_epoch *
                        static_cast<double>(schema->WireTupleSize());
          } else if (plan.per_node.at(in).effectively_local) {
            received += plan.per_node.at(in).output_bytes;
          }
        }
        nc.cost_bytes = received;
      }
    }
    if (nc.cost_bytes >= plan.max_cost_bytes) {
      if (nc.cost_bytes > plan.max_cost_bytes || plan.bottleneck.empty()) {
        plan.max_cost_bytes = nc.cost_bytes;
        plan.bottleneck = node->name;
      }
    }
  }
  return plan;
}

}  // namespace streampart
