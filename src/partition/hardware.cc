#include "partition/hardware.h"

#include "common/strings.h"

namespace streampart {

HardwareCapability::HardwareCapability(std::set<std::string> columns,
                                       std::set<ScalarFormKind> allowed_forms)
    : columns_(std::move(columns)), allowed_forms_(std::move(allowed_forms)) {
  allowed_forms_.insert(ScalarFormKind::kIdentity);
}

HardwareCapability HardwareCapability::TcpHeaderSplitter() {
  return HardwareCapability(
      {"srcIP", "destIP", "srcPort", "destPort", "protocol"},
      {ScalarFormKind::kIdentity, ScalarFormKind::kMask,
       ScalarFormKind::kShift});
}

bool HardwareCapability::Supports(const PartitionSet& ps) const {
  if (ps.empty()) return true;  // round-robin is always available
  for (const auto& [base, form] : ps.entries()) {
    if (columns_.count(base) == 0) return false;
    if (allowed_forms_.count(form.kind) == 0) return false;
  }
  return true;
}

PartitionSet HardwareCapability::Restrict(const PartitionSet& ps) const {
  PartitionSet out;
  for (const auto& [base, form] : ps.entries()) {
    if (columns_.count(base) > 0 && allowed_forms_.count(form.kind) > 0) {
      out.AddOrReconcile(base, form);
    }
  }
  return out;
}

std::vector<PartitionSet> HardwareCapability::Admissible(
    const std::vector<PartitionSet>& candidates) const {
  std::vector<PartitionSet> out;
  for (const PartitionSet& ps : candidates) {
    if (Supports(ps)) out.push_back(ps);
  }
  return out;
}

std::string HardwareCapability::Describe() const {
  std::vector<std::string> cols(columns_.begin(), columns_.end());
  std::vector<std::string> forms;
  for (ScalarFormKind kind : allowed_forms_) {
    switch (kind) {
      case ScalarFormKind::kIdentity: forms.push_back("identity"); break;
      case ScalarFormKind::kDiv: forms.push_back("div"); break;
      case ScalarFormKind::kMask: forms.push_back("mask"); break;
      case ScalarFormKind::kShift: forms.push_back("shift"); break;
      case ScalarFormKind::kMod: forms.push_back("mod"); break;
      case ScalarFormKind::kOpaque: forms.push_back("opaque"); break;
    }
  }
  return "splitter(columns: " + Join(cols, ", ") + "; forms: " +
         Join(forms, ", ") + ")";
}

}  // namespace streampart
