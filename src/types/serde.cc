#include "types/serde.h"

#include <cstring>

namespace streampart {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status GetVarint(std::string_view data, size_t* offset, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*offset >= data.size()) {
      return Status::InvalidArgument("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data[(*offset)++]);
    if (shift >= 63 && byte > 1) {
      return Status::InvalidArgument("varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

namespace {

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// ZigZag for signed payloads.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      PutVarint(v.uint_value(), out);
      break;
    case DataType::kInt:
      PutVarint(ZigZag(v.int_value()), out);
      break;
    case DataType::kDouble: {
      double d = v.double_value();
      char buf[sizeof(double)];
      std::memcpy(buf, &d, sizeof(double));
      out->append(buf, sizeof(double));
      break;
    }
    case DataType::kString:
      PutVarint(v.string_value().size(), out);
      out->append(v.string_value());
      break;
  }
}

size_t EncodedValueSize(const Value& v) {
  size_t n = 1;  // tag
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      n += VarintSize(v.uint_value());
      break;
    case DataType::kInt:
      n += VarintSize(ZigZag(v.int_value()));
      break;
    case DataType::kDouble:
      n += sizeof(double);
      break;
    case DataType::kString:
      n += VarintSize(v.string_value().size()) + v.string_value().size();
      break;
  }
  return n;
}

Status DecodeValue(std::string_view data, size_t* offset, Value* out) {
  if (*offset >= data.size()) {
    return Status::InvalidArgument("truncated value");
  }
  DataType type = static_cast<DataType>(data[(*offset)++]);
  switch (type) {
    case DataType::kNull:
      *out = Value::Null();
      break;
    case DataType::kUint: {
      uint64_t v;
      SP_RETURN_NOT_OK(GetVarint(data, offset, &v));
      *out = Value::Uint(v);
      break;
    }
    case DataType::kIp: {
      uint64_t v;
      SP_RETURN_NOT_OK(GetVarint(data, offset, &v));
      *out = Value::Ip(static_cast<uint32_t>(v));
      break;
    }
    case DataType::kBool: {
      uint64_t v;
      SP_RETURN_NOT_OK(GetVarint(data, offset, &v));
      *out = Value::Bool(v != 0);
      break;
    }
    case DataType::kInt: {
      uint64_t v;
      SP_RETURN_NOT_OK(GetVarint(data, offset, &v));
      *out = Value::Int(UnZigZag(v));
      break;
    }
    case DataType::kDouble: {
      if (*offset + sizeof(double) > data.size()) {
        return Status::InvalidArgument("truncated double");
      }
      double d;
      std::memcpy(&d, data.data() + *offset, sizeof(double));
      *offset += sizeof(double);
      *out = Value::Double(d);
      break;
    }
    case DataType::kString: {
      uint64_t len;
      SP_RETURN_NOT_OK(GetVarint(data, offset, &len));
      if (*offset + len > data.size()) {
        return Status::InvalidArgument("truncated string of length ", len);
      }
      *out = Value::String(std::string(data.substr(*offset, len)));
      *offset += len;
      break;
    }
    default:
      return Status::InvalidArgument("unknown type tag ",
                                     static_cast<int>(type));
  }
  return Status::OK();
}

void EncodeTuple(const Tuple& tuple, std::string* out) {
  PutVarint(tuple.size(), out);
  for (const Value& v : tuple.values()) EncodeValue(v, out);
}

size_t EncodedTupleSize(const Tuple& tuple) {
  size_t n = VarintSize(tuple.size());
  for (const Value& v : tuple.values()) n += EncodedValueSize(v);
  return n;
}

Status DecodeTuple(std::string_view data, size_t* offset, Tuple* out) {
  uint64_t count = 0;
  SP_RETURN_NOT_OK(GetVarint(data, offset, &count));
  if (count > data.size()) {
    return Status::InvalidArgument("implausible field count ", count);
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Value v;
    Status st = DecodeValue(data, offset, &v);
    if (!st.ok()) {
      return Status::InvalidArgument("field ", i, ": ", st.message());
    }
    values.push_back(std::move(v));
  }
  *out = Tuple(std::move(values));
  return Status::OK();
}

Result<Tuple> RoundTripTuple(const Tuple& tuple) {
  std::string buffer;
  EncodeTuple(tuple, &buffer);
  size_t offset = 0;
  Tuple out;
  SP_RETURN_NOT_OK(DecodeTuple(buffer, &offset, &out));
  if (offset != buffer.size()) {
    return Status::Internal("decode consumed ", offset, " of ",
                            buffer.size(), " bytes");
  }
  return out;
}

void EncodeBatch(TupleSpan batch, std::string* out) {
  for (const Tuple& t : batch) EncodeTuple(t, out);
}

Result<TupleBatch> DecodeBatch(std::string_view data) {
  TupleBatch out;
  size_t offset = 0;
  while (offset < data.size()) {
    Tuple t;
    SP_RETURN_NOT_OK(DecodeTuple(data, &offset, &t));
    out.push_back(std::move(t));
  }
  return out;
}

Result<TupleBatch> RoundTripBatch(TupleSpan batch, size_t* encoded_bytes) {
  std::string buffer;
  EncodeBatch(batch, &buffer);
  if (encoded_bytes != nullptr) *encoded_bytes = buffer.size();
  SP_ASSIGN_OR_RETURN(TupleBatch out, DecodeBatch(buffer));
  if (out.size() != batch.size()) {
    return Status::Internal("batch round trip decoded ", out.size(), " of ",
                            batch.size(), " tuples");
  }
  return out;
}

}  // namespace streampart
