#pragma once

/// \file tuple.h
/// \brief Tuple: a row of Values conforming to a Schema.

#include <span>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace streampart {

/// \brief A row flowing through operators. Values are positionally aligned
/// with the owning stream's Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& values() { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

  /// \brief Lexicographic order; used for canonical sorting in comparisons.
  bool operator<(const Tuple& other) const {
    const size_t n = std::min(values_.size(), other.values_.size());
    for (size_t i = 0; i < n; ++i) {
      if (values_[i] < other.values_[i]) return true;
      if (other.values_[i] < values_[i]) return false;
    }
    return values_.size() < other.values_.size();
  }

  /// \brief Order-dependent hash of all values.
  uint64_t Hash() const;

  /// \brief Serialized size under the wire model; drives network accounting.
  size_t WireSize() const;

  /// \brief "[v1, v2, ...]".
  std::string ToString() const;

  /// \brief Concatenation of two tuples (join output assembly).
  static Tuple Concat(const Tuple& left, const Tuple& right);

 private:
  std::vector<Value> values_;
};

using TupleBatch = std::vector<Tuple>;

/// \brief Non-owning view over a contiguous run of tuples — the unit of the
/// batched execution path. A TupleBatch converts implicitly, and sub-ranges
/// are taken with subspan() without copying tuples.
using TupleSpan = std::span<const Tuple>;

}  // namespace streampart
