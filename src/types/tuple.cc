#include "types/tuple.h"

#include "common/hash.h"
#include "common/strings.h"

namespace streampart {

uint64_t Tuple::Hash() const {
  uint64_t h = Mix64(values_.size());
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

size_t Tuple::WireSize() const {
  size_t total = 0;
  for (const Value& v : values_) total += v.WireSize();
  return total;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "[" + Join(parts, ", ") + "]";
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> vals;
  vals.reserve(left.size() + right.size());
  for (const Value& v : left.values()) vals.push_back(v);
  for (const Value& v : right.values()) vals.push_back(v);
  return Tuple(std::move(vals));
}

}  // namespace streampart
