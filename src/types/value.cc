#include "types/value.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace streampart {

bool Value::Truthy() const {
  switch (type_) {
    case DataType::kNull:
      return false;
    case DataType::kBool:
    case DataType::kUint:
    case DataType::kIp:
      return u64_ != 0;
    case DataType::kInt:
      return i64_ != 0;
    case DataType::kDouble:
      return f64_ != 0.0;
    case DataType::kString:
      return !str_.empty();
  }
  return false;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case DataType::kNull:
      return true;
    case DataType::kString:
      return str_ == other.str_;
    case DataType::kDouble:
      return f64_ == other.f64_;
    default:
      return u64_ == other.u64_;
  }
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) return type_ < other.type_;
  switch (type_) {
    case DataType::kNull:
      return false;
    case DataType::kString:
      return str_ < other.str_;
    case DataType::kDouble:
      return f64_ < other.f64_;
    case DataType::kInt:
      return i64_ < other.i64_;
    default:
      return u64_ < other.u64_;
  }
}

uint64_t Value::Hash() const {
  uint64_t seed = Mix64(static_cast<uint64_t>(type_));
  switch (type_) {
    case DataType::kNull:
      return seed;
    case DataType::kString:
      return HashCombine(seed, HashBytes(str_));
    case DataType::kDouble: {
      // Normalize -0.0 to +0.0 so equal doubles hash equal.
      double d = (f64_ == 0.0) ? 0.0 : f64_;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(seed, bits);
    }
    default:
      return HashCombine(seed, u64_);
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kUint:
      return std::to_string(u64_);
    case DataType::kInt:
      return std::to_string(i64_);
    case DataType::kDouble: {
      std::string s = std::to_string(f64_);
      return s;
    }
    case DataType::kBool:
      return u64_ ? "true" : "false";
    case DataType::kString:
      return "'" + str_ + "'";
    case DataType::kIp:
      return FormatIpv4(static_cast<uint32_t>(u64_));
  }
  return "?";
}

size_t Value::WireSize() const {
  if (type_ == DataType::kString) return str_.size() + 4;
  return DataTypeWireSize(type_);
}

}  // namespace streampart
