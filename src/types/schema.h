#pragma once

/// \file schema.h
/// \brief Stream schemas with ordered (temporal) attribute marking.
///
/// In the tumbling-window model (paper §3.1), one or more attributes of a
/// stream are declared ordered — e.g. PKT(time increasing, srcIP, ...). The
/// analysis framework excludes temporal attributes from partitioning sets
/// (paper §3.5.1), so the schema carries the ordering property explicitly.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/data_type.h"

namespace streampart {

/// \brief Ordering property of a stream attribute.
enum class TemporalOrder : uint8_t {
  kNone = 0,
  /// Values never decrease across the stream (typical timestamp).
  kIncreasing = 1,
  /// Values never increase across the stream.
  kDecreasing = 2,
};

/// \brief One attribute of a stream schema.
struct Field {
  std::string name;
  DataType type = DataType::kUint;
  TemporalOrder order = TemporalOrder::kNone;

  bool is_temporal() const { return order != TemporalOrder::kNone; }

  /// "time uint increasing" / "srcIP ip".
  std::string ToString() const;
};

/// \brief An ordered list of named, typed fields.
///
/// Schemas are immutable after construction and shared by shared_ptr; every
/// Tuple references the Schema it conforms to.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// \brief Named constructor returning a shared immutable schema.
  static std::shared_ptr<const Schema> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of the field named \p name, or nullopt.
  std::optional<size_t> FieldIndex(const std::string& name) const;

  /// \brief Field lookup that reports an error naming the missing column.
  Result<size_t> RequireFieldIndex(const std::string& name) const;

  /// \brief Indexes of all temporal (ordered) fields.
  std::vector<size_t> TemporalFieldIndexes() const;

  /// \brief Sum of wire sizes of all fields — the tuple-size estimate used by
  /// the network-cost model (paper §4.2.1 in_tuple_size / out_tuple_size).
  size_t WireTupleSize() const;

  /// \brief "name(f1 t1, f2 t2 increasing, ...)" without a name; see
  /// StreamDef for named rendering.
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace streampart
