#pragma once

/// \file value.h
/// \brief Value: a dynamically typed scalar flowing through the engine.
///
/// A Value is a small tagged union. Integral payloads live inline; strings
/// live in a std::string member (only materialized for string values). The
/// engine's hot path (packet tuples) never touches the string member.

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "types/data_type.h"

namespace streampart {

/// \brief A dynamically typed scalar.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(DataType::kNull), u64_(0) {}

  static Value Null() { return Value(); }
  static Value Uint(uint64_t v) { return Value(DataType::kUint, v); }
  static Value Int(int64_t v) {
    Value out(DataType::kInt, 0);
    out.i64_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out(DataType::kDouble, 0);
    out.f64_ = v;
    return out;
  }
  static Value Bool(bool v) {
    return Value(DataType::kBool, v ? 1 : 0);
  }
  static Value Ip(uint32_t v) { return Value(DataType::kIp, v); }
  static Value String(std::string v) {
    Value out(DataType::kString, 0);
    out.str_ = std::move(v);
    return out;
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// \brief Raw unsigned payload. Valid for kUint, kIp, kBool.
  uint64_t uint_value() const { return u64_; }
  int64_t int_value() const { return i64_; }
  double double_value() const { return f64_; }
  bool bool_value() const { return u64_ != 0; }
  const std::string& string_value() const { return str_; }

  // The numeric wideners are inline: aggregate accumulators call them once
  // per input tuple, where an out-of-line call costs more than the switch.
  /// \brief Numeric payload widened to int64 (kUint/kIp/kBool/kInt).
  int64_t AsInt64() const {
    switch (type_) {
      case DataType::kInt:
        return i64_;
      case DataType::kUint:
      case DataType::kIp:
      case DataType::kBool:
        return static_cast<int64_t>(u64_);
      case DataType::kDouble:
        return static_cast<int64_t>(f64_);
      default:
        return 0;
    }
  }
  /// \brief Numeric payload widened to uint64.
  uint64_t AsUint64() const {
    switch (type_) {
      case DataType::kUint:
      case DataType::kIp:
      case DataType::kBool:
        return u64_;
      case DataType::kInt:
        return static_cast<uint64_t>(i64_);
      case DataType::kDouble:
        return static_cast<uint64_t>(f64_);
      default:
        return 0;
    }
  }
  /// \brief Numeric payload widened to double.
  double AsDouble() const {
    switch (type_) {
      case DataType::kDouble:
        return f64_;
      case DataType::kInt:
        return static_cast<double>(i64_);
      case DataType::kUint:
      case DataType::kIp:
      case DataType::kBool:
        return static_cast<double>(u64_);
      default:
        return 0.0;
    }
  }

  /// \brief Truthiness for predicate evaluation: NULL and false are false,
  /// non-zero numerics and non-empty strings are true.
  bool Truthy() const;

  /// \brief Structural equality: same type and same payload. NULL == NULL
  /// (multiset comparisons in tests rely on this; SQL ternary logic is
  /// handled at the expression-evaluation layer).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// \brief Total order over values: first by type tag, then payload.
  /// Used for deterministic sorting of result sets in tests/benches.
  bool operator<(const Value& other) const;

  /// \brief 64-bit hash consistent with operator==.
  uint64_t Hash() const;

  /// \brief Human-readable rendering ("10.1.2.3" for IPs, "NULL", ...).
  std::string ToString() const;

  /// \brief Serialized size in bytes under the wire-size model.
  size_t WireSize() const;

 private:
  Value(DataType type, uint64_t payload) : type_(type), u64_(payload) {}

  DataType type_;
  union {
    uint64_t u64_;
    int64_t i64_;
    double f64_;
  };
  std::string str_;
};

}  // namespace streampart
