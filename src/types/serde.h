#pragma once

/// \file serde.h
/// \brief Binary wire format for tuples crossing host boundaries.
///
/// The simulated cluster actually serializes and deserializes every tuple on
/// a cross-host edge: the byte counts feeding the network ledger are the real
/// encoded sizes, and any value-representation bug (NULL padding from outer
/// joins, IP vs uint confusion) surfaces as a test failure instead of hiding
/// inside in-process pointer passing.
///
/// Format, per tuple: varint field count, then per value a type tag byte
/// followed by a payload — varint for integral types, 8 raw bytes for
/// doubles, varint length + bytes for strings, nothing for NULL.

#include <string>

#include "common/result.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Appends the encoding of one value (tag byte + payload) to \p out.
/// The per-value building block of the tuple format; operator checkpoints
/// (exec/operator.h CheckpointState) reuse it for group keys and UDAF
/// partials so state blobs share the wire format's determinism guarantees.
void EncodeValue(const Value& v, std::string* out);

/// \brief Exact encoded size of one value in bytes (without encoding).
size_t EncodedValueSize(const Value& v);

/// \brief Decodes one value from \p data starting at \p *offset, advancing
/// it. Fails on truncated or malformed input.
Status DecodeValue(std::string_view data, size_t* offset, Value* out);

/// \brief Appends the encoding of \p tuple to \p out.
void EncodeTuple(const Tuple& tuple, std::string* out);

/// \brief Exact encoded size in bytes (without encoding).
size_t EncodedTupleSize(const Tuple& tuple);

/// \brief Decodes one tuple from \p data starting at \p *offset, advancing
/// it. Fails on truncated or malformed input.
Status DecodeTuple(std::string_view data, size_t* offset, Tuple* out);

/// \brief One-shot round trip (encode + decode); used on simulated network
/// edges.
Result<Tuple> RoundTripTuple(const Tuple& tuple);

/// \brief Appends the concatenated encodings of \p batch to \p out. The
/// result is byte-identical to encoding each tuple individually, so network
/// byte accounting is unchanged by batching.
void EncodeBatch(TupleSpan batch, std::string* out);

/// \brief Decodes tuples from \p data until it is exhausted.
Result<TupleBatch> DecodeBatch(std::string_view data);

/// \brief Batched round trip: one encode buffer, one decode pass — the
/// cross-host transfer cost is paid once per batch instead of once per tuple
/// per consumer. If \p encoded_bytes is non-null it receives the total wire
/// size (== the sum of EncodedTupleSize over the batch).
Result<TupleBatch> RoundTripBatch(TupleSpan batch, size_t* encoded_bytes = nullptr);

/// \brief Varint primitives (LEB128), exposed for tests.
void PutVarint(uint64_t v, std::string* out);
Status GetVarint(std::string_view data, size_t* offset, uint64_t* out);

}  // namespace streampart
