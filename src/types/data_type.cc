#include "types/data_type.h"

namespace streampart {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kUint:
      return "uint";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kBool:
      return "bool";
    case DataType::kString:
      return "string";
    case DataType::kIp:
      return "ip";
  }
  return "unknown";
}

size_t DataTypeWireSize(DataType type) {
  switch (type) {
    case DataType::kNull:
      return 1;
    case DataType::kUint:
    case DataType::kInt:
    case DataType::kDouble:
      return 8;
    case DataType::kBool:
      return 1;
    case DataType::kString:
      return 16;
    case DataType::kIp:
      return 4;
  }
  return 8;
}

bool IsNumeric(DataType type) {
  switch (type) {
    case DataType::kUint:
    case DataType::kInt:
    case DataType::kDouble:
    case DataType::kIp:
      return true;
    default:
      return false;
  }
}

bool IsIntegral(DataType type) {
  switch (type) {
    case DataType::kUint:
    case DataType::kInt:
    case DataType::kIp:
    case DataType::kBool:
      return true;
    default:
      return false;
  }
}

DataType PromoteNumeric(DataType a, DataType b) {
  if (!IsNumeric(a) || !IsNumeric(b)) return DataType::kNull;
  if (a == DataType::kDouble || b == DataType::kDouble) return DataType::kDouble;
  if (a == DataType::kInt || b == DataType::kInt) return DataType::kInt;
  return DataType::kUint;
}

}  // namespace streampart
