#include "types/schema.h"

#include "common/strings.h"

namespace streampart {

std::string Field::ToString() const {
  std::string out = name;
  out += " ";
  out += DataTypeToString(type);
  if (order == TemporalOrder::kIncreasing) out += " increasing";
  if (order == TemporalOrder::kDecreasing) out += " decreasing";
  return out;
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

std::shared_ptr<const Schema> Schema::Make(std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(fields));
}

std::optional<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireFieldIndex(const std::string& name) const {
  auto idx = FieldIndex(name);
  if (!idx.has_value()) {
    return Status::NotFound("no column named '", name, "' in schema ",
                            ToString());
  }
  return *idx;
}

std::vector<size_t> Schema::TemporalFieldIndexes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].is_temporal()) out.push_back(i);
  }
  return out;
}

size_t Schema::WireTupleSize() const {
  size_t total = 0;
  for (const Field& f : fields_) total += DataTypeWireSize(f.type);
  return total;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) parts.push_back(f.ToString());
  return "(" + Join(parts, ", ") + ")";
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type ||
        fields_[i].order != other.fields_[i].order) {
      return false;
    }
  }
  return true;
}

}  // namespace streampart
