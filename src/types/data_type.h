#pragma once

/// \file data_type.h
/// \brief Scalar data types of the GSQL type system.
///
/// Network-monitoring schemas are dominated by small unsigned integers
/// (addresses, ports, lengths, flag bytes), so the type lattice is kept
/// deliberately small, mirroring Gigascope's.

#include <cstdint>
#include <string>

namespace streampart {

/// \brief Scalar type of a stream attribute or expression.
enum class DataType : uint8_t {
  /// Absence of a value (outer-join padding, uninitialized aggregate).
  kNull = 0,
  /// Unsigned 64-bit integer; also used for UINT/ULLONG GSQL columns.
  kUint = 1,
  /// Signed 64-bit integer.
  kInt = 2,
  /// IEEE-754 double.
  kDouble = 3,
  /// Boolean.
  kBool = 4,
  /// Variable-length byte string.
  kString = 5,
  /// IPv4 address (host-order uint32 payload, formatted dotted-quad).
  kIp = 6,
};

/// \brief Stable lower-case name ("uint", "ip", ...).
const char* DataTypeToString(DataType type);

/// \brief Serialized width in bytes used by the network-cost model; strings
/// report a representative average (16).
size_t DataTypeWireSize(DataType type);

/// \brief True for kUint, kInt, kDouble, kIp — types with a total order and
/// arithmetic.
bool IsNumeric(DataType type);

/// \brief True for types representable in an integer register (kUint, kInt,
/// kIp, kBool).
bool IsIntegral(DataType type);

/// \brief The wider of two numeric types for arithmetic promotion
/// (double > int > uint/ip). Returns kNull when incompatible.
DataType PromoteNumeric(DataType a, DataType b);

}  // namespace streampart
