#include "trace/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "catalog/catalog.h"

namespace streampart {

PacketTraceGenerator::PacketTraceGenerator(const TraceConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_flows, config.zipf_skew) {
  flows_.reserve(config_.num_flows);
  for (uint32_t i = 0; i < config_.num_flows; ++i) {
    flows_.push_back(MakeFlow());
  }
  // Pin the drifted hot flows to one deterministic source address. The
  // override happens after MakeFlow's RNG draws, so the rest of the flow
  // table is unchanged versus a config without the override.
  if (config_.drift_hot_src_ip != 0 && HotPinningActive()) {
    size_t pinned = std::min<size_t>(config_.hot_flows, flows_.size());
    for (size_t i = 0; i < pinned; ++i) {
      flows_[i].src_ip = config_.drift_hot_src_ip;
    }
  }
  if (config_.bursty()) {
    for (uint32_t s = 0; s < config_.duration_sec; ++s) {
      total_packets_ += SecQuota(s);
    }
    sec_quota_ = config_.duration_sec > 0 ? SecQuota(0) : 0;
  } else {
    total_packets_ = static_cast<uint64_t>(config_.duration_sec) *
                     config_.packets_per_sec;
  }
}

PacketTraceGenerator::Flow PacketTraceGenerator::MakeFlow() {
  Flow flow;
  // Hosts live in 10.0.0.0/8, packed into /28 subnets of 16 addresses.
  uint32_t src_host = static_cast<uint32_t>(rng_.Uniform(0, config_.num_hosts - 1));
  uint32_t dest_host = static_cast<uint32_t>(rng_.Uniform(0, config_.num_hosts - 1));
  flow.src_ip = 0x0A000000u | src_host;
  flow.dest_ip = 0x0A000000u | dest_host;
  flow.src_port = static_cast<uint16_t>(rng_.Uniform(1024, 65535));
  // Servers concentrate on a few well-known ports.
  static const uint16_t kServerPorts[] = {80, 443, 53, 25, 22, 8080};
  flow.dest_port = kServerPorts[rng_.Uniform(0, 5)];
  // Per-second fraction: Chance() burns one uniform whatever the
  // probability, so selectivity drift leaves the RNG sequence — and with it
  // every other field of every flow and packet — byte-identical.
  flow.suspicious = rng_.Chance(config_.SuspiciousFractionAt(current_sec_));
  return flow;
}

void PacketTraceGenerator::RenewFlows() {
  // Hot flows are pinned at the front of the table and never renewed; with
  // the mode off, `pinned` is 0 and the draw below is the legacy one.
  size_t pinned = HotPinningActive()
                      ? std::min<size_t>(config_.hot_flows, flows_.size())
                      : 0;
  if (pinned >= flows_.size()) return;
  size_t renewals = static_cast<size_t>(
      config_.flow_renewal * static_cast<double>(flows_.size()));
  for (size_t i = 0; i < renewals; ++i) {
    size_t victim = pinned + rng_.Uniform(0, flows_.size() - 1 - pinned);
    flows_[victim] = MakeFlow();
  }
}

uint64_t PacketTraceGenerator::SecQuota(uint32_t sec) const {
  double mult =
      sec >= config_.hot_start_sec ? config_.burst_multiplier : 1.0;
  return std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(config_.packets_per_sec * mult)));
}

std::vector<uint32_t> PacketTraceGenerator::hot_src_ips() const {
  std::vector<uint32_t> ips;
  if (!HotPinningActive()) return ips;
  size_t pinned = std::min<size_t>(config_.hot_flows, flows_.size());
  for (size_t i = 0; i < pinned; ++i) ips.push_back(flows_[i].src_ip);
  return ips;
}

bool PacketTraceGenerator::Next(Tuple* out) {
  if (emitted_ >= total_packets_) return false;
  uint64_t micros_within;
  if (config_.bursty()) {
    if (idx_in_sec_ >= sec_quota_) {
      ++current_sec_;
      idx_in_sec_ = 0;
      sec_quota_ = SecQuota(current_sec_);
      RenewFlows();
    }
    micros_within = idx_in_sec_ * 1000000ULL / sec_quota_;
  } else {
    uint32_t psec = static_cast<uint32_t>(emitted_ / config_.packets_per_sec);
    if (psec != current_sec_) {
      current_sec_ = psec;
      RenewFlows();
    }
    micros_within = (emitted_ % config_.packets_per_sec) * 1000000ULL /
                    config_.packets_per_sec;
  }
  uint32_t sec = current_sec_;
  const Flow* flow_ptr;
  double mass = config_.HotMassAt(sec);
  if (mass > 0 && rng_.Chance(mass)) {
    size_t pinned = std::min<size_t>(config_.hot_flows, flows_.size());
    flow_ptr = &flows_[rng_.Uniform(0, pinned - 1)];
    ++hot_emitted_;
  } else {
    flow_ptr = &flows_[zipf_.Sample(&rng_) - 1];
  }
  const Flow& flow = *flow_ptr;

  // Both branches burn exactly one uniform draw, so a flow flipping its
  // suspicious label (e.g. under selectivity drift) leaves every other field
  // of the packet stream byte-identical.
  const bool psh = rng_.Chance(0.3);
  uint64_t flags;
  if (flow.suspicious) {
    // Attack traffic: flags drawn from subsets of the attack pattern so the
    // per-flow OR accumulates to exactly attack_flag_pattern; single-packet
    // flows carry the full pattern.
    flags = config_.attack_flag_pattern;
  } else {
    flags = psh ? 0x18 : 0x10;  // PSH|ACK or ACK
  }
  // Heavy-tailed packet sizes: many small ACKs, some MTU-size payloads.
  uint64_t len = rng_.Chance(0.4)
                     ? 40
                     : rng_.Uniform(200, 1500);

  Tuple t;
  t.values().reserve(kPktNumFields);
  t.Append(Value::Uint(sec));
  t.Append(Value::Ip(flow.src_ip));
  t.Append(Value::Ip(flow.dest_ip));
  t.Append(Value::Uint(flow.src_port));
  t.Append(Value::Uint(flow.dest_port));
  t.Append(Value::Uint(len));
  t.Append(Value::Uint(flags));
  t.Append(Value::Uint(6));  // TCP
  t.Append(Value::Uint(static_cast<uint64_t>(sec) * 1000000ULL + micros_within));
  *out = std::move(t);
  ++emitted_;
  ++idx_in_sec_;
  return true;
}

size_t PacketTraceGenerator::NextBatch(TupleBatch* out, size_t max_tuples) {
  out->clear();
  Tuple t;
  while (out->size() < max_tuples && Next(&t)) out->push_back(std::move(t));
  return out->size();
}

TupleBatch PacketTraceGenerator::GenerateAll() {
  TupleBatch out;
  out.reserve(total_packets());
  TupleBatch chunk;
  while (NextBatch(&chunk, 4096) > 0) {
    for (Tuple& t : chunk) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace streampart
