#include "trace/trace_gen.h"

#include "catalog/catalog.h"

namespace streampart {

PacketTraceGenerator::PacketTraceGenerator(const TraceConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_flows, config.zipf_skew) {
  flows_.reserve(config_.num_flows);
  for (uint32_t i = 0; i < config_.num_flows; ++i) {
    flows_.push_back(MakeFlow());
  }
}

PacketTraceGenerator::Flow PacketTraceGenerator::MakeFlow() {
  Flow flow;
  // Hosts live in 10.0.0.0/8, packed into /28 subnets of 16 addresses.
  uint32_t src_host = static_cast<uint32_t>(rng_.Uniform(0, config_.num_hosts - 1));
  uint32_t dest_host = static_cast<uint32_t>(rng_.Uniform(0, config_.num_hosts - 1));
  flow.src_ip = 0x0A000000u | src_host;
  flow.dest_ip = 0x0A000000u | dest_host;
  flow.src_port = static_cast<uint16_t>(rng_.Uniform(1024, 65535));
  // Servers concentrate on a few well-known ports.
  static const uint16_t kServerPorts[] = {80, 443, 53, 25, 22, 8080};
  flow.dest_port = kServerPorts[rng_.Uniform(0, 5)];
  flow.suspicious = rng_.Chance(config_.suspicious_fraction);
  return flow;
}

void PacketTraceGenerator::RenewFlows() {
  size_t renewals = static_cast<size_t>(
      config_.flow_renewal * static_cast<double>(flows_.size()));
  for (size_t i = 0; i < renewals; ++i) {
    size_t victim = rng_.Uniform(0, flows_.size() - 1);
    flows_[victim] = MakeFlow();
  }
}

bool PacketTraceGenerator::Next(Tuple* out) {
  if (emitted_ >= total_packets()) return false;
  uint32_t sec = static_cast<uint32_t>(emitted_ / config_.packets_per_sec);
  if (sec != current_sec_) {
    current_sec_ = sec;
    RenewFlows();
  }
  const Flow& flow = flows_[zipf_.Sample(&rng_) - 1];

  uint64_t flags;
  if (flow.suspicious) {
    // Attack traffic: flags drawn from subsets of the attack pattern so the
    // per-flow OR accumulates to exactly attack_flag_pattern; single-packet
    // flows carry the full pattern.
    flags = config_.attack_flag_pattern;
  } else {
    flags = rng_.Chance(0.3) ? 0x18 : 0x10;  // PSH|ACK or ACK
  }
  // Heavy-tailed packet sizes: many small ACKs, some MTU-size payloads.
  uint64_t len = rng_.Chance(0.4)
                     ? 40
                     : rng_.Uniform(200, 1500);

  uint64_t micros_within = (emitted_ % config_.packets_per_sec) * 1000000ULL /
                           config_.packets_per_sec;
  Tuple t;
  t.values().reserve(kPktNumFields);
  t.Append(Value::Uint(sec));
  t.Append(Value::Ip(flow.src_ip));
  t.Append(Value::Ip(flow.dest_ip));
  t.Append(Value::Uint(flow.src_port));
  t.Append(Value::Uint(flow.dest_port));
  t.Append(Value::Uint(len));
  t.Append(Value::Uint(flags));
  t.Append(Value::Uint(6));  // TCP
  t.Append(Value::Uint(static_cast<uint64_t>(sec) * 1000000ULL + micros_within));
  *out = std::move(t);
  ++emitted_;
  return true;
}

size_t PacketTraceGenerator::NextBatch(TupleBatch* out, size_t max_tuples) {
  out->clear();
  Tuple t;
  while (out->size() < max_tuples && Next(&t)) out->push_back(std::move(t));
  return out->size();
}

TupleBatch PacketTraceGenerator::GenerateAll() {
  TupleBatch out;
  out.reserve(total_packets());
  TupleBatch chunk;
  while (NextBatch(&chunk, 4096) > 0) {
    for (Tuple& t : chunk) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace streampart
