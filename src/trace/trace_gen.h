#pragma once

/// \file trace_gen.h
/// \brief Synthetic packet-trace generation.
///
/// Substitute for the paper's one-hour AT&T data-center traces (per DESIGN.md
/// §1): what the experiments actually exercise is the *distribution* of
/// packets over flows — flow cardinality per epoch, heavy-tailed flow sizes,
/// the ~5% of flows that violate the TCP flag protocol, and IP locality that
/// makes subnet masks meaningful. The generator reproduces those properties
/// deterministically from a seed.
///
/// Flows are 5-tuples (srcIP, destIP, srcPort, destPort, protocol). A table
/// of active flows evolves by per-second renewal; each packet picks a flow by
/// a Zipf draw (rank 1 = heaviest). Suspicious flows carry the attack flag
/// pattern (OR of their flags matches TraceConfig::attack_flag_pattern);
/// normal flows OR to ordinary ACK/PSH patterns.

#include <cstdint>

#include "common/rng.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Knobs of the synthetic trace.
struct TraceConfig {
  uint64_t seed = 20080609;  // SIGMOD'08 :-)
  /// Trace length in seconds.
  uint32_t duration_sec = 60;
  /// Aggregate packet rate (the paper's taps carry ~100k pkts/sec/direction;
  /// benches scale this down and note the scaling in EXPERIMENTS.md).
  uint32_t packets_per_sec = 100000;
  /// Concurrently active flows.
  uint32_t num_flows = 4000;
  /// Fraction of the flow table replaced each second.
  double flow_renewal = 0.05;
  /// Zipf skew of packets over flows (0 = uniform).
  double zipf_skew = 1.05;
  /// Fraction of flows violating the TCP protocol (paper §6.1: ~5%).
  double suspicious_fraction = 0.05;
  /// Distinct hosts in the address pool (grouped into /28 subnets so that
  /// srcIP & 0xFFFFFFF0 aggregations are meaningful).
  uint32_t num_hosts = 1 << 12;
  /// OR_AGGR(flags) value identifying an attack flow (FIN|RST|URG).
  uint64_t attack_flag_pattern = 0x29;
};

/// \brief Streaming generator of packet tuples in the canonical packet
/// schema (catalog.h), strictly non-decreasing in `time` and `timestamp`.
class PacketTraceGenerator {
 public:
  explicit PacketTraceGenerator(const TraceConfig& config);

  /// \brief Next packet, or false at end of trace. Tuples follow
  /// MakePacketSchema() layout.
  bool Next(Tuple* out);

  /// \brief Appends up to \p max_tuples next packets to \p out (which is
  /// cleared first) and returns how many were produced; 0 at end of trace.
  /// Batched drivers feed these directly into PushSourceBatch.
  size_t NextBatch(TupleBatch* out, size_t max_tuples);

  /// \brief Generates the whole trace eagerly.
  TupleBatch GenerateAll();

  const TraceConfig& config() const { return config_; }

  /// \brief Total packets the trace will contain.
  uint64_t total_packets() const {
    return static_cast<uint64_t>(config_.duration_sec) *
           config_.packets_per_sec;
  }

 private:
  struct Flow {
    uint32_t src_ip;
    uint32_t dest_ip;
    uint16_t src_port;
    uint16_t dest_port;
    bool suspicious;
  };

  Flow MakeFlow();
  void RenewFlows();

  TraceConfig config_;
  Rng rng_;
  ZipfDistribution zipf_;
  std::vector<Flow> flows_;
  uint64_t emitted_ = 0;
  uint32_t current_sec_ = 0;
};

}  // namespace streampart
