#pragma once

/// \file trace_gen.h
/// \brief Synthetic packet-trace generation.
///
/// Substitute for the paper's one-hour AT&T data-center traces (per DESIGN.md
/// §1): what the experiments actually exercise is the *distribution* of
/// packets over flows — flow cardinality per epoch, heavy-tailed flow sizes,
/// the ~5% of flows that violate the TCP flag protocol, and IP locality that
/// makes subnet masks meaningful. The generator reproduces those properties
/// deterministically from a seed.
///
/// Flows are 5-tuples (srcIP, destIP, srcPort, destPort, protocol). A table
/// of active flows evolves by per-second renewal; each packet picks a flow by
/// a Zipf draw (rank 1 = heaviest). Suspicious flows carry the attack flag
/// pattern (OR of their flags matches TraceConfig::attack_flag_pattern);
/// normal flows OR to ordinary ACK/PSH patterns.

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Knobs of the synthetic trace.
struct TraceConfig {
  uint64_t seed = 20080609;  // SIGMOD'08 :-)
  /// Trace length in seconds.
  uint32_t duration_sec = 60;
  /// Aggregate packet rate (the paper's taps carry ~100k pkts/sec/direction;
  /// benches scale this down and note the scaling in EXPERIMENTS.md).
  uint32_t packets_per_sec = 100000;
  /// Concurrently active flows.
  uint32_t num_flows = 4000;
  /// Fraction of the flow table replaced each second.
  double flow_renewal = 0.05;
  /// Zipf skew of packets over flows (0 = uniform).
  double zipf_skew = 1.05;
  /// Fraction of flows violating the TCP protocol (paper §6.1: ~5%).
  double suspicious_fraction = 0.05;
  /// Distinct hosts in the address pool (grouped into /28 subnets so that
  /// srcIP & 0xFFFFFFF0 aggregations are meaningful).
  uint32_t num_hosts = 1 << 12;
  /// OR_AGGR(flags) value identifying an attack flow (FIN|RST|URG).
  uint64_t attack_flag_pattern = 0x29;

  // --- Heavy-hitter / bursty overload mode -------------------------------
  // All knobs default to "off"; with the mode off the generator draws the
  // exact same RNG sequence as before these fields existed, so pre-existing
  // traces are byte-identical.

  /// Fraction of packets concentrated onto the pinned hot flows once the
  /// ramp completes (0 disables the hot-key draw entirely).
  double hot_mass = 0;
  /// Number of pinned hot flows: the first `hot_flows` flow-table entries,
  /// which are excluded from per-second renewal while the mode is active so
  /// the hot keys stay stable for the whole trace.
  uint32_t hot_flows = 4;
  /// Second at which the hot window (mass ramp + burst) begins.
  uint32_t hot_start_sec = 0;
  /// Seconds over which the hot mass ramps linearly from 0 up to hot_mass;
  /// 0 makes the full mass arrive at hot_start_sec as a step.
  uint32_t hot_ramp_sec = 0;
  /// Packet-rate multiplier applied to every second inside the hot window
  /// (a per-epoch burst; 1.0 disables).
  double burst_multiplier = 1.0;

  /// \brief True when any heavy-hitter/burst knob is engaged.
  bool bursty() const { return hot_mass > 0 || burst_multiplier != 1.0; }

  // --- Deterministic workload drift --------------------------------------
  // A piecewise-linear ramp from the base mix toward a target mix: flat at
  // the base before drift_start_sec, linear across drift_ramp_sec, flat at
  // the target after. Negative targets (the default) turn each ramp off.
  // Selectivity drift keeps the packet/flow RNG sequence identical to the
  // undrifted trace (only the suspicious label flips — Chance() burns one
  // uniform regardless of the probability); hot-mix drift adds hot-key
  // draws, so it is its own trace by construction.

  /// Target HAVING-selectivity (suspicious-flow fraction) after the ramp;
  /// < 0 disables selectivity drift.
  double drift_suspicious_to = -1;
  /// Target hot-key packet mass after the ramp; < 0 disables hot-mix drift.
  double drift_hot_mass_to = -1;
  /// Second at which both drift ramps begin.
  uint32_t drift_start_sec = 0;
  /// Seconds over which the ramps run; 0 makes the targets arrive as a step.
  uint32_t drift_ramp_sec = 0;
  /// When nonzero, every pinned hot flow's srcIP is overridden to this
  /// address (after its RNG draws), so hot-mix drift lands on one
  /// deterministic source key regardless of the seed.
  uint32_t drift_hot_src_ip = 0;

  /// \brief True when either drift ramp is engaged.
  bool drifting() const {
    return drift_suspicious_to >= 0 || drift_hot_mass_to >= 0;
  }

  /// \brief Ramp progress in [0,1] at \p sec (shared by both drift ramps).
  double DriftRamp(uint32_t sec) const {
    if (sec < drift_start_sec) return 0;
    if (drift_ramp_sec == 0) return 1;
    return std::min(1.0, static_cast<double>(sec - drift_start_sec) /
                             static_cast<double>(drift_ramp_sec));
  }

  /// \brief Suspicious-flow fraction in effect during \p sec.
  double SuspiciousFractionAt(uint32_t sec) const {
    if (drift_suspicious_to < 0) return suspicious_fraction;
    return suspicious_fraction +
           (drift_suspicious_to - suspicious_fraction) * DriftRamp(sec);
  }

  /// \brief Hot-key packet mass in effect during \p sec: the bursty-mode
  /// ramp as the base, then the drift ramp toward drift_hot_mass_to.
  double HotMassAt(uint32_t sec) const {
    double base = 0;
    if (hot_mass > 0 && sec >= hot_start_sec) {
      base = hot_ramp_sec == 0
                 ? hot_mass
                 : hot_mass *
                       std::min(1.0, static_cast<double>(sec - hot_start_sec) /
                                         static_cast<double>(hot_ramp_sec));
    }
    if (drift_hot_mass_to < 0) return base;
    return base + (drift_hot_mass_to - base) * DriftRamp(sec);
  }
};

/// \brief Streaming generator of packet tuples in the canonical packet
/// schema (catalog.h), strictly non-decreasing in `time` and `timestamp`.
class PacketTraceGenerator {
 public:
  explicit PacketTraceGenerator(const TraceConfig& config);

  /// \brief Next packet, or false at end of trace. Tuples follow
  /// MakePacketSchema() layout.
  bool Next(Tuple* out);

  /// \brief Appends up to \p max_tuples next packets to \p out (which is
  /// cleared first) and returns how many were produced; 0 at end of trace.
  /// Batched drivers feed these directly into PushSourceBatch.
  size_t NextBatch(TupleBatch* out, size_t max_tuples);

  /// \brief Generates the whole trace eagerly.
  TupleBatch GenerateAll();

  const TraceConfig& config() const { return config_; }

  /// \brief Total packets the trace will contain (burst seconds included).
  uint64_t total_packets() const { return total_packets_; }

  /// \brief Packets emitted so far through the hot-key draw (0 unless
  /// TraceConfig::hot_mass > 0). Lets tests assert the configured mass.
  uint64_t hot_packets() const { return hot_emitted_; }

  /// \brief Source IPs of the pinned hot flows (empty unless hot_mass > 0
  /// or drift_hot_mass_to > 0 pins them).
  std::vector<uint32_t> hot_src_ips() const;

 private:
  struct Flow {
    uint32_t src_ip;
    uint32_t dest_ip;
    uint16_t src_port;
    uint16_t dest_port;
    bool suspicious;
  };

  Flow MakeFlow();
  void RenewFlows();
  /// True when the front-of-table hot flows are pinned against renewal
  /// (bursty hot mass or hot-mix drift).
  bool HotPinningActive() const {
    return config_.hot_mass > 0 || config_.drift_hot_mass_to > 0;
  }
  /// Packets scheduled for \p sec (burst multiplier applied in-window).
  uint64_t SecQuota(uint32_t sec) const;

  TraceConfig config_;
  Rng rng_;
  ZipfDistribution zipf_;
  std::vector<Flow> flows_;
  uint64_t emitted_ = 0;
  uint32_t current_sec_ = 0;
  uint64_t total_packets_ = 0;
  // Bursty-mode bookkeeping (unused on the legacy fixed-rate path).
  uint64_t idx_in_sec_ = 0;
  uint64_t sec_quota_ = 0;
  uint64_t hot_emitted_ = 0;
};

}  // namespace streampart
