#pragma once

/// \file parallel_exec.h
/// \brief Morsel-driven worker scheduler for the simulated cluster.
///
/// ParallelExecutor runs each simulated host's engine on a fixed pool of
/// worker threads with work-stealing: every host has a driver->host SPSC
/// work queue of morsels, and threads claim hosts (an atomic CAS per host)
/// before touching any of that host's operator state. The claim is the
/// single-writer guarantee: all operator instances, per-host StatsRegistry
/// counters, and per-host recovery state are only ever touched by the
/// thread currently holding the host's claim (or by the driver while the
/// pool is quiesced), so none of them need to become atomic.
///
/// Cross-host tuple flow uses bounded lock-free SPSC rings
/// (common/spsc_queue.h) in one of two topologies, chosen at Build time by
/// ClusterRuntime (docs/THREADING.md has the full protocol):
///
///  * worker_rings = true (healthy pipeline mode): an H x H mesh of
///    host-to-host rings. The claim holder of host `f` is the unique
///    producer of every ring (f -> *), and the claim holder of host `t` is
///    the unique consumer of every ring (* -> t). No barriers; consumers
///    drain continuously.
///
///  * worker_rings = false (epoch-barrier mode): one ring per host carrying
///    staged messages to the driver. The driver pumps the rings into
///    per-host pending buffers and, at each epoch barrier, replays them in
///    the exact global order of the single-threaded execution — every work
///    item carries a global routing sequence number `seq`, every staged
///    message carries (seq, sub), and ReplayMerged() is an H-way merge on
///    that pair. Per-ring FIFO plus the merge reproduces the sequential
///    call order byte-for-byte.
///
/// Deadlock freedom: a worker blocked pushing into a full outbound ring
/// drains its own inbound rings (it holds its host's claim) and
/// opportunistically claims the consumer host to drain that host's inbound
/// rings; the driver blocked on a full work queue pumps the driver rings.
/// In any cycle of blocked producers, every participant is draining the
/// ring that feeds it, so some push always completes. All waits yield —
/// there is no pure spinning, which keeps the scheduler healthy even with
/// more threads than cores (or on a single-core machine).

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "types/tuple.h"

namespace streampart {

/// \brief One unit of host work: a morsel of source tuples (pipeline mode)
/// or a single routed tuple (barrier mode), plus the routing-edge list it
/// fans out to. `edges` is an opaque pointer into ClusterRuntime::routing_,
/// which is stable after Build.
struct ParallelWorkItem {
  const void* edges = nullptr;
  int partition = -1;
  int host = 0;
  /// Global routing sequence number (barrier mode; drives replay order).
  uint64_t seq = 0;
  TupleBatch batch;
};

/// \brief A staged cross-host message.
///
/// Pipeline mode: a decoded batch for `consumer`/`port` with the sender
/// half of the transfer already accounted (`enc_bytes` carries the wire
/// size for the receiver half). Barrier mode: one original (wire) tuple in
/// batch[0] whose cross-host delivery the driver replays through the exact
/// sequential code path; `partition` >= 0 marks a source-edge send (reliable
/// producer key -(partition+1)), otherwise `producer_op` is the emitting
/// operator.
struct ParallelRingMsg {
  int consumer = -1;
  uint32_t port = 0;
  int from = 0;
  int partition = -1;
  int producer_op = -1;
  uint64_t enc_bytes = 0;
  uint64_t seq = 0;
  uint32_t sub = 0;
  /// True when `batch` is a decoded batch transfer (delivered via
  /// PushBatch + batch accounting); false for a single wire tuple that
  /// replays through the per-tuple delivery path.
  bool is_batch = false;
  TupleBatch batch;
};

class ParallelExecutor {
 public:
  /// Advisory per-host scheduling counters (folded into the scheduler
  /// registry after Stop; never part of the RunLedger).
  struct HostStats {
    uint64_t morsels = 0;
    uint64_t tuples = 0;
    uint64_t staged = 0;
    uint64_t steals = 0;
  };

  using WorkFn = std::function<void(int host, ParallelWorkItem&&)>;
  using RingFn = std::function<void(int host, ParallelRingMsg&&)>;

  /// \p ring_fn is the pipeline-mode consumer callback (unused in barrier
  /// mode). \p work_capacity / \p ring_capacity size the SPSC queues (in
  /// items; rounded up to powers of two).
  ParallelExecutor(int num_hosts, int num_threads, bool worker_rings,
                   size_t work_capacity, size_t ring_capacity, WorkFn work_fn,
                   RingFn ring_fn);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  void Start();

  /// \brief Driver side: hand a work item to \p host. Blocks (pumping
  /// driver rings in barrier mode) while the host's queue is full.
  void Enqueue(int host, ParallelWorkItem&& item);

  /// \brief Worker side (claim of \p from held): stage a cross-host
  /// message. Routes to ring (from -> to) in pipeline mode and to the
  /// driver ring of \p from in barrier mode. Blocks with deadlock-avoiding
  /// draining while full.
  void Stage(int from, int to, ParallelRingMsg&& msg);

  /// \brief Driver side: wait until every enqueued item and staged message
  /// has been fully processed (barrier mode: pumped into pending buffers).
  void Quiesce();

  /// \brief Driver side, barrier mode, after Quiesce(): replay all pending
  /// staged messages in ascending (seq, sub) order.
  void ReplayMerged(const std::function<void(ParallelRingMsg&&)>& fn);

  /// \brief Quiesces and joins the pool. Idempotent.
  void Stop();

  /// \brief True when the calling thread is one of this pool's workers.
  static bool InWorker();

  int num_threads() const { return num_threads_; }
  /// Valid after Stop().
  const std::vector<HostStats>& host_stats() const { return stats_; }

 private:
  void WorkerLoop(int tid);
  /// Processes up to \p quantum items for claimed host \p h; returns
  /// whether anything was processed.
  bool DrainHostSome(int h, int quantum);
  /// Pipeline mode: drains some inbound ring traffic of claimed host \p h.
  bool DrainInboundSome(int h, int quantum);
  /// Barrier mode, driver side: moves ring contents into pending_.
  void PumpDriverRings();
  bool TryClaim(int h, int tid);
  void ReleaseClaim(int h);
  SpscQueue<ParallelRingMsg>& RingFor(int from, int to) {
    return *rings_[static_cast<size_t>(from) * static_cast<size_t>(num_hosts_) +
                   static_cast<size_t>(to)];
  }

  const int num_hosts_;
  const int num_threads_;
  const bool worker_rings_;
  WorkFn work_fn_;
  RingFn ring_fn_;

  std::vector<std::unique_ptr<SpscQueue<ParallelWorkItem>>> work_;
  /// Pipeline mode: H x H mesh indexed [from * H + to]. Barrier mode: H
  /// driver rings indexed [from] (the mesh is not allocated).
  std::vector<std::unique_ptr<SpscQueue<ParallelRingMsg>>> rings_;
  std::vector<std::unique_ptr<SpscQueue<ParallelRingMsg>>> driver_rings_;
  /// Barrier mode: driver-side FIFO buffers, per from-host, each sorted by
  /// (seq, sub) because stages happen in processing order.
  std::vector<std::vector<ParallelRingMsg>> pending_;

  /// Host claims: -1 free, else owning thread id. CAS(-1 -> tid) with
  /// acq_rel publishes all prior host-state writes of the previous owner
  /// to the next one.
  std::vector<std::unique_ptr<std::atomic<int>>> claims_;

  /// Items enqueued or staged but not yet fully processed. The driver's
  /// acquire load pairing with worker release decrements is what makes
  /// Quiesce() a synchronization point for all host state.
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<bool> stop_{false};

  std::vector<HostStats> stats_;
  std::vector<std::thread> threads_;
  bool started_ = false;
};

}  // namespace streampart
