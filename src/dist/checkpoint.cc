#include "dist/checkpoint.h"

#include <algorithm>

#include "common/logging.h"
#include "types/serde.h"

namespace streampart {

namespace {
constexpr uint8_t kBlobVersion = 1;
}  // namespace

RecoveryCoordinator::RecoveryCoordinator(RecoveryConfig config)
    : config_(config) {
  if (config_.epoch_width == 0) config_.epoch_width = 1;
  section_.active = true;
  section_.checkpoint_interval = config_.checkpoint_interval;
  section_.epoch_width = config_.epoch_width;
}

bool RecoveryCoordinator::AdvanceEpoch(uint64_t eid) {
  if (!started_) {
    started_ = true;
    current_eid_ = eid;
    last_ckpt_eid_ = eid;  // checkpoint baseline
    return true;
  }
  if (eid <= current_eid_) return false;
  current_eid_ = eid;
  return true;
}

bool RecoveryCoordinator::CheckpointDue() const {
  return started_ && config_.checkpoint_interval > 0 &&
         current_eid_ - last_ckpt_eid_ >= config_.checkpoint_interval;
}

void RecoveryCoordinator::BeginCheckpoint() {
  ++section_.checkpoints;
  last_ckpt_eid_ = current_eid_;
}

void RecoveryCoordinator::PrepareOp(int op) {
  logs_[op];
  suppress_[op];
}

void RecoveryCoordinator::PrepareEdge(const EdgeKey& key) { edges_[key]; }

bool RecoveryCoordinator::ShouldSerialize(int op) const {
  if (blobs_.count(op) == 0) return true;
  auto it = logs_.find(op);
  return it != logs_.end() && !it->second.empty();
}

size_t RecoveryCoordinator::StoreBlob(int op, std::string payload,
                                      uint64_t tuples_out) {
  Blob blob;
  blob.envelope.push_back(static_cast<char>(kBlobVersion));
  PutVarint(payload.size(), &blob.envelope);
  blob.payload_offset = blob.envelope.size();
  blob.envelope += payload;
  blob.tuples_out = tuples_out;
  size_t stored = blob.envelope.size();
  blobs_[op] = std::move(blob);
  logs_[op].clear();  // the blob covers every logged delivery
  ++section_.ops_serialized;
  section_.checkpoint_bytes += stored;
  return stored;
}

std::string_view RecoveryCoordinator::BlobPayload(int op) const {
  auto it = blobs_.find(op);
  SP_CHECK(it != blobs_.end()) << "no checkpoint blob for op " << op;
  const Blob& blob = it->second;
  SP_CHECK(!blob.envelope.empty() &&
           static_cast<uint8_t>(blob.envelope[0]) == kBlobVersion)
      << "unsupported checkpoint blob version for op " << op;
  return std::string_view(blob.envelope)
      .substr(blob.payload_offset);
}

size_t RecoveryCoordinator::BlobStoredBytes(int op) const {
  auto it = blobs_.find(op);
  return it == blobs_.end() ? 0 : it->second.envelope.size();
}

uint64_t RecoveryCoordinator::CheckpointTuplesOut(int op) const {
  auto it = blobs_.find(op);
  return it == blobs_.end() ? 0 : it->second.tuples_out;
}

void RecoveryCoordinator::ResetCheckpointTuplesOut(int op) {
  auto it = blobs_.find(op);
  if (it != blobs_.end()) it->second.tuples_out = 0;
}

void RecoveryCoordinator::LogDelivery(int op, size_t port,
                                      const Tuple& tuple) {
  logs_[op].push_back({port, tuple});
}

const std::vector<RecoveryCoordinator::Delivery>&
RecoveryCoordinator::DeliveryLog(int op) const {
  static const std::vector<Delivery> kEmpty;
  auto it = logs_.find(op);
  return it == logs_.end() ? kEmpty : it->second;
}

void RecoveryCoordinator::CountReplayedTuples(uint64_t n) {
  section_.replayed_tuples += n;
}

uint64_t RecoveryCoordinator::RecordSend(const EdgeKey& key,
                                         const Tuple& tuple, uint64_t bytes) {
  EdgeState& edge = edges_[key];
  uint64_t seq = edge.next_seq++;
  PendingSend pending;
  pending.tuple = tuple;
  pending.bytes = bytes;
  pending.attempts = 0;
  pending.next_retry_eid = current_eid_ + 1;
  edge.pending.emplace(seq, std::move(pending));
  ++edge.sent;
  return seq;
}

bool RecoveryCoordinator::Deliver(const EdgeKey& key, uint64_t seq,
                                  const Tuple& tuple, const ApplyFn& apply) {
  EdgeState& edge = edges_[key];
  // The arrival acks the sender buffer regardless of freshness: the ack
  // channel is reliable and instantaneous, so reaching the receiver at all
  // stops retransmission.
  edge.pending.erase(seq);
  if (seq <= edge.applied_seq || edge.arrived.count(seq) != 0) {
    ++edge.dups;
    return false;
  }
  edge.arrived.emplace(seq, tuple);
  // Apply the maximal contiguous run in sequence order (per-edge FIFO).
  auto it = edge.arrived.find(edge.applied_seq + 1);
  while (it != edge.arrived.end() && it->first == edge.applied_seq + 1) {
    apply(key.port, it->second);
    ++edge.applied;
    edge.applied_seq = it->first;
    it = edge.arrived.erase(it);
  }
  return true;
}

void RecoveryCoordinator::ScanRetransmits(uint64_t eid,
                                          const ResendFn& resend) {
  // Pass 1: collect due items and advance their backoff. Resending can
  // synchronously deliver, ack, and erase pending entries, so the callback
  // pass works over copies.
  std::vector<RetxItem> due;
  for (auto& [key, edge] : edges_) {
    for (auto& [seq, pending] : edge.pending) {
      if (pending.next_retry_eid > eid) continue;
      ++pending.attempts;
      RetxItem item;
      item.key = key;
      item.seq = seq;
      item.tuple = pending.tuple;
      item.bytes = pending.bytes;
      item.escalate = pending.attempts > config_.max_retx_attempts;
      uint64_t shift = std::min<uint64_t>(pending.attempts, 16);
      uint64_t backoff = std::min<uint64_t>(config_.max_backoff_epochs,
                                            uint64_t{1} << shift);
      pending.next_retry_eid = eid + std::max<uint64_t>(1, backoff);
      due.push_back(std::move(item));
    }
  }
  for (const RetxItem& item : due) resend(item);
}

void RecoveryCoordinator::ForceRetransmits(const ResendFn& resend) {
  // Same two-pass shape as ScanRetransmits: resending can synchronously
  // deliver, ack, and erase pending entries, so the callback pass works over
  // copies. No attempt is charged and escalate stays false — the heal-drain
  // is a scheduling shortcut, not a delivery retry.
  std::vector<RetxItem> due;
  for (auto& [key, edge] : edges_) {
    for (auto& [seq, pending] : edge.pending) {
      RetxItem item;
      item.key = key;
      item.seq = seq;
      item.tuple = pending.tuple;
      item.bytes = pending.bytes;
      item.escalate = false;
      due.push_back(std::move(item));
    }
  }
  for (const RetxItem& item : due) resend(item);
}

void RecoveryCoordinator::DrainEdgePending(const EdgeKey& key,
                                           const ResendFn& resend) {
  auto edge_it = edges_.find(key);
  if (edge_it == edges_.end()) return;
  std::vector<RetxItem> due;
  for (const auto& [seq, pending] : edge_it->second.pending) {
    RetxItem item;
    item.key = key;
    item.seq = seq;
    item.tuple = pending.tuple;
    item.bytes = pending.bytes;
    item.escalate = true;
    due.push_back(std::move(item));
  }
  for (const RetxItem& item : due) resend(item);
}

void RecoveryCoordinator::DrainAllPending(const ResendFn& resend) {
  std::vector<EdgeKey> keys;
  keys.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) keys.push_back(key);
  for (const EdgeKey& key : keys) DrainEdgePending(key, resend);
}

bool RecoveryCoordinator::Quiesced() const {
  uint64_t sent = 0;
  uint64_t applied = 0;
  for (const auto& [key, edge] : edges_) {
    if (!edge.pending.empty() || !edge.arrived.empty()) return false;
    sent += edge.sent;
    applied += edge.applied;
  }
  return sent == applied;
}

void RecoveryCoordinator::SetSuppression(int op, uint64_t n) {
  SuppressWindow& window = suppress_[op];
  window.active = n != 0;
  window.limit = n;
}

bool RecoveryCoordinator::Suppress(int op, uint64_t idx) {
  auto it = suppress_.find(op);
  if (it == suppress_.end() || !it->second.active || idx > it->second.limit) {
    return false;
  }
  ++it->second.count;
  return true;
}

void RecoveryCoordinator::CountRestore(uint64_t bytes) {
  ++section_.restores;
  section_.restored_bytes += bytes;
}

RecoverySection RecoveryCoordinator::section(
    double cycles_per_checkpoint_byte) const {
  RecoverySection out = section_;
  // Fold the per-edge and per-window shards (map order, deterministic).
  for (const auto& [key, edge] : edges_) {
    out.reliable_sent += edge.sent;
    out.reliable_applied += edge.applied;
    out.retx_dup_discarded += edge.dups;
  }
  for (const auto& [op, window] : suppress_) {
    out.replay_suppressed += window.count;
  }
  out.checkpoint_cost_cycles =
      cycles_per_checkpoint_byte *
      static_cast<double>(out.checkpoint_bytes + out.restored_bytes);
  return out;
}

}  // namespace streampart
