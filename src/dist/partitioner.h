#pragma once

/// \file partitioner.h
/// \brief Stream partitioners modelling the capture-hardware splitter.
///
/// Paper §3.3: a tuple falls into partition i when
/// i*R/M <= H(A) < (i+1)*R/M for a hash H over the partitioning set A —
/// i.e. range-partitioning of the hash space into M equal slices. The
/// query-independent baseline is round-robin (§6's "Naive" configurations).

#include <memory>

#include "common/result.h"
#include "partition/partition_set.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Routes source tuples to partitions.
class StreamPartitioner {
 public:
  virtual ~StreamPartitioner() = default;
  /// \brief Partition index in [0, num_partitions) for \p tuple.
  virtual int PartitionOf(const Tuple& tuple) = 0;
  virtual int num_partitions() const = 0;
  virtual std::string Describe() const = 0;
};

/// \brief Query-independent round-robin splitter (paper's Naive baseline).
class RoundRobinPartitioner : public StreamPartitioner {
 public:
  explicit RoundRobinPartitioner(int num_partitions)
      : num_partitions_(num_partitions) {}

  int PartitionOf(const Tuple&) override {
    int p = next_;
    next_ = (next_ + 1) % num_partitions_;
    return p;
  }
  int num_partitions() const override { return num_partitions_; }
  std::string Describe() const override { return "round-robin"; }

 private:
  int num_partitions_;
  int next_ = 0;
};

/// \brief Hash partitioner over a partitioning set (§3.3).
class HashPartitioner : public StreamPartitioner {
 public:
  /// \brief Binds \p ps against \p source_schema. Fails if the set is empty
  /// or references unknown columns.
  static Result<std::unique_ptr<HashPartitioner>> Make(
      const PartitionSet& ps, const SchemaPtr& source_schema,
      int num_partitions);

  int PartitionOf(const Tuple& tuple) override;
  int num_partitions() const override { return num_partitions_; }
  std::string Describe() const override { return "hash" + spec_; }

 private:
  HashPartitioner(std::vector<ExprPtr> bound_exprs, int num_partitions,
                  std::string spec)
      : exprs_(std::move(bound_exprs)),
        num_partitions_(num_partitions),
        spec_(std::move(spec)) {}

  std::vector<ExprPtr> exprs_;
  int num_partitions_;
  std::string spec_;
};

/// \brief Builds the partitioner for a configuration: hash over \p ps when
/// non-empty, round-robin otherwise.
Result<std::unique_ptr<StreamPartitioner>> MakePartitioner(
    const PartitionSet& ps, const SchemaPtr& source_schema,
    int num_partitions);

}  // namespace streampart
