#include "dist/partitioner.h"

#include "common/hash.h"

namespace streampart {

Result<std::unique_ptr<HashPartitioner>> HashPartitioner::Make(
    const PartitionSet& ps, const SchemaPtr& source_schema,
    int num_partitions) {
  if (ps.empty()) {
    return Status::InvalidArgument("hash partitioner needs a non-empty set");
  }
  if (num_partitions < 1) {
    return Status::InvalidArgument("need at least one partition");
  }
  BindingContext ctx;
  ctx.AddInput("", source_schema);
  std::vector<ExprPtr> bound;
  for (const ExprPtr& e : ps.ToExprs()) {
    SP_ASSIGN_OR_RETURN(ExprPtr b, e->Bind(ctx));
    bound.push_back(std::move(b));
  }
  return std::unique_ptr<HashPartitioner>(new HashPartitioner(
      std::move(bound), num_partitions, ps.ToString()));
}

int HashPartitioner::PartitionOf(const Tuple& tuple) {
  uint64_t h = Mix64(0x5eed5eed5eed5eedULL);
  for (const ExprPtr& e : exprs_) {
    h = HashCombine(h, e->Eval(tuple).Hash());
  }
  // Range-partition the 64-bit hash space into M equal slices (§3.3):
  // partition = floor(h * M / 2^64).
  return static_cast<int>(
      (static_cast<unsigned __int128>(h) * num_partitions_) >> 64);
}

Result<std::unique_ptr<StreamPartitioner>> MakePartitioner(
    const PartitionSet& ps, const SchemaPtr& source_schema,
    int num_partitions) {
  if (ps.empty()) {
    return std::unique_ptr<StreamPartitioner>(
        std::make_unique<RoundRobinPartitioner>(num_partitions));
  }
  SP_ASSIGN_OR_RETURN(std::unique_ptr<HashPartitioner> hash,
                      HashPartitioner::Make(ps, source_schema, num_partitions));
  return std::unique_ptr<StreamPartitioner>(std::move(hash));
}

}  // namespace streampart
