#pragma once

/// \file checkpoint.h
/// \brief Lossless recovery for the simulated cluster: epoch-aligned
/// operator-state checkpointing, acked channel retransmission, and state
/// migration on host death.
///
/// The PR-3 fault machinery (dist/fault.h) makes degradation *measurable*:
/// a killed host's open windows are invalidated and in-flight tuples are
/// counted lost. This coordinator makes the same faults *survivable*. Three
/// mechanisms compose, all executed inside the single-threaded simulation so
/// snapshots are globally consistent by construction:
///
///  1. **Epoch-aligned checkpoints.** Every `checkpoint_interval` epochs the
///     runtime serializes each operator's state (exec/operator.h
///     CheckpointState) into an in-simulation blob store, wrapped in a
///     versioned envelope `[u8 version][varint payload_len][payload]`.
///     Checkpoints are incremental: an operator whose delivery log is empty
///     (no tuples delivered since its last snapshot) is skipped — its stored
///     blob is still exact.
///
///  2. **Acked retransmission.** Every cross-host operator edge and every
///     source->operator edge carries per-edge sequence numbers (same-host
///     operator edges are direct calls and cannot lose tuples; same-host
///     source edges keep their sequencing so a migration-collapsed edge
///     stays ordered). The sender buffers each
///     tuple until the receiver's ack; the simulation models the data channel
///     as faulty but the ack channel as reliable and instantaneous (an
///     arrival acks synchronously), so "unacked" means the tuple is still in
///     flight inside a degraded channel — dropped, held for reorder, or
///     queued. Unacked tuples retransmit on later epochs with capped
///     exponential backoff; after `max_retx_attempts` the send escalates to
///     a direct delivery (the simulation's stand-in for an out-of-band
///     reliable path), so no tuple is ever lost. Receivers apply tuples in
///     sequence order and discard duplicates, giving per-edge FIFO
///     exactly-once delivery over arbitrarily lossy channels.
///
///  3. **State migration.** When a host dies, its operators are rebuilt on a
///     survivor from the last checkpoint, and the post-checkpoint suffix of
///     each operator's *delivery log* — every (port, tuple) applied to it
///     since its last snapshot, in original arrival order — is replayed into
///     the restored instance. Replay re-emissions are suppressed at external
///     sinks by output index (the emission stream of a deterministic
///     operator is reproducible), so downstream hosts and result sinks see
///     every output exactly once. The net effect asserted by the recovery
///     battery: a run with kills and lossy channels produces byte-identical
///     output to the healthy run.
///
/// The coordinator itself is pure bookkeeping — blob store, delivery logs,
/// per-edge sequencing state, suppression windows, and the RecoverySection
/// ledger — with no knowledge of operators or hosts. ClusterRuntime drives
/// it (dist/cluster_runtime.cc) and owns all delivery side effects.
/// docs/FAULTS.md ("Lossless recovery") documents the semantics and limits.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/report.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Recovery knobs, derived from the FaultPlan (dist/fault.h).
struct RecoveryConfig {
  /// Epochs between checkpoints (> 0; 0 never constructs a coordinator).
  uint64_t checkpoint_interval = 4;
  /// Timestamp stride per epoch (FaultPlan::epoch_width).
  uint64_t epoch_width = 1;
  /// Retransmit attempts per tuple before escalating to direct delivery.
  uint64_t max_retx_attempts = 8;
  /// Cap on the exponential retransmit backoff, in epochs.
  uint64_t max_backoff_epochs = 8;
};

/// \brief Identity of one directed, acked edge. `producer` is the producing
/// operator's plan id, or -(partition + 1) for source->operator edges (source
/// partitions are not operators but their edges still need sequencing).
struct EdgeKey {
  int producer = 0;
  int consumer = 0;
  size_t port = 0;

  friend bool operator<(const EdgeKey& a, const EdgeKey& b) {
    if (a.producer != b.producer) return a.producer < b.producer;
    if (a.consumer != b.consumer) return a.consumer < b.consumer;
    return a.port < b.port;
  }
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

/// \brief The recovery bookkeeping engine: checkpoint blob store, per-op
/// delivery logs, per-edge ack/retransmit state, and replay suppression.
/// All methods are O(log n) map operations; no operator or host knowledge.
class RecoveryCoordinator {
 public:
  explicit RecoveryCoordinator(RecoveryConfig config);

  const RecoveryConfig& config() const { return config_; }

  // -- Structure pre-creation (parallel execution) ---------------------------
  //
  // Under parallel execution (dist/parallel_exec.h) worker threads touch
  // recovery state for the host they hold a claim on: delivery logs,
  // per-edge sequencing, and suppression windows. Those lookups must not
  // mutate the owning maps (a map insert from one host's worker would race
  // another host's lookups), so ClusterRuntime::Build pre-creates every
  // operator and edge entry up front. Pre-created empty entries are
  // observationally identical to absent ones (ShouldSerialize, section(),
  // Quiesced() all treat present-empty and missing alike).

  /// \brief Ensures \p op's delivery log and suppression window exist.
  void PrepareOp(int op);
  /// \brief Ensures \p key's edge-sequencing state exists.
  void PrepareEdge(const EdgeKey& key);

  // -- Epoch clock -----------------------------------------------------------

  /// \brief Observes epoch id \p eid (source time / epoch_width). Returns
  /// true when it starts a new epoch (monotonic; repeats and regressions
  /// return false). The first observed epoch becomes the checkpoint
  /// baseline.
  bool AdvanceEpoch(uint64_t eid);
  uint64_t current_epoch() const { return current_eid_; }

  /// \brief True when `checkpoint_interval` epochs have elapsed since the
  /// last checkpoint (or the baseline).
  bool CheckpointDue() const;
  /// \brief Opens a checkpoint round: bumps the round counter and re-arms
  /// the interval.
  void BeginCheckpoint();

  // -- Checkpoint blob store -------------------------------------------------

  /// \brief True when \p op must be serialized this round: it has no stored
  /// blob yet, or tuples were delivered to it since its last snapshot (its
  /// delivery log is non-empty). A false result means the stored blob is
  /// still exact and the snapshot can be skipped (incremental checkpointing).
  bool ShouldSerialize(int op) const;
  void CountSkipped() { ++section_.ops_skipped; }

  /// \brief Stores \p payload (the operator's CheckpointState bytes) for
  /// \p op, wrapped in the versioned envelope, records \p tuples_out as the
  /// operator's output position at snapshot time, and trims the operator's
  /// delivery log (the blob now covers it). Returns the stored envelope
  /// size in bytes (the quantity charged to the host's ckpt_bytes).
  size_t StoreBlob(int op, std::string payload, uint64_t tuples_out);

  bool HasBlob(int op) const { return blobs_.count(op) != 0; }
  /// \brief The unwrapped CheckpointState payload of \p op's stored blob.
  /// Requires HasBlob(op).
  std::string_view BlobPayload(int op) const;
  /// \brief Stored envelope size of \p op's blob; 0 when none.
  size_t BlobStoredBytes(int op) const;
  /// \brief The operator's tuples_out at its last snapshot (0 when none) —
  /// the base of the replay-suppression window.
  uint64_t CheckpointTuplesOut(int op) const;
  /// \brief Re-bases \p op's snapshot output position to 0 after migration:
  /// the restored instance's output numbering restarts at the snapshot
  /// point, so a later snapshot/suppression window must count from there.
  void ResetCheckpointTuplesOut(int op);

  // -- Per-operator delivery logs --------------------------------------------

  /// One applied delivery into an operator instance.
  struct Delivery {
    size_t port = 0;
    Tuple tuple;
  };

  /// \brief Records that \p tuple was applied (Push) to \p op on \p port.
  /// Called on every delivery while recovery is active — local edges,
  /// source-local edges, and reliable-edge applies — EXCEPT migration
  /// replay, which replays the log without re-logging.
  void LogDelivery(int op, size_t port, const Tuple& tuple);
  /// \brief The post-snapshot delivery suffix of \p op, in original arrival
  /// order across all ports and producers.
  const std::vector<Delivery>& DeliveryLog(int op) const;
  void CountReplayedTuples(uint64_t n);

  // -- Acked edges -----------------------------------------------------------

  /// One unacked in-flight tuple on an edge.
  struct PendingSend {
    Tuple tuple;
    uint64_t bytes = 0;          ///< wire size (for resend accounting)
    uint64_t attempts = 0;       ///< retransmissions performed so far
    uint64_t next_retry_eid = 0; ///< epoch at which the next retry is due
  };

  /// A due retransmission handed to the runtime's resend callback.
  struct RetxItem {
    EdgeKey key;
    uint64_t seq = 0;
    Tuple tuple;
    uint64_t bytes = 0;
    /// Attempts exhausted: deliver directly instead of re-entering the
    /// faulty channel.
    bool escalate = false;
  };
  using ResendFn = std::function<void(const RetxItem&)>;
  /// Applies one in-order tuple into the consumer (LogDelivery + Push).
  using ApplyFn = std::function<void(size_t port, const Tuple& tuple)>;

  /// \brief Registers a send on \p key: assigns the next sequence number,
  /// buffers the tuple until acked, and schedules its first retry for the
  /// next epoch. Returns the assigned sequence number (1-based).
  uint64_t RecordSend(const EdgeKey& key, const Tuple& tuple, uint64_t bytes);

  /// \brief Receives sequence \p seq on \p key. Duplicates (already applied,
  /// or already buffered out-of-order) are discarded and counted; a fresh
  /// arrival acks the sender buffer, then applies the maximal contiguous
  /// run of buffered sequences through \p apply in order. Returns true when
  /// the arrival was fresh.
  bool Deliver(const EdgeKey& key, uint64_t seq, const Tuple& tuple,
               const ApplyFn& apply);

  /// \brief Finds every pending send whose retry is due at epoch \p eid,
  /// advances its backoff (capped exponential, `max_backoff_epochs`), and
  /// hands it to \p resend — with `escalate` set once its attempts exceed
  /// `max_retx_attempts`. Two-pass (collect, then invoke) so resends that
  /// synchronously ack and erase pending entries cannot invalidate the scan.
  void ScanRetransmits(uint64_t eid, const ResendFn& resend);

  /// \brief Escalates every pending send of \p key to \p resend regardless
  /// of its retry schedule — used before finishing the consumer's port so
  /// nothing is stranded in a sender buffer.
  void DrainEdgePending(const EdgeKey& key, const ResendFn& resend);
  /// \brief DrainEdgePending over every edge (end of run).
  void DrainAllPending(const ResendFn& resend);

  /// \brief Resends every pending send immediately, ignoring its backoff
  /// schedule, without charging an attempt and without escalating — the
  /// heal-drain: after a network partition heals, the backlog the severed
  /// pairs accumulated redelivers through the restored channels right away
  /// instead of waiting out backoffs inflated by refused retries.
  void ForceRetransmits(const ResendFn& resend);

  /// \brief True when every edge has drained: no pending (unacked) sends,
  /// no buffered out-of-order arrivals, and every sent tuple was applied.
  /// The zero-unrecovered-loss identity of the recovery battery.
  bool Quiesced() const;

  // -- Replay suppression ----------------------------------------------------

  /// \brief Arms suppression of the first \p n emissions of migrated
  /// operator \p op: during log replay the restored instance re-emits the
  /// outputs it already published before the kill; external sinks drop
  /// emission indices <= n.
  void SetSuppression(int op, uint64_t n);
  /// \brief True when emission index \p idx (1-based, the operator's
  /// tuples_out after the emission) falls inside \p op's suppression
  /// window. Counts each suppressed emission.
  bool Suppress(int op, uint64_t idx);

  // -- Accounting ------------------------------------------------------------

  void CountRestore(uint64_t bytes);
  void CountMigratedOp() { ++section_.ops_migrated; }
  void CountRetxSent() { ++section_.retx_sent; }
  void CountEscalated() { ++section_.retx_escalated; }

  /// \brief Ledger snapshot; \p cycles_per_checkpoint_byte prices the
  /// serialization traffic (CpuCostParams::cycles_per_checkpoint_byte).
  RecoverySection section(double cycles_per_checkpoint_byte) const;

 private:
  /// Stored checkpoint of one operator.
  struct Blob {
    std::string envelope;       ///< [version][varint len][payload]
    size_t payload_offset = 0;  ///< payload start within envelope
    uint64_t tuples_out = 0;    ///< output position at snapshot time
  };
  /// Sequencing state of one acked edge. The reliable-delivery counters
  /// live here (not in the shared RecoverySection) so that parallel workers
  /// only ever write state of edges they hold the host claim for;
  /// section() folds them deterministically.
  struct EdgeState {
    uint64_t next_seq = 1;     ///< next sequence number to assign
    uint64_t applied_seq = 0;  ///< highest contiguously applied sequence
    uint64_t sent = 0;         ///< reliable sends registered on this edge
    uint64_t applied = 0;      ///< in-order applies into the consumer
    uint64_t dups = 0;         ///< retransmit duplicates discarded
    std::map<uint64_t, PendingSend> pending;  ///< sent, unacked
    std::map<uint64_t, Tuple> arrived;        ///< received, awaiting a gap
  };
  /// Replay-suppression window of one operator. `active` flips instead of
  /// erasing the entry so suppressed counts survive disarming and the map
  /// structure stays stable for parallel lookups.
  struct SuppressWindow {
    uint64_t limit = 0;  ///< suppress emission indices <= limit
    bool active = false;
    uint64_t count = 0;  ///< emissions suppressed through this window
  };

  RecoveryConfig config_;
  bool started_ = false;
  uint64_t current_eid_ = 0;
  uint64_t last_ckpt_eid_ = 0;
  std::map<int, Blob> blobs_;
  std::map<int, std::vector<Delivery>> logs_;
  std::map<EdgeKey, EdgeState> edges_;
  std::map<int, SuppressWindow> suppress_;
  RecoverySection section_;
};

}  // namespace streampart
