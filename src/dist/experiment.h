#pragma once

/// \file experiment.h
/// \brief Experiment harness reproducing the paper's evaluation protocol.
///
/// Paper §6: replay a packet trace into a cluster of 1..4 hosts (two
/// partitions per host), under several system configurations — combinations
/// of a partitioning scheme and optimizer rules — and measure CPU load and
/// network load on the aggregator node (the host executing the query-tree
/// root). This harness runs such sweeps and yields the series the figures
/// plot.

#include <map>
#include <string>
#include <vector>

#include "dist/cluster_runtime.h"
#include "exec/local_engine.h"
#include "metrics/cpu_model.h"
#include "optimizer/optimizer.h"
#include "trace/trace_gen.h"

namespace streampart {

/// \brief One system configuration of a §6 experiment.
struct ExperimentConfig {
  /// Series label ("Naive", "Optimized", "Partitioned", ...).
  std::string name;
  /// Source partitioning; empty = round-robin (query-independent).
  PartitionSet ps;
  OptimizerOptions optimizer;
  /// Fault scenario (dist/fault.h); the default (empty) plan injects
  /// nothing and leaves the run byte-identical to a fault-free one.
  FaultPlan faults;
};

/// \brief Measurements of one (configuration, cluster size) cell.
struct ExperimentPoint {
  int num_hosts = 0;
  /// CPU load (%) on the aggregator host. >100 means overload (the real
  /// system would drop tuples).
  double aggregator_cpu_pct = 0;
  /// Network load (tuples/sec) into the aggregator host.
  double aggregator_net_tuples_sec = 0;
  /// Mean CPU load (%) over the leaf (non-aggregator) hosts; equals the
  /// aggregator load for a single-host cluster.
  double leaf_cpu_pct = 0;
  /// Total result tuples produced by plan sinks.
  uint64_t output_tuples = 0;
};

/// \brief All series of one figure.
struct SweepResult {
  std::vector<int> host_counts;
  /// Config name -> one point per host count.
  std::map<std::string, std::vector<ExperimentPoint>> series;
};

/// \brief Full outcome of one experiment cell: the raw cluster result plus
/// its structured run ledger (metrics/report.h). The ledger already folds
/// the host ledgers, the cost model and every per-operator telemetry scope;
/// meta fields config/hosts/duration_sec are set.
struct ExperimentCell {
  ClusterRunResult result;
  RunLedger ledger;
};

/// \brief Runs configuration sweeps over a shared synthetic trace.
class ExperimentRunner {
 public:
  /// \param graph must outlive the runner. \param source the source-stream
  /// name the trace feeds (usually "TCP").
  ExperimentRunner(const QueryGraph* graph, std::string source,
                   TraceConfig trace_config, CpuCostParams cpu_params);

  /// \brief Runs every configuration at every cluster size.
  Result<SweepResult> RunSweep(const std::vector<ExperimentConfig>& configs,
                               const std::vector<int>& host_counts,
                               int partitions_per_host = 2);

  /// \brief Runs one cell and returns the full cluster result (used by tests
  /// and for output-equivalence checks). The trace is replayed through the
  /// batched source path in \p batch_size chunks; batch_size 0 replays
  /// tuple-at-a-time (the pre-vectorization path — benches compare the two,
  /// all accounted metrics are identical either way). \p threads > 1 runs
  /// the cell in parallel mode (ClusterRuntime::set_parallel); the ledger
  /// and outputs are byte-identical to threads == 1. \p exec_mode selects
  /// the delivery path of the batched route (ClusterRuntime::set_exec_mode);
  /// all three modes are differentially identical in outputs and ledger.
  Result<ClusterRunResult> RunOne(const ExperimentConfig& config,
                                  int num_hosts, int partitions_per_host = 2,
                                  size_t batch_size = kDefaultSourceBatch,
                                  int threads = 1,
                                  ExecMode exec_mode = ExecMode::kBatch);

  /// \brief Like RunOne, but also returns the cell's run ledger. The ledger
  /// is deterministic: RunCell at batch_size N and batch_size 0 produce
  /// byte-identical ToJsonl() output (advisory instruments excluded), and
  /// likewise across thread counts and exec modes.
  Result<ExperimentCell> RunCell(const ExperimentConfig& config, int num_hosts,
                                 int partitions_per_host = 2,
                                 size_t batch_size = kDefaultSourceBatch,
                                 const RunLedgerOptions& ledger_options = {},
                                 int threads = 1,
                                 ExecMode exec_mode = ExecMode::kBatch);

  const TupleBatch& trace() const { return trace_; }
  const CpuCostParams& cpu_params() const { return cpu_params_; }
  double duration_sec() const {
    return static_cast<double>(trace_config_.duration_sec);
  }

 private:
  const QueryGraph* graph_;
  std::string source_;
  TraceConfig trace_config_;
  CpuCostParams cpu_params_;
  TupleBatch trace_;
};

}  // namespace streampart
