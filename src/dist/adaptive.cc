#include "dist/adaptive.h"

#include <algorithm>
#include <cmath>

namespace streampart {

namespace {
/// Fast EWMA tracks the last couple of epochs; slow remembers the regime.
constexpr double kFastAlpha = 0.5;
constexpr double kSlowAlpha = 0.1;
/// Floor for relative-divergence denominators (avoids 0/0 on idle series).
constexpr double kTiny = 1e-9;

double Ewma(double prev, double sample, double alpha) {
  return prev + alpha * (sample - prev);
}

double RelDivergence(double fast, double slow) {
  return std::abs(fast - slow) / std::max(std::abs(slow), kTiny);
}
}  // namespace

AdaptiveController::AdaptiveController(const FaultPlan& plan, int num_hosts)
    : spec_(plan.adaptive),
      epoch_width_(plan.epoch_width),
      num_hosts_(std::max(num_hosts, 0)),
      active_(plan.adaptive.enabled) {
  host_fast_.assign(num_hosts_, 0.0);
  host_slow_.assign(num_hosts_, 0.0);
}

Status AdaptiveController::Validate() const {
  if (!active_) return Status::OK();
  if (spec_.hysteresis < 0 || spec_.hysteresis >= 1) {
    return Status::InvalidArgument("adapt hysteresis must be in [0, 1)");
  }
  if (spec_.drift_threshold <= 0) {
    return Status::InvalidArgument("adapt drift threshold must be > 0");
  }
  if (spec_.rollback_epochs < 1 || spec_.amortize_epochs < 1) {
    return Status::InvalidArgument(
        "adapt rollback/amortize horizons must be >= 1 epoch");
  }
  if (spec_.max_cooldown_epochs < spec_.cooldown_epochs) {
    return Status::InvalidArgument(
        "adapt max_cooldown must be >= the base cooldown");
  }
  return Status::OK();
}

void AdaptiveController::SetTopology(std::vector<AdaptiveStage> stages,
                                     std::vector<AdaptiveEdge> edges) {
  stages_ = std::move(stages);
  edges_ = std::move(edges);
  stage_fast_.assign(stages_.size(), 0.0);
  edge_tuples_fast_.assign(edges_.size(), 0.0);
  edge_bytes_fast_.assign(edges_.size(), 0.0);
}

void AdaptiveController::EnsureInstruments() {
  if (instruments_bound_) return;
  instruments_bound_ = true;
  StatsScope* scope = scope_maker_ ? scope_maker_() : nullptr;
  if (scope == nullptr) return;
  t_drift_ = scope->counter(stats::kAdaptDriftEvents);
  t_moves_ = scope->counter(stats::kAdaptMovesTaken);
  t_suppressed_ = scope->counter(stats::kAdaptMovesSuppressed);
  t_rollbacks_ = scope->counter(stats::kAdaptRollbacks);
}

void AdaptiveController::Record(AdaptiveDecisionRow row) {
  engaged_ = true;
  EnsureInstruments();
  decisions_.push_back(std::move(row));
}

double AdaptiveController::FastBottleneck() const {
  return Bottleneck(host_fast_);
}

void AdaptiveController::Rebaseline(const AdaptiveSnapshot& snapshot) {
  prev_host_cycles_ = snapshot.host_cycles;
  prev_stage_cycles_ = snapshot.stage_cycles;
  prev_edge_tuples_ = snapshot.edge_tuples;
  prev_edge_bytes_ = snapshot.edge_bytes;
  prev_ops_in_ = snapshot.ops_tuples_in;
  prev_ops_out_ = snapshot.ops_tuples_out;
  prev_source_ = snapshot.source_tuples;
  have_prev_ = true;
}

void AdaptiveController::FoldRates(const AdaptiveSnapshot& snapshot,
                                   double elapsed) {
  // First delta after a (re)baseline seeds both EWMAs so the drift metric
  // starts from zero divergence instead of comparing against a stale regime.
  const bool seed = rate_epochs_ == 0;
  auto fold = [&](double& fast, double& slow, double sample) {
    if (seed) {
      fast = slow = sample;
    } else {
      fast = Ewma(fast, sample, kFastAlpha);
      slow = Ewma(slow, sample, kSlowAlpha);
    }
  };
  for (int h = 0; h < num_hosts_; ++h) {
    const double d =
        (snapshot.host_cycles[h] - prev_host_cycles_[h]) / elapsed;
    fold(host_fast_[h], host_slow_[h], d);
  }
  for (size_t s = 0; s < stages_.size(); ++s) {
    const double d =
        (snapshot.stage_cycles[s] - prev_stage_cycles_[s]) / elapsed;
    stage_fast_[s] = seed ? d : Ewma(stage_fast_[s], d, kFastAlpha);
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    const double dt =
        (snapshot.edge_tuples[e] - prev_edge_tuples_[e]) / elapsed;
    const double db = (snapshot.edge_bytes[e] - prev_edge_bytes_[e]) / elapsed;
    edge_tuples_fast_[e] =
        seed ? dt : Ewma(edge_tuples_fast_[e], dt, kFastAlpha);
    edge_bytes_fast_[e] = seed ? db : Ewma(edge_bytes_fast_[e], db, kFastAlpha);
  }
  fold(intake_fast_, intake_slow_,
       (snapshot.source_tuples - prev_source_) / elapsed);
  const double din = snapshot.ops_tuples_in - prev_ops_in_;
  const double dout = snapshot.ops_tuples_out - prev_ops_out_;
  fold(pass_fast_, pass_slow_, din > 0 ? dout / din : pass_fast_);
  ++rate_epochs_;
}

StageRates AdaptiveController::RatesOf(int stage,
                                       const AdaptiveSnapshot& snapshot) const {
  StageRates rates;
  rates.host = snapshot.stage_host[stage];
  rates.compute_cycles = stage_fast_[stage];
  for (size_t e = 0; e < edges_.size(); ++e) {
    const AdaptiveEdge& edge = edges_[e];
    RecostEdge re;
    re.tuples = edge_tuples_fast_[e];
    re.bytes = edge_bytes_fast_[e];
    if (edge.consumer_stage == stage) {
      re.peer_host = snapshot.edge_from_host[e];
      rates.inputs.push_back(re);
    } else if (edge.producer_stage == stage) {
      re.peer_host = snapshot.stage_host[edge.consumer_stage];
      rates.outputs.push_back(re);
    }
  }
  return rates;
}

std::vector<AdaptiveController::Candidate>
AdaptiveController::EvaluateCandidates(const AdaptiveSnapshot& snapshot) {
  std::vector<Candidate> out;
  const double current = Bottleneck(host_fast_);
  if (current <= kTiny) return out;
  for (const AdaptiveStage& stage : stages_) {
    const int from = snapshot.stage_host[stage.id];
    if (from < 0) continue;
    const StageRates rates = RatesOf(stage.id, snapshot);
    for (int to = 0; to < num_hosts_; ++to) {
      if (to == from) continue;
      if (to < static_cast<int>(snapshot.host_alive.size()) &&
          !snapshot.host_alive[to]) {
        continue;
      }
      ++candidates_considered_;
      Candidate cand;
      cand.stage = stage.id;
      cand.to_host = to;
      cand.bottleneck =
          Bottleneck(ProjectHostLoads(num_hosts_, host_fast_, rates, to,
                                      weights_));
      cand.gain_cycles = current - cand.bottleneck;
      cand.gain = cand.gain_cycles / current;
      out.push_back(cand);
    }
  }
  return out;
}

AdaptiveAction AdaptiveController::OnEpoch(const AdaptiveSnapshot& snapshot) {
  AdaptiveAction none;
  if (!active_) return none;
  const uint64_t eid = snapshot.eid;
  const double elapsed =
      last_eid_.has_value() ? static_cast<double>(eid - *last_eid_) : 0.0;
  last_eid_ = eid;
  ++epochs_;

  // A kill or migration (by any controller) makes cumulative diffs
  // meaningless across the boundary: skip this epoch's decision and
  // re-baseline, letting the EWMAs re-seed from the next clean delta.
  if (snapshot.topology_changed || !have_prev_ || elapsed <= 0) {
    Rebaseline(snapshot);
    rate_epochs_ = 0;
    return none;
  }

  FoldRates(snapshot, elapsed);
  Rebaseline(snapshot);

  // Warmup: no drift events and no decisions until the EWMAs have seen
  // enough epochs to mean something. Keeps short drift-free runs ledger-
  // identical to runs without the controller. The latch means a mid-run
  // re-baseline (after a migration) only needs one fresh delta, so watch
  // verdicts are not postponed by a second warmup.
  if (!warmed_) {
    if (rate_epochs_ <= spec_.warmup_epochs) return none;
    warmed_ = true;
  }

  const double drift = std::max(
      {RelDivergence(intake_fast_, intake_slow_),
       RelDivergence(pass_fast_, pass_slow_),
       [&] {
         double m = 0;
         for (int h = 0; h < num_hosts_; ++h) {
           m = std::max(m, RelDivergence(host_fast_[h], host_slow_[h]));
         }
         return m;
       }()});
  if (drift > spec_.drift_threshold) {
    ++drift_events_;
    engaged_ = true;
    EnsureInstruments();
    if (t_drift_ != nullptr) t_drift_->Inc();
  }

  // An open watch freezes new moves: either the deadline verdict fires now,
  // or we keep measuring.
  if (watch_.has_value()) {
    if (eid < watch_->deadline) return none;
    const double now = FastBottleneck();
    const double improvement =
        watch_->baseline > kTiny
            ? (watch_->baseline - now) / watch_->baseline
            : 0.0;
    const Watch watch = *watch_;
    watch_.reset();
    if (improvement >= spec_.hysteresis / 2) {
      // The move paid off: book the commit and reset the backoff.
      AdaptiveDecisionRow row;
      row.epoch = eid;
      row.action = "commit";
      row.stage = watch.action.stage;
      row.from_host = watch.from_host;
      row.to_host = watch.action.to_host;
      row.gain_pct = improvement * 100.0;
      row.move_cycles = watch.move_cycles;
      row.reason = "measured improvement held";
      Record(std::move(row));
      cooldown_now_ = spec_.cooldown_epochs;
      cooldown_until_ = eid + cooldown_now_;
      return none;
    }
    // The measured bottleneck did not improve: revert. Rollbacks bypass
    // hysteresis and the damper — they are the safety net, not a new bet.
    AdaptiveAction rollback;
    rollback.kind = AdaptiveAction::Kind::kRollback;
    rollback.stage = watch.action.stage;
    rollback.to_host = watch.from_host;
    watch_rollback_row_ = AdaptiveDecisionRow{};
    watch_rollback_row_->epoch = eid;
    watch_rollback_row_->action = "rollback";
    watch_rollback_row_->stage = watch.action.stage;
    watch_rollback_row_->from_host = watch.action.to_host;
    watch_rollback_row_->to_host = watch.from_host;
    watch_rollback_row_->gain_pct = improvement * 100.0;
    watch_rollback_row_->move_cycles = watch.move_cycles;
    watch_rollback_row_->reason = "no measured improvement within watch";
    return rollback;
  }

  std::vector<Candidate> candidates = EvaluateCandidates(snapshot);
  if (candidates.empty()) return none;

  // Probe hook: once, at probe_epoch, force the WORST candidate through.
  // This deterministically exercises the rollback path in tests — the move
  // is real, the watch is real, and the revert must be too.
  if (spec_.probe_epoch > 0 && !probe_done_ && eid >= spec_.probe_epoch) {
    probe_done_ = true;
    const Candidate& worst = *std::max_element(
        candidates.begin(), candidates.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.bottleneck < b.bottleneck;
        });
    AdaptiveAction action;
    action.kind = AdaptiveAction::Kind::kMove;
    action.stage = worst.stage;
    action.to_host = worst.to_host;
    action.probe = true;
    pending_gain_ = worst.gain;
    pending_from_ = snapshot.stage_host[worst.stage];
    return action;
  }

  const Candidate& best = *std::min_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.bottleneck < b.bottleneck;
      });
  if (best.gain <= 0) return none;

  const int from = snapshot.stage_host[best.stage];
  const double state_bytes =
      static_cast<double>(snapshot.stage_state_bytes[best.stage]);
  // Same pricing as the skew detector: state leaves the blob store once and
  // lands once, both legs charged at the checkpoint byte rate.
  const double move_cycles = 2.0 * state_bytes * ckpt_byte_cycles_;

  auto suppressed = [&](const char* reason) {
    AdaptiveDecisionRow row;
    row.epoch = eid;
    row.action = "suppressed";
    row.stage = best.stage;
    row.from_host = from;
    row.to_host = best.to_host;
    row.gain_pct = best.gain * 100.0;
    row.move_cycles = move_cycles;
    row.reason = reason;
    Record(std::move(row));
    ++moves_suppressed_;
    if (t_suppressed_ != nullptr) t_suppressed_->Inc();
    return none;
  };

  // Guard order: cheapest disqualifier first. Hysteresis bounds how big the
  // win must look; amortization prices the migration; the damper kills
  // oscillation; cooldown enforces quiet time after any executed move.
  if (best.gain <= spec_.hysteresis) return suppressed("hysteresis");
  if (move_cycles >
      best.gain_cycles * static_cast<double>(spec_.amortize_epochs)) {
    return suppressed("amortization");
  }
  for (const MoveRecord& past : move_history_) {
    if (past.stage == best.stage && past.from_host == best.to_host &&
        eid - past.eid < spec_.amortize_epochs) {
      return suppressed("damper");
    }
  }
  if (eid < cooldown_until_) return suppressed("cooldown");

  AdaptiveAction action;
  action.kind = AdaptiveAction::Kind::kMove;
  action.stage = best.stage;
  action.to_host = best.to_host;
  pending_gain_ = best.gain;
  pending_from_ = from;
  return action;
}

void AdaptiveController::RecordExecuted(const AdaptiveAction& action,
                                        uint64_t moved_state_bytes) {
  const uint64_t eid = last_eid_.value_or(0);
  const double move_cycles =
      2.0 * static_cast<double>(moved_state_bytes) * ckpt_byte_cycles_;
  if (action.kind == AdaptiveAction::Kind::kRollback) {
    AdaptiveDecisionRow row =
        watch_rollback_row_.value_or(AdaptiveDecisionRow{});
    watch_rollback_row_.reset();
    row.move_cycles = move_cycles;
    Record(std::move(row));
    ++rollbacks_;
    moved_state_bytes_ += moved_state_bytes;
    if (t_rollbacks_ != nullptr) t_rollbacks_->Inc();
    // The reverted move still counts for the damper — the failed target must
    // not be retried the next quiet epoch.
    move_history_.push_back({action.stage, action.to_host, eid});
    // Capped exponential backoff: each failed bet doubles the quiet time.
    cooldown_now_ = std::min(std::max<uint64_t>(cooldown_now_, 1) * 2,
                             spec_.max_cooldown_epochs);
    cooldown_until_ = eid + cooldown_now_;
    return;
  }
  // Executed move (organic or probe): book the row and open the watch. The
  // epoch after the migration is measurement-dirty (the runtime re-baselines
  // it away), so the verdict deadline starts one epoch later.
  const int from = pending_from_;
  AdaptiveDecisionRow row;
  row.epoch = eid;
  row.action = action.probe ? "probe" : "move";
  row.stage = action.stage;
  row.from_host = from;
  row.to_host = action.to_host;
  row.gain_pct = pending_gain_ * 100.0;
  row.move_cycles = move_cycles;
  row.reason = action.probe ? "forced worst candidate (probe_epoch)"
                            : "projected gain cleared all guards";
  Record(std::move(row));
  ++moves_taken_;
  if (action.probe) ++probes_;
  moved_state_bytes_ += moved_state_bytes;
  if (t_moves_ != nullptr) t_moves_->Inc();
  move_history_.push_back({action.stage, from, eid});
  if (cooldown_now_ == 0) cooldown_now_ = spec_.cooldown_epochs;
  cooldown_until_ = eid + cooldown_now_;
  Watch watch;
  watch.action = action;
  watch.from_host = from;
  watch.deadline = eid + 1 + spec_.rollback_epochs;
  watch.baseline = FastBottleneck();
  watch.move_cycles = move_cycles;
  watch_ = watch;
}

void AdaptiveController::RecordMoveUnavailable(const AdaptiveAction& action) {
  const uint64_t eid = last_eid_.value_or(0);
  if (action.kind == AdaptiveAction::Kind::kRollback) {
    // Can't physically revert either; close the watch row as advice.
    AdaptiveDecisionRow row =
        watch_rollback_row_.value_or(AdaptiveDecisionRow{});
    watch_rollback_row_.reset();
    row.action = "advice";
    row.reason = "rollback wanted, but no recovery machinery to migrate state";
    Record(std::move(row));
    cooldown_until_ = eid + std::max<uint64_t>(cooldown_now_, 1);
    return;
  }
  AdaptiveDecisionRow row;
  row.epoch = eid;
  row.action = "advice";
  row.stage = action.stage;
  row.from_host = pending_from_;
  row.to_host = action.to_host;
  row.gain_pct = pending_gain_ * 100.0;
  row.reason = "move wanted, but no recovery machinery to migrate state";
  Record(std::move(row));
  if (cooldown_now_ == 0) cooldown_now_ = spec_.cooldown_epochs;
  cooldown_until_ = eid + cooldown_now_;
}

AdaptiveSection AdaptiveController::section() const {
  AdaptiveSection section;
  section.active = active_;
  section.engaged = engaged_;
  section.epochs = epochs_;
  section.drift_events = drift_events_;
  section.candidates_considered = candidates_considered_;
  section.moves_taken = moves_taken_;
  section.moves_suppressed = moves_suppressed_;
  section.rollbacks = rollbacks_;
  section.probes = probes_;
  section.moved_state_bytes = moved_state_bytes_;
  section.decisions = decisions_;
  return section;
}

}  // namespace streampart
