#include "dist/experiment.h"

#include <algorithm>

namespace streampart {

ExperimentRunner::ExperimentRunner(const QueryGraph* graph, std::string source,
                                   TraceConfig trace_config,
                                   CpuCostParams cpu_params)
    : graph_(graph),
      source_(std::move(source)),
      trace_config_(trace_config),
      cpu_params_(cpu_params) {
  PacketTraceGenerator gen(trace_config_);
  trace_ = gen.GenerateAll();
}

Result<ClusterRunResult> ExperimentRunner::RunOne(
    const ExperimentConfig& config, int num_hosts, int partitions_per_host,
    size_t batch_size) {
  ClusterConfig cluster;
  cluster.num_hosts = num_hosts;
  cluster.partitions_per_host = partitions_per_host;
  SP_ASSIGN_OR_RETURN(
      DistPlan plan,
      OptimizeForPartitioning(*graph_, cluster, config.ps, config.optimizer));
  ClusterRuntime runtime(graph_, &plan, cluster);
  SP_RETURN_NOT_OK(runtime.Build(config.ps));
  if (batch_size == 0) {
    for (const Tuple& t : trace_) runtime.PushSource(source_, t);
  } else {
    TupleSpan all(trace_);
    for (size_t off = 0; off < all.size(); off += batch_size) {
      runtime.PushSourceBatch(
          source_, all.subspan(off, std::min(batch_size, all.size() - off)));
    }
  }
  runtime.FinishSources();
  return runtime.result();
}

Result<SweepResult> ExperimentRunner::RunSweep(
    const std::vector<ExperimentConfig>& configs,
    const std::vector<int>& host_counts, int partitions_per_host) {
  SweepResult sweep;
  sweep.host_counts = host_counts;
  double duration = duration_sec();
  for (const ExperimentConfig& config : configs) {
    for (int hosts : host_counts) {
      SP_ASSIGN_OR_RETURN(ClusterRunResult run,
                          RunOne(config, hosts, partitions_per_host));
      ExperimentPoint point;
      point.num_hosts = hosts;
      const HostMetrics& agg = run.aggregator(0);
      point.aggregator_cpu_pct =
          HostCpuLoadPercent(agg, cpu_params_, duration);
      point.aggregator_net_tuples_sec =
          HostNetworkTuplesPerSec(agg, duration);
      if (hosts > 1) {
        point.leaf_cpu_pct = 100.0 * run.LeafCpuSeconds(cpu_params_, 0) /
                             (duration * (hosts - 1));
      } else {
        point.leaf_cpu_pct = point.aggregator_cpu_pct;
      }
      for (const auto& [name, tuples] : run.outputs) {
        point.output_tuples += tuples.size();
      }
      sweep.series[config.name].push_back(point);
    }
  }
  return sweep;
}

}  // namespace streampart
