#include "dist/experiment.h"

#include <algorithm>

namespace streampart {

ExperimentRunner::ExperimentRunner(const QueryGraph* graph, std::string source,
                                   TraceConfig trace_config,
                                   CpuCostParams cpu_params)
    : graph_(graph),
      source_(std::move(source)),
      trace_config_(trace_config),
      cpu_params_(cpu_params) {
  PacketTraceGenerator gen(trace_config_);
  trace_ = gen.GenerateAll();
}

Result<ClusterRunResult> ExperimentRunner::RunOne(
    const ExperimentConfig& config, int num_hosts, int partitions_per_host,
    size_t batch_size, int threads, ExecMode exec_mode) {
  SP_ASSIGN_OR_RETURN(
      ExperimentCell cell,
      RunCell(config, num_hosts, partitions_per_host, batch_size, {},
              threads, exec_mode));
  return std::move(cell.result);
}

Result<ExperimentCell> ExperimentRunner::RunCell(
    const ExperimentConfig& config, int num_hosts, int partitions_per_host,
    size_t batch_size, const RunLedgerOptions& ledger_options, int threads,
    ExecMode exec_mode) {
  ClusterConfig cluster;
  cluster.num_hosts = num_hosts;
  cluster.partitions_per_host = partitions_per_host;
  // Re-cost clause selectivities from the trace: a prefix of the shared
  // trace stands in for the "trace stats" of the clause-weighting rule.
  // trace_ outlives the optimization call below.
  OptimizerOptions oopts = config.optimizer;
  if (oopts.predicate_sample.empty() && !trace_.empty()) {
    TupleSpan all(trace_);
    oopts.predicate_sample = all.subspan(0, std::min<size_t>(1024, all.size()));
  }
  SP_ASSIGN_OR_RETURN(
      DistPlan plan,
      OptimizeForPartitioning(*graph_, cluster, config.ps, oopts));
  ClusterRuntime runtime(graph_, &plan, cluster);
  if (threads > 1) runtime.set_parallel(threads);
  runtime.set_exec_mode(exec_mode);
  // Budgets are charged in the same cycle currency the ledger reports.
  runtime.set_cost_params(cpu_params_);
  // armed() covers every controller a plan can carry (fault injection,
  // recovery, overload, adaptive placement) — a plan that looks "empty" to
  // the fault controller can still arm one of the others.
  if (config.faults.armed()) {
    runtime.set_fault_plan(config.faults);
  }
  SP_RETURN_NOT_OK(runtime.Build(config.ps));
  if (batch_size == 0) {
    for (const Tuple& t : trace_) runtime.PushSource(source_, t);
  } else {
    TupleSpan all(trace_);
    for (size_t off = 0; off < all.size(); off += batch_size) {
      runtime.PushSourceBatch(
          source_, all.subspan(off, std::min(batch_size, all.size() - off)));
    }
  }
  runtime.FinishSources();
  ExperimentCell cell{runtime.result(),
                      runtime.MakeLedger(cpu_params_, duration_sec(),
                                         ledger_options)};
  cell.ledger.SetMeta("config", config.name);
  return cell;
}

Result<SweepResult> ExperimentRunner::RunSweep(
    const std::vector<ExperimentConfig>& configs,
    const std::vector<int>& host_counts, int partitions_per_host) {
  SweepResult sweep;
  sweep.host_counts = host_counts;
  double duration = duration_sec();
  for (const ExperimentConfig& config : configs) {
    for (int hosts : host_counts) {
      SP_ASSIGN_OR_RETURN(ExperimentCell cell,
                          RunCell(config, hosts, partitions_per_host));
      // Every figure quantity is read off the run ledger; the ledger rows
      // hold the same cost-model numbers (computed by the same functions in
      // the same order) the benches previously derived directly, so figure
      // output is unchanged bit for bit.
      const std::vector<LedgerHostRow>& rows = cell.ledger.hosts();
      ExperimentPoint point;
      point.num_hosts = hosts;
      point.aggregator_cpu_pct = rows[0].cpu_load_pct;
      point.aggregator_net_tuples_sec = rows[0].net_tuples_in_per_sec;
      if (hosts > 1) {
        // Matches ClusterRunResult::LeafCpuSeconds: per-host CPU-seconds
        // summed in host order, aggregator (host 0) excluded.
        double leaf_seconds = 0;
        for (size_t h = 1; h < rows.size(); ++h) {
          leaf_seconds += rows[h].cpu_seconds;
        }
        point.leaf_cpu_pct =
            100.0 * leaf_seconds / (duration * (hosts - 1));
      } else {
        point.leaf_cpu_pct = point.aggregator_cpu_pct;
      }
      for (const auto& [name, tuples] : cell.result.outputs) {
        point.output_tuples += tuples.size();
      }
      sweep.series[config.name].push_back(point);
    }
  }
  return sweep;
}

}  // namespace streampart
