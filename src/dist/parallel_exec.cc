#include "dist/parallel_exec.h"

#include <algorithm>

#include "common/logging.h"

namespace streampart {

namespace {
/// Items processed per host claim before the claim is released, so one
/// backlogged host cannot starve the others sharing a thread.
constexpr int kQuantum = 64;

thread_local bool tls_in_worker = false;
}  // namespace

bool ParallelExecutor::InWorker() { return tls_in_worker; }

ParallelExecutor::ParallelExecutor(int num_hosts, int num_threads,
                                   bool worker_rings, size_t work_capacity,
                                   size_t ring_capacity, WorkFn work_fn,
                                   RingFn ring_fn)
    : num_hosts_(num_hosts),
      num_threads_(num_threads),
      worker_rings_(worker_rings),
      work_fn_(std::move(work_fn)),
      ring_fn_(std::move(ring_fn)),
      stats_(static_cast<size_t>(num_hosts)) {
  SP_CHECK(num_hosts_ > 0);
  SP_CHECK(num_threads_ > 0);
  work_.reserve(static_cast<size_t>(num_hosts_));
  claims_.reserve(static_cast<size_t>(num_hosts_));
  for (int h = 0; h < num_hosts_; ++h) {
    work_.push_back(std::make_unique<SpscQueue<ParallelWorkItem>>(work_capacity));
    claims_.push_back(std::make_unique<std::atomic<int>>(-1));
  }
  if (worker_rings_) {
    rings_.reserve(static_cast<size_t>(num_hosts_) *
                   static_cast<size_t>(num_hosts_));
    for (int i = 0; i < num_hosts_ * num_hosts_; ++i) {
      rings_.push_back(std::make_unique<SpscQueue<ParallelRingMsg>>(ring_capacity));
    }
  } else {
    driver_rings_.reserve(static_cast<size_t>(num_hosts_));
    pending_.resize(static_cast<size_t>(num_hosts_));
    for (int h = 0; h < num_hosts_; ++h) {
      driver_rings_.push_back(
          std::make_unique<SpscQueue<ParallelRingMsg>>(ring_capacity));
    }
  }
}

ParallelExecutor::~ParallelExecutor() { Stop(); }

void ParallelExecutor::Start() {
  SP_CHECK(!started_);
  started_ = true;
  threads_.reserve(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

void ParallelExecutor::Enqueue(int host, ParallelWorkItem&& item) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  while (!work_[static_cast<size_t>(host)]->TryPush(std::move(item))) {
    // A full queue with a blocked driver must not wedge the staged-message
    // path: keep the driver rings flowing while we wait.
    if (!worker_rings_) PumpDriverRings();
    std::this_thread::yield();
  }
}

void ParallelExecutor::Stage(int from, int to, ParallelRingMsg&& msg) {
  ++stats_[static_cast<size_t>(from)].staged;
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  SpscQueue<ParallelRingMsg>& ring =
      worker_rings_ ? RingFor(from, to) : *driver_rings_[static_cast<size_t>(from)];
  while (!ring.TryPush(std::move(msg))) {
    if (worker_rings_) {
      // Deadlock avoidance (docs/THREADING.md): drain our own inbound
      // traffic (we hold `from`'s claim) and, if the consumer host is
      // unclaimed, help drain its inbound rings — one of these frees the
      // ring that is blocking us in any cycle of blocked producers.
      DrainInboundSome(from, kQuantum);
      int tid = -2;  // helper claim; never equals a worker tid
      if (to != from && TryClaim(to, tid)) {
        DrainInboundSome(to, kQuantum);
        ReleaseClaim(to);
      }
    }
    std::this_thread::yield();
  }
}

void ParallelExecutor::PumpDriverRings() {
  ParallelRingMsg msg;
  for (int f = 0; f < num_hosts_; ++f) {
    while (driver_rings_[static_cast<size_t>(f)]->TryPop(&msg)) {
      pending_[static_cast<size_t>(f)].push_back(std::move(msg));
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void ParallelExecutor::Quiesce() {
  for (;;) {
    if (!worker_rings_) PumpDriverRings();
    if (in_flight_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
}

void ParallelExecutor::ReplayMerged(
    const std::function<void(ParallelRingMsg&&)>& fn) {
  SP_CHECK(!worker_rings_);
  std::vector<size_t> cursor(pending_.size(), 0);
  for (;;) {
    int best = -1;
    for (int f = 0; f < num_hosts_; ++f) {
      const auto& buf = pending_[static_cast<size_t>(f)];
      size_t c = cursor[static_cast<size_t>(f)];
      if (c >= buf.size()) continue;
      if (best < 0) {
        best = f;
        continue;
      }
      const ParallelRingMsg& a = buf[c];
      const ParallelRingMsg& b =
          pending_[static_cast<size_t>(best)][cursor[static_cast<size_t>(best)]];
      if (a.seq < b.seq || (a.seq == b.seq && a.sub < b.sub)) best = f;
    }
    if (best < 0) break;
    fn(std::move(pending_[static_cast<size_t>(best)]
                         [cursor[static_cast<size_t>(best)]++]));
  }
  for (auto& buf : pending_) buf.clear();
}

void ParallelExecutor::Stop() {
  if (!started_ || threads_.empty()) return;
  Quiesce();
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

bool ParallelExecutor::TryClaim(int h, int tid) {
  int expected = -1;
  return claims_[static_cast<size_t>(h)]->compare_exchange_strong(
      expected, tid, std::memory_order_acq_rel, std::memory_order_relaxed);
}

void ParallelExecutor::ReleaseClaim(int h) {
  claims_[static_cast<size_t>(h)]->store(-1, std::memory_order_release);
}

bool ParallelExecutor::DrainInboundSome(int h, int quantum) {
  bool any = false;
  ParallelRingMsg msg;
  int n = 0;
  for (int f = 0; f < num_hosts_ && n < quantum; ++f) {
    while (n < quantum && RingFor(f, h).TryPop(&msg)) {
      ring_fn_(h, std::move(msg));
      in_flight_.fetch_sub(1, std::memory_order_release);
      ++n;
      any = true;
    }
  }
  return any;
}

bool ParallelExecutor::DrainHostSome(int h, int quantum) {
  bool any = false;
  int n = 0;
  // Inbound traffic first: keeps the ring mesh shallow so producers block
  // rarely, and delivers partial aggregates before more source work piles
  // up behind them.
  if (worker_rings_) {
    if (DrainInboundSome(h, quantum)) any = true;
  }
  ParallelWorkItem item;
  while (n < quantum && work_[static_cast<size_t>(h)]->TryPop(&item)) {
    HostStats& hs = stats_[static_cast<size_t>(h)];
    ++hs.morsels;
    hs.tuples += item.batch.size();
    work_fn_(h, std::move(item));
    in_flight_.fetch_sub(1, std::memory_order_release);
    ++n;
    any = true;
  }
  return any;
}

void ParallelExecutor::WorkerLoop(int tid) {
  tls_in_worker = true;
  while (!stop_.load(std::memory_order_acquire)) {
    bool did = false;
    for (int i = 0; i < num_hosts_; ++i) {
      // Scan all hosts starting at our preferred one; draining a host whose
      // preferred thread is someone else counts as a steal.
      int h = (tid + i) % num_hosts_;
      bool has_ring_work = false;
      if (worker_rings_) {
        for (int f = 0; f < num_hosts_ && !has_ring_work; ++f) {
          has_ring_work = !RingFor(f, h).EmptyApprox();
        }
      }
      if (!has_ring_work && work_[static_cast<size_t>(h)]->EmptyApprox()) {
        continue;
      }
      if (!TryClaim(h, tid)) continue;
      bool any = DrainHostSome(h, kQuantum);
      if (any && h % num_threads_ != tid) ++stats_[static_cast<size_t>(h)].steals;
      ReleaseClaim(h);
      if (any) did = true;
    }
    if (!did) std::this_thread::yield();
  }
  tls_in_worker = false;
}

}  // namespace streampart
