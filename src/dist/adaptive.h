#pragma once

/// \file adaptive.h
/// \brief Runtime-adaptive operator placement: a feedback loop from measured
/// telemetry back into the §5 placement, so the cluster survives workload
/// drift instead of running a stale plan indefinitely.
///
/// Each epoch the AdaptiveController folds what the runtime measured —
/// per-host model-cycle demand, per-edge channel tuples/bytes, filter pass
/// rates — into fast/slow EWMAs, detects drift as their divergence, and
/// re-costs the current placement against every candidate *stage* move
/// (push an aggregate stage down to a tap host, pull it back) with the same
/// receiver-side cost model the optimizer used, re-parameterized with the
/// measured rates (optimizer/recost.h). A winning move is executed at the
/// epoch boundary through the checkpoint/state-migration machinery
/// (ClusterRuntime::MigrateStage) and priced against
/// `cycles_per_checkpoint_byte`, amortized like the skew detector's moves.
///
/// Robustness is the contract, not just the feature:
///
///   * **Hysteresis** — a candidate must project a relative bottleneck
///     improvement above `hysteresis` before it is taken; smaller wins are
///     recorded as suppressed, never executed.
///   * **Amortization** — the migration price (2 × stage state bytes ×
///     checkpoint-byte weight) must repay itself within `amortize` epochs of
///     projected gain.
///   * **Oscillation damper** — no A→B→A: a stage that left host X cannot
///     return to X within the amortization horizon (rollbacks are exempt —
///     they ARE the return path).
///   * **Capped-backoff cooldown** — after every executed move the
///     controller stays quiet for `cooldown` epochs; each rollback doubles
///     the cooldown (capped at `max_cooldown`), each committed improvement
///     resets it.
///   * **Automatic rollback** — every move opens a watch window: if the
///     measured bottleneck has not improved on its pre-move baseline by at
///     least hysteresis/2 within `rollback` epochs (the first, migration-
///     dirty epoch excluded), the move is reverted.
///
/// Every decision — considered, taken, rolled back, suppressed (and why),
/// or advice-only — lands in the ledger's `adaptive` section
/// (metrics/report.h AdaptiveSection), so the differential battery can prove
/// drift runs produce answers multiset-identical to the static plan while
/// the decision trail stays auditable. A controller that never engages
/// leaves the ledger byte-identical to a run without it.
///
/// docs/ADAPTIVE.md walks through the drift detector, the cost
/// re-parameterization, and the hysteresis/rollback state machine.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/fault.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "optimizer/recost.h"

namespace streampart {

/// \brief One movable unit: a connected component of same-host plan
/// operators (connected over local edges at Build time). Source partitions
/// are not stages — capture never moves.
struct AdaptiveStage {
  int id = -1;
  std::vector<int> ops;  ///< plan op ids, topological order
  std::string label;     ///< first op's label, for ledger rows and logs
};

/// \brief One measured dataflow edge between a producer (source partition
/// or stage) and a consumer stage. The runtime resolves hosts at snapshot
/// time, so edges stay valid across migrations.
struct AdaptiveEdge {
  int producer_stage = -1;    ///< -1 when the producer is a source partition
  int consumer_stage = -1;
  int source_partition = -1;  ///< >= 0 for capture-intake edges
};

/// \brief Cumulative counters the runtime snapshots at each epoch boundary.
/// The controller diffs consecutive snapshots itself; after any topology
/// change (kill, migration by any controller) the runtime sets
/// `topology_changed` and the controller re-baselines instead of diffing
/// across the discontinuity.
struct AdaptiveSnapshot {
  uint64_t eid = 0;
  bool topology_changed = false;
  std::vector<double> host_cycles;   ///< cumulative model cycles per host
  std::vector<int> stage_host;       ///< current host of each stage
  std::vector<double> stage_cycles;  ///< cumulative compute cycles per stage
  std::vector<uint64_t> stage_state_bytes;  ///< current blob bytes per stage
  std::vector<int> edge_from_host;   ///< producing host of each edge, now
  std::vector<double> edge_tuples;   ///< cumulative tuples per edge
  std::vector<double> edge_bytes;    ///< cumulative bytes per edge
  double ops_tuples_in = 0;          ///< cumulative, all operators
  double ops_tuples_out = 0;         ///< cumulative, all operators
  double source_tuples = 0;          ///< cumulative cluster intake
  std::vector<bool> host_alive;
};

/// \brief What the controller wants done at this epoch boundary.
struct AdaptiveAction {
  enum class Kind { kNone, kMove, kRollback };
  Kind kind = Kind::kNone;
  int stage = -1;
  int to_host = -1;
  bool probe = false;  ///< forced worst-candidate move (probe_epoch)
};

/// \brief Executes the `adapt` directive of a FaultPlan. Owned by
/// ClusterRuntime; every hook is called from the single simulation thread
/// (the driver thread in parallel barrier mode).
class AdaptiveController {
 public:
  /// Lazily materializes the telemetry scope `adaptive`; may return null
  /// (telemetry off). Invoked only on the first recorded event, so a
  /// disengaged controller creates no scope.
  using ScopeMaker = std::function<StatsScope*()>;

  AdaptiveController(const FaultPlan& plan, int num_hosts);

  /// \brief Checks the knob ranges (Build-time error reporting).
  Status Validate() const;

  void set_scope_maker(ScopeMaker maker) { scope_maker_ = std::move(maker); }

  /// \brief Wires the measured-rate cost model: the receiver-side network
  /// weights and the checkpoint-byte weight that prices migrations.
  void set_cost_weights(const RecostWeights& weights,
                        double cycles_per_checkpoint_byte) {
    weights_ = weights;
    ckpt_byte_cycles_ = cycles_per_checkpoint_byte;
  }

  /// \brief Installs the stage decomposition computed at Build.
  void SetTopology(std::vector<AdaptiveStage> stages,
                   std::vector<AdaptiveEdge> edges);

  bool active() const { return active_; }
  uint64_t epoch_width() const { return epoch_width_; }
  const AdaptiveSpec& spec() const { return spec_; }
  const std::vector<AdaptiveStage>& stages() const { return stages_; }
  const std::vector<AdaptiveEdge>& edges() const { return edges_; }

  /// \brief True when \p eid starts a new epoch (runtime then snapshots and
  /// calls OnEpoch before routing the tuple that opened it).
  bool EpochBoundary(uint64_t eid) const {
    return !last_eid_.has_value() || eid > *last_eid_;
  }

  /// \brief Folds one epoch-boundary snapshot and decides. Returns the move
  /// (or rollback) the runtime should execute now, if any; the runtime
  /// reports back through RecordExecuted / RecordMoveUnavailable.
  AdaptiveAction OnEpoch(const AdaptiveSnapshot& snapshot);

  /// \brief The runtime executed \p action, migrating \p moved_state_bytes
  /// of operator state. Opens the rollback watch (moves) or applies the
  /// backoff (rollbacks).
  void RecordExecuted(const AdaptiveAction& action,
                      uint64_t moved_state_bytes);

  /// \brief The runtime could not execute \p action (no recovery machinery
  /// to migrate state through): recorded as an advice-only decision, with
  /// the normal cooldown so the advice is not re-issued every epoch.
  void RecordMoveUnavailable(const AdaptiveAction& action);

  /// \brief Assembles the ledger section. `engaged` is false when the
  /// controller never recorded a drift event or decision (byte-identity for
  /// drift-free runs).
  AdaptiveSection section() const;

  /// \brief Chronological decision rows (test introspection).
  const std::vector<AdaptiveDecisionRow>& decisions() const {
    return decisions_;
  }

 private:
  struct Candidate {
    int stage = -1;
    int to_host = -1;
    double bottleneck = 0;   ///< projected cluster bottleneck
    double gain = 0;         ///< relative improvement vs the status quo
    double gain_cycles = 0;  ///< absolute per-epoch bottleneck relief
  };
  /// One executed relocation, for the oscillation damper.
  struct MoveRecord {
    int stage = -1;
    int from_host = -1;
    uint64_t eid = 0;
  };
  /// Open rollback watch of the last executed move.
  struct Watch {
    AdaptiveAction action;
    int from_host = -1;
    uint64_t deadline = 0;   ///< first epoch the verdict can be reached
    double baseline = 0;     ///< pre-move fast-EWMA bottleneck
    double move_cycles = 0;
  };

  void Rebaseline(const AdaptiveSnapshot& snapshot);
  void FoldRates(const AdaptiveSnapshot& snapshot, double elapsed);
  /// Measured rates of one stage, assembled from the EWMA'd edge rates.
  StageRates RatesOf(int stage, const AdaptiveSnapshot& snapshot) const;
  std::vector<Candidate> EvaluateCandidates(const AdaptiveSnapshot& snapshot);
  void Record(AdaptiveDecisionRow row);
  void EnsureInstruments();
  double FastBottleneck() const;

  // Plan-derived configuration.
  AdaptiveSpec spec_;
  uint64_t epoch_width_ = 1;
  int num_hosts_ = 0;
  bool active_ = false;
  RecostWeights weights_;
  double ckpt_byte_cycles_ = 0;
  ScopeMaker scope_maker_;

  std::vector<AdaptiveStage> stages_;
  std::vector<AdaptiveEdge> edges_;

  // Measurement state: previous cumulative snapshot + EWMA'd per-epoch
  // rates. fast (alpha .5) reacts within a couple of epochs; slow (alpha .1)
  // remembers the regime — their divergence is the drift signal.
  std::optional<uint64_t> last_eid_;
  bool have_prev_ = false;
  std::vector<double> prev_host_cycles_;
  std::vector<double> prev_stage_cycles_;
  std::vector<double> prev_edge_tuples_;
  std::vector<double> prev_edge_bytes_;
  double prev_ops_in_ = 0, prev_ops_out_ = 0, prev_source_ = 0;
  std::vector<double> host_fast_, host_slow_;
  std::vector<double> stage_fast_;
  std::vector<double> edge_tuples_fast_, edge_bytes_fast_;
  double intake_fast_ = 0, intake_slow_ = 0;
  double pass_fast_ = 0, pass_slow_ = 0;
  uint64_t rate_epochs_ = 0;  ///< epochs with a delta since the last baseline
  bool warmed_ = false;       ///< initial warmup completed (latches on)

  // Decision state.
  uint64_t cooldown_now_ = 0;    ///< current backoff length (epochs)
  uint64_t cooldown_until_ = 0;  ///< first epoch allowed to move again
  bool probe_done_ = false;
  std::optional<Watch> watch_;
  std::vector<MoveRecord> move_history_;
  // Context of the action returned by the last OnEpoch, consumed by the
  // RecordExecuted / RecordMoveUnavailable callback.
  double pending_gain_ = 0;
  int pending_from_ = -1;
  std::optional<AdaptiveDecisionRow> watch_rollback_row_;

  // Section accumulators.
  bool engaged_ = false;
  uint64_t epochs_ = 0;
  uint64_t drift_events_ = 0;
  uint64_t candidates_considered_ = 0;
  uint64_t moves_taken_ = 0;
  uint64_t moves_suppressed_ = 0;
  uint64_t rollbacks_ = 0;
  uint64_t probes_ = 0;
  uint64_t moved_state_bytes_ = 0;
  std::vector<AdaptiveDecisionRow> decisions_;

  // Telemetry (null until the first event; see kAdapt* in metrics/stats.h).
  bool instruments_bound_ = false;
  Counter* t_drift_ = nullptr;
  Counter* t_moves_ = nullptr;
  Counter* t_suppressed_ = nullptr;
  Counter* t_rollbacks_ = nullptr;
};

}  // namespace streampart
