#include "dist/overload.h"

#include <algorithm>
#include <cmath>

namespace streampart {

namespace {
/// Consecutive over-budget epochs before a hotspot counts as sustained.
constexpr uint64_t kSkewStreak = 2;
/// Epochs to wait after proposing a move before proposing another.
constexpr uint64_t kSkewCooldown = 2;
}  // namespace

OverloadController::OverloadController(const FaultPlan& plan, int num_hosts)
    : epoch_width_(plan.epoch_width),
      shed_(plan.shed),
      budgets_(std::max(num_hosts, 0)),
      // Distinct deterministic stream: the golden-ratio mix keeps the shed
      // sequence decorrelated from the per-channel fault RNGs, which seed
      // from (plan seed, from, to) directly.
      rng_(plan.seed * 0x9E3779B97F4A7C15ULL + 0x5ED),
      epoch_base_(budgets_.size(), 0),
      last_epoch_charge_(budgets_.size(), 0),
      over_streak_(budgets_.size(), 0),
      defer_(budgets_.size()),
      instruments_(budgets_.size()) {
  // Exact host specs beat the -1 wildcard; among specs of equal precedence
  // the last one wins (mirrors FaultController's channel-spec resolution
  // order closely enough to be unsurprising in plan files).
  for (const HostBudgetSpec& spec : plan.budgets) {
    if (spec.host >= 0) continue;
    for (ResolvedBudget& b : budgets_) {
      b.present = true;
      b.cycles = spec.cycles;
      b.reserve = spec.reserve;
      b.effective = spec.cycles * (1.0 - spec.reserve);
      b.queue_capacity = spec.queue_capacity;
    }
  }
  for (const HostBudgetSpec& spec : plan.budgets) {
    if (spec.host < 0 || spec.host >= static_cast<int>(budgets_.size())) {
      continue;  // range-checked by Validate()
    }
    ResolvedBudget& b = budgets_[spec.host];
    b.present = true;
    b.cycles = spec.cycles;
    b.reserve = spec.reserve;
    b.effective = spec.cycles * (1.0 - spec.reserve);
    b.queue_capacity = spec.queue_capacity;
  }
  if (shed_.fixed_m > 0) shed_weight_ = shed_.fixed_m;
  // Budgeted hosts get their ledger rows up front, in id order, so the
  // section's host array is deterministic no matter which host engages
  // first.
  for (size_t h = 0; h < budgets_.size(); ++h) {
    if (!budgets_[h].present) continue;
    OverloadHostRow row;
    row.host = static_cast<int>(h);
    row.budget_cycles = budgets_[h].cycles;
    row.reserve = budgets_[h].reserve;
    host_rows_.push_back(row);
  }
}

Status OverloadController::Validate() const {
  // The constructor resolved in-range specs; re-walk nothing — Build passes
  // the original plan's error surface through here instead, so keep the
  // checks that need cluster context only.
  if (shed_.max_m > 0) {
    bool any_budget = false;
    for (const ResolvedBudget& b : budgets_) any_budget |= b.present;
    if (!any_budget) {
      return Status::InvalidArgument(
          "shed max_m requires at least one budget directive: adaptive "
          "shedding derives its rate from measured demand against a budget");
    }
  }
  return Status::OK();
}

void OverloadController::AddInexactReason(const std::string& reason) {
  for (const std::string& existing : inexact_reasons_) {
    if (existing == reason) return;
  }
  inexact_reasons_.push_back(reason);
}

bool OverloadController::GuardTripped(int host) const {
  if (host < 0 || host >= static_cast<int>(budgets_.size())) return false;
  const ResolvedBudget& b = budgets_[host];
  if (!b.present) return false;
  return cycles_(host) - epoch_base_[host] >= b.effective;
}

OverloadController::HostInstruments& OverloadController::Instruments(
    int host) {
  HostInstruments& ins = instruments_[host];
  if (!ins.bound) {
    ins.bound = true;
    StatsScope* scope = scope_maker_ ? scope_maker_(host) : nullptr;
    if (scope != nullptr) {
      ins.shed = scope->counter(stats::kShedTuples);
      ins.deferrals = scope->counter(stats::kBudgetDeferrals);
      ins.queue_dropped = scope->counter(stats::kBudgetQueueDropped);
      ins.over_epochs = scope->counter(stats::kBudgetOverEpochs);
      ins.skew_moves = scope->counter(stats::kSkewMoves);
    }
  }
  return ins;
}

OverloadHostRow& OverloadController::HostRow(int host) {
  for (OverloadHostRow& row : host_rows_) {
    if (row.host == host) return row;
  }
  // Unbudgeted host recording an event (shed attribution): append a row
  // with a zero budget. Kept deterministic by only ever being reached for
  // hosts in intake order... which is data-dependent, so sort at section().
  OverloadHostRow row;
  row.host = host;
  host_rows_.push_back(row);
  return host_rows_.back();
}

OverloadController::Admission OverloadController::Admit(int host,
                                                        int partition) {
  ++offered_;
  if (partition >= 0) ++epoch_partition_intake_[partition];
  if (shed_weight_ > 1) {
    // Keep-1-in-m: each tuple survives with probability 1/m independently,
    // so the kept tuples form a Horvitz–Thompson sample with weight m.
    if (rng_.Uniform(1, shed_weight_) != 1) {
      ++shed_tuples_;
      engaged_ = true;
      // Hosts past the construction-time count (elastic rejoin) shed like
      // everyone else but carry no per-host instruments or budget row.
      if (host >= 0 && host < static_cast<int>(instruments_.size())) {
        if (Counter* c = Instruments(host).shed) c->Inc();
      }
      return Admission::kShed;
    }
  }
  if (GuardTripped(host)) {
    ++deferred_events_;
    engaged_ = true;
    HostRow(host).guard_deferrals++;
    if (Counter* c = Instruments(host).deferrals) c->Inc();
    return Admission::kDefer;
  }
  ++processed_;
  ++epoch_kept_;
  return Admission::kProcess;
}

void OverloadController::PushDeferred(int host, std::string source,
                                      Tuple tuple) {
  std::deque<DeferredTuple>& q = defer_[host];
  size_t cap = budgets_[host].present ? budgets_[host].queue_capacity : 0;
  if (cap > 0 && q.size() >= cap) {
    q.pop_front();  // drop-oldest, like the degraded channels' bounded queues
    ++queue_dropped_;
    HostRow(host).queue_dropped++;
    if (Counter* c = Instruments(host).queue_dropped) c->Inc();
  }
  q.push_back(DeferredTuple{std::move(source), std::move(tuple)});
}

bool OverloadController::TakeDeferred(int host, DeferredTuple* out) {
  // Hosts past the construction-time count (elastic rejoin) have no budget
  // and therefore no deferred queue.
  if (host < 0 || host >= static_cast<int>(defer_.size())) return false;
  std::deque<DeferredTuple>& q = defer_[host];
  if (q.empty() || GuardTripped(host)) return false;
  *out = std::move(q.front());
  q.pop_front();
  ++processed_;
  ++epoch_kept_;
  return true;
}

bool OverloadController::HasDeferred() const {
  for (const std::deque<DeferredTuple>& q : defer_) {
    if (!q.empty()) return true;
  }
  return false;
}

bool OverloadController::EpochBoundary(uint64_t eid) const {
  return !epoch_open_ || eid != current_eid_;
}

std::optional<SkewMove> OverloadController::CloseEpoch(
    const std::function<int(int partition)>& partition_host) {
  epoch_open_ = false;
  for (size_t h = 0; h < budgets_.size(); ++h) {
    double charge = cycles_(static_cast<int>(h)) - epoch_base_[h];
    last_epoch_charge_[h] = charge;
    if (!budgets_[h].present) continue;
    EpochChargeRow row;
    row.host = static_cast<int>(h);
    row.epoch = current_eid_;
    row.cycles = charge;
    row.budget = budgets_[h].cycles;
    row.over_budget = charge > budgets_[h].cycles;
    rows_.push_back(row);
    OverloadHostRow& host_row = HostRow(static_cast<int>(h));
    host_row.max_epoch_cycles = std::max(host_row.max_epoch_cycles, charge);
    if (row.over_budget) {
      engaged_ = true;
      host_row.over_budget_epochs++;
      over_streak_[h]++;
      if (Counter* c = Instruments(static_cast<int>(h)).over_epochs) c->Inc();
    } else {
      over_streak_[h] = 0;
    }
  }
  // Horvitz–Thompson bookkeeping: this epoch kept epoch_kept_ tuples at
  // weight m, estimating k*m true tuples with variance k*m*(m-1).
  double m = static_cast<double>(shed_weight_);
  ht_est_n_ += static_cast<double>(epoch_kept_) * m;
  if (shed_weight_ > 1) {
    ++shed_epochs_;
    max_shed_m_ = std::max(max_shed_m_, shed_weight_);
    ht_var_acc_ += static_cast<double>(epoch_kept_) * m * (m - 1.0);
  }

  // Skew detection: a host over budget kSkewStreak epochs in a row whose
  // intake concentrates on one partition gets that partition proposed for
  // migration to the least-loaded host.
  if (skew_cooldown_ > 0) {
    --skew_cooldown_;
    return std::nullopt;
  }
  int hot_host = -1;
  double hot_charge = 0;
  for (size_t h = 0; h < budgets_.size(); ++h) {
    if (!budgets_[h].present || over_streak_[h] < kSkewStreak) continue;
    if (hot_host < 0 || last_epoch_charge_[h] > hot_charge) {
      hot_host = static_cast<int>(h);
      hot_charge = last_epoch_charge_[h];
    }
  }
  if (hot_host < 0) return std::nullopt;
  int hot_partition = -1;
  uint64_t hot_intake = 0;
  for (const auto& [p, intake] : epoch_partition_intake_) {
    if (partition_host(p) != hot_host) continue;
    if (intake > hot_intake) {
      hot_partition = p;
      hot_intake = intake;
    }
  }
  if (hot_partition < 0) return std::nullopt;
  int target = -1;
  double target_charge = 0;
  for (size_t h = 0; h < last_epoch_charge_.size(); ++h) {
    if (static_cast<int>(h) == hot_host) continue;
    if (target < 0 || last_epoch_charge_[h] < target_charge) {
      target = static_cast<int>(h);
      target_charge = last_epoch_charge_[h];
    }
  }
  if (target < 0) return std::nullopt;
  skew_cooldown_ = kSkewCooldown;
  over_streak_[hot_host] = 0;  // the move resets the sustained-overload clock
  return SkewMove{hot_host, hot_partition, target};
}

void OverloadController::BeginEpoch(uint64_t eid) {
  epoch_open_ = true;
  current_eid_ = eid;
  if (shed_.max_m > 0) {
    // Adapt from measured demand: last epoch's charge covered only the kept
    // 1-in-m fraction, so charge * m estimates the unshed demand. Pick the
    // smallest m that fits the tightest budgeted host, capped at max_m.
    uint64_t next_m = 1;
    for (size_t h = 0; h < budgets_.size(); ++h) {
      if (!budgets_[h].present || budgets_[h].effective <= 0) continue;
      double demand =
          last_epoch_charge_[h] * static_cast<double>(shed_weight_);
      if (demand > budgets_[h].effective) {
        uint64_t need = static_cast<uint64_t>(
            std::ceil(demand / budgets_[h].effective));
        next_m = std::max(next_m, need);
      }
    }
    shed_weight_ = std::min<uint64_t>(std::max<uint64_t>(next_m, 1),
                                      shed_.max_m);
  }
  for (size_t h = 0; h < epoch_base_.size(); ++h) {
    epoch_base_[h] = cycles_(static_cast<int>(h));
  }
  epoch_partition_intake_.clear();
  epoch_kept_ = 0;
}

void OverloadController::RecordSkewMove(int from_host, int partition,
                                        double move_cost_bytes) {
  engaged_ = true;
  ++skew_repartitions_;
  if (Counter* c = Instruments(from_host).skew_moves) c->Inc();
  skew_moved_partitions_.push_back(partition);
  skew_move_cost_bytes_ += move_cost_bytes;
}

void OverloadController::RecordSkewAdviceOnly() {
  engaged_ = true;
  ++skew_advice_only_;
}

double OverloadController::LastEpochOverrun(int host) const {
  if (host < 0 || host >= static_cast<int>(budgets_.size())) return 0;
  if (!budgets_[host].present) return 0;
  return std::max(0.0, last_epoch_charge_[host] - budgets_[host].cycles);
}

OverloadSection OverloadController::section() const {
  OverloadSection s;
  s.active = true;
  s.engaged = engaged_;
  s.intake_offered = offered_;
  s.intake_processed = processed_;
  s.intake_deferred = deferred_events_;
  s.shed_tuples = shed_tuples_;
  s.bp_queue_dropped = queue_dropped_;
  s.shed_epochs = shed_epochs_;
  s.max_shed_m = max_shed_m_;
  // Tuples the tap knowingly dropped (queue evictions) are counted exactly;
  // shed tuples enter through the scaled estimate.
  s.estimated_source_tuples = ht_est_n_ + static_cast<double>(queue_dropped_);
  if (ht_est_n_ > 0 && ht_var_acc_ > 0) {
    s.shed_rel_error_bound = 3.0 * std::sqrt(ht_var_acc_) / ht_est_n_;
  }
  s.exact = shed_tuples_ == 0 && queue_dropped_ == 0;
  if (!s.exact || shed_tuples_ > 0) s.inexact_reasons = inexact_reasons_;
  s.skew_repartitions = skew_repartitions_;
  s.skew_moved_partitions = skew_moved_partitions_;
  s.skew_move_cost_bytes = skew_move_cost_bytes_;
  s.skew_advice_only = skew_advice_only_;
  s.hosts = host_rows_;
  std::sort(s.hosts.begin(), s.hosts.end(),
            [](const OverloadHostRow& a, const OverloadHostRow& b) {
              return a.host < b.host;
            });
  return s;
}

}  // namespace streampart
