#pragma once

/// \file fault.h
/// \brief Deterministic fault injection for the simulated cluster.
///
/// A FaultPlan describes what goes wrong during a run: leaf hosts killed at
/// chosen epoch boundaries, cross-host channels degraded with per-tuple
/// drop/duplicate/reorder probabilities, and bounded channel queues with a
/// drop-oldest backpressure policy. The FaultController executes the plan
/// inside ClusterRuntime and keeps exact accounting (metrics/report.h
/// FaultSection) of every tuple lost, every open pane invalidated by a host
/// death, and the model-cycle cost of repartitioning over the survivors.
///
/// Everything is seeded and deterministic: each channel draws from its own
/// Rng seeded from (plan seed, from-host, to-host), so the fault pattern of
/// one channel is independent of how many other channels exist and of the
/// tuple interleaving across channels. Two runs of the same plan over the
/// same trace produce byte-identical ledgers. An empty plan is inert — no
/// RNG is ever constructed, no accounting recorded — so a fault-free run's
/// ledger is byte-identical to one without the fault machinery at all.
///
/// docs/FAULTS.md documents the plan file format and recovery semantics.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Degradation of one directed cross-host channel. Host -1 is a
/// wildcard matching every host, so `from=-1 to=-1` degrades all channels.
struct ChannelFaultSpec {
  int from_host = -1;
  int to_host = -1;
  double drop_p = 0;     ///< per-tuple loss probability
  double dup_p = 0;      ///< per-tuple duplication probability (one extra copy)
  double reorder_p = 0;  ///< per-tuple hold-back probability (adjacent swap)
  /// When > 0, the channel stores-and-forwards through a bounded queue that
  /// drains at epoch boundaries; overflow evicts the oldest entry.
  size_t queue_capacity = 0;
};

/// \brief Abrupt kill of one host at an epoch boundary: the host dies
/// before the first source tuple with temporal value >= epoch is routed.
struct HostKillSpec {
  int host = 0;
  uint64_t epoch = 0;
};

/// \brief Network partition: the cluster splits into >= 2 disjoint host
/// groups at the epoch boundary. While the partition holds, every cross-group
/// send is refused at the sender (the tuple never reaches the channel).
/// Hosts the directive does not name land in an implicit isolated group that
/// can reach no one. A later `heal` restores full connectivity.
struct PartitionSpec {
  std::vector<std::vector<int>> groups;  ///< >= 2 disjoint, non-empty groups
  uint64_t epoch = 0;
};

/// \brief Heals the partition in force (if any) at the epoch boundary: all
/// severed pairs reconnect and the reliable-edge retransmit backlog drains.
struct HealSpec {
  uint64_t epoch = 0;
};

/// \brief Re-admits a host at the epoch boundary — the reverse of a kill.
/// The host may have been killed earlier (rebooted machine) or never seen
/// before (elastic scale-out); in both cases the runtime consults the
/// advisor/recost path for which partitions to move back and migrates their
/// state over the checkpoint machinery.
struct RejoinSpec {
  int host = 0;
  uint64_t epoch = 0;
};

/// \brief Per-epoch CPU cycle budget for one host (or every host via the -1
/// wildcard). When an epoch's charged model cycles would exceed the budget,
/// the overload controller (dist/overload.h) defers the offending source
/// tuples into a bounded per-host backpressure queue (drop-oldest) and, when
/// a shed policy is armed, sheds tuples at the tap with Horvitz–Thompson
/// scale-up for sampleable aggregates.
struct HostBudgetSpec {
  int host = -1;  ///< -1 matches every host the plan doesn't name explicitly
  double cycles = 0;  ///< model cycles per epoch; must be > 0
  /// Backpressure queue capacity (deferred source tuples); overflow evicts
  /// the oldest entry with exact accounting. 0 = unbounded deferral.
  size_t queue_capacity = 0;
  /// Headroom fraction reserved below the budget: the hard per-tuple guard
  /// trips at cycles*(1-reserve), so a single tuple's cost overshoot stays
  /// inside the reserve and the charged total never crosses `cycles`.
  double reserve = 0.05;
};

/// \brief Tap-level shedding policy: keep 1 tuple in `m` (uniform, seeded,
/// integer Horvitz–Thompson weight m). Exactly one of fixed_m / max_m is
/// set: `shed m=M` sheds at the fixed rate for the whole run; `shed max_m=M`
/// lets the controller adapt m per epoch from measured demand, capped at M.
struct ShedSpec {
  uint64_t fixed_m = 0;  ///< fixed keep-1-in-m; 0 = not fixed
  uint64_t max_m = 0;    ///< adaptive cap; 0 = not adaptive
  bool enabled() const { return fixed_m > 0 || max_m > 0; }
};

/// \brief Knobs of the runtime-adaptive placement loop (dist/adaptive.h).
/// `adapt on` arms the controller with these defaults; any `adapt key=value`
/// line both arms it and overrides the named knob.
struct AdaptiveSpec {
  bool enabled = false;
  /// Epochs observed before the first decision (EWMA warm-up).
  uint64_t warmup_epochs = 3;
  /// Minimum relative bottleneck improvement a move must project before it
  /// is taken; candidates below the bar are recorded as suppressed.
  double hysteresis = 0.15;
  /// Epochs the controller stays quiet after executing a move. Doubles after
  /// every rollback (capped-backoff) and resets on a committed improvement.
  uint64_t cooldown_epochs = 2;
  /// Cap for the backoff-doubled cooldown.
  uint64_t max_cooldown_epochs = 16;
  /// Epochs a move has to beat its pre-move baseline before it is rolled
  /// back automatically.
  uint64_t rollback_epochs = 3;
  /// Amortization horizon: a move is taken only when its projected per-epoch
  /// gain repays the migration cost within this many epochs, and the
  /// oscillation damper forbids reversing a move inside the same horizon.
  uint64_t amortize_epochs = 8;
  /// Relative fast-vs-slow EWMA divergence that counts as a drift event.
  double drift_threshold = 0.25;
  /// When > 0, force the worst-projected candidate once at this epoch — a
  /// deterministic way to exercise the rollback path in tests.
  uint64_t probe_epoch = 0;
};

/// \brief A complete, seeded fault scenario.
struct FaultPlan {
  uint64_t seed = 1;
  /// Rebuild the partitioner over surviving hosts on a kill (the Le Merrer
  /// et al. recovery move). `recover off` in the plan file disables it, in
  /// which case tuples routed to dead partitions are counted lost.
  bool repartition = true;
  /// Lossless recovery (dist/checkpoint.h): when > 0, the runtime snapshots
  /// every operator's state each `checkpoint_interval` epochs, routes
  /// cross-host traffic through acked retransmit buffers, and migrates a
  /// killed host's operators to a survivor instead of invalidating their
  /// windows. 0 (the default) keeps the lossy PR-3 semantics byte-identical.
  uint64_t checkpoint_interval = 0;
  /// Minimum timestamp stride per epoch: source times t and t' share an
  /// epoch iff t / epoch_width == t' / epoch_width. Width 1 (the default)
  /// keeps the original every-distinct-timestamp epoch granularity; larger
  /// widths make bounded `queue=` channels and ack/checkpoint epochs
  /// meaningful on near-unique-timestamp traces (docs/FAULTS.md).
  uint64_t epoch_width = 1;
  std::vector<HostKillSpec> kills;
  std::vector<ChannelFaultSpec> channels;
  /// Membership lifecycle events (docs/FAULTS.md "Membership lifecycle").
  std::vector<PartitionSpec> partitions;
  std::vector<HealSpec> heals;
  std::vector<RejoinSpec> rejoins;
  /// Per-host per-epoch CPU budgets (overload control; dist/overload.h).
  std::vector<HostBudgetSpec> budgets;
  /// Tap-level shedding policy (inert unless budgets force it or fixed).
  ShedSpec shed;
  /// Runtime-adaptive placement loop (dist/adaptive.h).
  AdaptiveSpec adaptive;

  /// \brief True when the plan schedules membership lifecycle events
  /// (partition/heal/rejoin).
  bool membership_enabled() const {
    return !partitions.empty() || !heals.empty() || !rejoins.empty();
  }

  /// \brief True when the plan injects nothing (controller stays inert).
  /// Budgets/shedding are deliberately excluded: a budget-only plan arms the
  /// overload controller but no fault controller. Membership events are
  /// included — a partition/heal/rejoin-only plan needs the controller to
  /// track connectivity and liveness.
  bool empty() const {
    return kills.empty() && channels.empty() && !membership_enabled();
  }

  /// \brief True when the plan arms the overload controller.
  bool overload_enabled() const { return !budgets.empty() || shed.enabled(); }

  /// \brief True when installing the plan arms *any* controller — fault
  /// injection, checkpoint/recovery, overload control, or adaptive
  /// placement. Every install site must use this predicate (not empty()):
  /// PR 4 silently dropped checkpoint-only plans and PR 5 budget-only plans
  /// by testing empty() alone, and each new controller would re-open the
  /// same gap.
  bool armed() const {
    return !empty() || checkpoint_interval > 0 || overload_enabled() ||
           adaptive.enabled;
  }

  /// \brief Parses the line-based plan format (docs/FAULTS.md):
  ///
  ///     # comment
  ///     seed 42
  ///     recover off
  ///     ckpt 4
  ///     epoch_width 60
  ///     kill host=2 epoch=3
  ///     partition groups=0,1|2,3 at=5
  ///     heal at=8
  ///     rejoin host=2 at=9
  ///     channel from=1 to=0 drop=0.1 dup=0.05 reorder=0.2 queue=64
  ///     budget host=1 cycles=5e8 queue=256 reserve=0.05
  ///     shed m=4            # or: shed max_m=64
  ///     adapt on            # or: adapt warmup=3 hysteresis=0.15 ...
  static Result<FaultPlan> Parse(const std::string& text);

  /// \brief Reads and parses a plan file.
  static Result<FaultPlan> Load(const std::string& path);

  /// \brief Renders the plan back into the file format (Parse(ToString())
  /// round-trips).
  std::string ToString() const;
};

/// \brief One degraded directed channel: the per-tuple fault pipeline
/// drop -> duplicate -> reorder -> bounded queue, with exact accounting.
///
/// Deterministic composition: the channel owns an Rng seeded from
/// (plan seed, from, to), and every probability stage skips the RNG draw
/// entirely when its rate is zero — a channel configured with all-zero
/// rates is observationally identical to a healthy edge.
///
/// Conservation invariant (asserted by the fault battery): while the
/// receiver stays alive and after Flush(),
///   delivered + dropped + queue_dropped == sent + dup_extras.
class FaultChannel {
 public:
  /// Hands one tuple to the receiving host; returns false when the receiver
  /// is dead (the tuple is counted net-lost by the controller, not
  /// delivered). The function is supplied per Send — one (from, to) channel
  /// serves every consumer edge of that directed pair — and rides along
  /// with held/queued copies until they deliver.
  using DeliverFn = std::function<bool(const Tuple&)>;

  FaultChannel(const ChannelFaultSpec& spec, int from_host, int to_host,
               uint64_t plan_seed);

  /// \brief Pushes one tuple through the fault pipeline. Depending on the
  /// stages it may deliver zero, one, or two copies now, or hold/queue
  /// copies for later delivery.
  void Send(const Tuple& tuple, const DeliverFn& deliver);

  /// \brief Delivers everything queued in the bounded store-and-forward
  /// queue (epoch boundary).
  void DrainQueue();

  /// \brief Drains the queue and releases any reorder-held tuple; called
  /// before the receiving port finishes so no tuple is silently stranded.
  void Flush();

  int from_host() const { return row_.from_host; }
  int to_host() const { return row_.to_host; }
  const FaultChannelRow& row() const { return row_; }

  /// \brief Binds per-channel counters (scope `channel#<from>-><to>` in the
  /// sending host's registry). Optional; accounting also lives in row().
  void BindTelemetry(StatsScope* scope);

  /// \brief Records one retransmission routed through this channel: the
  /// recovery coordinator (dist/checkpoint.h) resent an unacked tuple. The
  /// resend itself is a fresh Send, so the conservation invariant
  /// delivered + dropped + queue_dropped == sent + dup_extras is unchanged;
  /// `retransmitted` just marks how many of the sends were second tries.
  void CountRetransmit();

 private:
  struct Entry {
    Tuple tuple;
    DeliverFn deliver;
  };

  /// Post-reorder output stage: bounded queue or immediate delivery.
  void Output(Entry entry);
  void DeliverNow(const Entry& entry);

  ChannelFaultSpec spec_;
  FaultChannelRow row_;
  Rng rng_;
  std::optional<Entry> held_;  ///< reorder stage: one-slot hold
  std::deque<Entry> queue_;    ///< bounded store-and-forward queue

  // Telemetry instruments (null unless bound; see metrics/stats.h).
  Counter* t_sent_ = nullptr;
  Counter* t_delivered_ = nullptr;
  Counter* t_dropped_ = nullptr;
  Counter* t_dup_extras_ = nullptr;
  Counter* t_reordered_ = nullptr;
  Counter* t_queue_dropped_ = nullptr;
  Counter* t_retransmitted_ = nullptr;
};

/// \brief One due membership lifecycle event, handed to the runtime by
/// FaultController::DueMembershipEvents in (epoch, plan order).
struct MembershipEvent {
  enum class Kind { kPartition, kHeal, kRejoin };
  Kind kind = Kind::kPartition;
  uint64_t epoch = 0;
  std::vector<std::vector<int>> groups;  ///< kPartition: the host groups
  int host = -1;                         ///< kRejoin: the host to re-admit
};

/// \brief Executes a FaultPlan: tracks host liveness, owns the degraded
/// channels, and accumulates the ledger FaultSection. ClusterRuntime calls
/// into it from its routing and cross-host delivery paths.
class FaultController {
 public:
  FaultController(FaultPlan plan, int num_hosts);

  /// \brief False for an empty plan: every hook is a no-op and the run is
  /// byte-identical to one without the controller.
  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }

  bool host_alive(int host) const {
    return host < 0 || host >= static_cast<int>(alive_.size()) || alive_[host];
  }

  /// \brief Source-time advance hook: when \p time enters a new epoch
  /// (epoch id = time / plan().epoch_width), all bounded queues drain
  /// (epoch boundary); hosts whose kill time has arrived are returned in
  /// plan order for the runtime to kill. Call before routing the tuple
  /// carrying \p time. Kill epochs compare against the raw timestamp
  /// regardless of epoch_width, so `kill epoch=` plans mean the same thing
  /// at every width.
  ///
  /// With the default epoch_width of 1 every distinct (strictly increasing)
  /// temporal value is its own epoch; on traces with near-unique timestamps
  /// this makes bounded queues drain at almost every tuple. A larger
  /// `epoch_width` coarsens the stride — see docs/FAULTS.md ("What an
  /// 'epoch' is").
  std::vector<int> OnSourceTime(uint64_t time);

  /// \brief Membership events whose epoch has arrived (`epoch <= time`, raw
  /// timestamp — the same comparison kills use). Events are consumed in
  /// (epoch, plan order). Call right after OnSourceTime for the same time:
  /// membership events apply before the retransmit scan and before any kill
  /// due at the same boundary.
  std::vector<MembershipEvent> DueMembershipEvents(uint64_t time);

  /// \brief True while a network partition is in force.
  bool partition_active() const { return partition_active_; }

  /// \brief Last observed source timestamp (0 before any tuple): the epoch
  /// stamped on the implicit end-of-run heal of a never-healed partition.
  uint64_t last_time() const { return current_time_.value_or(0); }

  /// \brief True when the directed host pair is severed by the partition in
  /// force: the endpoints sit in different groups. Hosts the directive did
  /// not name land in an implicit isolated group (-1) severed from every
  /// other host, including each other.
  bool PairSevered(int from_host, int to_host) const;

  /// \brief Applies a partition event: installs the group map and opens a
  /// ledger event row. The runtime enforces the severing by consulting
  /// PairSevered on every cross-host send.
  void ApplyPartition(const PartitionSpec& spec);

  /// \brief Heals the partition in force (recorded even when none is — the
  /// plan said heal, the ledger shows it).
  void ApplyHeal(uint64_t epoch);

  /// \brief Re-admits a host — the reverse of MarkDead. Grows the liveness
  /// table for never-before-seen hosts (elastic scale-out).
  void MarkRejoined(int host);

  /// \brief Records an executed rejoin (state moved back: \p moved_bytes).
  void RecordRejoin(int host, uint64_t epoch, uint64_t moved_bytes);

  /// \brief Records a rejoin suppressed by the cooldown guard.
  void RecordRejoinSuppressed(int host, uint64_t epoch);

  /// \brief Counts one cross-group send refused at the sender while a
  /// partition holds (attributed to the open partition's event row).
  void CountPartitionRefused();

  /// \brief Binds the member_* instruments (scope `membership` in host 0's
  /// registry). The runtime binds lazily when the first membership event
  /// applies, so plans whose events never fire stay byte-identical.
  void BindMembershipTelemetry(StatsScope* scope);

  /// \brief Snapshot of the membership accounting.
  /// \p cycles_per_checkpoint_byte prices the state rejoins moved back.
  MembershipSection membership_section(double cycles_per_checkpoint_byte) const;

  /// \brief The degraded channel for the directed pair, or nullptr when no
  /// spec matches (healthy edge, zero overhead). Channels are created
  /// lazily on first use from the first matching spec (an exact (from, to)
  /// spec beats wildcards; among wildcards, spec order wins). \p make_scope
  /// is invoked only when a channel is actually created, to bind its
  /// counters (it may return null).
  FaultChannel* ChannelFor(int from_host, int to_host,
                           const std::function<StatsScope*()>& make_scope);

  /// \brief The already-created channel for the pair, or nullptr.
  FaultChannel* FindChannel(int from_host, int to_host);

  /// \brief Flushes the channel of one directed pair (before finishing the
  /// receiving port); no-op when none exists.
  void FlushChannel(int from_host, int to_host);

  /// \brief Marks \p host dead and records it in the kill order.
  void MarkDead(int host);

  /// \brief Records the open state a dead host loses (one row per stateful
  /// operator scope with anything open).
  void RecordInvalidation(int host, const std::string& scope, uint64_t panes,
                          uint64_t tuples);

  /// \brief Records one partitioner rebuild over \p survivor-side open
  /// state (realigned tuples charged later at the remote-tuple weight).
  void RecordRepartition(uint64_t state_tuples);

  /// \brief Delivers everything still held in any channel.
  void FlushAll();

  /// \brief Drains the bounded queues of every channel (epoch boundary).
  void DrainAllQueues();

  // Loss accounting hooks (see FaultSection field docs).
  void CountSourceTupleLost() { ++section_.source_tuples_lost; }
  void CountNetTupleLost() { ++section_.net_tuples_lost; }
  void CountFlushSuppressed() { ++section_.flush_tuples_suppressed; }

  /// \brief Snapshot of the accounting (channel rows copied in creation
  /// order). \p cycles_per_state_tuple prices the repartition state
  /// realignment in model cycles.
  FaultSection section(double cycles_per_state_tuple) const;

 private:
  const ChannelFaultSpec* FindSpec(int from_host, int to_host) const;

  FaultPlan plan_;
  bool active_ = false;
  std::vector<bool> alive_;
  /// Last observed source timestamp (kills key off the raw time).
  std::optional<uint64_t> current_time_;
  /// Last observed epoch id (time / epoch_width); queue drains key off it.
  std::optional<uint64_t> current_eid_;
  size_t kills_done_ = 0;  // kills_ is consumed in epoch order
  std::vector<HostKillSpec> kills_;  // sorted by (epoch, plan order)
  std::map<std::pair<int, int>, std::unique_ptr<FaultChannel>> channels_;
  std::vector<FaultChannel*> channel_order_;  // creation order
  FaultSection section_;

  // Membership lifecycle state (docs/FAULTS.md "Membership lifecycle").
  size_t membership_done_ = 0;  // membership_ is consumed in epoch order
  std::vector<MembershipEvent> membership_;  // sorted by (epoch, plan order)
  bool partition_active_ = false;
  std::map<int, int> partition_group_;  // host -> group while partitioned
  MembershipSection member_section_;
  int open_partition_row_ = -1;  // events index refusals attribute to

  // Membership telemetry (null unless bound; see metrics/stats.h).
  Counter* t_member_partitions_ = nullptr;
  Counter* t_member_heals_ = nullptr;
  Counter* t_member_rejoins_ = nullptr;
  Counter* t_member_refused_ = nullptr;
  Counter* t_member_moved_bytes_ = nullptr;
  Counter* t_member_suppressed_ = nullptr;
};

}  // namespace streampart
