#include "dist/cluster_runtime.h"

#include <optional>

#include "partition/advisor.h"
#include "types/serde.h"

namespace streampart {

Result<const HostMetrics*> ClusterRunResult::CheckedHost(int host) const {
  if (host < 0 || host >= static_cast<int>(hosts.size())) {
    return Status::InvalidArgument("host ", host, " out of range (cluster has ",
                                   hosts.size(), " hosts)");
  }
  for (int dead : dead_hosts) {
    if (dead == host) {
      return Status::RuntimeError(
          "host ", host,
          " was killed by fault injection; its ledger row stops at the kill");
    }
  }
  return &hosts[host];
}

const HostMetrics& ClusterRunResult::aggregator(int aggregator_host) const {
  Result<const HostMetrics*> checked = CheckedHost(aggregator_host);
  SP_CHECK(checked.ok()) << "aggregator unavailable: "
                         << checked.status().ToString();
  return **checked;
}

double ClusterRunResult::LeafCpuSeconds(const CpuCostParams& params,
                                        int aggregator_host) const {
  double total = 0;
  for (size_t h = 0; h < hosts.size(); ++h) {
    if (static_cast<int>(h) == aggregator_host) continue;
    total += HostCpuSeconds(hosts[h], params);
  }
  return total;
}

ClusterRuntime::ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                               const ClusterConfig& config)
    : graph_(graph), plan_(plan), config_(config) {
  result_.hosts.resize(config.num_hosts);
  host_stats_.reserve(config.num_hosts);
  for (int h = 0; h < config.num_hosts; ++h) {
    host_stats_.push_back(std::make_unique<StatsRegistry>());
  }
}

void ClusterRuntime::set_trace_events_enabled(bool enabled) {
  for (auto& reg : host_stats_) reg->set_events_enabled(enabled);
}

void ClusterRuntime::set_fault_plan(FaultPlan plan) {
  SP_CHECK(!built_) << "set_fault_plan must precede Build";
  if (plan.empty()) {
    // An empty plan is inert by constraint: no controller exists, so every
    // execution path is byte-identical to a run without the call.
    faults_.reset();
    return;
  }
  faults_ =
      std::make_unique<FaultController>(std::move(plan), config_.num_hosts);
}

void ClusterRuntime::AccountTransfer(int from_host, int to_host,
                                     const Tuple& tuple) {
  AccountTransferBatch(from_host, to_host, 1, EncodedTupleSize(tuple));
}

void ClusterRuntime::AccountTransferBatch(int from_host, int to_host,
                                          uint64_t n, size_t bytes) {
  result_.hosts[from_host].net_tuples_out += n;
  result_.hosts[from_host].net_bytes_out += bytes;
  result_.hosts[to_host].net_tuples_in += n;
  result_.hosts[to_host].net_bytes_in += bytes;
}

Status ClusterRuntime::Build(const PartitionSet& actual_ps) {
  if (built_) return Status::Internal("ClusterRuntime::Build called twice");
  built_ = true;

  instances_.resize(plan_->size());

  // Pass 1: instantiate operators (sources have no instance).
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    switch (op.kind) {
      case DistOpKind::kSource: {
        auto& hosts = partition_hosts_[op.stream_name];
        if (hosts.size() <= static_cast<size_t>(op.partition)) {
          hosts.resize(op.partition + 1, 0);
        }
        hosts[op.partition] = op.host;
        auto& edges = routing_[op.stream_name];
        if (edges.size() <= static_cast<size_t>(op.partition)) {
          edges.resize(op.partition + 1);
        }
        break;
      }
      case DistOpKind::kQuery: {
        SP_ASSIGN_OR_RETURN(
            OperatorPtr instance,
            MakeOperator(op.query, &graph_->udaf_registry()));
        instances_[id] = std::move(instance);
        break;
      }
      case DistOpKind::kMerge: {
        instances_[id] = std::make_unique<MergeOp>(
            op.stream_name, op.schema, op.children.size());
        break;
      }
    }
  }

  // Bind each instance to its host's telemetry registry. Scope names carry
  // the plan op id so replicated operators (one per partition) stay
  // distinguishable within a host.
  if (telemetry_enabled_) {
    for (int id : plan_->TopoOrder()) {
      if (instances_[id] == nullptr) continue;
      const DistOperator& op = plan_->op(id);
      instances_[id]->BindTelemetry(
          host_stats_[op.host].get(),
          instances_[id]->label() + "#" + std::to_string(id));
    }
  }

  // The partitioner routes over the shared source schema: all partitioned
  // streams use the same partitioning (paper §4's simplifying assumption).
  // Pick the schema deterministically — partition_hosts_ is an ordered map,
  // so this is the lexicographically smallest stream name — and verify the
  // assumption instead of trusting it.
  SchemaPtr source_schema;
  std::string source_schema_stream;
  for (const auto& [name, hosts] : partition_hosts_) {
    SP_ASSIGN_OR_RETURN(SchemaPtr schema, graph_->GetStreamSchema(name));
    if (source_schema == nullptr) {
      source_schema = schema;
      source_schema_stream = name;
    } else if (!source_schema->Equals(*schema)) {
      return Status::InvalidArgument(
          "partitioned sources disagree on schema: stream '", name,
          "' differs from '", source_schema_stream, "'");
    }
  }
  if (source_schema != nullptr) {
    int num_parts = 0;
    for (const auto& [name, hosts] : partition_hosts_) {
      num_parts = std::max(num_parts, static_cast<int>(hosts.size()));
    }
    SP_ASSIGN_OR_RETURN(partitioner_,
                        MakePartitioner(actual_ps, source_schema, num_parts));
    // Retained for fault recovery: rebuilding the partitioner over
    // surviving partitions needs the schema, the current set, the merged
    // partition placement, and the epoch column kills key off.
    source_schema_ = source_schema;
    actual_ps_ = actual_ps;
    // All streams must agree on partition -> host placement, or the merged
    // map (and Repartition()'s survivor computation over it) would be wrong
    // for every stream but the last. Verify, like the shared-schema check
    // above, instead of letting the last stream win silently.
    partition_host_merged_.assign(num_parts, -1);
    for (const auto& [name, hosts] : partition_hosts_) {
      for (size_t p = 0; p < hosts.size(); ++p) {
        if (partition_host_merged_[p] < 0) {
          partition_host_merged_[p] = hosts[p];
        } else if (partition_host_merged_[p] != hosts[p]) {
          return Status::InvalidArgument(
              "partitioned sources disagree on placement: stream '", name,
              "' puts partition ", p, " on host ", hosts[p],
              " but another stream placed it on host ",
              partition_host_merged_[p]);
        }
      }
    }
    std::vector<size_t> temporal = source_schema->TemporalFieldIndexes();
    source_time_idx_ =
        temporal.empty() ? -1 : static_cast<int>(temporal.front());
  }
  stats_folded_.assign(plan_->size(), 0);

  // Pass 2: wire edges. Cross-host edges are collected per producer so each
  // producer output is serialized and decoded exactly once no matter how
  // many remote consumers it feeds; traffic is still accounted per edge.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.kind == DistOpKind::kSource) continue;
    Operator* consumer = instances_[id].get();
    for (size_t port = 0; port < op.children.size(); ++port) {
      int child = op.children[port];
      const DistOperator& producer = plan_->op(child);
      if (producer.kind == DistOpKind::kSource) {
        routing_[producer.stream_name][producer.partition].push_back(
            SourceEdge{consumer, port, op.host});
        continue;
      }
      Operator* prod_instance = instances_[child].get();
      if (producer.host == op.host) {
        prod_instance->AddConsumer(consumer, port);
      } else {
        int from = producer.host;
        int to = op.host;
        remote_edges_[child].push_back(RemoteEdge{consumer, port, to});
        ClusterRuntime* self = this;
        prod_instance->AddFinishHook([self, consumer, port, from, to]() {
          // Deliver anything a degraded channel still holds before the port
          // sees end-of-stream; otherwise held tuples arrive late.
          if (self->faults_active()) self->faults_->FlushChannel(from, to);
          consumer->Finish(port);
        });
      }
    }
  }
  for (auto& [child, edges] : remote_edges_) {
    // One channel per producer: serialize across the simulated network (the
    // receivers see genuinely decoded tuples), account the encoded bytes on
    // every edge, then deliver the single decoded copy to all consumers.
    Operator* prod_instance = instances_[child].get();
    int from = plan_->op(child).host;
    ClusterRuntime* self = this;
    const std::vector<RemoteEdge>* shared_edges = &edges;
    prod_instance->AddSink(
        [self, from, shared_edges](const Tuple& t) {
          if (self->faults_active()) {
            if (!self->faults_->host_alive(from)) {
              // The producer's host died; its flush output is suppressed at
              // the host boundary and accounted, not silently vanished.
              for (size_t i = 0; i < shared_edges->size(); ++i) {
                self->faults_->CountFlushSuppressed();
              }
              return;
            }
            auto faulty_decoded = RoundTripTuple(t);
            SP_CHECK(faulty_decoded.ok())
                << faulty_decoded.status().ToString();
            for (const RemoteEdge& e : *shared_edges) {
              self->DeliverRemoteFaulty(from, e.to_host, t, *faulty_decoded,
                                        e.consumer, e.port);
            }
            return;
          }
          auto decoded = RoundTripTuple(t);
          SP_CHECK(decoded.ok()) << decoded.status().ToString();
          for (const RemoteEdge& e : *shared_edges) {
            self->AccountTransfer(from, e.to_host, t);
            e.consumer->Push(e.port, *decoded);
          }
        },
        [self, from, shared_edges](TupleSpan batch) {
          if (self->faults_active()) {
            // Under faults the batch fast path degenerates to per-tuple
            // deliveries: kills and channel faults act at tuple
            // granularity, and the per-tuple route keeps both execution
            // paths on the same deterministic fault sequence.
            for (const Tuple& t : batch) {
              if (!self->faults_->host_alive(from)) {
                for (size_t i = 0; i < shared_edges->size(); ++i) {
                  self->faults_->CountFlushSuppressed();
                }
                continue;
              }
              auto faulty_decoded = RoundTripTuple(t);
              SP_CHECK(faulty_decoded.ok())
                  << faulty_decoded.status().ToString();
              for (const RemoteEdge& e : *shared_edges) {
                self->DeliverRemoteFaulty(from, e.to_host, t, *faulty_decoded,
                                          e.consumer, e.port);
              }
            }
            return;
          }
          size_t enc_bytes = 0;
          auto decoded = RoundTripBatch(batch, &enc_bytes);
          SP_CHECK(decoded.ok()) << decoded.status().ToString();
          for (const RemoteEdge& e : *shared_edges) {
            self->AccountTransferBatch(from, e.to_host, batch.size(),
                                       enc_bytes);
            e.consumer->PushBatch(e.port, *decoded);
          }
        });
  }

  // Pass 3: sinks collect plan outputs (suppressed and accounted when the
  // sink's host died).
  for (int id : plan_->Sinks()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    std::string name = op.stream_name;
    int sink_host = op.host;
    ClusterRuntime* self = this;
    ClusterRunResult* result = &result_;
    instances_[id]->AddSink([self, result, name, sink_host](const Tuple& t) {
      if (self->faults_active() && !self->faults_->host_alive(sink_host)) {
        self->faults_->CountFlushSuppressed();
        return;
      }
      result->outputs[name].push_back(t);
    });
  }
  return Status::OK();
}

void ClusterRuntime::DeliverRemoteFaulty(int from_host, int to_host,
                                         const Tuple& wire,
                                         const Tuple& decoded,
                                         Operator* consumer, size_t port) {
  size_t bytes = EncodedTupleSize(wire);
  // Sender-side accounting happens at send time — the tuple left the host
  // whether or not the channel later drops it. (The healthy path accounts
  // both sides together; under faults the two sides legitimately diverge.)
  result_.hosts[from_host].net_tuples_out += 1;
  result_.hosts[from_host].net_bytes_out += bytes;
  FaultChannel* channel = faults_->FindChannel(from_host, to_host);
  if (channel == nullptr) {
    // First use of this directed pair: the spec is resolved (and, when a
    // channel is created, its counters bound in the sender's registry)
    // lazily; healthy pairs never materialize a telemetry scope.
    channel = faults_->ChannelFor(from_host, to_host, [&]() {
      return telemetry_enabled_
                 ? host_stats_[from_host]->GetScope(
                       "channel#" + std::to_string(from_host) + "->" +
                       std::to_string(to_host))
                 : nullptr;
    });
  }
  if (channel == nullptr) {
    ReceiveRemote(to_host, decoded, bytes, consumer, port);
    return;
  }
  channel->Send(decoded, [this, to_host, bytes, consumer, port](
                             const Tuple& t) {
    return ReceiveRemote(to_host, t, bytes, consumer, port);
  });
}

bool ClusterRuntime::ReceiveRemote(int to_host, const Tuple& tuple,
                                   size_t bytes, Operator* consumer,
                                   size_t port) {
  if (!faults_->host_alive(to_host)) {
    faults_->CountNetTupleLost();
    return false;
  }
  result_.hosts[to_host].net_tuples_in += 1;
  result_.hosts[to_host].net_bytes_in += bytes;
  consumer->Push(port, tuple);
  return true;
}

void ClusterRuntime::PushSource(const std::string& source,
                                const Tuple& tuple) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  if (faults_active()) ObserveSourceTime(tuple);
  int p = partitioner_->PartitionOf(tuple);
  // After a repartition the partitioner spans only surviving partitions;
  // map its index back into the original partition space.
  if (!survivor_map_.empty()) p = survivor_map_[p];
  if (p >= static_cast<int>(it->second.size())) return;
  int src_host = partition_hosts_.at(source)[p];
  if (faults_active() && !faults_->host_alive(src_host)) {
    // Routed to a dead partition (recovery off, or every host dead): the
    // tuple is lost at the tap and accounted.
    faults_->CountSourceTupleLost();
    return;
  }
  result_.hosts[src_host].source_tuples++;
  result_.source_tuples++;
  // Serialize at most once per tuple: traffic is accounted on every remote
  // edge, but all remote consumers share one decoded copy.
  std::optional<Tuple> decoded;
  for (const SourceEdge& edge : it->second[p]) {
    if (edge.consumer_host != src_host) {
      if (!decoded.has_value()) {
        auto rt = RoundTripTuple(tuple);
        SP_CHECK(rt.ok()) << rt.status().ToString();
        decoded = std::move(*rt);
      }
      if (faults_active()) {
        DeliverRemoteFaulty(src_host, edge.consumer_host, tuple, *decoded,
                            edge.consumer, edge.port);
        continue;
      }
      AccountTransfer(src_host, edge.consumer_host, tuple);
      edge.consumer->Push(edge.port, *decoded);
    } else {
      edge.consumer->Push(edge.port, tuple);
    }
  }
}

void ClusterRuntime::PushSourceBatch(const std::string& source,
                                     TupleSpan batch) {
  if (faults_active()) {
    // Kills act at tuple granularity (a host can die mid-batch) and
    // channel faults must draw the same deterministic sequence on both
    // execution paths, so the batched route degenerates to per-tuple
    // delivery while faults are live.
    for (const Tuple& tuple : batch) PushSource(source, tuple);
    return;
  }
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  const auto& partitions = it->second;
  const std::vector<int>& hosts = partition_hosts_.at(source);

  // One routing pass buckets the batch by partition; buckets are scratch
  // storage reused across calls.
  if (bucket_scratch_.size() < partitions.size()) {
    bucket_scratch_.resize(partitions.size());
  }
  for (auto& bucket : bucket_scratch_) bucket.clear();
  for (const Tuple& tuple : batch) {
    int p = partitioner_->PartitionOf(tuple);
    if (p >= static_cast<int>(partitions.size())) continue;
    bucket_scratch_[p].push_back(tuple);
  }

  for (size_t p = 0; p < partitions.size(); ++p) {
    const TupleBatch& bucket = bucket_scratch_[p];
    if (bucket.empty()) continue;
    int src_host = hosts[p];
    result_.hosts[src_host].source_tuples += bucket.size();
    result_.source_tuples += bucket.size();
    // Cross-host consumers of this partition share one encode/decode round
    // trip per bucket; local consumers see the bucket directly.
    std::optional<TupleBatch> decoded;
    size_t enc_bytes = 0;
    for (const SourceEdge& edge : partitions[p]) {
      if (edge.consumer_host != src_host) {
        if (!decoded.has_value()) {
          auto rt = RoundTripBatch(bucket, &enc_bytes);
          SP_CHECK(rt.ok()) << rt.status().ToString();
          decoded = std::move(*rt);
        }
        AccountTransferBatch(src_host, edge.consumer_host, bucket.size(),
                             enc_bytes);
        edge.consumer->PushBatch(edge.port, *decoded);
      } else {
        edge.consumer->PushBatch(edge.port, bucket);
      }
    }
  }
}

void ClusterRuntime::FinishSources() {
  if (finished_) return;
  finished_ = true;
  // Deliver everything degraded channels still hold before any port sees
  // end-of-stream (the per-edge finish hooks flush again, harmlessly, for
  // tuples emitted during the flush cascade itself).
  if (faults_active()) faults_->FlushAll();
  for (auto& [name, partitions] : routing_) {
    for (auto& edges : partitions) {
      for (const SourceEdge& edge : edges) {
        edge.consumer->Finish(edge.port);
      }
    }
  }
  // Fold operator work into host ledgers; merges are accounted separately
  // (they forward tuples rather than processing them). Operators on killed
  // hosts were folded at kill time — their post-death (suppressed) flush
  // work must not inflate the ledger.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    if (!stats_folded_.empty() && stats_folded_[id]) continue;
    if (op.kind == DistOpKind::kMerge) {
      result_.hosts[op.host].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[op.host].ops += instances_[id]->stats();
    }
  }
}

void ClusterRuntime::ObserveSourceTime(const Tuple& tuple) {
  if (source_time_idx_ < 0 ||
      source_time_idx_ >= static_cast<int>(tuple.values().size())) {
    return;
  }
  uint64_t time = tuple.at(source_time_idx_).AsUint64();
  for (int host : faults_->OnSourceTime(time)) KillHost(host);
}

void ClusterRuntime::KillHost(int host) {
  if (host < 0 || host >= config_.num_hosts) return;
  if (!faults_->host_alive(host)) return;
  // Deliver in-flight channel tuples while the host can still receive;
  // everything sent before the kill instant was already "on the wire".
  faults_->FlushAll();
  // Record window-invalidation markers for the open state the host loses,
  // and fold its work ledger now — post-death flush work is suppressed and
  // must not be accounted.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.host != host || instances_[id] == nullptr) continue;
    Operator::OpenState open = instances_[id]->open_state();
    faults_->RecordInvalidation(
        host, instances_[id]->label() + "#" + std::to_string(id), open.windows,
        open.tuples);
    if (op.kind == DistOpKind::kMerge) {
      result_.hosts[host].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[host].ops += instances_[id]->stats();
    }
    stats_folded_[id] = true;
  }
  faults_->MarkDead(host);
  result_.dead_hosts.push_back(host);
  // Downstream ports fed by the dead host would otherwise wait for an EOS
  // that can never arrive: finish them now (Finish is idempotent per port,
  // so the end-of-run pass is unaffected).
  for (const auto& [child, edges] : remote_edges_) {
    if (plan_->op(child).host != host) continue;
    for (const RemoteEdge& e : edges) {
      if (!faults_->host_alive(e.to_host)) continue;
      faults_->FlushChannel(host, e.to_host);
      e.consumer->Finish(e.port);
    }
  }
  for (auto& [name, partitions] : routing_) {
    const std::vector<int>& hosts = partition_hosts_.at(name);
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (p >= hosts.size() || hosts[p] != host) continue;
      for (const SourceEdge& edge : partitions[p]) {
        if (!faults_->host_alive(edge.consumer_host)) continue;
        edge.consumer->Finish(edge.port);
      }
    }
  }
  if (faults_->plan().repartition) Repartition();
}

void ClusterRuntime::Repartition() {
  // Surviving partitions of the shared partition space, in order.
  std::vector<int> survivors;
  for (size_t p = 0; p < partition_host_merged_.size(); ++p) {
    if (faults_->host_alive(partition_host_merged_[p])) {
      survivors.push_back(static_cast<int>(p));
    }
  }
  if (survivors.empty() || source_schema_ == nullptr) {
    // Nothing to route to: keep the old map; routed tuples count lost.
    return;
  }
  // Consult the advisor: the optimal set is a workload property, so this
  // usually confirms the current set and the recovery move is a rebuild of
  // the hash-slice map over the survivors.
  PartitionSet ps = actual_ps_;
  auto advice = AdviseRepartition(*graph_, actual_ps_);
  if (advice.ok()) ps = advice->recommended;
  auto rebuilt = MakePartitioner(ps, source_schema_,
                                 static_cast<int>(survivors.size()));
  if (!rebuilt.ok()) return;  // keep the old map rather than halt the run
  partitioner_ = std::move(*rebuilt);
  survivor_map_ = std::move(survivors);
  actual_ps_ = ps;
  // Survivor-side open state is realigned by the new map; its size prices
  // the repartition in model cycles at ledger time.
  uint64_t state_tuples = 0;
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr || !faults_->host_alive(op.host)) continue;
    state_tuples += instances_[id]->open_state().tuples;
  }
  faults_->RecordRepartition(state_tuples);
}

RunLedger ClusterRuntime::MakeLedger(const CpuCostParams& params,
                                     double duration_sec,
                                     const RunLedgerOptions& options) const {
  RunLedger ledger(options);
  ledger.SetMeta("hosts", static_cast<uint64_t>(config_.num_hosts));
  ledger.SetMeta("duration_sec", duration_sec);
  ledger.SetMeta("source_tuples", result_.source_tuples);
  for (size_t h = 0; h < result_.hosts.size(); ++h) {
    ledger.AddHost(static_cast<int>(h), result_.hosts[h], params,
                   duration_sec);
  }
  for (size_t h = 0; h < host_stats_.size(); ++h) {
    ledger.AddRegistry(static_cast<int>(h), *host_stats_[h]);
  }
  for (const auto& [name, batch] : result_.outputs) {
    ledger.AddOutput(name, batch.size());
  }
  if (faults_active()) {
    ledger.SetFaults(faults_->section(params.cycles_per_remote_tuple));
  }
  return ledger;
}

OpStats ClusterRuntime::StatsForStream(const std::string& stream_name) const {
  OpStats total;
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.stream_name == stream_name && instances_[id] != nullptr) {
      total += instances_[id]->stats();
    }
  }
  return total;
}

}  // namespace streampart
