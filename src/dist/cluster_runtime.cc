#include "dist/cluster_runtime.h"

#include <optional>

#include "types/serde.h"

namespace streampart {

double ClusterRunResult::LeafCpuSeconds(const CpuCostParams& params,
                                        int aggregator_host) const {
  double total = 0;
  for (size_t h = 0; h < hosts.size(); ++h) {
    if (static_cast<int>(h) == aggregator_host) continue;
    total += HostCpuSeconds(hosts[h], params);
  }
  return total;
}

ClusterRuntime::ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                               const ClusterConfig& config)
    : graph_(graph), plan_(plan), config_(config) {
  result_.hosts.resize(config.num_hosts);
  host_stats_.reserve(config.num_hosts);
  for (int h = 0; h < config.num_hosts; ++h) {
    host_stats_.push_back(std::make_unique<StatsRegistry>());
  }
}

void ClusterRuntime::set_trace_events_enabled(bool enabled) {
  for (auto& reg : host_stats_) reg->set_events_enabled(enabled);
}

void ClusterRuntime::AccountTransfer(int from_host, int to_host,
                                     const Tuple& tuple) {
  AccountTransferBatch(from_host, to_host, 1, EncodedTupleSize(tuple));
}

void ClusterRuntime::AccountTransferBatch(int from_host, int to_host,
                                          uint64_t n, size_t bytes) {
  result_.hosts[from_host].net_tuples_out += n;
  result_.hosts[from_host].net_bytes_out += bytes;
  result_.hosts[to_host].net_tuples_in += n;
  result_.hosts[to_host].net_bytes_in += bytes;
}

Status ClusterRuntime::Build(const PartitionSet& actual_ps) {
  if (built_) return Status::Internal("ClusterRuntime::Build called twice");
  built_ = true;

  instances_.resize(plan_->size());

  // Pass 1: instantiate operators (sources have no instance).
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    switch (op.kind) {
      case DistOpKind::kSource: {
        auto& hosts = partition_hosts_[op.stream_name];
        if (hosts.size() <= static_cast<size_t>(op.partition)) {
          hosts.resize(op.partition + 1, 0);
        }
        hosts[op.partition] = op.host;
        auto& edges = routing_[op.stream_name];
        if (edges.size() <= static_cast<size_t>(op.partition)) {
          edges.resize(op.partition + 1);
        }
        break;
      }
      case DistOpKind::kQuery: {
        SP_ASSIGN_OR_RETURN(
            OperatorPtr instance,
            MakeOperator(op.query, &graph_->udaf_registry()));
        instances_[id] = std::move(instance);
        break;
      }
      case DistOpKind::kMerge: {
        instances_[id] = std::make_unique<MergeOp>(
            op.stream_name, op.schema, op.children.size());
        break;
      }
    }
  }

  // Bind each instance to its host's telemetry registry. Scope names carry
  // the plan op id so replicated operators (one per partition) stay
  // distinguishable within a host.
  if (telemetry_enabled_) {
    for (int id : plan_->TopoOrder()) {
      if (instances_[id] == nullptr) continue;
      const DistOperator& op = plan_->op(id);
      instances_[id]->BindTelemetry(
          host_stats_[op.host].get(),
          instances_[id]->label() + "#" + std::to_string(id));
    }
  }

  // The partitioner routes over the shared source schema: all partitioned
  // streams use the same partitioning (paper §4's simplifying assumption).
  // Pick the schema deterministically — partition_hosts_ is an ordered map,
  // so this is the lexicographically smallest stream name — and verify the
  // assumption instead of trusting it.
  SchemaPtr source_schema;
  std::string source_schema_stream;
  for (const auto& [name, hosts] : partition_hosts_) {
    SP_ASSIGN_OR_RETURN(SchemaPtr schema, graph_->GetStreamSchema(name));
    if (source_schema == nullptr) {
      source_schema = schema;
      source_schema_stream = name;
    } else if (!source_schema->Equals(*schema)) {
      return Status::InvalidArgument(
          "partitioned sources disagree on schema: stream '", name,
          "' differs from '", source_schema_stream, "'");
    }
  }
  if (source_schema != nullptr) {
    int num_parts = 0;
    for (const auto& [name, hosts] : partition_hosts_) {
      num_parts = std::max(num_parts, static_cast<int>(hosts.size()));
    }
    SP_ASSIGN_OR_RETURN(partitioner_,
                        MakePartitioner(actual_ps, source_schema, num_parts));
  }

  // Pass 2: wire edges. Cross-host edges are collected per producer so each
  // producer output is serialized and decoded exactly once no matter how
  // many remote consumers it feeds; traffic is still accounted per edge.
  struct RemoteEdge {
    Operator* consumer;
    size_t port;
    int to_host;
  };
  std::map<int, std::vector<RemoteEdge>> remote_edges;  // producer id -> edges
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.kind == DistOpKind::kSource) continue;
    Operator* consumer = instances_[id].get();
    for (size_t port = 0; port < op.children.size(); ++port) {
      int child = op.children[port];
      const DistOperator& producer = plan_->op(child);
      if (producer.kind == DistOpKind::kSource) {
        routing_[producer.stream_name][producer.partition].push_back(
            SourceEdge{consumer, port, op.host});
        continue;
      }
      Operator* prod_instance = instances_[child].get();
      if (producer.host == op.host) {
        prod_instance->AddConsumer(consumer, port);
      } else {
        remote_edges[child].push_back(RemoteEdge{consumer, port, op.host});
        prod_instance->AddFinishHook(
            [consumer, port]() { consumer->Finish(port); });
      }
    }
  }
  for (auto& [child, edges] : remote_edges) {
    // One channel per producer: serialize across the simulated network (the
    // receivers see genuinely decoded tuples), account the encoded bytes on
    // every edge, then deliver the single decoded copy to all consumers.
    Operator* prod_instance = instances_[child].get();
    int from = plan_->op(child).host;
    ClusterRuntime* self = this;
    std::vector<RemoteEdge> shared_edges = std::move(edges);
    prod_instance->AddSink(
        [self, from, shared_edges](const Tuple& t) {
          auto decoded = RoundTripTuple(t);
          SP_CHECK(decoded.ok()) << decoded.status().ToString();
          for (const RemoteEdge& e : shared_edges) {
            self->AccountTransfer(from, e.to_host, t);
            e.consumer->Push(e.port, *decoded);
          }
        },
        [self, from, shared_edges](TupleSpan batch) {
          size_t enc_bytes = 0;
          auto decoded = RoundTripBatch(batch, &enc_bytes);
          SP_CHECK(decoded.ok()) << decoded.status().ToString();
          for (const RemoteEdge& e : shared_edges) {
            self->AccountTransferBatch(from, e.to_host, batch.size(),
                                       enc_bytes);
            e.consumer->PushBatch(e.port, *decoded);
          }
        });
  }

  // Pass 3: sinks collect plan outputs.
  for (int id : plan_->Sinks()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    std::string name = op.stream_name;
    ClusterRunResult* result = &result_;
    instances_[id]->AddSink([result, name](const Tuple& t) {
      result->outputs[name].push_back(t);
    });
  }
  return Status::OK();
}

void ClusterRuntime::PushSource(const std::string& source,
                                const Tuple& tuple) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  int p = partitioner_->PartitionOf(tuple);
  if (p >= static_cast<int>(it->second.size())) return;
  int src_host = partition_hosts_.at(source)[p];
  result_.hosts[src_host].source_tuples++;
  result_.source_tuples++;
  // Serialize at most once per tuple: traffic is accounted on every remote
  // edge, but all remote consumers share one decoded copy.
  std::optional<Tuple> decoded;
  for (const SourceEdge& edge : it->second[p]) {
    if (edge.consumer_host != src_host) {
      AccountTransfer(src_host, edge.consumer_host, tuple);
      if (!decoded.has_value()) {
        auto rt = RoundTripTuple(tuple);
        SP_CHECK(rt.ok()) << rt.status().ToString();
        decoded = std::move(*rt);
      }
      edge.consumer->Push(edge.port, *decoded);
    } else {
      edge.consumer->Push(edge.port, tuple);
    }
  }
}

void ClusterRuntime::PushSourceBatch(const std::string& source,
                                     TupleSpan batch) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  const auto& partitions = it->second;
  const std::vector<int>& hosts = partition_hosts_.at(source);

  // One routing pass buckets the batch by partition; buckets are scratch
  // storage reused across calls.
  if (bucket_scratch_.size() < partitions.size()) {
    bucket_scratch_.resize(partitions.size());
  }
  for (auto& bucket : bucket_scratch_) bucket.clear();
  for (const Tuple& tuple : batch) {
    int p = partitioner_->PartitionOf(tuple);
    if (p >= static_cast<int>(partitions.size())) continue;
    bucket_scratch_[p].push_back(tuple);
  }

  for (size_t p = 0; p < partitions.size(); ++p) {
    const TupleBatch& bucket = bucket_scratch_[p];
    if (bucket.empty()) continue;
    int src_host = hosts[p];
    result_.hosts[src_host].source_tuples += bucket.size();
    result_.source_tuples += bucket.size();
    // Cross-host consumers of this partition share one encode/decode round
    // trip per bucket; local consumers see the bucket directly.
    std::optional<TupleBatch> decoded;
    size_t enc_bytes = 0;
    for (const SourceEdge& edge : partitions[p]) {
      if (edge.consumer_host != src_host) {
        if (!decoded.has_value()) {
          auto rt = RoundTripBatch(bucket, &enc_bytes);
          SP_CHECK(rt.ok()) << rt.status().ToString();
          decoded = std::move(*rt);
        }
        AccountTransferBatch(src_host, edge.consumer_host, bucket.size(),
                             enc_bytes);
        edge.consumer->PushBatch(edge.port, *decoded);
      } else {
        edge.consumer->PushBatch(edge.port, bucket);
      }
    }
  }
}

void ClusterRuntime::FinishSources() {
  if (finished_) return;
  finished_ = true;
  for (auto& [name, partitions] : routing_) {
    for (auto& edges : partitions) {
      for (const SourceEdge& edge : edges) {
        edge.consumer->Finish(edge.port);
      }
    }
  }
  // Fold operator work into host ledgers; merges are accounted separately
  // (they forward tuples rather than processing them).
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    if (op.kind == DistOpKind::kMerge) {
      result_.hosts[op.host].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[op.host].ops += instances_[id]->stats();
    }
  }
}

RunLedger ClusterRuntime::MakeLedger(const CpuCostParams& params,
                                     double duration_sec,
                                     const RunLedgerOptions& options) const {
  RunLedger ledger(options);
  ledger.SetMeta("hosts", static_cast<uint64_t>(config_.num_hosts));
  ledger.SetMeta("duration_sec", duration_sec);
  ledger.SetMeta("source_tuples", result_.source_tuples);
  for (size_t h = 0; h < result_.hosts.size(); ++h) {
    ledger.AddHost(static_cast<int>(h), result_.hosts[h], params,
                   duration_sec);
  }
  for (size_t h = 0; h < host_stats_.size(); ++h) {
    ledger.AddRegistry(static_cast<int>(h), *host_stats_[h]);
  }
  for (const auto& [name, batch] : result_.outputs) {
    ledger.AddOutput(name, batch.size());
  }
  return ledger;
}

OpStats ClusterRuntime::StatsForStream(const std::string& stream_name) const {
  OpStats total;
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.stream_name == stream_name && instances_[id] != nullptr) {
      total += instances_[id]->stats();
    }
  }
  return total;
}

}  // namespace streampart
