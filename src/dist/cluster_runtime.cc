#include "dist/cluster_runtime.h"

#include "types/serde.h"

namespace streampart {

double ClusterRunResult::LeafCpuSeconds(const CpuCostParams& params,
                                        int aggregator_host) const {
  double total = 0;
  for (size_t h = 0; h < hosts.size(); ++h) {
    if (static_cast<int>(h) == aggregator_host) continue;
    total += HostCpuSeconds(hosts[h], params);
  }
  return total;
}

ClusterRuntime::ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                               const ClusterConfig& config)
    : graph_(graph), plan_(plan), config_(config) {
  result_.hosts.resize(config.num_hosts);
}

void ClusterRuntime::AccountTransfer(int from_host, int to_host,
                                     const Tuple& tuple) {
  size_t bytes = EncodedTupleSize(tuple);
  result_.hosts[from_host].net_tuples_out++;
  result_.hosts[from_host].net_bytes_out += bytes;
  result_.hosts[to_host].net_tuples_in++;
  result_.hosts[to_host].net_bytes_in += bytes;
}

Status ClusterRuntime::Build(const PartitionSet& actual_ps) {
  if (built_) return Status::Internal("ClusterRuntime::Build called twice");
  built_ = true;

  instances_.resize(plan_->size());

  // Pass 1: instantiate operators (sources have no instance).
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    switch (op.kind) {
      case DistOpKind::kSource: {
        auto& hosts = partition_hosts_[op.stream_name];
        if (hosts.size() <= static_cast<size_t>(op.partition)) {
          hosts.resize(op.partition + 1, 0);
        }
        hosts[op.partition] = op.host;
        auto& edges = routing_[op.stream_name];
        if (edges.size() <= static_cast<size_t>(op.partition)) {
          edges.resize(op.partition + 1);
        }
        break;
      }
      case DistOpKind::kQuery: {
        SP_ASSIGN_OR_RETURN(
            OperatorPtr instance,
            MakeOperator(op.query, &graph_->udaf_registry()));
        instances_[id] = std::move(instance);
        break;
      }
      case DistOpKind::kMerge: {
        instances_[id] = std::make_unique<MergeOp>(
            op.stream_name, op.schema, op.children.size());
        break;
      }
    }
  }

  // The partitioner routes over the first (and in this framework, shared)
  // source schema. All sources use the same partitioning (paper §4's
  // simplifying assumption).
  SchemaPtr source_schema;
  for (const auto& [name, hosts] : partition_hosts_) {
    SP_ASSIGN_OR_RETURN(source_schema, graph_->GetStreamSchema(name));
    break;
  }
  if (source_schema != nullptr) {
    int num_parts = 0;
    for (const auto& [name, hosts] : partition_hosts_) {
      num_parts = std::max(num_parts, static_cast<int>(hosts.size()));
    }
    SP_ASSIGN_OR_RETURN(partitioner_,
                        MakePartitioner(actual_ps, source_schema, num_parts));
  }

  // Pass 2: wire edges.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.kind == DistOpKind::kSource) continue;
    Operator* consumer = instances_[id].get();
    for (size_t port = 0; port < op.children.size(); ++port) {
      int child = op.children[port];
      const DistOperator& producer = plan_->op(child);
      if (producer.kind == DistOpKind::kSource) {
        routing_[producer.stream_name][producer.partition].push_back(
            SourceEdge{consumer, port, op.host});
        continue;
      }
      Operator* prod_instance = instances_[child].get();
      if (producer.host == op.host) {
        prod_instance->AddConsumer(consumer, port);
      } else {
        // Cross-host edge: serialize across the simulated network (the
        // receiver sees a genuinely decoded tuple), account the encoded
        // bytes, then deliver.
        int from = producer.host;
        int to = op.host;
        ClusterRuntime* self = this;
        prod_instance->AddSink([self, from, to, consumer, port](const Tuple& t) {
          self->AccountTransfer(from, to, t);
          auto decoded = RoundTripTuple(t);
          SP_CHECK(decoded.ok()) << decoded.status().ToString();
          consumer->Push(port, *decoded);
        });
        prod_instance->AddFinishHook(
            [consumer, port]() { consumer->Finish(port); });
      }
    }
  }

  // Pass 3: sinks collect plan outputs.
  for (int id : plan_->Sinks()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    std::string name = op.stream_name;
    ClusterRunResult* result = &result_;
    instances_[id]->AddSink([result, name](const Tuple& t) {
      result->outputs[name].push_back(t);
    });
  }
  return Status::OK();
}

void ClusterRuntime::PushSource(const std::string& source,
                                const Tuple& tuple) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  int p = partitioner_->PartitionOf(tuple);
  if (p >= static_cast<int>(it->second.size())) return;
  int src_host = partition_hosts_.at(source)[p];
  result_.hosts[src_host].source_tuples++;
  result_.source_tuples++;
  for (const SourceEdge& edge : it->second[p]) {
    if (edge.consumer_host != src_host) {
      AccountTransfer(src_host, edge.consumer_host, tuple);
      auto decoded = RoundTripTuple(tuple);
      SP_CHECK(decoded.ok()) << decoded.status().ToString();
      edge.consumer->Push(edge.port, *decoded);
    } else {
      edge.consumer->Push(edge.port, tuple);
    }
  }
}

void ClusterRuntime::FinishSources() {
  if (finished_) return;
  finished_ = true;
  for (auto& [name, partitions] : routing_) {
    for (auto& edges : partitions) {
      for (const SourceEdge& edge : edges) {
        edge.consumer->Finish(edge.port);
      }
    }
  }
  // Fold operator work into host ledgers; merges are accounted separately
  // (they forward tuples rather than processing them).
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    if (op.kind == DistOpKind::kMerge) {
      result_.hosts[op.host].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[op.host].ops += instances_[id]->stats();
    }
  }
}

OpStats ClusterRuntime::StatsForStream(const std::string& stream_name) const {
  OpStats total;
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.stream_name == stream_name && instances_[id] != nullptr) {
      total += instances_[id]->stats();
    }
  }
  return total;
}

}  // namespace streampart
