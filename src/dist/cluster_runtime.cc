#include "dist/cluster_runtime.h"

#include <algorithm>
#include <optional>

#include "exec/sketch_op.h"
#include "metrics/stats.h"
#include "optimizer/recost.h"
#include "partition/advisor.h"
#include "types/serde.h"

namespace streampart {

namespace {
/// Pipeline-mode morsel size: large enough to amortize queue traffic, small
/// enough to keep the work-stealing pool balanced.
constexpr size_t kMorselTuples = 512;

/// Barrier-mode replay-order context of the work item the calling worker is
/// currently processing: `seq` is the item's global routing sequence number,
/// `sub` counts the staged messages its processing produced (cascades
/// included), so (seq, sub) totally orders every staged message in exact
/// sequential call order.
thread_local uint64_t tls_stage_seq = 0;
thread_local uint32_t tls_stage_sub = 0;

/// Instantiates the sketch-leg operator for a plan node annotated with a
/// SketchRole (the optimizer keeps such nodes as kQuery so only this factory
/// dispatches on the role). Returns nullptr for unannotated nodes.
OperatorPtr MaybeMakeSketchInstance(const DistOperator& op) {
  if (op.sketch_role == SketchRole::kNone) return nullptr;
  SketchSpec spec;
  spec.eps = op.sketch_eps;
  spec.confidence = op.sketch_confidence;
  spec.seed = op.sketch_seed;
  if (op.sketch_role == SketchRole::kHost) {
    return std::make_unique<SketchOp>(op.query, spec);
  }
  return std::make_unique<SketchMergeOp>(op.query, spec);
}
}  // namespace

Result<const HostMetrics*> ClusterRunResult::CheckedHost(int host) const {
  if (host < 0 || host >= static_cast<int>(hosts.size())) {
    return Status::InvalidArgument("host ", host, " out of range (cluster has ",
                                   hosts.size(), " hosts)");
  }
  for (int dead : dead_hosts) {
    if (dead == host) {
      return Status::RuntimeError(
          "host ", host,
          " was killed by fault injection; its ledger row stops at the kill");
    }
  }
  return &hosts[host];
}

const HostMetrics& ClusterRunResult::aggregator(int aggregator_host) const {
  Result<const HostMetrics*> checked = CheckedHost(aggregator_host);
  SP_CHECK(checked.ok()) << "aggregator unavailable: "
                         << checked.status().ToString();
  return **checked;
}

double ClusterRunResult::LeafCpuSeconds(const CpuCostParams& params,
                                        int aggregator_host) const {
  double total = 0;
  for (size_t h = 0; h < hosts.size(); ++h) {
    if (static_cast<int>(h) == aggregator_host) continue;
    total += HostCpuSeconds(hosts[h], params);
  }
  return total;
}

ClusterRuntime::ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                               const ClusterConfig& config)
    : graph_(graph), plan_(plan), config_(config) {
  result_.hosts.resize(config.num_hosts);
  host_stats_.reserve(config.num_hosts);
  for (int h = 0; h < config.num_hosts; ++h) {
    host_stats_.push_back(std::make_unique<StatsRegistry>());
  }
}

void ClusterRuntime::set_trace_events_enabled(bool enabled) {
  trace_events_enabled_ = enabled;
  for (auto& reg : host_stats_) reg->set_events_enabled(enabled);
}

void ClusterRuntime::set_parallel(int threads) {
  SP_CHECK(!built_) << "set_parallel must precede Build";
  SP_CHECK(threads >= 1) << "set_parallel requires threads >= 1, got "
                         << threads;
  parallel_threads_ = threads;
}

void ClusterRuntime::set_fault_plan(FaultPlan plan) {
  SP_CHECK(!built_) << "set_fault_plan must precede Build";
  // Captured before the plan moves: budget-armed plans cannot run in
  // parallel (StartParallel records the fallback reason).
  has_budgets_ = !plan.budgets.empty();
  recovery_.reset();
  if (plan.checkpoint_interval > 0) {
    // Lossless recovery is independent of the fault machinery proper: a plan
    // that only sets `ckpt` runs checkpoints and acked edges with no kills
    // and no degraded channels (the differential baseline for the recovery
    // battery).
    RecoveryConfig rc;
    rc.checkpoint_interval = plan.checkpoint_interval;
    rc.epoch_width = plan.epoch_width;
    recovery_ = std::make_unique<RecoveryCoordinator>(rc);
  }
  overload_.reset();
  if (plan.overload_enabled()) {
    // Budget/shed directives arm overload control even when the plan
    // injects no faults (empty() below); a budget-only plan runs with an
    // overload controller and no fault controller.
    overload_ = std::make_unique<OverloadController>(plan, config_.num_hosts);
  }
  adaptive_.reset();
  if (plan.adaptive.enabled) {
    // The adapt directive arms feedback-driven placement on its own; with
    // no checkpoint_interval its moves degrade to advice-only decisions.
    adaptive_ = std::make_unique<AdaptiveController>(plan, config_.num_hosts);
  }
  if (plan.empty()) {
    // An empty plan is inert by constraint: no controller exists, so every
    // execution path is byte-identical to a run without the call.
    faults_.reset();
    return;
  }
  faults_ =
      std::make_unique<FaultController>(std::move(plan), config_.num_hosts);
}

void ClusterRuntime::AccountTransfer(int from_host, int to_host,
                                     const Tuple& tuple) {
  AccountTransferBatch(from_host, to_host, 1, EncodedTupleSize(tuple));
}

void ClusterRuntime::AccountTransferBatch(int from_host, int to_host,
                                          uint64_t n, size_t bytes) {
  result_.hosts[from_host].net_tuples_out += n;
  result_.hosts[from_host].net_bytes_out += bytes;
  result_.hosts[to_host].net_tuples_in += n;
  result_.hosts[to_host].net_bytes_in += bytes;
}

int ClusterRuntime::ProducerHost(const EdgeKey& key) const {
  if (key.producer >= 0) return op_host_[key.producer];
  int p = -key.producer - 1;
  return partition_host_merged_[p];
}

OperatorPtr ClusterRuntime::MakeInstance(int id) {
  const DistOperator& op = plan_->op(id);
  if (op.kind == DistOpKind::kMerge) {
    return std::make_unique<MergeOp>(op.stream_name, op.schema,
                                     op.children.size());
  }
  if (OperatorPtr sketch = MaybeMakeSketchInstance(op)) return sketch;
  auto made = MakeOperator(op.query, &graph_->udaf_registry());
  SP_CHECK(made.ok()) << "rebuilding operator " << id
                      << " for migration failed: " << made.status().ToString();
  return std::move(*made);
}

void ClusterRuntime::BindInstanceTelemetry(int id) {
  if (!telemetry_enabled_) return;
  // Scope names carry the plan op id so replicated operators (one per
  // partition) stay distinguishable within a host, and a migrated replica
  // never collides with the target's own operators.
  instances_[id]->BindTelemetry(
      host_stats_[op_host_[id]].get(),
      instances_[id]->label() + "#" + std::to_string(id));
}

Status ClusterRuntime::Build(const PartitionSet& actual_ps) {
  if (built_) return Status::Internal("ClusterRuntime::Build called twice");
  built_ = true;

  instances_.resize(plan_->size());
  op_host_.assign(plan_->size(), 0);

  // Pass 1: instantiate operators (sources have no instance).
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    op_host_[id] = op.host;
    switch (op.kind) {
      case DistOpKind::kSource: {
        auto& hosts = partition_hosts_[op.stream_name];
        if (hosts.size() <= static_cast<size_t>(op.partition)) {
          hosts.resize(op.partition + 1, 0);
        }
        hosts[op.partition] = op.host;
        auto& edges = routing_[op.stream_name];
        if (edges.size() <= static_cast<size_t>(op.partition)) {
          edges.resize(op.partition + 1);
        }
        break;
      }
      case DistOpKind::kQuery: {
        if (OperatorPtr sketch = MaybeMakeSketchInstance(op)) {
          instances_[id] = std::move(sketch);
          break;
        }
        SP_ASSIGN_OR_RETURN(
            OperatorPtr instance,
            MakeOperator(op.query, &graph_->udaf_registry()));
        instances_[id] = std::move(instance);
        break;
      }
      case DistOpKind::kMerge: {
        instances_[id] = std::make_unique<MergeOp>(
            op.stream_name, op.schema, op.children.size());
        break;
      }
    }
  }

  // Bind each instance to its host's telemetry registry.
  if (telemetry_enabled_) {
    for (int id : plan_->TopoOrder()) {
      if (instances_[id] != nullptr) BindInstanceTelemetry(id);
    }
  }

  // The partitioner routes over the shared source schema: all partitioned
  // streams use the same partitioning (paper §4's simplifying assumption).
  // Pick the schema deterministically — partition_hosts_ is an ordered map,
  // so this is the lexicographically smallest stream name — and verify the
  // assumption instead of trusting it.
  SchemaPtr source_schema;
  std::string source_schema_stream;
  for (const auto& [name, hosts] : partition_hosts_) {
    SP_ASSIGN_OR_RETURN(SchemaPtr schema, graph_->GetStreamSchema(name));
    if (source_schema == nullptr) {
      source_schema = schema;
      source_schema_stream = name;
    } else if (!source_schema->Equals(*schema)) {
      return Status::InvalidArgument(
          "partitioned sources disagree on schema: stream '", name,
          "' differs from '", source_schema_stream, "'");
    }
  }
  if (source_schema != nullptr) {
    int num_parts = 0;
    for (const auto& [name, hosts] : partition_hosts_) {
      num_parts = std::max(num_parts, static_cast<int>(hosts.size()));
    }
    SP_ASSIGN_OR_RETURN(partitioner_,
                        MakePartitioner(actual_ps, source_schema, num_parts));
    // Retained for fault recovery: rebuilding the partitioner over
    // surviving partitions needs the schema, the current set, the merged
    // partition placement, and the epoch column kills key off.
    source_schema_ = source_schema;
    actual_ps_ = actual_ps;
    // All streams must agree on partition -> host placement, or the merged
    // map (and Repartition()'s survivor computation over it) would be wrong
    // for every stream but the last. Verify, like the shared-schema check
    // above, instead of letting the last stream win silently.
    partition_host_merged_.assign(num_parts, -1);
    for (const auto& [name, hosts] : partition_hosts_) {
      for (size_t p = 0; p < hosts.size(); ++p) {
        if (partition_host_merged_[p] < 0) {
          partition_host_merged_[p] = hosts[p];
        } else if (partition_host_merged_[p] != hosts[p]) {
          return Status::InvalidArgument(
              "partitioned sources disagree on placement: stream '", name,
              "' puts partition ", p, " on host ", hosts[p],
              " but another stream placed it on host ",
              partition_host_merged_[p]);
        }
      }
    }
    std::vector<size_t> temporal = source_schema->TemporalFieldIndexes();
    source_time_idx_ =
        temporal.empty() ? -1 : static_cast<int>(temporal.front());
  }
  // Snapshot the build-time placement before any kill or skew move re-homes
  // partitions: a rejoining host reclaims exactly the partitions it owned
  // when the cluster was healthy.
  partition_host_build_ = partition_host_merged_;
  stats_folded_.assign(plan_->size(), 0);

  // Pass 2: collect edges per producer id. Cross-host edges are grouped so
  // each producer output is serialized and decoded exactly once no matter
  // how many remote consumers it feeds; traffic is still accounted per edge.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.kind == DistOpKind::kSource) continue;
    for (size_t port = 0; port < op.children.size(); ++port) {
      int child = op.children[port];
      const DistOperator& producer = plan_->op(child);
      if (producer.kind == DistOpKind::kSource) {
        routing_[producer.stream_name][producer.partition].push_back(
            Edge{id, port});
        continue;
      }
      if (producer.host == op.host) {
        local_edges_[child].push_back(Edge{id, port});
      } else {
        remote_edges_[child].push_back(Edge{id, port});
      }
    }
  }
  // Pass 2b: wire each producer — local edges, then remote finish hooks,
  // then the (single, shared) remote sink. MigrateHost repeats exactly this
  // sequence for rebuilt instances so migrated wiring is order-identical.
  for (int child : plan_->TopoOrder()) {
    if (instances_[child] == nullptr) continue;
    if (auto it = local_edges_.find(child); it != local_edges_.end()) {
      for (const Edge& e : it->second) WireLocalEdge(child, e.consumer, e.port);
    }
    if (auto it = remote_edges_.find(child); it != remote_edges_.end()) {
      for (const Edge& e : it->second) {
        AddRemoteFinishHook(child, e.consumer, e.port);
      }
      AttachRemoteSinks(child);
    }
  }

  // Pass 3: sinks collect plan outputs (suppressed and accounted when the
  // sink's host died).
  for (int id : plan_->Sinks()) {
    if (instances_[id] == nullptr) continue;
    sink_ids_.push_back(id);
    AttachResultSink(id);
  }

  if (overload_ != nullptr) {
    SP_RETURN_NOT_OK(overload_->Validate());
    overload_->set_cycles_probe(
        [this](int host) { return ModelCyclesNow(host); });
    if (telemetry_enabled_) {
      overload_->set_scope_maker([this](int host) {
        return host_stats_[host]->GetScope("overload#" +
                                           std::to_string(host));
      });
    }
    BindShedWeights();
  }

  if (adaptive_ != nullptr) {
    SP_RETURN_NOT_OK(adaptive_->Validate());
    // Re-costing uses the same cycle currency as budget enforcement and the
    // ledger; migrations are priced at the checkpoint byte rate like the
    // skew detector's partition moves.
    adaptive_->set_cost_weights(
        RecostWeights{cost_params_.cycles_per_remote_tuple,
                      cost_params_.cycles_per_remote_byte},
        cost_params_.cycles_per_checkpoint_byte);
    if (telemetry_enabled_) {
      // The controller is a cluster-wide decision maker, not a per-host one:
      // its instruments live in host 0's registry under a single scope.
      adaptive_->set_scope_maker(
          [this]() { return host_stats_[0]->GetScope("adaptive"); });
    }
    BuildAdaptiveTopology();
  }

  if (recovery_active()) {
    // Pre-create every delivery log, suppression window, and acked-edge
    // shard the run can touch. Present-but-empty entries are semantically
    // identical to missing ones (checkpoint.h documents the invariant), and
    // pre-creation means parallel workers only ever write map slots that
    // already exist — no structural map mutation off the driver thread.
    for (int id : plan_->TopoOrder()) {
      if (instances_[id] != nullptr) recovery_->PrepareOp(id);
    }
    for (const auto& [name, partitions] : routing_) {
      for (size_t p = 0; p < partitions.size(); ++p) {
        for (const Edge& e : partitions[p]) {
          recovery_->PrepareEdge(
              EdgeKey{-(static_cast<int>(p) + 1), e.consumer, e.port});
        }
      }
    }
    for (const auto& [child, edges] : remote_edges_) {
      for (const Edge& e : edges) {
        recovery_->PrepareEdge(EdgeKey{child, e.consumer, e.port});
      }
    }
  }

  StartParallel();
  return Status::OK();
}

void ClusterRuntime::BindShedWeights() {
  shed_bound_.assign(plan_->size(), 0);
  if (!overload_->shed_armed()) return;
  // Walk downstream from every source through weight-transparent operators
  // (merges and stateless select/project) to the FIRST stateful operator on
  // each path — the shed point's weight consumer. Binding only the first
  // one is essential: a super-aggregate consumes already-scaled partials
  // and must never scale again.
  std::vector<char> visited(plan_->size(), 0);
  std::deque<int> queue;
  for (int id : plan_->TopoOrder()) {
    if (plan_->op(id).kind != DistOpKind::kSource) continue;
    for (int c : plan_->Consumers(id)) {
      if (!visited[c]) {
        visited[c] = 1;
        queue.push_back(c);
      }
    }
  }
  while (!queue.empty()) {
    int id = queue.front();
    queue.pop_front();
    const DistOperator& op = plan_->op(id);
    bool pass_through =
        op.kind == DistOpKind::kMerge ||
        (op.kind == DistOpKind::kQuery && op.query != nullptr &&
         op.query->kind == QueryKind::kSelectProject);
    if (pass_through) {
      for (int c : plan_->Consumers(id)) {
        if (!visited[c]) {
          visited[c] = 1;
          queue.push_back(c);
        }
      }
      continue;
    }
    Operator* inst = instances_[id].get();
    if (inst == nullptr) continue;
    if (inst->BindShedWeight(overload_->shed_weight())) {
      shed_bound_[id] = 1;
      if (!inst->ShedSampleable()) {
        overload_->AddInexactReason(
            inst->label() +
            ": non-sampleable aggregate in the shed path (no computed "
            "bound)");
      }
    } else if (!inst->ShedSampleable()) {
      overload_->AddInexactReason(
          inst->label() + ": shed tuples break pairings (no computed bound)");
    } else {
      overload_->AddInexactReason(
          inst->label() + ": cannot consume Horvitz-Thompson weights");
    }
    // Stop here either way: everything downstream sees partials.
  }
}

void ClusterRuntime::RebindShedWeight(int id) {
  if (overload_ == nullptr || shed_bound_.empty() || !shed_bound_[id]) return;
  instances_[id]->BindShedWeight(overload_->shed_weight());
}

void ClusterRuntime::BuildAdaptiveTopology() {
  const int n = static_cast<int>(plan_->size());
  // Union-find over build-time local edges: a stage is a maximal group of
  // same-host operators wired by direct links, so it can only move as a
  // unit. Cross-stage edges are remote by construction (local edges connect
  // same-host ops, and connectivity is transitive), so every stage-boundary
  // delivery already re-resolves hosts at delivery time.
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [child, edges] : local_edges_) {
    for (const Edge& e : edges) parent[find(child)] = find(e.consumer);
  }
  adaptive_stage_of_.assign(n, -1);
  std::vector<int> root_stage(n, -1);
  std::vector<AdaptiveStage> stages;
  for (int id : plan_->TopoOrder()) {
    if (instances_[id] == nullptr) continue;  // sources are not movable
    int root = find(id);
    if (root_stage[root] < 0) {
      root_stage[root] = static_cast<int>(stages.size());
      AdaptiveStage stage;
      stage.id = root_stage[root];
      stage.label = instances_[id]->label();
      stages.push_back(std::move(stage));
    }
    adaptive_stage_of_[id] = root_stage[root];
    stages[root_stage[root]].ops.push_back(id);
  }

  // Measured edges: capture intake into each consuming stage (one edge per
  // consumer — every consumer receives its own copy of the partition's
  // traffic), plus every cross-stage operator edge.
  std::vector<AdaptiveEdge> edges;
  adaptive_edge_src_.clear();
  for (const auto& [name, partitions] : routing_) {
    for (size_t p = 0; p < partitions.size(); ++p) {
      for (const Edge& e : partitions[p]) {
        AdaptiveEdge ae;
        ae.consumer_stage = adaptive_stage_of_[e.consumer];
        ae.source_partition = static_cast<int>(p);
        edges.push_back(ae);
        adaptive_edge_src_.push_back({-1, static_cast<int>(p)});
      }
    }
  }
  for (const auto& [child, redges] : remote_edges_) {
    for (const Edge& e : redges) {
      AdaptiveEdge ae;
      ae.producer_stage = adaptive_stage_of_[child];
      ae.consumer_stage = adaptive_stage_of_[e.consumer];
      edges.push_back(ae);
      adaptive_edge_src_.push_back({child, -1});
    }
  }
  adaptive_partition_tuples_.assign(partition_host_merged_.size(), 0);
  adaptive_partition_bytes_.assign(partition_host_merged_.size(), 0);
  adaptive_->SetTopology(std::move(stages), std::move(edges));
}

AdaptiveSnapshot ClusterRuntime::TakeAdaptiveSnapshot(uint64_t eid) {
  AdaptiveSnapshot snap;
  snap.eid = eid;
  snap.topology_changed = adaptive_topology_dirty_;
  adaptive_topology_dirty_ = false;
  snap.host_cycles.resize(config_.num_hosts);
  for (int h = 0; h < config_.num_hosts; ++h) {
    snap.host_cycles[h] = ModelCyclesNow(h);
  }
  const std::vector<AdaptiveStage>& stages = adaptive_->stages();
  snap.stage_host.resize(stages.size());
  snap.stage_cycles.resize(stages.size());
  snap.stage_state_bytes.resize(stages.size());
  for (const AdaptiveStage& stage : stages) {
    snap.stage_host[stage.id] = op_host_[stage.ops.front()];
    // Per-stage compute, priced like ModelCyclesNow but over this stage's
    // live instances only (no capture/network/checkpoint terms — those
    // belong to hosts, not stages).
    HostMetrics m;
    uint64_t state_bytes = 0;
    for (int id : stage.ops) {
      if (instances_[id] == nullptr) continue;
      if (plan_->op(id).kind == DistOpKind::kMerge) {
        m.merge_ops += instances_[id]->stats();
      } else {
        m.ops += instances_[id]->stats();
      }
      if (recovery_active() && recovery_->HasBlob(id)) {
        state_bytes += recovery_->BlobStoredBytes(id);
      }
    }
    snap.stage_cycles[stage.id] = HostCycles(m, cost_params_);
    snap.stage_state_bytes[stage.id] = state_bytes;
  }
  const std::vector<AdaptiveEdge>& edges = adaptive_->edges();
  snap.edge_from_host.resize(edges.size());
  snap.edge_tuples.resize(edges.size());
  snap.edge_bytes.resize(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    const AdaptiveEdgeSrc& src = adaptive_edge_src_[i];
    if (src.producer_op >= 0) {
      const OpStats& st = instances_[src.producer_op]->stats();
      snap.edge_from_host[i] = op_host_[src.producer_op];
      snap.edge_tuples[i] = static_cast<double>(st.tuples_out);
      snap.edge_bytes[i] = static_cast<double>(st.bytes_out);
    } else {
      snap.edge_from_host[i] = partition_host_merged_[src.partition];
      snap.edge_tuples[i] =
          static_cast<double>(adaptive_partition_tuples_[src.partition]);
      snap.edge_bytes[i] =
          static_cast<double>(adaptive_partition_bytes_[src.partition]);
    }
  }
  double tuples_in = 0, tuples_out = 0;
  for (const OperatorPtr& inst : instances_) {
    if (inst == nullptr) continue;
    tuples_in += static_cast<double>(inst->stats().tuples_in);
    tuples_out += static_cast<double>(inst->stats().tuples_out);
  }
  snap.ops_tuples_in = tuples_in;
  snap.ops_tuples_out = tuples_out;
  snap.source_tuples = static_cast<double>(result_.source_tuples);
  snap.host_alive.assign(config_.num_hosts, true);
  if (faults_ != nullptr) {
    for (int h = 0; h < config_.num_hosts; ++h) {
      snap.host_alive[h] = faults_->host_alive(h);
    }
  }
  return snap;
}

void ClusterRuntime::AdaptiveOnTime(uint64_t time) {
  uint64_t eid = time / adaptive_->epoch_width();
  if (!adaptive_->EpochBoundary(eid)) return;
  AdaptiveSnapshot snap = TakeAdaptiveSnapshot(eid);
  AdaptiveAction action = adaptive_->OnEpoch(snap);
  if (action.kind != AdaptiveAction::Kind::kNone) {
    ExecuteAdaptiveAction(action);
  }
}

void ClusterRuntime::ExecuteAdaptiveAction(const AdaptiveAction& action) {
  const bool target_alive =
      faults_ == nullptr || faults_->host_alive(action.to_host);
  if (!recovery_active() || !target_alive) {
    // No state-migration machinery (or no live target): record the advice
    // instead of moving blind — a lossy move would invalidate open windows,
    // which is worse than running a stale placement. Mirrors
    // ExecuteSkewMove's advice-only degradation.
    adaptive_->RecordMoveUnavailable(action);
    return;
  }
  const AdaptiveStage& stage = adaptive_->stages()[action.stage];
  uint64_t moved_bytes = 0;
  if (MigrateStage(stage, action.to_host, &moved_bytes)) {
    adaptive_->RecordExecuted(action, moved_bytes);
    // The next snapshot diffs across the migration; re-baseline instead.
    adaptive_topology_dirty_ = true;
  } else {
    adaptive_->RecordMoveUnavailable(action);
  }
}

double ClusterRuntime::ModelCyclesNow(int host) const {
  // The host's ledger row carries capture/network/checkpoint counters (and
  // operator work folded at kill/migration time); live instances still hold
  // their own stats until FinishSources folds them.
  HostMetrics m = result_.hosts[host];
  for (size_t id = 0; id < instances_.size(); ++id) {
    if (instances_[id] == nullptr || op_host_[id] != host) continue;
    if (!stats_folded_.empty() && stats_folded_[id]) continue;
    if (plan_->op(static_cast<int>(id)).kind == DistOpKind::kMerge) {
      m.merge_ops += instances_[id]->stats();
    } else {
      m.ops += instances_[id]->stats();
    }
  }
  return HostCycles(m, cost_params_);
}

void ClusterRuntime::WireLocalEdge(int producer, int consumer, size_t port) {
  Operator* prod = instances_[producer].get();
  if (!recovery_active()) {
    prod->AddConsumer(instances_[consumer].get(), port);
    return;
  }
  // Under recovery local edges deliver through a logging sink: every applied
  // tuple lands in the consumer's delivery log (the replay source after a
  // migration), and replay itself mutes the edge — the consumer replays its
  // own log, so producer re-emissions must not double-deliver. Local edges
  // connect same-host operators, so both endpoints always migrate together
  // and the edge itself can never lose a tuple.
  ClusterRuntime* self = this;
  prod->AddSink([self, consumer, port](const Tuple& t) {
    if (self->replaying_) return;
    self->recovery_->LogDelivery(consumer, port, t);
    self->instances_[consumer]->Push(port, t);
  });
  prod->AddFinishHook([self, consumer, port]() {
    self->instances_[consumer]->Finish(port);
  });
}

void ClusterRuntime::AddRemoteFinishHook(int producer, int consumer,
                                         size_t port) {
  Operator* prod = instances_[producer].get();
  ClusterRuntime* self = this;
  if (recovery_active()) {
    prod->AddFinishHook([self, producer, consumer, port]() {
      // Deliver anything a degraded channel still holds, then escalate
      // whatever is still unacked (dropped in flight), so the port sees
      // every tuple before end-of-stream.
      int from = self->op_host_[producer];
      int to = self->op_host_[consumer];
      if (self->faults_active()) self->faults_->FlushChannel(from, to);
      self->recovery_->DrainEdgePending(
          EdgeKey{producer, consumer, port},
          [self](const RecoveryCoordinator::RetxItem& item) {
            self->ResendEntry(item);
          });
      self->instances_[consumer]->Finish(port);
    });
    return;
  }
  int from = plan_->op(producer).host;
  int to = plan_->op(consumer).host;
  prod->AddFinishHook([self, consumer, port, from, to]() {
    // Deliver anything a degraded channel still holds before the port sees
    // end-of-stream; otherwise held tuples arrive late.
    if (self->faults_active()) self->faults_->FlushChannel(from, to);
    self->instances_[consumer]->Finish(port);
  });
}

void ClusterRuntime::AttachRemoteSinks(int child) {
  Operator* prod = instances_[child].get();
  ClusterRuntime* self = this;
  if (recovery_active()) {
    // Per-tuple only: acked edges sequence, log and (during replay)
    // suppress at tuple granularity. EmitBatch falls back to a per-tuple
    // loop over this sink; only the advisory batch counters differ.
    prod->AddSink([self, child](const Tuple& t) {
      if (self->InBarrierWorker()) {
        self->WorkerEmitRemoteReliable(child, t);
        return;
      }
      self->EmitRemoteReliable(child, t);
    });
    return;
  }
  const std::vector<Edge>* shared_edges = &remote_edges_[child];
  int from = plan_->op(child).host;
  prod->AddSink(
      [self, from, shared_edges](const Tuple& t) {
        if (self->InBarrierWorker()) {
          // Workers never run work for dead hosts (kills execute at
          // barriers and the driver stops routing to them), so the
          // dead-producer suppression branch is unreachable here. Every
          // cross-host delivery is staged and replayed by the driver in
          // exact sequential order at the next barrier.
          for (const Edge& e : *shared_edges) {
            self->StageEdgeTuple(from, -1, -1, e, t);
          }
          return;
        }
        if (self->InPipelineWorker()) {
          self->PipelineStageTuple(from, *shared_edges, t);
          return;
        }
        if (self->faults_active()) {
          if (!self->faults_->host_alive(from)) {
            // The producer's host died; its flush output is suppressed at
            // the host boundary and accounted, not silently vanished.
            for (size_t i = 0; i < shared_edges->size(); ++i) {
              self->faults_->CountFlushSuppressed();
            }
            return;
          }
          auto faulty_decoded = RoundTripTuple(t);
          SP_CHECK(faulty_decoded.ok()) << faulty_decoded.status().ToString();
          for (const Edge& e : *shared_edges) {
            self->DeliverRemoteFaulty(from, t, *faulty_decoded, e.consumer,
                                      e.port);
          }
          return;
        }
        auto decoded = RoundTripTuple(t);
        SP_CHECK(decoded.ok()) << decoded.status().ToString();
        for (const Edge& e : *shared_edges) {
          self->AccountTransfer(from, self->op_host_[e.consumer], t);
          self->instances_[e.consumer]->Push(e.port, *decoded);
        }
      },
      [self, from, shared_edges](TupleSpan batch) {
        if (self->InBarrierWorker()) {
          if (self->faults_active()) {
            // Mirror the sequential degeneration below: channel faults act
            // per tuple, so each tuple is staged (and replayed) separately.
            for (const Tuple& t : batch) {
              for (const Edge& e : *shared_edges) {
                self->StageEdgeTuple(from, -1, -1, e, t);
              }
            }
            return;
          }
          // Overload-only barrier mode: the batch crosses as one transfer,
          // exactly like the sequential batch path.
          size_t worker_enc_bytes = 0;
          auto worker_decoded = RoundTripBatch(batch, &worker_enc_bytes);
          SP_CHECK(worker_decoded.ok())
              << worker_decoded.status().ToString();
          for (const Edge& e : *shared_edges) {
            self->StageEdgeBatch(from, e, *worker_decoded, worker_enc_bytes);
          }
          return;
        }
        if (self->InPipelineWorker()) {
          self->PipelineStageBatch(from, *shared_edges, batch);
          return;
        }
        if (self->faults_active()) {
          // Under faults the batch fast path degenerates to per-tuple
          // deliveries: kills and channel faults act at tuple granularity,
          // and the per-tuple route keeps both execution paths on the same
          // deterministic fault sequence.
          for (const Tuple& t : batch) {
            if (!self->faults_->host_alive(from)) {
              for (size_t i = 0; i < shared_edges->size(); ++i) {
                self->faults_->CountFlushSuppressed();
              }
              continue;
            }
            auto faulty_decoded = RoundTripTuple(t);
            SP_CHECK(faulty_decoded.ok())
                << faulty_decoded.status().ToString();
            for (const Edge& e : *shared_edges) {
              self->DeliverRemoteFaulty(from, t, *faulty_decoded, e.consumer,
                                        e.port);
            }
          }
          return;
        }
        size_t enc_bytes = 0;
        auto decoded = RoundTripBatch(batch, &enc_bytes);
        SP_CHECK(decoded.ok()) << decoded.status().ToString();
        for (const Edge& e : *shared_edges) {
          self->AccountTransferBatch(from, self->op_host_[e.consumer],
                                     batch.size(), enc_bytes);
          self->instances_[e.consumer]->PushBatch(e.port, *decoded);
        }
      });
}

void ClusterRuntime::AttachResultSink(int id) {
  std::string name = plan_->op(id).stream_name;
  ClusterRuntime* self = this;
  // Resolve the output batch once, at attach time: map nodes are stable, so
  // parallel workers append through the pointer without ever mutating the
  // outputs map itself. MakeLedger skips batches that stayed empty, keeping
  // the ledger's lazy-creation shape.
  TupleBatch* out = &result_.outputs[name];
  if (recovery_active()) {
    instances_[id]->AddSink([self, id, out](const Tuple& t) {
      if (self->faults_ != nullptr &&
          !self->faults_->host_alive(self->op_host_[id])) {
        // No survivor existed to migrate onto: like the lossy path, flush
        // output of a dead host is suppressed and accounted.
        self->faults_->CountFlushSuppressed();
        return;
      }
      uint64_t idx = self->instances_[id]->stats().tuples_out;
      if (self->recovery_->Suppress(id, idx)) return;
      out->push_back(t);
    });
    return;
  }
  int sink_host = plan_->op(id).host;
  instances_[id]->AddSink([self, out, sink_host](const Tuple& t) {
    if (self->faults_active() && !self->faults_->host_alive(sink_host)) {
      self->faults_->CountFlushSuppressed();
      return;
    }
    out->push_back(t);
  });
}

FaultChannel* ClusterRuntime::ChannelForPair(int from_host, int to_host) {
  if (faults_ == nullptr || !faults_->active()) return nullptr;
  FaultChannel* channel = faults_->FindChannel(from_host, to_host);
  if (channel != nullptr) return channel;
  // First use of this directed pair: the spec is resolved (and, when a
  // channel is created, its counters bound in the sender's registry)
  // lazily; healthy pairs never materialize a telemetry scope.
  return faults_->ChannelFor(from_host, to_host, [&]() {
    return telemetry_enabled_
               ? host_stats_[from_host]->GetScope(
                     "channel#" + std::to_string(from_host) + "->" +
                     std::to_string(to_host))
               : nullptr;
  });
}

void ClusterRuntime::DeliverRemoteFaulty(int from_host, const Tuple& wire,
                                         const Tuple& decoded, int consumer,
                                         size_t port) {
  if (faults_->PairSevered(from_host, op_host_[consumer])) {
    // Network partition: the send is refused at the sender — the tuple never
    // leaves the host, so neither net accounting nor the channel sees it.
    // On this lossy path the tuple is gone until the heal (reliable edges
    // keep it pending instead).
    faults_->CountPartitionRefused();
    return;
  }
  size_t bytes = EncodedTupleSize(wire);
  // Sender-side accounting happens at send time — the tuple left the host
  // whether or not the channel later drops it. (The healthy path accounts
  // both sides together; under faults the two sides legitimately diverge.)
  result_.hosts[from_host].net_tuples_out += 1;
  result_.hosts[from_host].net_bytes_out += bytes;
  FaultChannel* channel = ChannelForPair(from_host, op_host_[consumer]);
  if (channel == nullptr) {
    ReceiveRemote(decoded, bytes, consumer, port);
    return;
  }
  channel->Send(decoded, [this, bytes, consumer, port](const Tuple& t) {
    return ReceiveRemote(t, bytes, consumer, port);
  });
}

bool ClusterRuntime::ReceiveRemote(const Tuple& tuple, size_t bytes,
                                   int consumer, size_t port) {
  int to_host = op_host_[consumer];
  if (!faults_->host_alive(to_host)) {
    faults_->CountNetTupleLost();
    return false;
  }
  result_.hosts[to_host].net_tuples_in += 1;
  result_.hosts[to_host].net_bytes_in += bytes;
  instances_[consumer]->Push(port, tuple);
  return true;
}

void ClusterRuntime::BumpCheckpointStat(int host, const StatDef& def,
                                        uint64_t n) {
  if (!telemetry_enabled_ || n == 0) return;
  StatsScope* scope =
      host_stats_[host]->GetScope("checkpoint#" + std::to_string(host));
  if (scope == nullptr) return;
  scope->counter(def)->Add(n);
}

void ClusterRuntime::BumpChannelStat(int from_host, int to_host,
                                     const StatDef& def) {
  if (!telemetry_enabled_) return;
  StatsScope* scope = host_stats_[from_host]->GetScope(
      "channel#" + std::to_string(from_host) + "->" +
      std::to_string(to_host));
  if (scope == nullptr) return;
  scope->counter(def)->Inc();
}

void ClusterRuntime::EmitRemoteReliable(int child, const Tuple& t) {
  if (faults_ != nullptr && !faults_->host_alive(op_host_[child])) {
    // No survivor existed to migrate onto; flush output is suppressed at
    // the host boundary like the lossy path.
    for (size_t i = 0; i < remote_edges_[child].size(); ++i) {
      faults_->CountFlushSuppressed();
    }
    return;
  }
  // Replay re-emission: the restored instance reproduces outputs it already
  // published before the kill. Downstream hosts saw them; drop by index.
  uint64_t idx = instances_[child]->stats().tuples_out;
  if (recovery_->Suppress(child, idx)) return;
  int from = op_host_[child];
  auto decoded = RoundTripTuple(t);
  SP_CHECK(decoded.ok()) << decoded.status().ToString();
  for (const Edge& e : remote_edges_[child]) {
    SendReliable(child, from, t, *decoded, e.consumer, e.port);
  }
}

void ClusterRuntime::SendReliable(int producer_key, int from,
                                  const Tuple& wire, const Tuple& decoded,
                                  int consumer, size_t port) {
  EdgeKey key{producer_key, consumer, port};
  int to = op_host_[consumer];
  if (from == to) {
    // A same-host edge (source-local, or collapsed by migration): keep the
    // sequencing — the edge may still have in-flight predecessors from
    // before a collapse, and applies must stay in order — but skip the
    // network and its accounting.
    uint64_t seq = recovery_->RecordSend(key, decoded, 0);
    DeliverReliable(key, seq, decoded, 0, false);
    return;
  }
  size_t bytes = EncodedTupleSize(wire);
  uint64_t seq = recovery_->RecordSend(key, decoded, bytes);
  if (faults_ != nullptr && faults_->PairSevered(from, to)) {
    // Network partition: refused at the sender after sequencing, so the
    // entry stays pending and retransmission redelivers it once the
    // partition heals — the exactly-once contract holds across the heal.
    faults_->CountPartitionRefused();
    return;
  }
  result_.hosts[from].net_tuples_out += 1;
  result_.hosts[from].net_bytes_out += bytes;
  FaultChannel* channel = ChannelForPair(from, to);
  if (channel == nullptr) {
    DeliverReliable(key, seq, decoded, bytes, true);
    return;
  }
  ClusterRuntime* self = this;
  uint64_t cap_bytes = bytes;
  channel->Send(decoded, [self, key, seq, cap_bytes](const Tuple& t) {
    self->DeliverReliable(key, seq, t, cap_bytes, true);
    // The arrival itself always "succeeds": duplicate discard and ordering
    // happen above the channel, in the coordinator.
    return true;
  });
}

void ClusterRuntime::DeliverReliable(const EdgeKey& key, uint64_t seq,
                                     const Tuple& tuple, size_t bytes,
                                     bool account) {
  int consumer = key.consumer;
  if (account) {
    // Receiver-side accounting per arrival, duplicates included — the bytes
    // crossed the network either way. The host is resolved at delivery
    // time: the consumer may have migrated while the tuple was in flight.
    int to = op_host_[consumer];
    result_.hosts[to].net_tuples_in += 1;
    result_.hosts[to].net_bytes_in += bytes;
  }
  ClusterRuntime* self = this;
  bool fresh = recovery_->Deliver(
      key, seq, tuple, [self, consumer](size_t port, const Tuple& t) {
        self->recovery_->LogDelivery(consumer, port, t);
        self->instances_[consumer]->Push(port, t);
      });
  if (!fresh && account) {
    BumpChannelStat(ProducerHost(key), op_host_[consumer],
                    stats::kChanRetxDupDiscarded);
  }
}

void ClusterRuntime::ResendEntry(const RecoveryCoordinator::RetxItem& item) {
  int from = ProducerHost(item.key);
  int to = op_host_[item.key.consumer];
  if (from == to) {
    // Migration collapsed the edge while this tuple was in flight; any
    // channel copy can only arrive as a duplicate now. Deliver directly.
    recovery_->CountEscalated();
    DeliverReliable(item.key, item.seq, item.tuple, 0, false);
    return;
  }
  if (faults_ != nullptr && faults_->PairSevered(from, to)) {
    // The partition is absolute: even escalated retries are refused while
    // the pair is severed. The entry stays pending; the post-heal drain
    // (ForceRetransmits) redelivers it immediately.
    faults_->CountPartitionRefused();
    return;
  }
  // A resend is a fresh transfer: the sender pays net-out again (the
  // channel conservation identity is over sends, so it is unaffected).
  result_.hosts[from].net_tuples_out += 1;
  result_.hosts[from].net_bytes_out += item.bytes;
  if (!item.escalate) {
    recovery_->CountRetxSent();
    FaultChannel* channel = ChannelForPair(from, to);
    if (channel != nullptr) {
      channel->CountRetransmit();
      EdgeKey key = item.key;
      uint64_t seq = item.seq;
      uint64_t bytes = item.bytes;
      ClusterRuntime* self = this;
      channel->Send(item.tuple, [self, key, seq, bytes](const Tuple& t) {
        self->DeliverReliable(key, seq, t, bytes, true);
        return true;
      });
      return;
    }
    // The pair is healthy now (e.g. the consumer migrated off the degraded
    // link): the retransmit delivers directly like any healthy send.
    DeliverReliable(item.key, item.seq, item.tuple, item.bytes, true);
    return;
  }
  // Attempts exhausted: escalate to the out-of-band reliable path (a direct
  // delivery), so no tuple is ever lost to a persistently lossy channel.
  BumpChannelStat(from, to, stats::kChanRetxEscalated);
  recovery_->CountEscalated();
  DeliverReliable(item.key, item.seq, item.tuple, item.bytes, true);
}

void ClusterRuntime::DoCheckpoint() {
  recovery_->BeginCheckpoint();
  std::vector<char> host_touched(config_.num_hosts, 0);
  for (int id : plan_->TopoOrder()) {
    if (instances_[id] == nullptr) continue;
    int host = op_host_[id];
    if (faults_ != nullptr && !faults_->host_alive(host)) continue;
    host_touched[host] = 1;
    if (!recovery_->ShouldSerialize(id)) {
      // Incremental: nothing was delivered to this operator since its last
      // snapshot, so the stored blob is still exact.
      recovery_->CountSkipped();
      BumpCheckpointStat(host, stats::kCkptOpsSkipped, 1);
      continue;
    }
    std::string payload;
    instances_[id]->CheckpointState(&payload);
    size_t stored = recovery_->StoreBlob(id, std::move(payload),
                                         instances_[id]->stats().tuples_out);
    result_.hosts[host].ckpt_bytes += stored;
    BumpCheckpointStat(host, stats::kCkptOpsSerialized, 1);
    BumpCheckpointStat(host, stats::kCkptBytes, stored);
  }
  for (int h = 0; h < config_.num_hosts; ++h) {
    if (host_touched[h]) BumpCheckpointStat(h, stats::kCkptSnapshots, 1);
  }
}

void ClusterRuntime::MigrateHost(int host) {
  // Lowest-id surviving host hosts the dead host's operators.
  int target = -1;
  for (int h = 0; h < config_.num_hosts; ++h) {
    if (h != host && faults_->host_alive(h)) {
      target = h;
      break;
    }
  }
  faults_->MarkDead(host);
  result_.dead_hosts.push_back(host);
  if (target < 0) {
    // No survivor: nothing to migrate onto. Fold the work ledgers (outputs
    // are suppressed at the sinks) and leave the instances in place.
    for (int id : plan_->TopoOrder()) {
      if (instances_[id] == nullptr || op_host_[id] != host) continue;
      if (plan_->op(id).kind == DistOpKind::kMerge) {
        result_.hosts[host].merge_ops += instances_[id]->stats();
      } else {
        result_.hosts[host].ops += instances_[id]->stats();
      }
      stats_folded_[id] = true;
    }
    return;
  }

  // Operators to migrate, in topo order: upstream replacements exist before
  // anything replays into their consumers.
  std::vector<int> migrated;
  for (int id : plan_->TopoOrder()) {
    if (instances_[id] != nullptr && op_host_[id] == host) {
      migrated.push_back(id);
    }
  }

  // The dead instances' work folds into the dead host's ledger row (work
  // they really performed); the replacements fold into the target at end of
  // run.
  FoldAndSuppress(migrated);

  // Re-home the dead host's source partitions: the tap keeps feeding the
  // same partitions, now served by the target.
  for (auto& [name, hosts] : partition_hosts_) {
    for (int& h : hosts) {
      if (h == host) h = target;
    }
  }
  for (int& h : partition_host_merged_) {
    if (h == host) h = target;
  }

  RebuildAndRestore(migrated, target);
  RewireMigrated(migrated);
  ReplayDeliveryLogs(migrated, target);
}

void ClusterRuntime::FoldAndSuppress(const std::vector<int>& migrated) {
  // Each op's work so far folds into the host that actually ran it. Replay
  // re-emissions of outputs already published since the last checkpoint are
  // suppressed by output index — the rebuilt instance's emission numbering
  // restarts at the snapshot point.
  for (int id : migrated) {
    int host = op_host_[id];
    if (plan_->op(id).kind == DistOpKind::kMerge) {
      result_.hosts[host].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[host].ops += instances_[id]->stats();
    }
    recovery_->SetSuppression(id, instances_[id]->stats().tuples_out -
                                      recovery_->CheckpointTuplesOut(id));
  }
}

uint64_t ClusterRuntime::RebuildAndRestore(const std::vector<int>& migrated,
                                           int target) {
  uint64_t restored_bytes = 0;
  for (int id : migrated) {
    instances_[id] = MakeInstance(id);
    op_host_[id] = target;
    BindInstanceTelemetry(id);
    RebindShedWeight(id);
    recovery_->CountMigratedOp();
    if (recovery_->HasBlob(id)) {
      Status restored =
          instances_[id]->RestoreState(recovery_->BlobPayload(id));
      SP_CHECK(restored.ok())
          << "restoring op " << id
          << " from checkpoint failed: " << restored.ToString();
      uint64_t bytes = recovery_->BlobStoredBytes(id);
      recovery_->CountRestore(bytes);
      result_.hosts[target].ckpt_restored_bytes += bytes;
      BumpCheckpointStat(target, stats::kCkptRestores, 1);
      BumpCheckpointStat(target, stats::kCkptRestoredBytes, bytes);
      recovery_->ResetCheckpointTuplesOut(id);
      restored_bytes += bytes;
    }
  }
  return restored_bytes;
}

void ClusterRuntime::RewireMigrated(const std::vector<int>& migrated) {
  // Rewire the replacements in exactly Build's per-producer order.
  for (int id : migrated) {
    if (auto it = local_edges_.find(id); it != local_edges_.end()) {
      for (const Edge& e : it->second) WireLocalEdge(id, e.consumer, e.port);
    }
    if (auto it = remote_edges_.find(id); it != remote_edges_.end()) {
      for (const Edge& e : it->second) {
        AddRemoteFinishHook(id, e.consumer, e.port);
      }
      AttachRemoteSinks(id);
    }
    if (std::find(sink_ids_.begin(), sink_ids_.end(), id) !=
        sink_ids_.end()) {
      AttachResultSink(id);
    }
  }
}

void ClusterRuntime::ReplayDeliveryLogs(const std::vector<int>& migrated,
                                        int target) {
  // Replay each operator's post-snapshot delivery suffix, in original
  // arrival order. Local-edge sinks are muted (each migrated consumer
  // replays its own log) and external re-emissions are suppressed by index,
  // so replay has no side effects outside the restored instances.
  replaying_ = true;
  for (int id : migrated) {
    const auto& log = recovery_->DeliveryLog(id);
    for (const RecoveryCoordinator::Delivery& d : log) {
      instances_[id]->Push(d.port, d.tuple);
    }
    recovery_->CountReplayedTuples(log.size());
    BumpCheckpointStat(target, stats::kCkptReplayedTuples, log.size());
  }
  replaying_ = false;
}

void ClusterRuntime::PushSource(const std::string& source,
                                const Tuple& tuple) {
  if (workers_running_) {
    if (parallel_mode_ == ParallelMode::kBarrier) {
      ParallelPushSource(source, tuple);
    } else {
      PipelinePushTuple(source, tuple);
    }
    return;
  }
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  if (faults_active() || recovery_active() || overload_active() ||
      adaptive_active()) {
    ObserveSourceTime(tuple);
  }
  int p = partitioner_->PartitionOf(tuple);
  // After a repartition the partitioner spans only surviving partitions;
  // map its index back into the original partition space.
  if (!survivor_map_.empty()) p = survivor_map_[p];
  if (p >= static_cast<int>(it->second.size())) return;
  int src_host = partition_hosts_.at(source)[p];
  if (faults_active() && !faults_->host_alive(src_host)) {
    // Routed to a dead partition (recovery off, or every host dead): the
    // tuple is lost at the tap and accounted.
    faults_->CountSourceTupleLost();
    return;
  }
  if (overload_active()) {
    switch (overload_->Admit(src_host, p)) {
      case OverloadController::Admission::kShed:
        // Shed before capture: the tuple never costs a cycle and never
        // enters source_tuples — exactly what a tap-level shed point saves.
        return;
      case OverloadController::Admission::kDefer:
        overload_->PushDeferred(src_host, source, tuple);
        return;
      case OverloadController::Admission::kProcess:
        break;
    }
  }
  DeliverSource(source, p, src_host, tuple);
}

void ClusterRuntime::RouteAdmitted(const std::string& source,
                                   const Tuple& tuple) {
  // A deferred tuple re-enters here: partition and host are resolved fresh
  // (a skew move or repartition may have re-homed them while it was
  // parked), and admission/epoch hooks are skipped — it was already counted
  // processed when taken from the queue.
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  int p = partitioner_->PartitionOf(tuple);
  if (!survivor_map_.empty()) p = survivor_map_[p];
  if (p >= static_cast<int>(it->second.size())) return;
  int src_host = partition_hosts_.at(source)[p];
  if (faults_active() && !faults_->host_alive(src_host)) {
    faults_->CountSourceTupleLost();
    return;
  }
  DeliverSource(source, p, src_host, tuple);
}

void ClusterRuntime::DeliverSource(const std::string& source, int p,
                                   int src_host, const Tuple& tuple) {
  auto it = routing_.find(source);
  result_.hosts[src_host].source_tuples++;
  result_.source_tuples++;
  if (adaptive_active() &&
      p < static_cast<int>(adaptive_partition_tuples_.size())) {
    // Per-partition intake rates feed the controller's measured cost model
    // (every consumer edge of partition p carries this traffic).
    adaptive_partition_tuples_[p]++;
    adaptive_partition_bytes_[p] += EncodedTupleSize(tuple);
  }
  // Serialize at most once per tuple: traffic is accounted on every remote
  // edge, but all remote consumers share one decoded copy.
  std::optional<Tuple> decoded;
  for (const Edge& edge : it->second[p]) {
    int to_host = op_host_[edge.consumer];
    if (recovery_active()) {
      // Every source edge is acked and sequenced (same-host edges skip the
      // network but keep their ordering), so a later migration can always
      // recover in-flight tuples.
      if (to_host == src_host) {
        SendReliable(-(p + 1), src_host, tuple, tuple, edge.consumer,
                     edge.port);
        continue;
      }
      if (!decoded.has_value()) {
        auto rt = RoundTripTuple(tuple);
        SP_CHECK(rt.ok()) << rt.status().ToString();
        decoded = std::move(*rt);
      }
      SendReliable(-(p + 1), src_host, tuple, *decoded, edge.consumer,
                   edge.port);
      continue;
    }
    if (to_host != src_host) {
      if (!decoded.has_value()) {
        auto rt = RoundTripTuple(tuple);
        SP_CHECK(rt.ok()) << rt.status().ToString();
        decoded = std::move(*rt);
      }
      if (faults_active()) {
        DeliverRemoteFaulty(src_host, tuple, *decoded, edge.consumer,
                            edge.port);
        continue;
      }
      AccountTransfer(src_host, to_host, tuple);
      instances_[edge.consumer]->Push(edge.port, *decoded);
    } else {
      instances_[edge.consumer]->Push(edge.port, tuple);
    }
  }
}

void ClusterRuntime::PushSourceBatch(const std::string& source,
                                     TupleSpan batch) {
  if (workers_running_) {
    if (parallel_mode_ == ParallelMode::kBarrier) {
      // Barrier mode implies a live controller: the batch degenerates to
      // per-tuple routing exactly as the sequential path below does.
      for (const Tuple& tuple : batch) ParallelPushSource(source, tuple);
    } else {
      PipelinePushBatch(source, batch);
    }
    return;
  }
  if (faults_active() || recovery_active() || overload_active() ||
      adaptive_active()) {
    // Kills act at tuple granularity (a host can die mid-batch), channel
    // faults must draw the same deterministic sequence on both execution
    // paths, acked edges sequence per tuple, shed/budget admission is a
    // per-tuple decision, and adaptive epoch snapshots must observe every
    // source-time boundary — so the batched route degenerates to per-tuple
    // delivery while any of them is live.
    for (const Tuple& tuple : batch) PushSource(source, tuple);
    return;
  }
  if (exec_mode_ == ExecMode::kTuple) {
    // Differential oracle mode: the batched route degenerates to the
    // per-tuple path wholesale.
    for (const Tuple& tuple : batch) PushSource(source, tuple);
    return;
  }
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  const auto& partitions = it->second;
  const std::vector<int>& hosts = partition_hosts_.at(source);

  // One routing pass buckets the batch by partition; buckets are scratch
  // storage reused across calls.
  if (bucket_scratch_.size() < partitions.size()) {
    bucket_scratch_.resize(partitions.size());
  }
  for (auto& bucket : bucket_scratch_) bucket.clear();
  for (const Tuple& tuple : batch) {
    int p = partitioner_->PartitionOf(tuple);
    if (p >= static_cast<int>(partitions.size())) continue;
    bucket_scratch_[p].push_back(tuple);
  }

  for (size_t p = 0; p < partitions.size(); ++p) {
    const TupleBatch& bucket = bucket_scratch_[p];
    if (bucket.empty()) continue;
    int src_host = hosts[p];
    result_.hosts[src_host].source_tuples += bucket.size();
    result_.source_tuples += bucket.size();
    if (exec_mode_ == ExecMode::kColumnar &&
        col_bucket_scratch_.FromTuples(bucket)) {
      // Columnar delivery: convert the bucket to column-major form once and
      // push borrowed views. Buckets that are not fixed-width representable
      // fall through to the row path below.
      DeliverBucketColumns(partitions[p], bucket.size(), src_host);
      continue;
    }
    // Cross-host consumers of this partition share one encode/decode round
    // trip per bucket; local consumers see the bucket directly.
    std::optional<TupleBatch> decoded;
    size_t enc_bytes = 0;
    for (const Edge& edge : partitions[p]) {
      int to_host = op_host_[edge.consumer];
      if (to_host != src_host) {
        if (!decoded.has_value()) {
          auto rt = RoundTripBatch(bucket, &enc_bytes);
          SP_CHECK(rt.ok()) << rt.status().ToString();
          decoded = std::move(*rt);
        }
        AccountTransferBatch(src_host, to_host, bucket.size(), enc_bytes);
        instances_[edge.consumer]->PushBatch(edge.port, *decoded);
      } else {
        instances_[edge.consumer]->PushBatch(edge.port, bucket);
      }
    }
  }
}

void ClusterRuntime::DeliverBucketColumns(const std::vector<Edge>& edges,
                                          size_t rows, int src_host) {
  IdentitySelection(rows, &col_sel_scratch_);
  bool remote_ready = false;
  size_t enc_bytes = 0;
  for (const Edge& edge : edges) {
    int to_host = op_host_[edge.consumer];
    if (to_host != src_host) {
      if (!remote_ready) {
        // Encode the columns once per bucket. The wire bytes are identical
        // to EncodeBatch over the same rows (serde.h), so the network
        // ledger is unchanged by the columnar path.
        std::string wire;
        EncodeColumns(col_bucket_scratch_, col_sel_scratch_, &wire);
        enc_bytes = wire.size();
        auto decoded = DecodeBatch(wire);
        SP_CHECK(decoded.ok()) << decoded.status().ToString();
        // Round-tripped fixed-width rows stay fixed-width.
        SP_CHECK(col_remote_scratch_.FromTuples(*decoded));
        remote_ready = true;
      }
      AccountTransferBatch(src_host, to_host, rows, enc_bytes);
      instances_[edge.consumer]->PushColumns(edge.port, col_remote_scratch_,
                                             col_sel_scratch_);
    } else {
      instances_[edge.consumer]->PushColumns(edge.port, col_bucket_scratch_,
                                             col_sel_scratch_);
    }
  }
}

void ClusterRuntime::FinishSources() {
  if (finished_) return;
  finished_ = true;
  // Wind down the worker pool first: flush buffered morsels (pipeline) or
  // replay the final staged window (barrier), then quiesce and join. From
  // here on every delivery path takes its single-threaded branch, so the
  // flush cascade below runs exactly the sequential code.
  StopParallel();
  if (overload_active()) {
    // Close the final streaming epoch, then drain any remaining deferred
    // backlog across synthetic trailing epochs — each opens a fresh budget,
    // so at least one tuple admits per pass and the bounded queues empty in
    // finitely many rounds. The end-of-run operator flush below is outside
    // budget enforcement: capture has stopped, so there is no input left to
    // defer or shed against.
    if (overload_->epoch_open()) {
      overload_->CloseEpoch(
          [this](int partition) { return partition_host_merged_[partition]; });
    }
    while (overload_->HasDeferred()) {
      overload_->BeginEpoch(overload_->current_epoch() + 1);
      DrainDeferredQueues();
      overload_->CloseEpoch(
          [this](int partition) { return partition_host_merged_[partition]; });
    }
  }
  // A network partition cannot outlive the run: the drains below must leave
  // nothing stranded, so a never-healed partition reconnects with an
  // implicit heal first (recorded in the ledger like a plan-directed one,
  // stamped with the last observed source time).
  if (faults_active() && faults_->partition_active()) {
    MembershipEvent heal;
    heal.kind = MembershipEvent::Kind::kHeal;
    heal.epoch = faults_->last_time();
    ApplyMembershipEvent(heal);
  }
  // Deliver everything degraded channels still hold before any port sees
  // end-of-stream (the per-edge finish hooks flush again, harmlessly, for
  // tuples emitted during the flush cascade itself), then escalate whatever
  // is still unacked — nothing may stay stranded in a sender buffer.
  if (faults_active()) faults_->FlushAll();
  if (recovery_active()) {
    recovery_->DrainAllPending(
        [this](const RecoveryCoordinator::RetxItem& item) {
          ResendEntry(item);
        });
  }
  for (auto& [name, partitions] : routing_) {
    for (auto& edges : partitions) {
      for (const Edge& edge : edges) {
        instances_[edge.consumer]->Finish(edge.port);
      }
    }
  }
  // Fold operator work into host ledgers; merges are accounted separately
  // (they forward tuples rather than processing them). Operators on killed
  // hosts were folded at kill time — their post-death (suppressed) flush
  // work must not inflate the ledger — and a migrated replacement folds
  // into the host that actually ran it.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (instances_[id] == nullptr) continue;
    if (!stats_folded_.empty() && stats_folded_[id]) continue;
    if (op.kind == DistOpKind::kMerge) {
      result_.hosts[op_host_[id]].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[op_host_[id]].ops += instances_[id]->stats();
    }
  }
}

void ClusterRuntime::StartParallel() {
  parallel_mode_ = ParallelMode::kOff;
  parallel_fallback_reason_.clear();
  if (parallel_threads_ <= 1) return;
  if (has_budgets_) {
    parallel_fallback_reason_ =
        "budget-armed plan: per-tuple budget guards probe live operator "
        "state mid-epoch, which has no deterministic parallel schedule";
    return;
  }
  if (trace_events_enabled_) {
    parallel_fallback_reason_ =
        "trace events record execution order, which is not deterministic "
        "across worker threads";
    return;
  }
  if (faults_active()) {
    for (const RejoinSpec& rejoin : faults_->plan().rejoins) {
      if (rejoin.host >= config_.num_hosts) {
        // Worker rings are sized per host pair at start; a mid-run host-set
        // growth would index past them. Known-host membership plans
        // (partition/heal/rejoin of a killed host) still run in barrier mode.
        parallel_fallback_reason_ =
            "elastic rejoin grows the host set mid-run; worker rings are "
            "sized at start";
        return;
      }
    }
  }
  bool controllers = faults_active() || recovery_active() ||
                     overload_active() || adaptive_active();
  parallel_mode_ = controllers ? ParallelMode::kBarrier : ParallelMode::kPipeline;
  if (exec_mode_ == ExecMode::kColumnar) {
    // Workers move row morsels through SPSC rings; columnar delivery is a
    // sequential-path optimization. Outputs and the RunLedger are unchanged
    // by this fallback (all three exec modes are differentially identical).
    columnar_fallback_reason_ =
        "parallel execution moves row morsels between workers; columnar "
        "delivery applies to sequential runs only";
    exec_mode_ = ExecMode::kBatch;
  }
  const bool pipeline = parallel_mode_ == ParallelMode::kPipeline;
  // Barrier mode moves single tuples, so it gets deeper queues; pipeline
  // mode moves morsels, so shallow queues already hold plenty of work.
  exec_ = std::make_unique<ParallelExecutor>(
      config_.num_hosts, parallel_threads_, /*worker_rings=*/pipeline,
      /*work_capacity=*/pipeline ? 256 : 4096,
      /*ring_capacity=*/pipeline ? 256 : 4096,
      [this](int host, ParallelWorkItem&& item) {
        WorkerProcessItem(host, std::move(item));
      },
      [this](int host, ParallelRingMsg&& msg) {
        WorkerProcessRing(host, std::move(msg));
      });
  exec_->Start();
  workers_running_ = true;
  parallel_start_ = std::chrono::steady_clock::now();
}

void ClusterRuntime::StopParallel() {
  if (!workers_running_) return;
  if (parallel_mode_ == ParallelMode::kPipeline) FlushPendingMorsels();
  exec_->Quiesce();
  if (parallel_mode_ == ParallelMode::kBarrier) {
    // Replay the final staged window before the pool stops; cascades run
    // driver-inline through the sequential code.
    exec_->ReplayMerged(
        [this](ParallelRingMsg&& msg) { ReplayStagedMsg(std::move(msg)); });
  }
  exec_->Stop();
  workers_running_ = false;
  parallel_wall_ms_ = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - parallel_start_)
                          .count();
  FoldSchedulerStats();
}

void ClusterRuntime::FoldSchedulerStats() {
  StatsScope* sched = sched_stats_.GetScope("scheduler");
  if (sched == nullptr) return;  // telemetry compiled out
  sched->counter(stats::kSchedThreads)->Add(parallel_threads_);
  sched->counter(stats::kSchedBarriers)->Add(barriers_run_);
  sched->gauge(stats::kSchedWallMs)
      ->Set(static_cast<int64_t>(parallel_wall_ms_));
  uint64_t morsels_total = 0;
  const auto& host_stats = exec_->host_stats();
  for (size_t h = 0; h < host_stats.size(); ++h) {
    StatsScope* worker =
        sched_stats_.GetScope("worker#" + std::to_string(h));
    worker->counter(stats::kWorkerMorsels)->Add(host_stats[h].morsels);
    worker->counter(stats::kWorkerTuples)->Add(host_stats[h].tuples);
    worker->counter(stats::kWorkerStagedMsgs)->Add(host_stats[h].staged);
    worker->counter(stats::kWorkerSteals)->Add(host_stats[h].steals);
    morsels_total += host_stats[h].morsels;
  }
  sched->counter(stats::kSchedMorsels)->Add(morsels_total);
}

void ClusterRuntime::ParallelBarrier() {
  ++barriers_run_;
  exec_->Quiesce();
  exec_->ReplayMerged(
      [this](ParallelRingMsg&& msg) { ReplayStagedMsg(std::move(msg)); });
}

void ClusterRuntime::ParallelPushSource(const std::string& source,
                                        const Tuple& tuple) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  if (source_time_idx_ >= 0 &&
      source_time_idx_ < static_cast<int>(tuple.values().size())) {
    uint64_t time = tuple.at(source_time_idx_).AsUint64();
    if (!barrier_time_seen_ || time > barrier_time_) {
      // Every controller action (channel drains, retransmits, checkpoints,
      // overload epochs, kills) keys off a strict source-time increase, so
      // a barrier before the first tuple of each new time step reproduces
      // the sequential housekeeping exactly: quiesce the workers, replay
      // staged cross-host sends in global sequential order, then run the
      // sequential time hook on settled state.
      ParallelBarrier();
      barrier_time_seen_ = true;
      barrier_time_ = time;
      ObserveSourceTime(tuple);
    }
  }
  int p = partitioner_->PartitionOf(tuple);
  if (!survivor_map_.empty()) p = survivor_map_[p];
  if (p >= static_cast<int>(it->second.size())) return;
  int src_host = partition_hosts_.at(source)[p];
  if (faults_active() && !faults_->host_alive(src_host)) {
    faults_->CountSourceTupleLost();
    return;
  }
  if (overload_active()) {
    switch (overload_->Admit(src_host, p)) {
      case OverloadController::Admission::kShed:
        return;
      case OverloadController::Admission::kDefer:
        overload_->PushDeferred(src_host, source, tuple);
        return;
      case OverloadController::Admission::kProcess:
        break;
    }
  }
  // Capture accounting stays on the driver (DeliverSource's first lines);
  // the per-edge delivery loop runs on the partition's host worker.
  result_.hosts[src_host].source_tuples++;
  result_.source_tuples++;
  if (adaptive_active() &&
      p < static_cast<int>(adaptive_partition_tuples_.size())) {
    adaptive_partition_tuples_[p]++;
    adaptive_partition_bytes_[p] += EncodedTupleSize(tuple);
  }
  ParallelWorkItem item;
  item.edges = &it->second[p];
  item.partition = p;
  item.host = src_host;
  item.seq = ++route_seq_;
  item.batch.push_back(tuple);
  exec_->Enqueue(src_host, std::move(item));
}

void ClusterRuntime::WorkerProcessItem(int host, ParallelWorkItem&& item) {
  const auto& edges = *static_cast<const std::vector<Edge>*>(item.edges);
  if (parallel_mode_ == ParallelMode::kBarrier) {
    tls_stage_seq = item.seq;
    tls_stage_sub = 0;
    WorkerDeliverSource(item.partition, host, edges, item.batch.front());
    return;
  }
  // Pipeline morsel: local edges take the bucket directly; remote edges
  // share one serde round trip, pay the sender half here, and hand the
  // receiver half to the consumer host's ring.
  const TupleBatch& bucket = item.batch;
  std::optional<TupleBatch> decoded;
  size_t enc_bytes = 0;
  for (const Edge& edge : edges) {
    int to_host = op_host_[edge.consumer];
    if (to_host != host) {
      if (!decoded.has_value()) {
        auto rt = RoundTripBatch(bucket, &enc_bytes);
        SP_CHECK(rt.ok()) << rt.status().ToString();
        decoded = std::move(*rt);
      }
      result_.hosts[host].net_tuples_out += bucket.size();
      result_.hosts[host].net_bytes_out += enc_bytes;
      ParallelRingMsg msg;
      msg.consumer = edge.consumer;
      msg.port = static_cast<uint32_t>(edge.port);
      msg.from = host;
      msg.enc_bytes = enc_bytes;
      msg.is_batch = true;
      msg.batch = *decoded;
      exec_->Stage(host, to_host, std::move(msg));
    } else {
      instances_[edge.consumer]->PushBatch(edge.port, bucket);
    }
  }
}

void ClusterRuntime::WorkerProcessRing(int host, ParallelRingMsg&& msg) {
  // Receiver half of a staged transfer (the sender half was accounted when
  // the message was staged); runs under `host`'s claim.
  result_.hosts[host].net_tuples_in += msg.batch.size();
  result_.hosts[host].net_bytes_in += msg.enc_bytes;
  instances_[msg.consumer]->PushBatch(msg.port, msg.batch);
}

void ClusterRuntime::WorkerDeliverSource(int p, int src_host,
                                         const std::vector<Edge>& edges,
                                         const Tuple& tuple) {
  // The DeliverSource edge loop minus driver-side capture accounting:
  // same-host edges deliver inline (the worker holds src_host's claim);
  // cross-host edges are staged for exact-order driver replay.
  for (const Edge& edge : edges) {
    int to_host = op_host_[edge.consumer];
    if (recovery_active()) {
      if (to_host == src_host) {
        SendReliable(-(p + 1), src_host, tuple, tuple, edge.consumer,
                     edge.port);
        continue;
      }
      StageEdgeTuple(src_host, p, -1, edge, tuple);
      continue;
    }
    if (to_host != src_host) {
      StageEdgeTuple(src_host, p, -1, edge, tuple);
      continue;
    }
    instances_[edge.consumer]->Push(edge.port, tuple);
  }
}

void ClusterRuntime::WorkerEmitRemoteReliable(int child, const Tuple& tuple) {
  // EmitRemoteReliable's body with the dead-producer branch unreachable
  // (kills happen at barriers; the driver never routes work to dead hosts):
  // suppression and same-host (migration-collapsed) sends run here under
  // the host claim; cross-host sends are staged.
  uint64_t idx = instances_[child]->stats().tuples_out;
  if (recovery_->Suppress(child, idx)) return;
  int from = op_host_[child];
  auto decoded = RoundTripTuple(tuple);
  SP_CHECK(decoded.ok()) << decoded.status().ToString();
  const std::vector<Edge>& edges = remote_edges_.find(child)->second;
  for (const Edge& e : edges) {
    if (op_host_[e.consumer] == from) {
      SendReliable(child, from, tuple, *decoded, e.consumer, e.port);
    } else {
      StageEdgeTuple(from, -1, child, e, tuple);
    }
  }
}

void ClusterRuntime::StageEdgeTuple(int from, int partition, int producer_op,
                                    const Edge& edge, const Tuple& tuple) {
  ParallelRingMsg msg;
  msg.consumer = edge.consumer;
  msg.port = static_cast<uint32_t>(edge.port);
  msg.from = from;
  msg.partition = partition;
  msg.producer_op = producer_op;
  msg.seq = tls_stage_seq;
  msg.sub = tls_stage_sub++;
  msg.batch.push_back(tuple);
  exec_->Stage(from, -1, std::move(msg));
}

void ClusterRuntime::StageEdgeBatch(int from, const Edge& edge,
                                    const TupleBatch& decoded,
                                    size_t enc_bytes) {
  ParallelRingMsg msg;
  msg.consumer = edge.consumer;
  msg.port = static_cast<uint32_t>(edge.port);
  msg.from = from;
  msg.enc_bytes = enc_bytes;
  msg.is_batch = true;
  msg.seq = tls_stage_seq;
  msg.sub = tls_stage_sub++;
  msg.batch = decoded;
  exec_->Stage(from, -1, std::move(msg));
}

void ClusterRuntime::ReplayStagedMsg(ParallelRingMsg&& msg) {
  if (msg.is_batch) {
    AccountTransferBatch(msg.from, op_host_[msg.consumer], msg.batch.size(),
                         msg.enc_bytes);
    instances_[msg.consumer]->PushBatch(msg.port, msg.batch);
    return;
  }
  // One original (wire) tuple: replay its cross-host delivery through the
  // exact sequential code path. Cascaded emissions this triggers run
  // driver-inline (the sinks take their sequential branches), at exactly
  // the position the single-threaded execution ran them.
  const Tuple& wire = msg.batch.front();
  auto decoded = RoundTripTuple(wire);
  SP_CHECK(decoded.ok()) << decoded.status().ToString();
  if (recovery_active()) {
    int key = msg.partition >= 0 ? -(msg.partition + 1) : msg.producer_op;
    SendReliable(key, msg.from, wire, *decoded, msg.consumer, msg.port);
  } else if (faults_active()) {
    DeliverRemoteFaulty(msg.from, wire, *decoded, msg.consumer, msg.port);
  } else {
    AccountTransfer(msg.from, op_host_[msg.consumer], wire);
    instances_[msg.consumer]->Push(msg.port, *decoded);
  }
}

void ClusterRuntime::PipelinePushTuple(const std::string& source,
                                       const Tuple& tuple) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  int p = partitioner_->PartitionOf(tuple);
  if (p >= static_cast<int>(it->second.size())) return;
  auto& pending = morsel_pending_[source];
  if (pending.size() < it->second.size()) pending.resize(it->second.size());
  TupleBatch& buf = pending[p];
  buf.push_back(tuple);
  if (buf.size() >= kMorselTuples) {
    EnqueueMorsel(source, p, std::move(buf));
    buf = TupleBatch{};
  }
}

void ClusterRuntime::PipelinePushBatch(const std::string& source,
                                       TupleSpan batch) {
  auto it = routing_.find(source);
  if (it == routing_.end() || partitioner_ == nullptr) return;
  const auto& partitions = it->second;
  // Flush buffered per-tuple pushes first so a caller mixing PushSource and
  // PushSourceBatch keeps per-partition delivery order.
  if (auto pit = morsel_pending_.find(source); pit != morsel_pending_.end()) {
    for (size_t p = 0; p < pit->second.size(); ++p) {
      EnqueueMorsel(source, static_cast<int>(p), std::move(pit->second[p]));
      pit->second[p] = TupleBatch{};
    }
  }
  if (bucket_scratch_.size() < partitions.size()) {
    bucket_scratch_.resize(partitions.size());
  }
  for (auto& bucket : bucket_scratch_) bucket.clear();
  for (const Tuple& tuple : batch) {
    int p = partitioner_->PartitionOf(tuple);
    if (p >= static_cast<int>(partitions.size())) continue;
    bucket_scratch_[p].push_back(tuple);
  }
  for (size_t p = 0; p < partitions.size(); ++p) {
    if (bucket_scratch_[p].empty()) continue;
    EnqueueMorsel(source, static_cast<int>(p), std::move(bucket_scratch_[p]));
    bucket_scratch_[p] = TupleBatch{};
  }
}

void ClusterRuntime::FlushPendingMorsels() {
  for (auto& [source, pending] : morsel_pending_) {
    for (size_t p = 0; p < pending.size(); ++p) {
      EnqueueMorsel(source, static_cast<int>(p), std::move(pending[p]));
      pending[p] = TupleBatch{};
    }
  }
}

void ClusterRuntime::EnqueueMorsel(const std::string& source, int p,
                                   TupleBatch&& morsel) {
  if (morsel.empty()) return;
  auto it = routing_.find(source);
  int src_host = partition_hosts_.at(source)[p];
  result_.hosts[src_host].source_tuples += morsel.size();
  result_.source_tuples += morsel.size();
  ParallelWorkItem item;
  item.edges = &it->second[p];
  item.partition = p;
  item.host = src_host;
  item.batch = std::move(morsel);
  exec_->Enqueue(src_host, std::move(item));
}

void ClusterRuntime::PipelineStageTuple(int from,
                                        const std::vector<Edge>& edges,
                                        const Tuple& tuple) {
  auto decoded = RoundTripTuple(tuple);
  SP_CHECK(decoded.ok()) << decoded.status().ToString();
  size_t bytes = EncodedTupleSize(tuple);
  for (const Edge& e : edges) {
    result_.hosts[from].net_tuples_out += 1;
    result_.hosts[from].net_bytes_out += bytes;
    ParallelRingMsg msg;
    msg.consumer = e.consumer;
    msg.port = static_cast<uint32_t>(e.port);
    msg.from = from;
    msg.enc_bytes = bytes;
    msg.is_batch = true;
    msg.batch.push_back(*decoded);
    exec_->Stage(from, op_host_[e.consumer], std::move(msg));
  }
}

void ClusterRuntime::PipelineStageBatch(int from,
                                        const std::vector<Edge>& edges,
                                        TupleSpan batch) {
  size_t enc_bytes = 0;
  auto decoded = RoundTripBatch(batch, &enc_bytes);
  SP_CHECK(decoded.ok()) << decoded.status().ToString();
  for (const Edge& e : edges) {
    result_.hosts[from].net_tuples_out += batch.size();
    result_.hosts[from].net_bytes_out += enc_bytes;
    ParallelRingMsg msg;
    msg.consumer = e.consumer;
    msg.port = static_cast<uint32_t>(e.port);
    msg.from = from;
    msg.enc_bytes = enc_bytes;
    msg.is_batch = true;
    msg.batch = *decoded;
    exec_->Stage(from, op_host_[e.consumer], std::move(msg));
  }
}

void ClusterRuntime::ObserveSourceTime(const Tuple& tuple) {
  if (source_time_idx_ < 0 ||
      source_time_idx_ >= static_cast<int>(tuple.values().size())) {
    return;
  }
  uint64_t time = tuple.at(source_time_idx_).AsUint64();
  // Order matters: the fault controller drains reorder/queue deliveries for
  // the closing epoch first (arrivals ack their sender buffers), then due
  // retransmits fire, then a due checkpoint snapshots the settled state,
  // then kills execute — a kill at epoch E sees E's checkpoint.
  std::vector<int> due_kills;
  if (faults_active()) {
    due_kills = faults_->OnSourceTime(time);
    // Membership events apply right after the boundary drain and before the
    // retransmit scan: a heal at epoch E force-drains the backlog that the
    // partition accumulated, and a partition at E refuses this epoch's
    // retransmits rather than last epoch's deliveries.
    for (const MembershipEvent& event : faults_->DueMembershipEvents(time)) {
      ApplyMembershipEvent(event);
    }
  }
  if (recovery_active()) {
    uint64_t eid = time / recovery_->config().epoch_width;
    if (recovery_->AdvanceEpoch(eid)) {
      recovery_->ScanRetransmits(
          eid, [this](const RecoveryCoordinator::RetxItem& item) {
            ResendEntry(item);
          });
      if (recovery_->CheckpointDue()) DoCheckpoint();
    }
  }
  // Overload epochs settle after fault/recovery housekeeping (drained
  // queues and due checkpoints charge the epoch they belong to) and before
  // kills, so a kill at the boundary sees the closed epoch's charges.
  if (overload_active()) OverloadOnTime(time);
  // Adaptive placement decides last among the controllers: its snapshot
  // sees settled epoch state (checkpoints stored, skew moves executed),
  // and a kill due at the same boundary dirties the next snapshot instead
  // of racing this one.
  if (adaptive_active()) AdaptiveOnTime(time);
  for (int host : due_kills) {
    Status st = KillHost(host);
    SP_CHECK(st.ok()) << st.ToString();
  }
}

void ClusterRuntime::OverloadOnTime(uint64_t time) {
  uint64_t eid = time / overload_->epoch_width();
  if (!overload_->EpochBoundary(eid)) return;
  if (overload_->epoch_open()) {
    std::optional<SkewMove> move = overload_->CloseEpoch(
        [this](int partition) { return partition_host_merged_[partition]; });
    if (move.has_value()) ExecuteSkewMove(*move);
  }
  // Bases snapshot after a skew move executes, so the move's restore/replay
  // cost is charged to the epoch it happened in, not smeared forward.
  overload_->BeginEpoch(eid);
  DrainDeferredQueues();
}

void ClusterRuntime::DrainDeferredQueues() {
  // Deferred tuples re-admit before the new epoch's fresh tuples, oldest
  // first, each re-checked against the fresh budget (a tuple can park
  // across several epochs under sustained overload). Re-admitted tuples may
  // be late for their original window downstream; the aggregate counts them
  // late_tuples — deferral trades loss for staleness, it cannot rewind
  // time.
  for (int h = 0; h < config_.num_hosts; ++h) {
    DeferredTuple d;
    while (overload_->TakeDeferred(h, &d)) {
      RouteAdmitted(d.source, d.tuple);
    }
  }
}

void ClusterRuntime::ExecuteSkewMove(const SkewMove& move) {
  if (!recovery_active() ||
      (faults_ != nullptr && !faults_->host_alive(move.to_host))) {
    // No state-migration machinery (or no live target): record the advice
    // instead of moving blind — a lossy move would invalidate open windows,
    // which is worse than running hot.
    overload_->RecordSkewAdviceOnly();
    return;
  }
  // Price the move in the advisor's state_move currency: the bytes of the
  // partition's checkpointed state that must cross the network.
  double move_bytes = 0;
  for (int id : plan_->TopoOrder()) {
    if (instances_[id] == nullptr) continue;
    if (plan_->op(id).partition != move.partition) continue;
    if (recovery_->HasBlob(id)) {
      move_bytes += static_cast<double>(recovery_->BlobStoredBytes(id));
    }
  }
  // Gate on amortized cost: moving pays off only if the state transfer
  // (store + restore at the checkpoint byte rate) amortized over the
  // advisor's horizon undercuts the relief — the cycles the hot host ran
  // over budget last epoch.
  AdvisorOptions options;
  options.state_move_bytes = move_bytes;
  double move_cycles =
      2.0 * move_bytes * cost_params_.cycles_per_checkpoint_byte;
  double relief = overload_->LastEpochOverrun(move.from_host);
  if (relief <= 0 ||
      move_cycles > relief * options.state_move_amortize_epochs) {
    overload_->RecordSkewAdviceOnly();
    return;
  }
  // Consult the advisor with the penalty attached: a candidate partition
  // set must beat the incumbent by more than the amortized move cost to
  // displace it. The placement move below keeps the incumbent set either
  // way — the set is a workload property; what the hotspot skews is
  // placement.
  auto advice = AdviseRepartition(*graph_, actual_ps_, options);
  if (advice.ok() && advice->changed) {
    // The workload itself wants a different set even after paying for the
    // move; defer to the kill-path Repartition machinery rather than mixing
    // a set change into a placement move. Advice-only for this epoch.
    overload_->RecordSkewAdviceOnly();
    return;
  }
  if (MigratePartition(move.partition, move.to_host)) {
    overload_->RecordSkewMove(move.from_host, move.partition, move_bytes);
  } else {
    overload_->RecordSkewAdviceOnly();
  }
}

bool ClusterRuntime::MigratePartition(int partition, int target,
                                      uint64_t* moved_bytes) {
  if (!recovery_active()) return false;
  if (partition < 0 ||
      partition >= static_cast<int>(partition_host_merged_.size())) {
    return false;
  }
  // Operators whose entire input derives from this partition, in topo order
  // (upstream replacements exist before anything replays into consumers).
  // Partition-tagged chains move as a unit, so build-time local edges stay
  // intra-chain and remote edges re-resolve hosts at delivery time.
  std::vector<int> migrated;
  for (int id : plan_->TopoOrder()) {
    if (instances_[id] != nullptr && plan_->op(id).partition == partition &&
        op_host_[id] != target) {
      migrated.push_back(id);
    }
  }
  if (migrated.empty() && partition_host_merged_[partition] == target) {
    return false;
  }
  FoldAndSuppress(migrated);
  // Re-home the partition: the tap keeps feeding it, now on the target.
  for (auto& [name, hosts] : partition_hosts_) {
    if (partition < static_cast<int>(hosts.size())) {
      hosts[partition] = target;
    }
  }
  partition_host_merged_[partition] = target;
  uint64_t restored = RebuildAndRestore(migrated, target);
  if (moved_bytes != nullptr) *moved_bytes = restored;
  RewireMigrated(migrated);
  ReplayDeliveryLogs(migrated, target);
  if (adaptive_ != nullptr) adaptive_topology_dirty_ = true;
  return true;
}

bool ClusterRuntime::MigrateStage(const AdaptiveStage& stage, int target,
                                  uint64_t* moved_bytes) {
  // The stage's ops are already in topo order (BuildAdaptiveTopology walks
  // TopoOrder), so upstream replacements exist before anything replays into
  // their consumers — the same invariant MigrateHost relies on. Stages
  // contain no sources, so no partition re-homing happens here: intake
  // keeps landing on the tap hosts and the stage-boundary edges re-resolve
  // the new host at delivery time.
  std::vector<int> migrated;
  for (int id : stage.ops) {
    if (instances_[id] != nullptr && op_host_[id] != target) {
      migrated.push_back(id);
    }
  }
  if (migrated.empty()) return false;
  FoldAndSuppress(migrated);
  *moved_bytes = RebuildAndRestore(migrated, target);
  RewireMigrated(migrated);
  ReplayDeliveryLogs(migrated, target);
  return true;
}

Status ClusterRuntime::KillHost(int host) {
  // Out-of-range or already-dead targets stay silent no-ops (a plan can
  // legitimately name the same host twice, or a host past the cluster);
  // only killing the last survivor is an error — there would be nobody
  // left to repartition onto or migrate state to, and every downstream
  // answer would silently vanish.
  if (host < 0 || host >= config_.num_hosts) return Status::OK();
  if (!faults_->host_alive(host)) return Status::OK();
  int alive = 0;
  for (int h = 0; h < config_.num_hosts; ++h) {
    if (faults_->host_alive(h)) ++alive;
  }
  if (alive <= 1) {
    return Status::RuntimeError("kill host ", host,
                                ": cannot kill the last surviving host");
  }
  // Deliver in-flight channel tuples while the host can still receive;
  // everything sent before the kill instant was already "on the wire".
  faults_->FlushAll();
  if (recovery_active()) {
    MigrateHost(host);
    if (adaptive_ != nullptr) adaptive_topology_dirty_ = true;
    return Status::OK();
  }
  // Record window-invalidation markers for the open state the host loses,
  // and fold its work ledger now — post-death flush work is suppressed and
  // must not be accounted.
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op_host_[id] != host || instances_[id] == nullptr) continue;
    Operator::OpenState open = instances_[id]->open_state();
    faults_->RecordInvalidation(
        host, instances_[id]->label() + "#" + std::to_string(id), open.windows,
        open.tuples);
    if (op.kind == DistOpKind::kMerge) {
      result_.hosts[host].merge_ops += instances_[id]->stats();
    } else {
      result_.hosts[host].ops += instances_[id]->stats();
    }
    stats_folded_[id] = true;
  }
  faults_->MarkDead(host);
  result_.dead_hosts.push_back(host);
  if (adaptive_ != nullptr) adaptive_topology_dirty_ = true;
  // Downstream ports fed by the dead host would otherwise wait for an EOS
  // that can never arrive: finish them now (Finish is idempotent per port,
  // so the end-of-run pass is unaffected).
  for (const auto& [child, edges] : remote_edges_) {
    if (op_host_[child] != host) continue;
    for (const Edge& e : edges) {
      int to_host = op_host_[e.consumer];
      if (!faults_->host_alive(to_host)) continue;
      faults_->FlushChannel(host, to_host);
      instances_[e.consumer]->Finish(e.port);
    }
  }
  for (auto& [name, partitions] : routing_) {
    const std::vector<int>& hosts = partition_hosts_.at(name);
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (p >= hosts.size() || hosts[p] != host) continue;
      for (const Edge& edge : partitions[p]) {
        if (!faults_->host_alive(op_host_[edge.consumer])) continue;
        instances_[edge.consumer]->Finish(edge.port);
      }
    }
  }
  if (faults_->plan().repartition) Repartition();
  return Status::OK();
}

void ClusterRuntime::ApplyMembershipEvent(const MembershipEvent& event) {
  if (!membership_telemetry_bound_) {
    membership_telemetry_bound_ = true;
    if (telemetry_enabled_) {
      // Membership is a cluster-wide lifecycle, not a per-host one: its
      // instruments live in host 0's registry under a single scope, like the
      // adaptive controller's. Binding on the first applied event keeps runs
      // whose membership directives never fire byte-identical.
      faults_->BindMembershipTelemetry(host_stats_[0]->GetScope("membership"));
    }
  }
  switch (event.kind) {
    case MembershipEvent::Kind::kPartition: {
      PartitionSpec spec;
      spec.groups = event.groups;
      spec.epoch = event.epoch;
      // No flush here: the epoch-boundary drain already delivered everything
      // that was "on the wire" before the split; reorder-held tuples stay
      // held and deliver after the heal.
      faults_->ApplyPartition(spec);
      break;
    }
    case MembershipEvent::Kind::kHeal:
      faults_->ApplyHeal(event.epoch);
      if (recovery_active()) {
        // Drain the retransmit backlog immediately instead of waiting out
        // each entry's backoff: the heal is a connectivity event, not a
        // delivery failure, so no attempt is charged and nothing escalates.
        recovery_->ForceRetransmits(
            [this](const RecoveryCoordinator::RetxItem& item) {
              ResendEntry(item);
            });
      }
      break;
    case MembershipEvent::Kind::kRejoin:
      RejoinHost(event.host, event.epoch);
      break;
  }
}

void ClusterRuntime::RejoinHost(int host, uint64_t epoch) {
  SP_CHECK(host >= 0) << "rejoin host must be explicit";
  if (host < config_.num_hosts && faults_->host_alive(host)) {
    // Already a live member: nothing to admit, no state to move.
    faults_->RecordRejoinSuppressed(host, epoch);
    return;
  }
  if (host >= config_.num_hosts) {
    // Elastic scale-out: a never-before-seen host grows the cluster. The
    // overload controller keeps its construction-time host count — budget
    // rows are a plan property, and DrainDeferredQueues stays within the
    // bounds the controller was sized for.
    int old_hosts = config_.num_hosts;
    config_.num_hosts = host + 1;
    result_.hosts.resize(static_cast<size_t>(config_.num_hosts));
    for (int h = old_hosts; h < config_.num_hosts; ++h) {
      host_stats_.push_back(std::make_unique<StatsRegistry>());
      host_stats_.back()->set_events_enabled(trace_events_enabled_);
    }
  }
  faults_->MarkRejoined(host);
  // The host is a live member again: its ledger row resumes accumulating
  // and CheckedHost stops reporting it as killed.
  auto& dead = result_.dead_hosts;
  dead.erase(std::remove(dead.begin(), dead.end(), host), dead.end());
  if (adaptive_ != nullptr) adaptive_topology_dirty_ = true;
  if (!recovery_active()) {
    // Lossy runs have no checkpointed state to move back — the kill folded
    // the host's ledgers and finished its downstream ports, so re-admission
    // is liveness-only. State rebalance requires the checkpoint machinery
    // (docs/FAULTS.md "Membership lifecycle").
    faults_->RecordRejoin(host, epoch, 0);
    return;
  }
  // Cooldown guard, shared with the adaptive controller's rules: a storm of
  // rejoin directives inside the cooldown window still admits every host,
  // but only the first moves state — back-to-back full migrations would
  // thrash the very stability a rejoin is meant to restore.
  uint64_t width = std::max<uint64_t>(1, faults_->plan().epoch_width);
  uint64_t eid = epoch / width;
  uint64_t cooldown = faults_->plan().adaptive.cooldown_epochs;
  if (rejoin_seen_ && eid < last_rejoin_epoch_ + cooldown) {
    faults_->RecordRejoinSuppressed(host, epoch);
    return;
  }
  rejoin_seen_ = true;
  last_rejoin_epoch_ = eid;
  uint64_t moved_total = 0;
  for (int partition : RejoinPartitions(host)) {
    uint64_t moved = 0;
    if (MigratePartition(partition, host, &moved)) moved_total += moved;
  }
  faults_->RecordRejoin(host, epoch, moved_total);
}

std::vector<int> ClusterRuntime::RejoinPartitions(int host) const {
  // Candidate set: a returning host reclaims the partitions it owned at
  // build time (now re-homed elsewhere); an elastic newcomer peels
  // partitions off the most loaded host, heaviest first.
  //
  // Loads are priced through the recost path in the adaptive controller's
  // currency, but over partition-tagged compute only — the load a rejoin
  // can actually move. Folded history (a returning host's pre-kill row)
  // is sunk cost and would only bias the projection against restoration.
  auto partition_cycles = [this](int partition) {
    HostMetrics m;
    for (int id : plan_->TopoOrder()) {
      if (instances_[id] == nullptr) continue;
      if (plan_->op(id).partition != partition) continue;
      if (plan_->op(id).kind == DistOpKind::kMerge) {
        m.merge_ops += instances_[id]->stats();
      } else {
        m.ops += instances_[id]->stats();
      }
    }
    return HostCycles(m, cost_params_);
  };
  std::vector<double> loads(static_cast<size_t>(config_.num_hosts), 0.0);
  for (size_t p = 0; p < partition_host_merged_.size(); ++p) {
    int h = partition_host_merged_[p];
    if (h >= 0 && h < config_.num_hosts && faults_->host_alive(h)) {
      loads[h] += partition_cycles(static_cast<int>(p));
    }
  }
  std::vector<int> candidates;
  for (size_t p = 0; p < partition_host_build_.size(); ++p) {
    int cur = partition_host_merged_[p];
    if (partition_host_build_[p] == host && cur != host &&
        faults_->host_alive(cur)) {
      candidates.push_back(static_cast<int>(p));
    }
  }
  bool returning = !candidates.empty();
  if (!returning) {
    int hot = -1;
    double hot_load = 0;
    for (int h = 0; h < config_.num_hosts; ++h) {
      if (h == host || !faults_->host_alive(h)) continue;
      if (loads[h] > hot_load) {
        hot_load = loads[h];
        hot = h;
      }
    }
    if (hot < 0) return candidates;  // no load signal: nothing to rebalance
    for (size_t p = 0; p < partition_host_merged_.size(); ++p) {
      if (partition_host_merged_[p] == hot) {
        candidates.push_back(static_cast<int>(p));
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](int a, int b) {
                       return partition_cycles(a) > partition_cycles(b);
                     });
  }
  // Hysteresis gate over the recost projection. The gate is pair-local on
  // purpose — an unrelated global bottleneck must not veto restoring a
  // returning host's partitions. A returning host reclaiming its own
  // build-time partitions needs only strictly positive pair relief: the
  // imbalance (loaded donor, idle returnee) is exactly what restoration
  // fixes, and the donor's accumulated compute would otherwise dilute the
  // relief fraction the longer the host stayed dead — thrash is bounded by
  // the rejoin cooldown, not by this gate. An elastic newcomer peeling
  // partitions off a stranger must clear the full adaptive hysteresis
  // fraction. A returning host with no load signal yet restores its build
  // placement unconditionally.
  RecostWeights weights{cost_params_.cycles_per_remote_tuple,
                        cost_params_.cycles_per_remote_byte};
  double hysteresis = returning ? 0.0 : faults_->plan().adaptive.hysteresis;
  std::vector<int> accepted;
  for (int p : candidates) {
    int donor = partition_host_merged_[p];
    double before = std::max(loads[donor], loads[host]);
    if (before <= 0) {
      if (returning) accepted.push_back(p);
      continue;
    }
    StageRates moved;
    moved.host = donor;
    moved.compute_cycles = partition_cycles(p);
    std::vector<double> next =
        ProjectHostLoads(config_.num_hosts, loads, moved, host, weights);
    double after = std::max(next[donor], next[host]);
    if ((before - after) / before <= hysteresis) continue;
    accepted.push_back(p);
    loads = std::move(next);
  }
  return accepted;
}

void ClusterRuntime::Repartition() {
  // Surviving partitions of the shared partition space, in order.
  std::vector<int> survivors;
  for (size_t p = 0; p < partition_host_merged_.size(); ++p) {
    if (faults_->host_alive(partition_host_merged_[p])) {
      survivors.push_back(static_cast<int>(p));
    }
  }
  if (survivors.empty() || source_schema_ == nullptr) {
    // Nothing to route to: keep the old map; routed tuples count lost.
    return;
  }
  // Consult the advisor: the optimal set is a workload property, so this
  // usually confirms the current set and the recovery move is a rebuild of
  // the hash-slice map over the survivors.
  PartitionSet ps = actual_ps_;
  auto advice = AdviseRepartition(*graph_, actual_ps_);
  if (advice.ok()) ps = advice->recommended;
  auto rebuilt = MakePartitioner(ps, source_schema_,
                                 static_cast<int>(survivors.size()));
  if (!rebuilt.ok()) return;  // keep the old map rather than halt the run
  partitioner_ = std::move(*rebuilt);
  survivor_map_ = std::move(survivors);
  actual_ps_ = ps;
  // Survivor-side open state is realigned by the new map; its size prices
  // the repartition in model cycles at ledger time.
  uint64_t state_tuples = 0;
  for (int id : plan_->TopoOrder()) {
    if (instances_[id] == nullptr || !faults_->host_alive(op_host_[id])) {
      continue;
    }
    state_tuples += instances_[id]->open_state().tuples;
  }
  faults_->RecordRepartition(state_tuples);
  if (adaptive_ != nullptr) adaptive_topology_dirty_ = true;
}

RunLedger ClusterRuntime::MakeLedger(const CpuCostParams& params,
                                     double duration_sec,
                                     const RunLedgerOptions& options) const {
  RunLedger ledger(options);
  ledger.SetMeta("hosts", static_cast<uint64_t>(config_.num_hosts));
  ledger.SetMeta("duration_sec", duration_sec);
  ledger.SetMeta("source_tuples", result_.source_tuples);
  for (size_t h = 0; h < result_.hosts.size(); ++h) {
    ledger.AddHost(static_cast<int>(h), result_.hosts[h], params,
                   duration_sec);
  }
  for (size_t h = 0; h < host_stats_.size(); ++h) {
    ledger.AddRegistry(static_cast<int>(h), *host_stats_[h]);
  }
  for (const auto& [name, batch] : result_.outputs) {
    // Result sinks pre-create their output batch at attach time (parallel
    // workers append through a stable pointer); skipping empty batches
    // keeps the ledger identical to the lazy-creation shape, where an
    // entry existed only once a sink actually emitted.
    if (batch.empty()) continue;
    ledger.AddOutput(name, batch.size());
  }
  if (faults_active()) {
    ledger.SetFaults(faults_->section(params.cycles_per_remote_tuple));
  }
  if (recovery_active()) {
    ledger.SetRecovery(recovery_->section(params.cycles_per_checkpoint_byte));
  }
  if (overload_active()) {
    // SetOverload drops disengaged sections, so a run whose budget always
    // covered the load serializes byte-identically to a budget-free run.
    ledger.SetOverload(overload_->section());
  }
  if (adaptive_active()) {
    // SetAdaptive drops never-engaged sections, so a drift-free run with the
    // controller armed serializes byte-identically to an unarmed run.
    ledger.SetAdaptive(adaptive_->section());
  }
  if (faults_active()) {
    // SetMembership drops never-engaged sections, so a plan whose membership
    // directives never fired serializes byte-identically to an unarmed run.
    ledger.SetMembership(
        faults_->membership_section(params.cycles_per_checkpoint_byte));
  }
  // SetSketch drops inactive sections, so exact plans stay byte-identical.
  ledger.SetSketch(MakeSketchSection());
  return ledger;
}

SketchSection ClusterRuntime::MakeSketchSection() const {
  SketchSection s;
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.sketch_role == SketchRole::kNone || instances_[id] == nullptr) {
      continue;
    }
    if (op.sketch_role == SketchRole::kHost) {
      auto* host_op = static_cast<const SketchOp*>(instances_[id].get());
      const SketchOp::Accounting& acc = host_op->accounting();
      SketchHostRow row;
      row.host = op_host_[id];
      row.updates = acc.updates;
      row.summaries = acc.summaries;
      row.summary_bytes = acc.summary_bytes;
      row.epochs = acc.epochs;
      s.hosts.push_back(row);
      continue;
    }
    // The merge op carries the plan-wide error budget: every estimate it
    // emitted over-counts by at most eps * epoch mass, so the widest band is
    // taken over the heaviest epoch it answered.
    auto* merge_op = static_cast<const SketchMergeOp*>(instances_[id].get());
    const SketchMergeOp::Accounting& acc = merge_op->accounting();
    const SketchSpec& spec = merge_op->spec();
    sketch::CmParams grid = spec.Grid();
    s.active = true;
    s.eps = spec.eps;
    s.confidence = spec.confidence;
    s.width = grid.width;
    s.depth = grid.depth;
    s.merged_summaries += acc.merged_summaries;
    s.merged_bytes += acc.merged_bytes;
    s.epochs += acc.epochs;
    s.estimates += acc.estimates;
    s.max_epoch_mass = std::max(s.max_epoch_mass, acc.max_epoch_mass);
    s.exact = false;
  }
  if (s.active) {
    s.abs_error_bound =
        s.eps * static_cast<double>(s.max_epoch_mass);
    s.inexact_reasons.push_back(
        "sketch leg: COUNT/SUM answers carry an eps*N per-epoch over-count "
        "bound (never under-count)");
  }
  return s;
}

OpStats ClusterRuntime::StatsForStream(const std::string& stream_name) const {
  OpStats total;
  for (int id : plan_->TopoOrder()) {
    const DistOperator& op = plan_->op(id);
    if (op.stream_name == stream_name && instances_[id] != nullptr) {
      total += instances_[id]->stats();
    }
  }
  return total;
}

}  // namespace streampart
