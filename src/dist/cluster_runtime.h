#pragma once

/// \file cluster_runtime.h
/// \brief Simulated cluster executing a distributed plan.
///
/// The runtime instantiates the real streaming operators for every alive
/// plan operator, wires local edges directly and cross-host edges through
/// accounting channels, routes source tuples through the configured
/// partitioner, and collects per-host work/traffic ledgers. Per DESIGN.md,
/// the operators do genuine computation over genuine tuples — the simulation
/// only substitutes cycle accounting for wall-clock execution.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/partitioner.h"
#include "exec/ops.h"
#include "metrics/cpu_model.h"
#include "optimizer/dist_plan.h"
#include "plan/query_graph.h"

namespace streampart {

/// \brief Execution outcome of one cluster run.
struct ClusterRunResult {
  std::vector<HostMetrics> hosts;
  /// Output tuples of every plan sink, keyed by stream name.
  std::map<std::string, TupleBatch> outputs;
  /// Total source tuples pushed.
  uint64_t source_tuples = 0;

  /// \brief Metrics of the aggregator host.
  const HostMetrics& aggregator(int aggregator_host = 0) const {
    return hosts[aggregator_host];
  }
  /// \brief Combined CPU-seconds of all non-aggregator (leaf) hosts.
  double LeafCpuSeconds(const CpuCostParams& params,
                        int aggregator_host = 0) const;
};

/// \brief Executes a DistPlan over pushed source tuples.
class ClusterRuntime {
 public:
  /// \param graph supplies the UDAF registry; \param plan the placed
  /// operators. Both must outlive the runtime.
  ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                 const ClusterConfig& config);

  /// \brief Instantiates operators and channels; builds the partitioner for
  /// \p actual_ps (round-robin when empty).
  Status Build(const PartitionSet& actual_ps);

  /// \brief Routes one source tuple of stream \p source to its partition.
  void PushSource(const std::string& source, const Tuple& tuple);

  /// \brief Routes a batch of source tuples in one pass: one routing lookup,
  /// per-partition bucketing, and — for cross-host edges — one serialization
  /// round trip per (partition bucket, producer) instead of one per tuple
  /// per consumer. All accounted metrics (source_tuples, net_tuples,
  /// net_bytes, operator stats) are identical to the per-tuple path.
  void PushSourceBatch(const std::string& source, TupleSpan batch);

  /// \brief End-of-stream on every source partition; flushes all operators.
  void FinishSources();

  /// \brief Ledger and outputs (valid after FinishSources).
  const ClusterRunResult& result() const { return result_; }

  /// \brief Per-stream summed operator stats (debugging/tests).
  OpStats StatsForStream(const std::string& stream_name) const;

 private:
  struct SourceEdge {
    Operator* consumer;
    size_t port;
    int consumer_host;
  };

  void AccountTransfer(int from_host, int to_host, const Tuple& tuple);
  /// Batched ledger update: \p n tuples totalling \p bytes encoded bytes
  /// moved from \p from_host to \p to_host.
  void AccountTransferBatch(int from_host, int to_host, uint64_t n,
                            size_t bytes);

  const QueryGraph* graph_;
  const DistPlan* plan_;
  ClusterConfig config_;
  std::unique_ptr<StreamPartitioner> partitioner_;
  /// Operator instances indexed by plan op id (null for sources/dead ops).
  std::vector<OperatorPtr> instances_;
  /// Routing: source stream name -> per-partition consumer edges.
  std::map<std::string, std::vector<std::vector<SourceEdge>>> routing_;
  /// Host of each source partition, per stream.
  std::map<std::string, std::vector<int>> partition_hosts_;
  /// Scratch per-partition buckets reused across PushSourceBatch calls.
  std::vector<TupleBatch> bucket_scratch_;
  ClusterRunResult result_;
  bool built_ = false;
  bool finished_ = false;
};

}  // namespace streampart
