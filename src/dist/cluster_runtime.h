#pragma once

/// \file cluster_runtime.h
/// \brief Simulated cluster executing a distributed plan.
///
/// The runtime instantiates the real streaming operators for every alive
/// plan operator, wires local edges directly and cross-host edges through
/// accounting channels, routes source tuples through the configured
/// partitioner, and collects per-host work/traffic ledgers. Per DESIGN.md,
/// the operators do genuine computation over genuine tuples — the simulation
/// only substitutes cycle accounting for wall-clock execution.
///
/// Edges are id-resolved: wiring lambdas capture plan operator ids and look
/// up instances and hosts at delivery time, so lossless recovery
/// (dist/checkpoint.h) can replace a dead host's instances and re-home them
/// on a survivor without rewiring captured pointers. On the healthy path the
/// lookups resolve to the build-time placement, byte-identically.

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/adaptive.h"
#include "dist/checkpoint.h"
#include "dist/fault.h"
#include "dist/overload.h"
#include "dist/parallel_exec.h"
#include "dist/partitioner.h"
#include "exec/column_batch.h"
#include "exec/ops.h"
#include "metrics/cpu_model.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "optimizer/dist_plan.h"
#include "plan/query_graph.h"

namespace streampart {

/// \brief Execution outcome of one cluster run.
struct ClusterRunResult {
  std::vector<HostMetrics> hosts;
  /// Output tuples of every plan sink, keyed by stream name.
  std::map<std::string, TupleBatch> outputs;
  /// Total source tuples pushed.
  uint64_t source_tuples = 0;
  /// Hosts killed by fault injection, in kill order (empty when healthy).
  std::vector<int> dead_hosts;

  /// \brief Checked host lookup: Status instead of UB on an out-of-range
  /// host, and a loud error when the host was killed mid-run (its ledger
  /// row stops at the kill and must not be read as a full-run measurement).
  Result<const HostMetrics*> CheckedHost(int host) const;

  /// \brief Metrics of the aggregator host. Aborts (SP_CHECK) when the
  /// aggregator is out of range or died — a dead aggregator must fail
  /// loudly, not return a silently truncated row.
  const HostMetrics& aggregator(int aggregator_host = 0) const;

  /// \brief Combined CPU-seconds of all non-aggregator (leaf) hosts.
  double LeafCpuSeconds(const CpuCostParams& params,
                        int aggregator_host = 0) const;
};

/// \brief Executes a DistPlan over pushed source tuples.
class ClusterRuntime {
 public:
  /// \param graph supplies the UDAF registry; \param plan the placed
  /// operators. Both must outlive the runtime.
  ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                 const ClusterConfig& config);

  /// \brief Controls per-host telemetry registries (on by default). Must be
  /// called before Build: operators bind their instruments at build time.
  void set_telemetry_enabled(bool enabled) { telemetry_enabled_ = enabled; }
  /// \brief Opt-in structured trace events on every host registry
  /// (--trace-events). Must be called before data flows.
  void set_trace_events_enabled(bool enabled);

  /// \brief Selects the execution path PushSourceBatch drives (exec mode of
  /// the run, docs/ARCHITECTURE.md): kBatch (default) routes row batches,
  /// kTuple degenerates every batch to per-tuple routing (the differential
  /// oracle), kColumnar converts each per-partition bucket to column-major
  /// form once and delivers it via PushColumns — local consumers borrow the
  /// columns, cross-host edges encode the columns once per bucket
  /// (byte-identical wire accounting to the row path). Must be called before
  /// Build. Columnar applies to the healthy sequential branch only: armed
  /// controllers degenerate to per-tuple routing in every mode, and
  /// set_parallel(>1) falls back to row batches with a recorded reason
  /// (columnar_fallback_reason()).
  void set_exec_mode(ExecMode mode) { exec_mode_ = mode; }
  ExecMode exec_mode() const { return exec_mode_; }
  /// \brief Why a set_exec_mode(kColumnar) run fell back to row batches;
  /// empty when columnar is active or was never requested.
  const std::string& columnar_fallback_reason() const {
    return columnar_fallback_reason_;
  }

  /// \brief Selects parallel execution with \p threads worker threads. Must be called before Build; threads == 1 keeps the
  /// single-threaded path (the deterministic differential oracle). The
  /// RunLedger of a parallel run is byte-identical to the single-threaded
  /// one (advisory wall-clock instruments live in the separate scheduler
  /// registry and never enter the ledger). Plans the scheduler cannot run
  /// in parallel fall back to sequential execution with a recorded reason
  /// (parallel_fallback_reason()); see docs/THREADING.md.
  void set_parallel(int threads);
  int parallel_threads() const { return parallel_threads_; }
  /// \brief True when Build selected a multithreaded mode (valid after
  /// Build).
  bool parallel_active() const { return parallel_mode_ != ParallelMode::kOff; }
  /// \brief Why a set_parallel(>1) run fell back to sequential execution;
  /// empty when parallel is active or was never requested.
  const std::string& parallel_fallback_reason() const {
    return parallel_fallback_reason_;
  }
  /// \brief Scheduler/worker instruments (sched_*/worker_*; all advisory).
  /// Kept out of the per-host registries so the RunLedger stays
  /// mode-independent. Populated after FinishSources.
  const StatsRegistry& scheduler_registry() const { return sched_stats_; }

  /// \brief Attaches a fault plan (dist/fault.h). Must be called before
  /// Build. An empty plan leaves every execution path byte-identical to a
  /// run without the call; a non-empty plan routes cross-host traffic
  /// through the fault controller and enables kills/recovery. A plan with
  /// `checkpoint_interval > 0` additionally enables lossless recovery
  /// (dist/checkpoint.h): epoch-aligned state snapshots, acked retransmit
  /// buffers on every edge, and state migration instead of window
  /// invalidation when a host dies. A plan with budget/shed directives arms
  /// the overload controller (dist/overload.h).
  void set_fault_plan(FaultPlan plan);

  /// \brief Cost-model parameters the overload controller charges budgets
  /// in. Defaults to CpuCostParams{}; callers that pass custom params to
  /// MakeLedger should set the same ones here before Build so budget
  /// enforcement and the ledger agree on the cycle currency.
  void set_cost_params(const CpuCostParams& params) { cost_params_ = params; }

  /// \brief The fault controller, or nullptr when no plan was attached.
  const FaultController* fault_controller() const { return faults_.get(); }
  /// \brief The recovery coordinator, or nullptr when the plan did not
  /// configure a checkpoint interval.
  const RecoveryCoordinator* recovery_coordinator() const {
    return recovery_.get();
  }
  /// \brief The overload controller, or nullptr when the plan carried no
  /// budget/shed directives.
  const OverloadController* overload_controller() const {
    return overload_.get();
  }
  /// \brief The adaptive placement controller, or nullptr when the plan
  /// carried no `adapt` directive.
  const AdaptiveController* adaptive_controller() const {
    return adaptive_.get();
  }

  /// \brief Instantiates operators and channels; builds the partitioner for
  /// \p actual_ps (round-robin when empty).
  Status Build(const PartitionSet& actual_ps);

  /// \brief Routes one source tuple of stream \p source to its partition.
  void PushSource(const std::string& source, const Tuple& tuple);

  /// \brief Routes a batch of source tuples in one pass: one routing lookup,
  /// per-partition bucketing, and — for cross-host edges — one serialization
  /// round trip per (partition bucket, producer) instead of one per tuple
  /// per consumer. All accounted metrics (source_tuples, net_tuples,
  /// net_bytes, operator stats) are identical to the per-tuple path.
  void PushSourceBatch(const std::string& source, TupleSpan batch);

  /// \brief End-of-stream on every source partition; flushes all operators.
  void FinishSources();

  /// \brief Ledger and outputs (valid after FinishSources).
  const ClusterRunResult& result() const { return result_; }

  /// \brief Per-stream summed operator stats (debugging/tests).
  OpStats StatsForStream(const std::string& stream_name) const;

  /// \brief Telemetry registry of host \p host (never null; empty when
  /// telemetry is disabled or compiled out).
  const StatsRegistry& host_registry(int host) const {
    return *host_stats_[host];
  }

  /// \brief Folds the run's host ledgers, the cost model, and every host's
  /// telemetry registry into one structured RunLedger (valid after
  /// FinishSources). Meta fields hosts/duration_sec/source_tuples are
  /// pre-populated; callers add workload/epoch_unix and outputs as needed.
  RunLedger MakeLedger(const CpuCostParams& params, double duration_sec,
                       const RunLedgerOptions& options = {}) const;

  /// \brief Assembles the ledger's sketch section from the plan's sketch-role
  /// instances (host rows from SketchOp accounting, totals and the error
  /// budget from SketchMergeOp). Inactive when the plan has no sketch leg.
  SketchSection MakeSketchSection() const;

 private:
  /// One wired edge, id-resolved (see file comment): the consuming
  /// operator's plan id plus its input port. Instances and hosts are looked
  /// up at delivery time via instances_/op_host_.
  struct Edge {
    int consumer;
    size_t port;
  };

  /// Execution mode Build selects when set_parallel requested threads > 1:
  /// kPipeline for healthy plans (continuous morsel flow, host-to-host SPSC
  /// rings, no barriers), kBarrier when any controller is armed (workers do
  /// host-local work; cross-host sends are staged and replayed by the
  /// driver in exact sequential order at every source-time boundary), kOff
  /// for single-threaded or fallen-back runs.
  enum class ParallelMode : uint8_t { kOff, kPipeline, kBarrier };

  void AccountTransfer(int from_host, int to_host, const Tuple& tuple);
  /// Batched ledger update: \p n tuples totalling \p bytes encoded bytes
  /// moved from \p from_host to \p to_host.
  void AccountTransferBatch(int from_host, int to_host, uint64_t n,
                            size_t bytes);

  /// True when fault injection is live (plan attached and non-empty).
  bool faults_active() const { return faults_ != nullptr && faults_->active(); }
  /// True when lossless recovery is configured (checkpoint_interval > 0).
  bool recovery_active() const { return recovery_ != nullptr; }
  /// True when the plan armed budgets or shedding (dist/overload.h).
  bool overload_active() const { return overload_ != nullptr; }
  /// True when the plan armed adaptive placement (dist/adaptive.h).
  bool adaptive_active() const { return adaptive_ != nullptr; }
  /// Current host of plan operator \p id (build placement until migration).
  int OpHost(int id) const { return op_host_[id]; }
  /// Current host of an acked edge's producer: an operator's host, or the
  /// (possibly re-homed) host of a source partition.
  int ProducerHost(const EdgeKey& key) const;

  /// Rebuilds the operator instance of plan op \p id (migration restore).
  OperatorPtr MakeInstance(int id);
  /// Binds instance \p id into its current host's registry.
  void BindInstanceTelemetry(int id);
  /// Wires the local edge producer -> (consumer, port). Healthy: a direct
  /// consumer link. Under recovery: a logging sink plus a finish hook, so
  /// every delivery lands in the consumer's delivery log and replay can mute
  /// the edge.
  void WireLocalEdge(int producer, int consumer, size_t port);
  /// Adds the end-of-stream hook for the remote edge producer -> (consumer,
  /// port): flush the channel (and drain the edge's retransmit buffer) before
  /// the consumer's port finishes.
  void AddRemoteFinishHook(int producer, int consumer, size_t port);
  /// Attaches producer \p child's cross-host output sink (serialize once,
  /// deliver to every remote consumer edge).
  void AttachRemoteSinks(int child);
  /// Attaches the result-collection sink of plan sink \p id.
  void AttachResultSink(int id);

  /// The degraded channel for the pair (created lazily, counters bound in
  /// the sender's registry), or nullptr for healthy pairs / no controller.
  FaultChannel* ChannelForPair(int from_host, int to_host);
  /// Routes one producer emission across a degraded (or healthy) cross-host
  /// edge — the lossy (non-recovery) path. \p wire is the undecoded
  /// original (sized for accounting), \p decoded the post-serde copy.
  void DeliverRemoteFaulty(int from_host, const Tuple& wire,
                           const Tuple& decoded, int consumer, size_t port);
  /// Receiving side of a faulty delivery: accounts and pushes unless the
  /// destination host is dead. Returns delivery success.
  bool ReceiveRemote(const Tuple& tuple, size_t bytes, int consumer,
                     size_t port);

  // --- Lossless recovery (dist/checkpoint.h) ---
  /// Cross-host emission under recovery: suppress replay re-emissions, then
  /// send each remote edge reliably.
  void EmitRemoteReliable(int child, const Tuple& tuple);
  /// Sends one tuple over the acked edge (producer_key, consumer, port):
  /// assigns a sequence number, buffers for retransmission, and routes
  /// through the degraded channel (or directly). Migration-collapsed edges
  /// (from == to) keep their sequencing but skip the network.
  void SendReliable(int producer_key, int from, const Tuple& wire,
                    const Tuple& decoded, int consumer, size_t port);
  /// Receiving side of an acked edge: acks the sender buffer, discards
  /// duplicates, applies in sequence order (log + push).
  void DeliverReliable(const EdgeKey& key, uint64_t seq, const Tuple& tuple,
                       size_t bytes, bool account);
  /// Executes one due retransmission: back through the channel, or directly
  /// when escalated / migration-collapsed.
  void ResendEntry(const RecoveryCoordinator::RetxItem& item);
  /// Serializes every (changed) operator state into the checkpoint store.
  void DoCheckpoint();
  /// Recovery flavor of a host kill: rebuild the dead host's operators on a
  /// survivor from the last checkpoint and replay their delivery logs.
  void MigrateHost(int host);
  // Shared migration sequence (MigrateHost / MigratePartition /
  // MigrateStage all run exactly these four phases over a topo-ordered id
  // list; only who re-homes which partitions differs between callers).
  /// Phase 1: fold each op's work into the host that actually ran it and
  /// arm replay suppression for outputs already published since the last
  /// checkpoint.
  void FoldAndSuppress(const std::vector<int>& migrated);
  /// Phase 2: rebuild each op on \p target from its last snapshot. Returns
  /// the checkpoint bytes restored (the migration's state-transfer size).
  uint64_t RebuildAndRestore(const std::vector<int>& migrated, int target);
  /// Phase 3: rewire the replacements in exactly Build's per-producer order.
  void RewireMigrated(const std::vector<int>& migrated);
  /// Phase 4: replay each op's post-snapshot delivery suffix with side
  /// effects muted.
  void ReplayDeliveryLogs(const std::vector<int>& migrated, int target);
  /// Bumps a counter in the per-host `checkpoint#<host>` telemetry scope.
  void BumpCheckpointStat(int host, const StatDef& def, uint64_t n);
  /// Bumps a counter in the sender-side `channel#<from>-><to>` scope.
  void BumpChannelStat(int from_host, int to_host, const StatDef& def);

  // --- Overload control (dist/overload.h) ---
  /// Live model-cycle total charged to \p host: its ledger row plus the
  /// live (unfolded) stats of every operator instance currently homed on
  /// it, priced with cost_params_. The budget guard's currency.
  double ModelCyclesNow(int host) const;
  /// Epoch hook for the overload controller: closes/opens budget epochs,
  /// executes proposed skew moves, and drains defer queues.
  void OverloadOnTime(uint64_t time);
  /// Re-admits deferred tuples on every host while budgets allow.
  void DrainDeferredQueues();
  /// Routes one tuple that already passed admission (fresh partition
  /// resolution — a skew move may have re-homed it while parked).
  void RouteAdmitted(const std::string& source, const Tuple& tuple);
  /// Shared tail of PushSource/RouteAdmitted: capture accounting plus the
  /// per-edge delivery loop for partition \p p on \p src_host.
  void DeliverSource(const std::string& source, int p, int src_host,
                     const Tuple& tuple);
  /// Columnar-mode delivery of one per-partition bucket (already converted
  /// into col_bucket_scratch_): local consumers borrow the columns, remote
  /// edges encode them once and push the re-columnarized decode.
  void DeliverBucketColumns(const std::vector<Edge>& edges, size_t rows,
                            int src_host);
  /// Validates and prices a proposed hot-partition move, then executes it
  /// through MigratePartition or records it advice-only.
  void ExecuteSkewMove(const SkewMove& move);
  /// Migrates every operator of source partition \p partition onto
  /// \p target via the recovery machinery (checkpoint restore + delivery-log
  /// replay, like MigrateHost). Returns false when recovery is not active.
  /// \p moved_bytes (optional) receives the restored state size.
  bool MigratePartition(int partition, int target,
                        uint64_t* moved_bytes = nullptr);
  /// Binds the controller's live Horvitz–Thompson weight to the first
  /// stateful operator downstream of each source (recording inexact reasons
  /// for operators that cannot consume it).
  void BindShedWeights();
  /// Re-binds the shed weight on a rebuilt (migrated) instance.
  void RebindShedWeight(int id);

  // --- Adaptive placement (dist/adaptive.h) ---
  /// Decomposes the plan into movable stages (connected components of
  /// same-host operators over local edges) and the cross-stage / intake
  /// edges the controller measures; installs them on the controller.
  void BuildAdaptiveTopology();
  /// Assembles the epoch-boundary snapshot of cumulative counters.
  AdaptiveSnapshot TakeAdaptiveSnapshot(uint64_t eid);
  /// Epoch hook: snapshots, lets the controller decide, and executes any
  /// resulting stage move or rollback.
  void AdaptiveOnTime(uint64_t time);
  /// Executes a controller action: MigrateStage when the recovery machinery
  /// and a live target exist, advice-only otherwise.
  void ExecuteAdaptiveAction(const AdaptiveAction& action);
  /// Migrates every operator of \p stage onto \p target via the recovery
  /// machinery (same four phases as MigrateHost). Returns false when
  /// nothing needed to move; \p moved_bytes gets the restored state size.
  bool MigrateStage(const AdaptiveStage& stage, int target,
                    uint64_t* moved_bytes);

  // --- Parallel execution (dist/parallel_exec.h) ---
  /// Selects the mode, constructs the executor, and starts the pool (end of
  /// Build).
  void StartParallel();
  /// Stops the pool (quiesce + join) and folds scheduler stats; after this
  /// every delivery path takes its single-threaded branch.
  void StopParallel();
  /// True when the calling thread is a worker of this runtime's pool in the
  /// given mode (sinks use it to pick the staging branch).
  bool InPipelineWorker() const {
    return parallel_mode_ == ParallelMode::kPipeline &&
           ParallelExecutor::InWorker();
  }
  bool InBarrierWorker() const {
    return parallel_mode_ == ParallelMode::kBarrier &&
           ParallelExecutor::InWorker();
  }
  /// Barrier-mode PushSource: routes on the driver (admission, time
  /// barriers, accounting) and hands the per-edge delivery to the
  /// partition's host worker.
  void ParallelPushSource(const std::string& source, const Tuple& tuple);
  /// Quiesces the pool and replays staged cross-host sends in exact
  /// sequential order (called on source-time boundaries and at finish).
  void ParallelBarrier();
  /// Pipeline-mode per-tuple PushSource: accumulates per-partition morsels.
  void PipelinePushTuple(const std::string& source, const Tuple& tuple);
  /// Pipeline-mode PushSourceBatch: buckets and enqueues per-partition
  /// morsels.
  void PipelinePushBatch(const std::string& source, TupleSpan batch);
  /// Flushes the per-tuple morsel accumulators (finish).
  void FlushPendingMorsels();
  /// Accounts and enqueues one non-empty per-partition morsel.
  void EnqueueMorsel(const std::string& source, int p, TupleBatch&& morsel);
  /// Pipeline-mode worker halves of the healthy cross-host sinks: serde
  /// once, sender-half accounting, stage to each consumer host's ring.
  void PipelineStageTuple(int from, const std::vector<Edge>& edges,
                          const Tuple& tuple);
  void PipelineStageBatch(int from, const std::vector<Edge>& edges,
                          TupleSpan batch);
  /// Worker body of one work item (mode-dispatched).
  void WorkerProcessItem(int host, ParallelWorkItem&& item);
  /// Pipeline-mode consumer half of a staged batch.
  void WorkerProcessRing(int host, ParallelRingMsg&& msg);
  /// Barrier-mode worker edge loop of one routed source tuple (the
  /// DeliverSource body minus driver-side accounting; cross-host edges are
  /// staged).
  void WorkerDeliverSource(int p, int src_host, const std::vector<Edge>& edges,
                           const Tuple& tuple);
  /// Barrier-mode worker flavor of EmitRemoteReliable: suppression and
  /// same-host sends run on the worker; cross-host sends are staged.
  void WorkerEmitRemoteReliable(int child, const Tuple& tuple);
  /// Stages one cross-host tuple send for driver replay.
  void StageEdgeTuple(int from, int partition, int producer_op,
                      const Edge& edge, const Tuple& tuple);
  /// Stages one cross-host decoded batch transfer for driver replay
  /// (overload-only barrier mode: batches cross as one transfer, like the
  /// sequential per-batch sink).
  void StageEdgeBatch(int from, const Edge& edge, const TupleBatch& decoded,
                      size_t enc_bytes);
  /// Driver replay of one staged message through the exact sequential
  /// delivery code.
  void ReplayStagedMsg(ParallelRingMsg&& msg);
  /// Folds executor counters into the scheduler registry (after Stop).
  void FoldSchedulerStats();

  /// Kills \p host now. Lossy path: records window invalidations, folds its
  /// ledger, finishes downstream ports it feeds, and (if the plan allows)
  /// repartitions over the survivors. Recovery path: MigrateHost. Fails with
  /// kRuntimeError when \p host is the last survivor — a cluster with no
  /// hosts cannot execute anything, so the kill is refused rather than
  /// leaving an empty-survivor repartition behind.
  Status KillHost(int host);
  /// Applies one due membership event (partition / heal / rejoin) — called
  /// from ObserveSourceTime before the retransmit scan and before any kill
  /// due at the same boundary.
  void ApplyMembershipEvent(const MembershipEvent& event);
  /// Re-admits \p host at epoch \p epoch — the reverse of KillHost: marks it
  /// alive, consults the advisor/recost projection for which partitions move
  /// back, and migrates their state over the recovery machinery, guarded by
  /// the hysteresis/cooldown rules so rejoin storms can't thrash. Hosts
  /// beyond the configured cluster grow it (elastic scale-out).
  void RejoinHost(int host, uint64_t epoch);
  /// Picks the partitions to move back to a rejoining host: its build-time
  /// partitions when it had any, else the recost-projected best peel off the
  /// bottleneck host (elastic scale-out). Empty when nothing should move.
  std::vector<int> RejoinPartitions(int host) const;
  /// Rebuilds the partitioner over the surviving partitions (lossy path).
  void Repartition();
  /// Source-time hook: drains channel queues at epoch boundaries, advances
  /// the recovery epoch (retransmit scan + due checkpoints), and executes
  /// kills that have come due.
  void ObserveSourceTime(const Tuple& tuple);

  const QueryGraph* graph_;
  const DistPlan* plan_;
  ClusterConfig config_;
  std::unique_ptr<StreamPartitioner> partitioner_;
  /// Operator instances indexed by plan op id (null for sources; replaced
  /// in place by migration).
  std::vector<OperatorPtr> instances_;
  /// Current host of each plan op (build placement; migration re-homes).
  std::vector<int> op_host_;
  /// Routing: source stream name -> per-partition consumer edges.
  std::map<std::string, std::vector<std::vector<Edge>>> routing_;
  /// Host of each source partition, per stream (migration re-homes).
  std::map<std::string, std::vector<int>> partition_hosts_;
  /// Scratch per-partition buckets reused across PushSourceBatch calls.
  std::vector<TupleBatch> bucket_scratch_;
  /// Exec mode PushSourceBatch drives (set_exec_mode; kBatch default).
  ExecMode exec_mode_ = ExecMode::kBatch;
  std::string columnar_fallback_reason_;
  /// Columnar-mode scratch: per-bucket column batch, its identity selection,
  /// and the re-columnarized decode of a cross-host bucket.
  ColumnBatch col_bucket_scratch_;
  ColumnBatch col_remote_scratch_;
  SelectionVector col_sel_scratch_;
  /// One telemetry registry per simulated host (the registries are
  /// single-writer: the whole simulation runs on one thread, and scope
  /// names carry the plan op id so instances never collide).
  std::vector<std::unique_ptr<StatsRegistry>> host_stats_;
  ClusterRunResult result_;
  bool telemetry_enabled_ = true;
  bool built_ = false;
  bool finished_ = false;

  // --- Fault injection (all empty/null on the healthy path) ---
  std::unique_ptr<FaultController> faults_;
  /// Same-host edges per producer id (wiring + migration rewiring).
  std::map<int, std::vector<Edge>> local_edges_;
  /// Cross-host edges per producer id.
  std::map<int, std::vector<Edge>> remote_edges_;
  /// Plan sink ids (result sinks re-attach after migration).
  std::vector<int> sink_ids_;
  /// Shared source schema and partition set Build resolved (for rebuilding
  /// the partitioner over survivors).
  SchemaPtr source_schema_;
  PartitionSet actual_ps_;
  /// Index of the source schema's temporal column (-1: no epoch notion,
  /// kills never trigger).
  int source_time_idx_ = -1;
  /// Merged partition -> host map across streams (plan placement;
  /// migration re-homes).
  std::vector<int> partition_host_merged_;
  /// Build-time snapshot of partition_host_merged_: a rejoining host's
  /// original partitions are looked up here after migrations re-homed them.
  std::vector<int> partition_host_build_;
  /// Membership lifecycle: telemetry bound lazily on the first applied
  /// event, and the cooldown guard against rejoin storms (two rebalancing
  /// rejoins must sit >= plan.adaptive.cooldown_epochs epochs apart).
  bool membership_telemetry_bound_ = false;
  bool rejoin_seen_ = false;
  uint64_t last_rejoin_epoch_ = 0;
  /// After a repartition: new partitioner index -> original partition.
  /// Empty while the original partitioner is in place.
  std::vector<int> survivor_map_;
  /// Operator ids whose stats were already folded at kill time.
  std::vector<char> stats_folded_;

  // --- Overload control (null when the plan has no budget/shed) ---
  std::unique_ptr<OverloadController> overload_;
  /// Cycle weights budgets are charged in (set_cost_params).
  CpuCostParams cost_params_;
  /// Plan op ids whose instance consumed the shed weight at Build; a
  /// migrated rebuild must re-bind (empty when shedding is unarmed).
  std::vector<char> shed_bound_;

  // --- Adaptive placement (null when the plan has no adapt directive) ---
  std::unique_ptr<AdaptiveController> adaptive_;
  /// Maps each plan op to its stage (-1 for sources); valid after
  /// BuildAdaptiveTopology.
  std::vector<int> adaptive_stage_of_;
  /// How to measure each controller edge: the producing op (cross-stage
  /// edges) or the source partition (intake edges, producer_op < 0).
  struct AdaptiveEdgeSrc {
    int producer_op = -1;
    int partition = -1;
  };
  std::vector<AdaptiveEdgeSrc> adaptive_edge_src_;
  /// Cumulative per-partition intake (driver-side capture sites), measured
  /// only while adaptive placement is armed.
  std::vector<uint64_t> adaptive_partition_tuples_;
  std::vector<uint64_t> adaptive_partition_bytes_;
  /// Set by any kill/migration/repartition: the next snapshot re-baselines
  /// instead of diffing across the discontinuity.
  bool adaptive_topology_dirty_ = false;

  // --- Lossless recovery (null when checkpoint_interval == 0) ---
  std::unique_ptr<RecoveryCoordinator> recovery_;
  /// True while migration replays delivery logs: local-edge sinks are muted
  /// (each consumer replays its own log) and external sinks rely on
  /// suppression windows.
  bool replaying_ = false;

  // --- Parallel execution (inert unless set_parallel(>1)) ---
  int parallel_threads_ = 1;
  ParallelMode parallel_mode_ = ParallelMode::kOff;
  std::string parallel_fallback_reason_;
  /// The plan armed per-host cycle budgets (captured before the plan moves
  /// into the controller): budget guards probe live operator state
  /// mid-epoch, which has no deterministic parallel equivalent.
  bool has_budgets_ = false;
  bool trace_events_enabled_ = false;
  std::unique_ptr<ParallelExecutor> exec_;
  /// True between StartParallel and StopParallel: delivery paths dispatch
  /// to the scheduler.
  bool workers_running_ = false;
  /// Barrier mode: global routing sequence (replay order) and the last
  /// source time a barrier ran for.
  uint64_t route_seq_ = 0;
  bool barrier_time_seen_ = false;
  uint64_t barrier_time_ = 0;
  uint64_t barriers_run_ = 0;
  /// Pipeline mode: per-tuple morsel accumulators, per source stream and
  /// partition.
  std::map<std::string, std::vector<TupleBatch>> morsel_pending_;
  /// Scheduler/worker instruments (advisory; outside the ledger).
  StatsRegistry sched_stats_;
  /// Wall-clock of the parallel region (advisory).
  std::chrono::steady_clock::time_point parallel_start_{};
  double parallel_wall_ms_ = 0;
};

}  // namespace streampart
