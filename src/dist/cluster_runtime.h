#pragma once

/// \file cluster_runtime.h
/// \brief Simulated cluster executing a distributed plan.
///
/// The runtime instantiates the real streaming operators for every alive
/// plan operator, wires local edges directly and cross-host edges through
/// accounting channels, routes source tuples through the configured
/// partitioner, and collects per-host work/traffic ledgers. Per DESIGN.md,
/// the operators do genuine computation over genuine tuples — the simulation
/// only substitutes cycle accounting for wall-clock execution.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/fault.h"
#include "dist/partitioner.h"
#include "exec/ops.h"
#include "metrics/cpu_model.h"
#include "metrics/report.h"
#include "optimizer/dist_plan.h"
#include "plan/query_graph.h"

namespace streampart {

/// \brief Execution outcome of one cluster run.
struct ClusterRunResult {
  std::vector<HostMetrics> hosts;
  /// Output tuples of every plan sink, keyed by stream name.
  std::map<std::string, TupleBatch> outputs;
  /// Total source tuples pushed.
  uint64_t source_tuples = 0;
  /// Hosts killed by fault injection, in kill order (empty when healthy).
  std::vector<int> dead_hosts;

  /// \brief Checked host lookup: Status instead of UB on an out-of-range
  /// host, and a loud error when the host was killed mid-run (its ledger
  /// row stops at the kill and must not be read as a full-run measurement).
  Result<const HostMetrics*> CheckedHost(int host) const;

  /// \brief Metrics of the aggregator host. Aborts (SP_CHECK) when the
  /// aggregator is out of range or died — a dead aggregator must fail
  /// loudly, not return a silently truncated row.
  const HostMetrics& aggregator(int aggregator_host = 0) const;

  /// \brief Combined CPU-seconds of all non-aggregator (leaf) hosts.
  double LeafCpuSeconds(const CpuCostParams& params,
                        int aggregator_host = 0) const;
};

/// \brief Executes a DistPlan over pushed source tuples.
class ClusterRuntime {
 public:
  /// \param graph supplies the UDAF registry; \param plan the placed
  /// operators. Both must outlive the runtime.
  ClusterRuntime(const QueryGraph* graph, const DistPlan* plan,
                 const ClusterConfig& config);

  /// \brief Controls per-host telemetry registries (on by default). Must be
  /// called before Build: operators bind their instruments at build time.
  void set_telemetry_enabled(bool enabled) { telemetry_enabled_ = enabled; }
  /// \brief Opt-in structured trace events on every host registry
  /// (--trace-events). Must be called before data flows.
  void set_trace_events_enabled(bool enabled);

  /// \brief Attaches a fault plan (dist/fault.h). Must be called before
  /// Build. An empty plan leaves every execution path byte-identical to a
  /// run without the call; a non-empty plan routes cross-host traffic
  /// through the fault controller and enables kills/recovery.
  void set_fault_plan(FaultPlan plan);

  /// \brief The fault controller, or nullptr when no plan was attached.
  const FaultController* fault_controller() const { return faults_.get(); }

  /// \brief Instantiates operators and channels; builds the partitioner for
  /// \p actual_ps (round-robin when empty).
  Status Build(const PartitionSet& actual_ps);

  /// \brief Routes one source tuple of stream \p source to its partition.
  void PushSource(const std::string& source, const Tuple& tuple);

  /// \brief Routes a batch of source tuples in one pass: one routing lookup,
  /// per-partition bucketing, and — for cross-host edges — one serialization
  /// round trip per (partition bucket, producer) instead of one per tuple
  /// per consumer. All accounted metrics (source_tuples, net_tuples,
  /// net_bytes, operator stats) are identical to the per-tuple path.
  void PushSourceBatch(const std::string& source, TupleSpan batch);

  /// \brief End-of-stream on every source partition; flushes all operators.
  void FinishSources();

  /// \brief Ledger and outputs (valid after FinishSources).
  const ClusterRunResult& result() const { return result_; }

  /// \brief Per-stream summed operator stats (debugging/tests).
  OpStats StatsForStream(const std::string& stream_name) const;

  /// \brief Telemetry registry of host \p host (never null; empty when
  /// telemetry is disabled or compiled out).
  const StatsRegistry& host_registry(int host) const {
    return *host_stats_[host];
  }

  /// \brief Folds the run's host ledgers, the cost model, and every host's
  /// telemetry registry into one structured RunLedger (valid after
  /// FinishSources). Meta fields hosts/duration_sec/source_tuples are
  /// pre-populated; callers add workload/epoch_unix and outputs as needed.
  RunLedger MakeLedger(const CpuCostParams& params, double duration_sec,
                       const RunLedgerOptions& options = {}) const;

 private:
  struct SourceEdge {
    Operator* consumer;
    size_t port;
    int consumer_host;
  };
  struct RemoteEdge {
    Operator* consumer;
    size_t port;
    int to_host;
  };

  void AccountTransfer(int from_host, int to_host, const Tuple& tuple);
  /// Batched ledger update: \p n tuples totalling \p bytes encoded bytes
  /// moved from \p from_host to \p to_host.
  void AccountTransferBatch(int from_host, int to_host, uint64_t n,
                            size_t bytes);

  /// True when fault injection is live (plan attached and non-empty).
  bool faults_active() const { return faults_ != nullptr && faults_->active(); }
  /// Routes one producer emission across a degraded (or healthy) cross-host
  /// edge. Only called when faults are active; \p wire is the undecoded
  /// original (sized for accounting), \p decoded the post-serde copy.
  void DeliverRemoteFaulty(int from_host, int to_host, const Tuple& wire,
                           const Tuple& decoded, Operator* consumer,
                           size_t port);
  /// Receiving side of a faulty delivery: accounts and pushes unless the
  /// destination host is dead. Returns delivery success.
  bool ReceiveRemote(int to_host, const Tuple& tuple, size_t bytes,
                     Operator* consumer, size_t port);
  /// Kills \p host now: records window invalidations, folds its ledger,
  /// finishes downstream ports it feeds, and (if the plan allows)
  /// repartitions over the survivors.
  void KillHost(int host);
  /// Rebuilds the partitioner over the surviving partitions.
  void Repartition();
  /// Source-time hook: drains channel queues at epoch boundaries and
  /// executes kills that have come due.
  void ObserveSourceTime(const Tuple& tuple);

  const QueryGraph* graph_;
  const DistPlan* plan_;
  ClusterConfig config_;
  std::unique_ptr<StreamPartitioner> partitioner_;
  /// Operator instances indexed by plan op id (null for sources/dead ops).
  std::vector<OperatorPtr> instances_;
  /// Routing: source stream name -> per-partition consumer edges.
  std::map<std::string, std::vector<std::vector<SourceEdge>>> routing_;
  /// Host of each source partition, per stream.
  std::map<std::string, std::vector<int>> partition_hosts_;
  /// Scratch per-partition buckets reused across PushSourceBatch calls.
  std::vector<TupleBatch> bucket_scratch_;
  /// One telemetry registry per simulated host (the registries are
  /// single-writer: the whole simulation runs on one thread, and scope
  /// names carry the plan op id so instances never collide).
  std::vector<std::unique_ptr<StatsRegistry>> host_stats_;
  ClusterRunResult result_;
  bool telemetry_enabled_ = true;
  bool built_ = false;
  bool finished_ = false;

  // --- Fault injection (all empty/null on the healthy path) ---
  std::unique_ptr<FaultController> faults_;
  /// Cross-host edges per producer id (kept for kill-time port finishing).
  std::map<int, std::vector<RemoteEdge>> remote_edges_;
  /// Shared source schema and partition set Build resolved (for rebuilding
  /// the partitioner over survivors).
  SchemaPtr source_schema_;
  PartitionSet actual_ps_;
  /// Index of the source schema's temporal column (-1: no epoch notion,
  /// kills never trigger).
  int source_time_idx_ = -1;
  /// Merged partition -> host map across streams (plan placement).
  std::vector<int> partition_host_merged_;
  /// After a repartition: new partitioner index -> original partition.
  /// Empty while the original partitioner is in place.
  std::vector<int> survivor_map_;
  /// Operator ids whose stats were already folded at kill time.
  std::vector<char> stats_folded_;
};

}  // namespace streampart
