#include "dist/fault.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"

namespace streampart {
namespace {

/// Parses one `key=value` token; returns false when the token has no '='.
bool SplitKeyValue(std::string_view token, std::string_view* key,
                   std::string_view* value) {
  size_t eq = token.find('=');
  if (eq == std::string_view::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Result<double> ParseProbability(int line_no, std::string_view key,
                                std::string_view value) {
  std::string buf(value);
  errno = 0;
  char* end = nullptr;
  double p = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault plan line ", line_no,
                                   ": bad number for '", std::string(key),
                                   "': '", buf, "'");
  }
  // The negated form rejects NaN, which compares false against everything.
  if (!(p >= 0 && p <= 1)) {
    return Status::InvalidArgument("fault plan line ", line_no, ": '",
                                   std::string(key),
                                   "' must be a probability in [0,1], got ",
                                   buf);
  }
  return p;
}

Result<uint64_t> ParseUint(int line_no, std::string_view key,
                           std::string_view value) {
  std::string buf(value);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end == buf.c_str() || *end != '\0' ||
      buf.find('-') != std::string::npos) {
    return Status::InvalidArgument("fault plan line ", line_no,
                                   ": bad unsigned integer for '",
                                   std::string(key), "': '", buf, "'");
  }
  return static_cast<uint64_t>(v);
}

/// Host id or the -1 wildcard (written `*` or `-1`).
Result<int> ParseHost(int line_no, std::string_view key,
                      std::string_view value) {
  if (value == "*" || value == "-1") return -1;
  SP_ASSIGN_OR_RETURN(uint64_t v, ParseUint(line_no, key, value));
  if (v > 1000000) {
    return Status::InvalidArgument("fault plan line ", line_no,
                                   ": implausible host id for '",
                                   std::string(key), "'");
  }
  return static_cast<int>(v);
}

/// Parses `groups=0,1|2,3`: '|' separates groups, ',' separates hosts.
/// Groups must number >= 2, be non-empty, and be pairwise disjoint; hosts
/// must be explicit (no wildcard).
Result<std::vector<std::vector<int>>> ParseGroups(int line_no,
                                                  std::string_view value) {
  auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("fault plan line ", line_no, ": ", why);
  };
  std::vector<std::vector<int>> groups;
  std::vector<bool> seen;
  size_t pos = 0;
  while (true) {
    size_t bar = value.find('|', pos);
    std::string_view grp = value.substr(
        pos, (bar == std::string_view::npos ? value.size() : bar) - pos);
    if (grp.empty()) return bad("empty group in 'groups'");
    std::vector<int> hosts;
    size_t i = 0;
    while (i <= grp.size()) {
      size_t comma = grp.find(',', i);
      std::string_view tok = grp.substr(
          i, (comma == std::string_view::npos ? grp.size() : comma) - i);
      if (tok.empty()) return bad("empty host in 'groups'");
      SP_ASSIGN_OR_RETURN(int h, ParseHost(line_no, "groups", tok));
      if (h < 0) {
        return bad("'groups' hosts must be explicit ids (no wildcard)");
      }
      if (h >= static_cast<int>(seen.size())) seen.resize(h + 1, false);
      if (seen[h]) {
        return bad("host " + std::to_string(h) +
                   " appears in more than one group");
      }
      seen[h] = true;
      hosts.push_back(h);
      if (comma == std::string_view::npos) break;
      i = comma + 1;
    }
    groups.push_back(std::move(hosts));
    if (bar == std::string_view::npos) break;
    pos = bar + 1;
  }
  if (groups.size() < 2) {
    return bad("'groups' needs at least two '|'-separated groups");
  }
  return groups;
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    // Tokenize on whitespace.
    std::vector<std::string_view> tokens;
    size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i > start) tokens.push_back(line.substr(start, i - start));
    }
    if (tokens.empty()) continue;
    std::string_view directive = tokens[0];

    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("fault plan line ", line_no, ": ", why);
    };

    if (directive == "seed") {
      if (tokens.size() != 2) return bad("expected 'seed <n>'");
      SP_ASSIGN_OR_RETURN(plan.seed, ParseUint(line_no, "seed", tokens[1]));
    } else if (directive == "ckpt") {
      if (tokens.size() != 2) return bad("expected 'ckpt <interval-epochs>'");
      SP_ASSIGN_OR_RETURN(plan.checkpoint_interval,
                          ParseUint(line_no, "ckpt", tokens[1]));
      if (plan.checkpoint_interval == 0) {
        return bad("'ckpt' interval must be >= 1 epoch (omit the line to "
                   "disable checkpointing)");
      }
    } else if (directive == "epoch_width") {
      if (tokens.size() != 2) return bad("expected 'epoch_width <stride>'");
      SP_ASSIGN_OR_RETURN(plan.epoch_width,
                          ParseUint(line_no, "epoch_width", tokens[1]));
      if (plan.epoch_width == 0) {
        return bad("'epoch_width' must be >= 1 timestamp unit");
      }
    } else if (directive == "recover") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        return bad("expected 'recover on|off'");
      }
      plan.repartition = tokens[1] == "on";
    } else if (directive == "kill") {
      HostKillSpec kill;
      bool have_host = false, have_epoch = false;
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected key=value tokens after 'kill'");
        }
        if (key == "host") {
          SP_ASSIGN_OR_RETURN(uint64_t h, ParseUint(line_no, key, value));
          kill.host = static_cast<int>(h);
          have_host = true;
        } else if (key == "epoch") {
          SP_ASSIGN_OR_RETURN(kill.epoch, ParseUint(line_no, key, value));
          have_epoch = true;
        } else {
          return bad("unknown kill key '" + std::string(key) + "'");
        }
      }
      if (!have_host || !have_epoch) {
        return bad("'kill' needs host= and epoch=");
      }
      plan.kills.push_back(kill);
    } else if (directive == "partition") {
      PartitionSpec part;
      bool have_groups = false, have_at = false;
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected key=value tokens after 'partition'");
        }
        if (key == "groups") {
          SP_ASSIGN_OR_RETURN(part.groups, ParseGroups(line_no, value));
          have_groups = true;
        } else if (key == "at") {
          SP_ASSIGN_OR_RETURN(part.epoch, ParseUint(line_no, key, value));
          have_at = true;
        } else {
          return bad("unknown partition key '" + std::string(key) + "'");
        }
      }
      if (!have_groups || !have_at) {
        return bad("'partition' needs groups= and at=");
      }
      plan.partitions.push_back(std::move(part));
    } else if (directive == "heal") {
      HealSpec heal;
      bool have_at = false;
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected key=value tokens after 'heal'");
        }
        if (key == "at") {
          SP_ASSIGN_OR_RETURN(heal.epoch, ParseUint(line_no, key, value));
          have_at = true;
        } else {
          return bad("unknown heal key '" + std::string(key) + "'");
        }
      }
      if (!have_at) return bad("'heal' needs at=");
      plan.heals.push_back(heal);
    } else if (directive == "rejoin") {
      RejoinSpec rejoin;
      bool have_host = false, have_at = false;
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected key=value tokens after 'rejoin'");
        }
        if (key == "host") {
          SP_ASSIGN_OR_RETURN(int h, ParseHost(line_no, key, value));
          if (h < 0) {
            return bad("'rejoin' host must be an explicit id (no wildcard)");
          }
          rejoin.host = h;
          have_host = true;
        } else if (key == "at") {
          SP_ASSIGN_OR_RETURN(rejoin.epoch, ParseUint(line_no, key, value));
          have_at = true;
        } else {
          return bad("unknown rejoin key '" + std::string(key) + "'");
        }
      }
      if (!have_host || !have_at) {
        return bad("'rejoin' needs host= and at=");
      }
      plan.rejoins.push_back(rejoin);
    } else if (directive == "channel") {
      ChannelFaultSpec chan;
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected key=value tokens after 'channel'");
        }
        if (key == "from") {
          SP_ASSIGN_OR_RETURN(chan.from_host, ParseHost(line_no, key, value));
        } else if (key == "to") {
          SP_ASSIGN_OR_RETURN(chan.to_host, ParseHost(line_no, key, value));
        } else if (key == "drop") {
          SP_ASSIGN_OR_RETURN(chan.drop_p, ParseProbability(line_no, key, value));
        } else if (key == "dup") {
          SP_ASSIGN_OR_RETURN(chan.dup_p, ParseProbability(line_no, key, value));
        } else if (key == "reorder") {
          SP_ASSIGN_OR_RETURN(chan.reorder_p, ParseProbability(line_no, key, value));
        } else if (key == "queue") {
          SP_ASSIGN_OR_RETURN(uint64_t cap, ParseUint(line_no, key, value));
          chan.queue_capacity = static_cast<size_t>(cap);
        } else {
          return bad("unknown channel key '" + std::string(key) + "'");
        }
      }
      plan.channels.push_back(chan);
    } else if (directive == "budget") {
      HostBudgetSpec budget;
      bool have_cycles = false;
      for (size_t t = 1; t < tokens.size(); ++t) {
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected key=value tokens after 'budget'");
        }
        if (key == "host") {
          SP_ASSIGN_OR_RETURN(budget.host, ParseHost(line_no, key, value));
        } else if (key == "cycles") {
          std::string buf(value);
          errno = 0;
          char* end = nullptr;
          double cycles = std::strtod(buf.c_str(), &end);
          if (errno != 0 || end == buf.c_str() || *end != '\0' ||
              !(cycles > 0)) {
            return bad("'cycles' must be a positive number, got '" + buf +
                       "'");
          }
          budget.cycles = cycles;
          have_cycles = true;
        } else if (key == "queue") {
          SP_ASSIGN_OR_RETURN(uint64_t cap, ParseUint(line_no, key, value));
          budget.queue_capacity = static_cast<size_t>(cap);
        } else if (key == "reserve") {
          SP_ASSIGN_OR_RETURN(budget.reserve,
                              ParseProbability(line_no, key, value));
          if (budget.reserve >= 1) {
            return bad("'reserve' must leave a usable budget (< 1)");
          }
        } else {
          return bad("unknown budget key '" + std::string(key) + "'");
        }
      }
      if (!have_cycles) return bad("'budget' needs cycles=");
      plan.budgets.push_back(budget);
    } else if (directive == "shed") {
      if (plan.shed.enabled()) return bad("duplicate 'shed' directive");
      if (tokens.size() != 2) {
        return bad("expected 'shed m=<keep-1-in-m>' or 'shed max_m=<cap>'");
      }
      std::string_view key, value;
      if (!SplitKeyValue(tokens[1], &key, &value)) {
        return bad("expected key=value token after 'shed'");
      }
      if (key == "m") {
        SP_ASSIGN_OR_RETURN(plan.shed.fixed_m,
                            ParseUint(line_no, key, value));
        if (plan.shed.fixed_m < 2) {
          return bad("'shed m' must be >= 2 (keep 1 tuple in m)");
        }
      } else if (key == "max_m") {
        SP_ASSIGN_OR_RETURN(plan.shed.max_m, ParseUint(line_no, key, value));
        if (plan.shed.max_m < 2) {
          return bad("'shed max_m' must be >= 2");
        }
      } else {
        return bad("unknown shed key '" + std::string(key) + "'");
      }
    } else if (directive == "adapt") {
      if (tokens.size() < 2) {
        return bad("expected 'adapt on' or 'adapt key=value ...'");
      }
      plan.adaptive.enabled = true;
      for (size_t t = 1; t < tokens.size(); ++t) {
        if (tokens[t] == "on") continue;  // bare arming, defaults apply
        std::string_view key, value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          return bad("expected 'on' or key=value tokens after 'adapt'");
        }
        if (key == "warmup") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.warmup_epochs,
                              ParseUint(line_no, key, value));
        } else if (key == "hysteresis") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.hysteresis,
                              ParseProbability(line_no, key, value));
        } else if (key == "cooldown") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.cooldown_epochs,
                              ParseUint(line_no, key, value));
        } else if (key == "max_cooldown") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.max_cooldown_epochs,
                              ParseUint(line_no, key, value));
          if (plan.adaptive.max_cooldown_epochs == 0) {
            return bad("'max_cooldown' must be >= 1 epoch");
          }
        } else if (key == "rollback") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.rollback_epochs,
                              ParseUint(line_no, key, value));
          if (plan.adaptive.rollback_epochs == 0) {
            return bad("'rollback' must be >= 1 epoch");
          }
        } else if (key == "amortize") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.amortize_epochs,
                              ParseUint(line_no, key, value));
          if (plan.adaptive.amortize_epochs == 0) {
            return bad("'amortize' must be >= 1 epoch");
          }
        } else if (key == "drift") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.drift_threshold,
                              ParseProbability(line_no, key, value));
        } else if (key == "probe_epoch") {
          SP_ASSIGN_OR_RETURN(plan.adaptive.probe_epoch,
                              ParseUint(line_no, key, value));
        } else {
          return bad("unknown adapt key '" + std::string(key) + "'");
        }
      }
    } else {
      return bad("unknown directive '" + std::string(directive) + "'");
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open fault plan file: ", path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "seed " << seed << "\n";
  out << "recover " << (repartition ? "on" : "off") << "\n";
  // Recovery directives print only when non-default so pre-recovery plan
  // files round-trip byte-identically.
  if (checkpoint_interval != 0) out << "ckpt " << checkpoint_interval << "\n";
  if (epoch_width != 1) out << "epoch_width " << epoch_width << "\n";
  for (const HostKillSpec& k : kills) {
    out << "kill host=" << k.host << " epoch=" << k.epoch << "\n";
  }
  for (const PartitionSpec& p : partitions) {
    out << "partition groups=";
    for (size_t g = 0; g < p.groups.size(); ++g) {
      if (g > 0) out << "|";
      for (size_t h = 0; h < p.groups[g].size(); ++h) {
        if (h > 0) out << ",";
        out << p.groups[g][h];
      }
    }
    out << " at=" << p.epoch << "\n";
  }
  for (const HealSpec& h : heals) out << "heal at=" << h.epoch << "\n";
  for (const RejoinSpec& r : rejoins) {
    out << "rejoin host=" << r.host << " at=" << r.epoch << "\n";
  }
  auto host_str = [](int h) {
    return h < 0 ? std::string("*") : std::to_string(h);
  };
  // 17 significant digits: the shortest precision guaranteed to round-trip
  // any double, so Parse(ToString()) restores bit-identical probabilities
  // (anything less would silently shift the RNG draw sequence).
  char num[64];
  for (const ChannelFaultSpec& c : channels) {
    out << "channel from=" << host_str(c.from_host)
        << " to=" << host_str(c.to_host);
    std::snprintf(num, sizeof(num), "%.17g", c.drop_p);
    out << " drop=" << num;
    std::snprintf(num, sizeof(num), "%.17g", c.dup_p);
    out << " dup=" << num;
    std::snprintf(num, sizeof(num), "%.17g", c.reorder_p);
    out << " reorder=" << num;
    out << " queue=" << c.queue_capacity << "\n";
  }
  for (const HostBudgetSpec& b : budgets) {
    out << "budget host=" << host_str(b.host);
    std::snprintf(num, sizeof(num), "%.17g", b.cycles);
    out << " cycles=" << num;
    out << " queue=" << b.queue_capacity;
    std::snprintf(num, sizeof(num), "%.17g", b.reserve);
    out << " reserve=" << num << "\n";
  }
  if (shed.fixed_m > 0) out << "shed m=" << shed.fixed_m << "\n";
  if (shed.max_m > 0) out << "shed max_m=" << shed.max_m << "\n";
  if (adaptive.enabled) {
    const AdaptiveSpec defaults;
    out << "adapt on";
    if (adaptive.warmup_epochs != defaults.warmup_epochs) {
      out << " warmup=" << adaptive.warmup_epochs;
    }
    if (adaptive.hysteresis != defaults.hysteresis) {
      std::snprintf(num, sizeof(num), "%.17g", adaptive.hysteresis);
      out << " hysteresis=" << num;
    }
    if (adaptive.cooldown_epochs != defaults.cooldown_epochs) {
      out << " cooldown=" << adaptive.cooldown_epochs;
    }
    if (adaptive.max_cooldown_epochs != defaults.max_cooldown_epochs) {
      out << " max_cooldown=" << adaptive.max_cooldown_epochs;
    }
    if (adaptive.rollback_epochs != defaults.rollback_epochs) {
      out << " rollback=" << adaptive.rollback_epochs;
    }
    if (adaptive.amortize_epochs != defaults.amortize_epochs) {
      out << " amortize=" << adaptive.amortize_epochs;
    }
    if (adaptive.drift_threshold != defaults.drift_threshold) {
      std::snprintf(num, sizeof(num), "%.17g", adaptive.drift_threshold);
      out << " drift=" << num;
    }
    if (adaptive.probe_epoch != defaults.probe_epoch) {
      out << " probe_epoch=" << adaptive.probe_epoch;
    }
    out << "\n";
  }
  return out.str();
}

FaultChannel::FaultChannel(const ChannelFaultSpec& spec, int from_host,
                           int to_host, uint64_t plan_seed)
    : spec_(spec),
      rng_(HashCombine(HashCombine(Mix64(plan_seed),
                                   static_cast<uint64_t>(from_host)),
                       static_cast<uint64_t>(to_host))) {
  row_.from_host = from_host;
  row_.to_host = to_host;
}

void FaultChannel::BindTelemetry(StatsScope* scope) {
  if (scope == nullptr) return;
  t_sent_ = scope->counter(stats::kChanSent);
  t_delivered_ = scope->counter(stats::kChanDelivered);
  t_dropped_ = scope->counter(stats::kChanDropped);
  t_dup_extras_ = scope->counter(stats::kChanDupExtras);
  t_reordered_ = scope->counter(stats::kChanReordered);
  t_queue_dropped_ = scope->counter(stats::kChanQueueDropped);
  t_retransmitted_ = scope->counter(stats::kChanRetxSent);
}

void FaultChannel::CountRetransmit() {
  ++row_.retransmitted;
  if (t_retransmitted_) t_retransmitted_->Inc();
}

void FaultChannel::Send(const Tuple& tuple, const DeliverFn& deliver) {
  ++row_.sent;
  if (t_sent_) t_sent_->Inc();
  // Stage 1: drop. Zero-rate stages skip the RNG draw entirely so an
  // all-zero channel is observationally identical to a healthy edge.
  if (spec_.drop_p > 0 && rng_.Chance(spec_.drop_p)) {
    ++row_.dropped;
    if (t_dropped_) t_dropped_->Inc();
    return;
  }
  // Stage 2: duplicate (one extra copy rides the rest of the pipeline).
  int copies = 1;
  if (spec_.dup_p > 0 && rng_.Chance(spec_.dup_p)) {
    copies = 2;
    ++row_.dup_extras;
    if (t_dup_extras_) t_dup_extras_->Inc();
  }
  for (int c = 0; c < copies; ++c) {
    // Stage 3: reorder via a one-slot hold — holding the current tuple and
    // releasing it after the next one swaps adjacent deliveries.
    if (spec_.reorder_p > 0) {
      if (!held_.has_value() && rng_.Chance(spec_.reorder_p)) {
        held_ = Entry{tuple, deliver};
        ++row_.reordered;
        if (t_reordered_) t_reordered_->Inc();
        continue;
      }
      Output(Entry{tuple, deliver});
      if (held_.has_value()) {
        Entry h = std::move(*held_);
        held_.reset();
        Output(std::move(h));
      }
    } else {
      Output(Entry{tuple, deliver});
    }
  }
}

void FaultChannel::Output(Entry entry) {
  if (spec_.queue_capacity == 0) {
    DeliverNow(entry);
    return;
  }
  // Bounded store-and-forward queue with a drop-oldest backpressure policy.
  if (queue_.size() >= spec_.queue_capacity) {
    queue_.pop_front();
    ++row_.queue_dropped;
    if (t_queue_dropped_) t_queue_dropped_->Inc();
  }
  queue_.push_back(std::move(entry));
}

void FaultChannel::DeliverNow(const Entry& entry) {
  if (!entry.deliver(entry.tuple)) {
    return;  // dead receiver: controller counts the loss
  }
  ++row_.delivered;
  if (t_delivered_) t_delivered_->Inc();
}

void FaultChannel::DrainQueue() {
  while (!queue_.empty()) {
    Entry e = std::move(queue_.front());
    queue_.pop_front();
    DeliverNow(e);
  }
}

void FaultChannel::Flush() {
  DrainQueue();
  if (held_.has_value()) {
    Entry h = std::move(*held_);
    held_.reset();
    Output(std::move(h));
    DrainQueue();
  }
}

FaultController::FaultController(FaultPlan plan, int num_hosts)
    : plan_(std::move(plan)),
      active_(!plan_.empty()),
      alive_(static_cast<size_t>(num_hosts), true),
      kills_(plan_.kills) {
  // Stable sort keeps plan order among kills sharing an epoch.
  std::stable_sort(kills_.begin(), kills_.end(),
                   [](const HostKillSpec& a, const HostKillSpec& b) {
                     return a.epoch < b.epoch;
                   });
  // Membership events merge into one epoch-ordered queue. At the same epoch
  // heals apply first, then rejoins, then partitions: restore connectivity,
  // re-admit hosts, then install the new split that may name them.
  for (const HealSpec& h : plan_.heals) {
    MembershipEvent e;
    e.kind = MembershipEvent::Kind::kHeal;
    e.epoch = h.epoch;
    membership_.push_back(std::move(e));
  }
  for (const RejoinSpec& r : plan_.rejoins) {
    MembershipEvent e;
    e.kind = MembershipEvent::Kind::kRejoin;
    e.epoch = r.epoch;
    e.host = r.host;
    membership_.push_back(std::move(e));
  }
  for (const PartitionSpec& p : plan_.partitions) {
    MembershipEvent e;
    e.kind = MembershipEvent::Kind::kPartition;
    e.epoch = p.epoch;
    e.groups = p.groups;
    membership_.push_back(std::move(e));
  }
  std::stable_sort(membership_.begin(), membership_.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.epoch < b.epoch;
                   });
  member_section_.active = plan_.membership_enabled();
}

std::vector<MembershipEvent> FaultController::DueMembershipEvents(
    uint64_t time) {
  std::vector<MembershipEvent> due;
  if (!active_) return due;
  while (membership_done_ < membership_.size() &&
         membership_[membership_done_].epoch <= time) {
    due.push_back(membership_[membership_done_]);
    ++membership_done_;
  }
  return due;
}

bool FaultController::PairSevered(int from_host, int to_host) const {
  if (!partition_active_ || from_host == to_host) return false;
  if (from_host < 0 || to_host < 0) return false;
  auto f = partition_group_.find(from_host);
  auto t = partition_group_.find(to_host);
  int fg = f == partition_group_.end() ? -1 : f->second;
  int tg = t == partition_group_.end() ? -1 : t->second;
  // Hosts the directive did not name are isolated from everyone (including
  // each other): two unnamed hosts share no network either.
  if (fg < 0 || tg < 0) return true;
  return fg != tg;
}

void FaultController::ApplyPartition(const PartitionSpec& spec) {
  partition_active_ = true;
  partition_group_.clear();
  MembershipEventRow row;
  row.epoch = spec.epoch;
  row.kind = "partition";
  for (size_t g = 0; g < spec.groups.size(); ++g) {
    for (int h : spec.groups[g]) {
      partition_group_[h] = static_cast<int>(g);
      row.hosts.push_back(h);
    }
  }
  ++member_section_.partitions;
  member_section_.engaged = true;
  open_partition_row_ = static_cast<int>(member_section_.events.size());
  member_section_.events.push_back(std::move(row));
  if (t_member_partitions_) t_member_partitions_->Inc();
}

void FaultController::ApplyHeal(uint64_t epoch) {
  partition_active_ = false;
  partition_group_.clear();
  open_partition_row_ = -1;
  MembershipEventRow row;
  row.epoch = epoch;
  row.kind = "heal";
  ++member_section_.heals;
  member_section_.engaged = true;
  member_section_.events.push_back(std::move(row));
  if (t_member_heals_) t_member_heals_->Inc();
}

void FaultController::MarkRejoined(int host) {
  SP_CHECK(host >= 0);
  if (host >= static_cast<int>(alive_.size())) {
    // Elastic scale-out: a never-before-seen host grows the liveness table.
    alive_.resize(static_cast<size_t>(host) + 1, true);
  }
  alive_[host] = true;
}

void FaultController::RecordRejoin(int host, uint64_t epoch,
                                   uint64_t moved_bytes) {
  MembershipEventRow row;
  row.epoch = epoch;
  row.kind = "rejoin";
  row.hosts.push_back(host);
  row.moved_bytes = moved_bytes;
  ++member_section_.rejoins;
  member_section_.moved_bytes += moved_bytes;
  member_section_.engaged = true;
  member_section_.events.push_back(std::move(row));
  if (t_member_rejoins_) t_member_rejoins_->Inc();
  if (t_member_moved_bytes_) t_member_moved_bytes_->Add(moved_bytes);
}

void FaultController::RecordRejoinSuppressed(int host, uint64_t epoch) {
  MembershipEventRow row;
  row.epoch = epoch;
  row.kind = "rejoin_suppressed";
  row.hosts.push_back(host);
  ++member_section_.rejoins_suppressed;
  member_section_.engaged = true;
  member_section_.events.push_back(std::move(row));
  if (t_member_suppressed_) t_member_suppressed_->Inc();
}

void FaultController::CountPartitionRefused() {
  ++member_section_.sends_refused;
  member_section_.engaged = true;
  if (open_partition_row_ >= 0 &&
      open_partition_row_ <
          static_cast<int>(member_section_.events.size())) {
    ++member_section_.events[open_partition_row_].refused;
  }
  if (t_member_refused_) t_member_refused_->Inc();
}

void FaultController::BindMembershipTelemetry(StatsScope* scope) {
  if (scope == nullptr) return;
  t_member_partitions_ = scope->counter(stats::kMemberPartitions);
  t_member_heals_ = scope->counter(stats::kMemberHeals);
  t_member_rejoins_ = scope->counter(stats::kMemberRejoins);
  t_member_refused_ = scope->counter(stats::kMemberSendsRefused);
  t_member_moved_bytes_ = scope->counter(stats::kMemberMovedBytes);
  t_member_suppressed_ = scope->counter(stats::kMemberRejoinsSuppressed);
}

MembershipSection FaultController::membership_section(
    double cycles_per_checkpoint_byte) const {
  MembershipSection out = member_section_;
  // Serialize + restore: each moved byte is written once and read once.
  out.rejoin_cost_cycles = 2.0 * static_cast<double>(out.moved_bytes) *
                           cycles_per_checkpoint_byte;
  return out;
}

std::vector<int> FaultController::OnSourceTime(uint64_t time) {
  std::vector<int> due;
  if (!active_) return due;
  if (current_time_.has_value() && time <= *current_time_) return due;
  current_time_ = time;
  // Epoch boundary (epoch id = time / epoch_width): bounded queues drain
  // before anything dies. With the default width of 1 the id advances on
  // every distinct timestamp, exactly the original behaviour.
  uint64_t width = plan_.epoch_width == 0 ? 1 : plan_.epoch_width;
  uint64_t eid = time / width;
  if (!current_eid_.has_value() || eid > *current_eid_) {
    current_eid_ = eid;
    DrainAllQueues();
  }
  while (kills_done_ < kills_.size() && kills_[kills_done_].epoch <= time) {
    int host = kills_[kills_done_].host;
    ++kills_done_;
    if (host_alive(host)) due.push_back(host);
  }
  return due;
}

const ChannelFaultSpec* FaultController::FindSpec(int from_host,
                                                 int to_host) const {
  const ChannelFaultSpec* wildcard = nullptr;
  for (const ChannelFaultSpec& spec : plan_.channels) {
    bool from_ok = spec.from_host < 0 || spec.from_host == from_host;
    bool to_ok = spec.to_host < 0 || spec.to_host == to_host;
    if (!from_ok || !to_ok) continue;
    if (spec.from_host == from_host && spec.to_host == to_host) return &spec;
    if (wildcard == nullptr) wildcard = &spec;
  }
  return wildcard;
}

FaultChannel* FaultController::ChannelFor(
    int from_host, int to_host,
    const std::function<StatsScope*()>& make_scope) {
  if (!active_) return nullptr;
  auto it = channels_.find({from_host, to_host});
  if (it != channels_.end()) return it->second.get();
  const ChannelFaultSpec* spec = FindSpec(from_host, to_host);
  if (spec == nullptr) return nullptr;
  auto channel =
      std::make_unique<FaultChannel>(*spec, from_host, to_host, plan_.seed);
  if (make_scope) channel->BindTelemetry(make_scope());
  FaultChannel* raw = channel.get();
  channels_.emplace(std::make_pair(from_host, to_host), std::move(channel));
  channel_order_.push_back(raw);
  return raw;
}

FaultChannel* FaultController::FindChannel(int from_host, int to_host) {
  auto it = channels_.find({from_host, to_host});
  return it == channels_.end() ? nullptr : it->second.get();
}

void FaultController::FlushChannel(int from_host, int to_host) {
  if (FaultChannel* channel = FindChannel(from_host, to_host)) {
    channel->Flush();
  }
}

void FaultController::MarkDead(int host) {
  SP_CHECK(host >= 0 && host < static_cast<int>(alive_.size()));
  if (!alive_[host]) return;
  alive_[host] = false;
  section_.hosts_killed.push_back(host);
}

void FaultController::RecordInvalidation(int host, const std::string& scope,
                                         uint64_t panes, uint64_t tuples) {
  if (panes == 0 && tuples == 0) return;
  section_.invalidations.push_back({host, scope, panes, tuples});
  section_.panes_invalidated += panes;
  section_.inflight_tuples_lost += tuples;
}

void FaultController::RecordRepartition(uint64_t state_tuples) {
  ++section_.repartitions;
  section_.repartition_state_tuples += state_tuples;
}

void FaultController::FlushAll() {
  // Index-based on purpose: delivering a held/queued tuple can re-enter the
  // controller (a consumer push may synchronously emit on a cross-host edge
  // and lazily create a new channel via ChannelFor, growing channel_order_).
  // A range-for would be UB on reallocation; indexing is safe and
  // self-correcting — channels born during the cascade get flushed too.
  for (size_t i = 0; i < channel_order_.size(); ++i) {
    channel_order_[i]->Flush();
  }
}

void FaultController::DrainAllQueues() {
  // Same re-entrancy hazard as FlushAll: draining delivers tuples, which can
  // create channels mid-loop. Index over the creation-order vector so new
  // channels are neither skipped nor iterated through invalid state.
  for (size_t i = 0; i < channel_order_.size(); ++i) {
    channel_order_[i]->DrainQueue();
  }
}

FaultSection FaultController::section(double cycles_per_state_tuple) const {
  FaultSection out = section_;
  out.active = active_;
  out.repartition_cost_cycles =
      static_cast<double>(out.repartition_state_tuples) *
      cycles_per_state_tuple;
  for (const FaultChannel* channel : channel_order_) {
    out.channels.push_back(channel->row());
  }
  return out;
}

}  // namespace streampart
