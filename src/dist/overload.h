#pragma once

/// \file overload.h
/// \brief Graceful degradation under overload: per-host per-epoch CPU cycle
/// budgets, bounded backpressure queues, deterministic load shedding with
/// Horvitz–Thompson scale-up, and skew detection feeding hot-partition moves.
///
/// A production DSMS that cannot keep up with its input does not get to
/// pause the network; it must degrade. The OverloadController gives each
/// simulated host a per-epoch cycle budget (priced in the same model cycles
/// as metrics/cpu_model.h) and enforces it at the capture tap in three
/// escalating stages:
///
///   1. **Backpressure**: when a host's charged cycles for the current epoch
///      reach the guard threshold `cycles * (1 - reserve)`, further source
///      tuples routed to it are parked in a bounded per-host defer queue and
///      re-admitted at the next epoch boundary (re-checked against the fresh
///      budget). Queue overflow evicts the oldest entry with exact
///      accounting (`bp_queue_dropped`) — the drop-oldest policy of the
///      degraded channels, applied to intake.
///   2. **Shedding**: when the plan arms a shed policy, the tap keeps 1
///      tuple in `m` (uniform, seeded, deterministic) and exposes the
///      integer Horvitz–Thompson weight `m` to downstream aggregates
///      (Operator::BindShedWeight), so SUM/COUNT-style answers are scaled
///      estimates carrying a computed 3-sigma relative error bound in the
///      ledger. `m` changes only at epoch boundaries: `shed m=M` fixes it,
///      `shed max_m=M` adapts it from the previous epoch's measured demand.
///   3. **Skew repartitioning**: a host over budget for two consecutive
///      epochs with a dominant hot partition triggers a proposal to move
///      that partition to the least-loaded host, priced against the
///      advisor's `state_move_bytes` penalty and executed through the
///      recovery machinery's state migration (ClusterRuntime).
///
/// Shedding never silently crosses a non-sampleable operator: at Build time
/// the runtime binds the shed weight to the first stateful operator
/// downstream of each source and records an `inexact_reasons` entry (and
/// `exact = false`) whenever that operator cannot consume weights (joins,
/// sliding windows) or mixes non-sampleable UDAFs (MIN/MAX).
///
/// Everything is deterministic: the shed RNG is seeded from the plan seed,
/// budgets charge model cycles (not wall clock), and a run whose budget
/// always covered the load leaves the controller disengaged — its ledger is
/// byte-identical to a run without budgets (the leg-1 differential gate).
///
/// docs/FAULTS.md ("Overload and graceful degradation") documents the plan
/// directives, the shed-point selection, and the error-bound math.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dist/fault.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "types/tuple.h"

namespace streampart {

/// \brief One source tuple parked in a host's backpressure defer queue.
struct DeferredTuple {
  std::string source;
  Tuple tuple;
};

/// \brief One closed epoch's charge against a host (test/introspection
/// probe; only budgeted hosts get rows).
struct EpochChargeRow {
  int host = 0;
  uint64_t epoch = 0;
  double cycles = 0;       ///< model cycles charged during the epoch
  double budget = 0;       ///< the host's per-epoch budget
  bool over_budget = false;
};

/// \brief A hot-partition move proposed by the skew detector. The runtime
/// validates it (recovery machinery present, target alive) and either
/// executes it via state migration or records it as advice-only.
struct SkewMove {
  int from_host = 0;
  int partition = 0;
  int to_host = 0;
};

/// \brief Executes the budget/shed directives of a FaultPlan. Owned by
/// ClusterRuntime; every hook is called from the single simulation thread.
class OverloadController {
 public:
  /// Live model-cycle total of one host (runtime-supplied closure over the
  /// host ledger plus live operator stats).
  using CyclesProbe = std::function<double(int host)>;
  /// Lazily materializes the telemetry scope `overload#<host>`; may return
  /// null (telemetry off). Invoked only when a host first records an event,
  /// so a disengaged controller creates no scopes.
  using ScopeMaker = std::function<StatsScope*(int host)>;

  /// Copies the plan's budgets/shed/seed/epoch_width; \p num_hosts bounds
  /// the per-host tables. Call Validate() from Build for error reporting.
  OverloadController(const FaultPlan& plan, int num_hosts);

  /// \brief Checks budget host ranges and policy consistency (adaptive
  /// shedding needs at least one budget to adapt against).
  Status Validate() const;

  void set_cycles_probe(CyclesProbe probe) { cycles_ = std::move(probe); }
  void set_scope_maker(ScopeMaker maker) { scope_maker_ = std::move(maker); }

  uint64_t epoch_width() const { return epoch_width_; }
  /// True when a shed policy is armed (weights must be bound at Build).
  bool shed_armed() const { return shed_.enabled(); }
  /// The live Horvitz–Thompson weight downstream aggregates read through
  /// Operator::BindShedWeight. Stable address for the controller's lifetime.
  const uint64_t* shed_weight() const { return &shed_weight_; }

  /// \brief Records a Build-time reason why shed answers carry no computed
  /// bound (deduplicated; sets exact=false once shedding engages).
  void AddInexactReason(const std::string& reason);

  // --- Tap hooks -----------------------------------------------------------

  enum class Admission {
    kProcess,  ///< route the tuple now
    kShed,     ///< shed at the tap (no capture cost, accounted)
    kDefer     ///< park in the host's defer queue (caller calls PushDeferred)
  };

  /// \brief Admission decision for one source tuple routed to \p host /
  /// \p partition. Counts intake, draws the seeded shed decision, and checks
  /// the host's epoch budget guard.
  Admission Admit(int host, int partition);

  /// \brief Parks a deferred tuple; evicts the oldest entry when the host's
  /// bounded queue is full (exact accounting).
  void PushDeferred(int host, std::string source, Tuple tuple);

  /// \brief Pops the next deferred tuple of \p host if the epoch budget
  /// still allows processing it; false when the queue is empty or the guard
  /// has tripped again. Counts the tuple processed.
  bool TakeDeferred(int host, DeferredTuple* out);

  bool HasDeferred() const;

  // --- Epoch hooks ---------------------------------------------------------

  /// \brief True when \p eid differs from the open epoch (or none is open).
  bool EpochBoundary(uint64_t eid) const;
  bool epoch_open() const { return epoch_open_; }
  /// The most recently opened epoch id (valid after the first BeginEpoch).
  uint64_t current_epoch() const { return current_eid_; }

  /// \brief Closes the open epoch: records per-host charges and over-budget
  /// streaks, folds the epoch's Horvitz–Thompson variance contribution, and
  /// (when a sustained hotspot exists) proposes a hot-partition move.
  /// \p partition_host maps a partition to its current home host.
  std::optional<SkewMove> CloseEpoch(
      const std::function<int(int partition)>& partition_host);

  /// \brief Opens epoch \p eid: snapshots per-host cycle bases (so migration
  /// and flush work between epochs charges the epoch it occurs in), adapts
  /// the shed rate from last epoch's demand, and resets per-epoch counters.
  void BeginEpoch(uint64_t eid);

  // --- Skew accounting (runtime reports back) ------------------------------

  void RecordSkewMove(int from_host, int partition, double move_cost_bytes);
  void RecordSkewAdviceOnly();
  /// Last closed epoch's charge above budget on \p host (0 when under).
  double LastEpochOverrun(int host) const;

  // --- Ledger --------------------------------------------------------------

  /// \brief Assembles the ledger section. `engaged` is false when the
  /// controller never intervened (leg-1 byte-identity).
  OverloadSection section() const;

  /// \brief Per-(host, epoch) charges, in close order (differential tests).
  const std::vector<EpochChargeRow>& charge_rows() const { return rows_; }

 private:
  struct ResolvedBudget {
    bool present = false;
    double cycles = 0;
    double effective = 0;  ///< cycles * (1 - reserve): the guard threshold
    double reserve = 0;
    size_t queue_capacity = 0;
  };
  /// Lazily bound per-host instruments (all null until the first event).
  struct HostInstruments {
    bool bound = false;
    Counter* shed = nullptr;
    Counter* deferrals = nullptr;
    Counter* queue_dropped = nullptr;
    Counter* over_epochs = nullptr;
    Counter* skew_moves = nullptr;
  };

  bool GuardTripped(int host) const;
  HostInstruments& Instruments(int host);
  OverloadHostRow& HostRow(int host);

  // Plan-derived configuration.
  uint64_t epoch_width_ = 1;
  ShedSpec shed_;
  std::vector<ResolvedBudget> budgets_;  ///< by host (wildcard resolved)
  Rng rng_;

  CyclesProbe cycles_;
  ScopeMaker scope_maker_;

  // Live state.
  uint64_t shed_weight_ = 1;  ///< current keep-1-in-m (1 = keep all)
  bool epoch_open_ = false;
  uint64_t current_eid_ = 0;
  std::vector<double> epoch_base_;        ///< per-host cycles at epoch open
  std::vector<double> last_epoch_charge_; ///< per-host charge of last epoch
  std::vector<uint64_t> over_streak_;     ///< consecutive over-budget epochs
  std::vector<std::deque<DeferredTuple>> defer_;
  std::map<int, uint64_t> epoch_partition_intake_;
  uint64_t epoch_kept_ = 0;  ///< tuples processed in the open epoch
  uint64_t skew_cooldown_ = 0;

  // Section accumulators.
  bool engaged_ = false;
  uint64_t offered_ = 0;
  uint64_t processed_ = 0;
  uint64_t deferred_events_ = 0;
  uint64_t shed_tuples_ = 0;
  uint64_t queue_dropped_ = 0;
  uint64_t shed_epochs_ = 0;
  uint64_t max_shed_m_ = 0;
  double ht_var_acc_ = 0;  ///< sum over epochs of k*m*(m-1)
  double ht_est_n_ = 0;    ///< sum over epochs of k*m
  std::vector<std::string> inexact_reasons_;
  uint64_t skew_repartitions_ = 0;
  std::vector<int> skew_moved_partitions_;
  double skew_move_cost_bytes_ = 0;
  uint64_t skew_advice_only_ = 0;
  std::vector<OverloadHostRow> host_rows_;  ///< budgeted hosts, id order
  std::vector<EpochChargeRow> rows_;
  std::vector<HostInstruments> instruments_;
};

}  // namespace streampart
