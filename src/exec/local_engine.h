#pragma once

/// \file local_engine.h
/// \brief Centralized (single-host) execution of a whole query graph.
///
/// The local engine is both the reference implementation that distributed
/// plans are validated against (partition compatibility, paper §3.4, is
/// literally "distributed output == centralized output per window") and the
/// per-host execution substrate of the simulated cluster.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/ops.h"
#include "plan/query_graph.h"

namespace streampart {

/// \brief Executes every query of a QueryGraph over pushed source tuples.
class LocalEngine {
 public:
  struct Options {
    /// Collect result tuples for every query (true) or only for graph roots.
    bool collect_all = false;
    /// When true (default), aggregation windows emit groups in sorted key
    /// order. False skips the per-window sort; output order within a window
    /// becomes unspecified (multisets and all counters are unchanged).
    bool deterministic_output = true;
    /// When non-null, every operator binds a telemetry scope (named after
    /// its label) in this registry. Null (default) means no telemetry —
    /// the hot path stays one never-taken branch per delivery.
    StatsRegistry* stats = nullptr;
  };

  /// \param graph must outlive the engine.
  explicit LocalEngine(const QueryGraph* graph) : LocalEngine(graph, Options()) {}
  LocalEngine(const QueryGraph* graph, Options options);

  /// \brief Instantiates and wires operators. Must be called once before
  /// pushing data.
  Status Build();

  /// \brief Pushes one tuple of source stream \p source into every consumer.
  void PushSource(const std::string& source, const Tuple& tuple);

  /// \brief Pushes a batch of source tuples in one call per consumer —
  /// the entry point of the vectorized execution path.
  void PushSourceBatch(const std::string& source, TupleSpan batch);

  /// \brief Columnar entry point: converts \p batch to column-major form
  /// once and delivers it to every consumer via PushColumns. Falls back to
  /// PushSourceBatch when the batch is not representable in fixed-width
  /// columns (string values or ragged rows).
  void PushSourceColumns(const std::string& source, TupleSpan batch);

  /// \brief Columnar entry point over an already-built batch: delivers the
  /// selected rows of \p batch to every consumer of \p source.
  void PushSourceColumns(const std::string& source, const ColumnBatch& batch,
                         const SelectionVector& sel);

  /// \brief Signals end-of-stream on all source streams.
  void FinishSources();

  /// \brief Collected output of query \p name (empty unless collected).
  const TupleBatch& Results(const std::string& name) const;

  /// \brief Work counters of the operator executing \p name.
  Result<OpStats> StatsFor(const std::string& name) const;

  /// \brief Aggregate stats over all operators.
  OpStats TotalStats() const;

 private:
  const QueryGraph* graph_;
  Options options_;
  std::map<std::string, OperatorPtr> ops_;
  std::map<std::string, TupleBatch> results_;
  /// source stream -> [(consumer op, port)]
  std::map<std::string, std::vector<std::pair<Operator*, size_t>>>
      source_consumers_;
  bool built_ = false;
  // Scratch for PushSourceColumns(TupleSpan): rebuilt per call, never
  // retained across pushes.
  ColumnBatch source_columns_;
  SelectionVector source_sel_;
};

/// \brief Default source batch size of the batched drivers (engine, cluster,
/// benches): large enough to amortize per-call overheads, small enough to
/// stay cache-resident.
inline constexpr size_t kDefaultSourceBatch = 1024;

/// \brief Convenience: runs \p graph over \p tuples of the single source
/// stream \p source and returns the collected outputs of every query.
/// Drives the batched execution path (kDefaultSourceBatch tuples per push).
Result<std::map<std::string, TupleBatch>> RunCentralized(
    const QueryGraph& graph, const std::string& source,
    const TupleBatch& tuples);

}  // namespace streampart
