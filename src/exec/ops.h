#pragma once

/// \file ops.h
/// \brief The concrete streaming operators: selection/projection, tumbling-
/// window aggregation, tumbling-window equijoin, and ordered merge (union).

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/udaf.h"
#include "plan/query_node.h"

namespace streampart {

/// \brief Evaluates WHERE and projects the output expressions of a
/// kSelectProject node. Stateless; always compatible with any partitioning.
class SelectProjectOp : public Operator {
 public:
  explicit SelectProjectOp(QueryNodePtr node);

  std::string label() const override { return "select(" + node_->name + ")"; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;

 private:
  QueryNodePtr node_;
};

/// \brief Tumbling-window hash aggregation with GROUP BY / HAVING.
///
/// The window is defined by the node's temporal group key (paper §3.1): the
/// input must be non-decreasing in that key, and a key change flushes all
/// groups of the closing epoch. Without a temporal key the operator is
/// blocking and flushes at end-of-stream. Groups are emitted in sorted key
/// order so results are deterministic.
class AggregateOp : public Operator {
 public:
  AggregateOp(QueryNodePtr node, const UdafRegistry* registry);

  std::string label() const override {
    return "aggregate(" + node_->name + ")";
  }

  /// \brief Number of currently open groups (introspection for tests).
  size_t open_groups() const { return groups_.size(); }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoFinish() override;

 private:
  struct VecHash {
    size_t operator()(const std::vector<Value>& key) const {
      uint64_t h = Mix64(key.size());
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      return static_cast<size_t>(h);
    }
  };
  using GroupMap =
      std::unordered_map<std::vector<Value>, std::vector<std::unique_ptr<UdafState>>,
                         VecHash>;

  void FlushWindow();
  std::vector<std::unique_ptr<UdafState>> NewStates() const;

  QueryNodePtr node_;
  const UdafRegistry* registry_;
  std::vector<DataType> agg_arg_types_;
  GroupMap groups_;
  std::optional<Value> current_epoch_;
};

/// \brief Tumbling-window hash equijoin (inner/left/right/full outer).
///
/// Temporal equality predicates define the window key; tuples buffer per
/// window until both inputs' watermarks pass it, then the window is joined
/// with a hash join on the remaining equality predicates, the residual
/// predicate is applied, and (for outer joins) unmatched tuples are padded
/// with NULLs. Without a temporal predicate the join buffers everything and
/// runs at end-of-stream.
class JoinOp : public Operator {
 public:
  explicit JoinOp(QueryNodePtr node);

  std::string label() const override { return "join(" + node_->name + ")"; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoFinish() override;

 private:
  struct BufferedTuple {
    Tuple tuple;
    bool matched = false;
  };
  struct Window {
    std::vector<BufferedTuple> left;
    std::vector<BufferedTuple> right;
  };

  std::vector<Value> EvalKeys(const std::vector<ExprPtr>& exprs,
                              const Tuple& t) const;
  void EvictBelow(const std::vector<Value>& min_watermark);
  void JoinWindow(Window* w);
  void EmitJoined(const Tuple& left, const Tuple& right);
  void EmitPadded(const Tuple& one_side, bool is_left);

  QueryNodePtr node_;
  // Temporal-key expressions per side (define the window).
  std::vector<ExprPtr> window_left_, window_right_;
  // Non-temporal equi-key expressions per side (hash-join keys).
  std::vector<ExprPtr> key_left_, key_right_;
  std::map<std::vector<Value>, Window> windows_;
  std::optional<std::vector<Value>> watermark_[2];
  size_t left_width_ = 0;
  size_t right_width_ = 0;
};

/// \brief Ordered stream union of N inputs (the merge node of paper §5.1).
///
/// When the schema has a temporal attribute, inputs are merged in
/// non-decreasing order of it (each input must itself be ordered); the output
/// is then a valid ordered stream, which downstream tumbling windows rely on.
/// Without a temporal attribute tuples pass through unordered.
class MergeOp : public Operator {
 public:
  /// \param schema the merged stream's schema. \param num_inputs ports.
  MergeOp(std::string name, SchemaPtr schema, size_t num_inputs);

  std::string label() const override { return "merge(" + name_ + ")"; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoFinish() override;
  void OnPortFinished(size_t port) override;

 private:
  void Drain(bool final);

  std::string name_;
  SchemaPtr schema_;
  int temporal_idx_ = -1;
  std::vector<std::deque<Tuple>> queues_;
  std::vector<bool> port_done_;
};

/// \brief Builds the executing operator for a query node (select/aggregate/
/// join dispatch). Merge operators are constructed directly.
Result<OperatorPtr> MakeOperator(QueryNodePtr node,
                                 const UdafRegistry* registry);

}  // namespace streampart
