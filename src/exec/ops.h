#pragma once

/// \file ops.h
/// \brief The concrete streaming operators: selection/projection, tumbling-
/// window aggregation, tumbling-window equijoin, and ordered merge (union).

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/group_table.h"
#include "exec/operator.h"
#include "exec/udaf.h"
#include "plan/query_node.h"

namespace streampart {

/// \brief Evaluates WHERE and projects the output expressions of a
/// kSelectProject node. Stateless; always compatible with any partitioning.
/// The batched path projects into a reused scratch batch and short-circuits
/// bare column references past the expression interpreter.
///
/// The columnar path runs a fused filter→project kernel: WHERE is split into
/// cost-ordered clause kernels (optimizer/filter_order.h) that shrink the
/// selection vector clause-at-a-time, then the projection aliases unmodified
/// columns by pointer and evaluates computed outputs over the surviving rows
/// only. Queries with calls or string outputs keep the row path.
class SelectProjectOp : public Operator {
 public:
  explicit SelectProjectOp(QueryNodePtr node);

  std::string label() const override { return "select(" + node_->name + ")"; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoPushBatch(size_t port, TupleSpan batch) override;
  void DoPushColumns(size_t port, const ColumnBatch& batch,
                     const SelectionVector& sel) override;

 private:
  QueryNodePtr node_;
  /// Bound tuple index per output when the expression is a bare column
  /// reference, -1 when it needs evaluation (batched path only).
  std::vector<int> output_cols_;
  TupleBatch out_batch_;  // scratch reused across batches

  // Columnar-path kernels, compiled at construction.
  bool columnar_ok_ = false;
  std::vector<ColumnEvaluator> col_where_;  // cost-ordered WHERE clauses
  /// Per output: evaluator for computed expressions (nullopt = bare column,
  /// aliased straight from the input batch).
  std::vector<std::optional<ColumnEvaluator>> col_outputs_;
  ColumnBatch col_out_;     // projected output view (aliases + scratch)
  SelectionVector col_sel_; // surviving-row scratch
};

/// \brief Tumbling-window hash aggregation with GROUP BY / HAVING.
///
/// The window is defined by the node's temporal group key (paper §3.1): the
/// input must be non-decreasing in that key, and a key change flushes all
/// groups of the closing epoch. Without a temporal key the operator is
/// blocking and flushes at end-of-stream. By default groups are emitted in
/// sorted key order so results are deterministic; set_sorted_flush(false)
/// trades that for hash-order emission without the per-window sort.
///
/// Two group-key representations coexist. The per-tuple path keeps the
/// reference representation: a freshly materialized std::vector<Value> key
/// per input tuple, hashed value-by-value. The batched path packs the key
/// into a fixed-width byte string (1 tag byte + 8 payload bytes per column,
/// reusing one scratch buffer) whenever every group-by column has a
/// fixed-width type — true of all paper workloads, whose keys are
/// timestamps, addresses, ports, and masks — and probes a flat
/// open-addressed table (PackedKeyTable) whose group states are recycled
/// across windows through UdafState::Reset. String keys fall back to the
/// generic representation. Within one window exactly one representation is
/// active (whichever processed the window's first tuple), so mixing Push and
/// PushBatch mid-stream never splits a group across tables.
class AggregateOp : public Operator {
 public:
  AggregateOp(QueryNodePtr node, const UdafRegistry* registry);

  std::string label() const override {
    return "aggregate(" + node_->name + ")";
  }

  /// \brief When false, window flushes skip the deterministic sort and emit
  /// groups in hash-table order (unspecified). Counters and output multisets
  /// are unaffected; only emission order within a window changes.
  void set_sorted_flush(bool sorted) { sorted_flush_ = sorted; }

  /// \brief Number of currently open groups (introspection for tests).
  size_t open_groups() const { return groups_.size() + packed_table_.size(); }

  /// \brief The open tumbling window (if any) and its group states.
  OpenState open_state() const override {
    uint64_t groups = open_groups();
    return {groups > 0 ? uint64_t{1} : uint64_t{0}, groups};
  }

  void CheckpointState(std::string* out) const override;
  Status RestoreState(std::string_view data) override;

  /// \brief Accepts the ambient shed weight: while *weight == m > 1, every
  /// update folds its value as m observations (UdafState::UpdateWeighted).
  /// Weight-insensitive accumulators (min/max, bit aggregates) ignore the
  /// scale-up; ShedSampleable() reports whether all of this node's UDAFs
  /// scale correctly.
  bool BindShedWeight(const uint64_t* weight) override {
    shed_weight_ = weight;
    return true;
  }
  bool ShedSampleable() const override;

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoPushBatch(size_t port, TupleSpan batch) override;
  void DoPushColumns(size_t port, const ColumnBatch& batch,
                     const SelectionVector& sel) override;
  void DoFinish() override;
  void DoBindTelemetry(StatsScope* scope) override;

 private:
  using GroupStates = std::vector<std::unique_ptr<UdafState>>;

  struct VecHash {
    size_t operator()(const std::vector<Value>& key) const {
      uint64_t h = Mix64(key.size());
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      return static_cast<size_t>(h);
    }
  };
  using GroupMap = std::unordered_map<std::vector<Value>, GroupStates, VecHash>;

  /// Reference per-tuple processing over vector<Value> keys.
  void ProcessGeneric(const Tuple& tuple);
  /// Vectorized-path processing over packed keys and scratch buffers.
  void ProcessPacked(const Tuple& tuple);
  /// Columnar kernel: cost-ordered WHERE filtering over the selection
  /// vector, then packed-key grouping reading raw cells (no row
  /// materialization). Requires columnar_ok_ and an empty generic table.
  void ProcessColumns(const ColumnBatch& batch, const SelectionVector& sel);
  /// Tumbling-window boundary check; returns false when \p epoch is late
  /// (the tuple is dropped and counted).
  bool AdvanceWindow(const Value& epoch);
  void FlushWindow();
  /// Finalizes one group into the flush scratch batch (applies HAVING).
  void FlushEntry(const std::vector<Value>& key, const GroupStates& states);
  /// Same, but decodes the packed key directly into the reused internal
  /// tuple — the hash-order flush path never materializes key vectors.
  void FlushEntryPacked(std::string_view key, const GroupStates& states);
  /// Shared tail of the FlushEntry variants: HAVING + output projection of
  /// the internal tuple held in internal_scratch_.
  void FlushInternal();
  GroupStates NewStates() const;
  /// Fresh-or-recycled states: pops from the state pool and resets in place
  /// when every state supports Reset, else constructs anew.
  GroupStates AcquireStates();

  QueryNodePtr node_;
  const UdafRegistry* registry_;
  std::vector<DataType> agg_arg_types_;
  /// UDAF definitions resolved once at construction (registry lookups are
  /// std::map probes — far too slow for a per-group-insert path).
  std::vector<std::shared_ptr<const Udaf>> udafs_;
  GroupMap groups_;  // generic (reference) representation
  /// Packed fixed-width representation (batched path).
  PackedKeyTable<GroupStates> packed_table_;
  /// Recycled GroupStates of flushed windows; refilled via UdafState::Reset.
  std::vector<GroupStates> state_pool_;
  bool pool_states_ = true;  // false once any state refuses Reset
  std::optional<Value> current_epoch_;
  bool sorted_flush_ = true;
  /// Ambient Horvitz–Thompson scale factor (null or 1 = no shedding).
  const uint64_t* shed_weight_ = nullptr;

  // Batched-path metadata, precomputed at construction.
  static constexpr int kEvalExpr = -1;  // slot needs expression evaluation
  static constexpr int kNoArg = -2;     // zero-argument aggregate (count)
  bool packable_ = false;        // every group-by column is fixed width
  std::vector<int> group_cols_;  // bound column index per group slot
  std::vector<int> arg_cols_;    // bound column index per aggregate argument
  std::vector<int> out_cols_;    // bound internal-tuple index per output
  int temporal_slot_ = -1;       // group slot of the window key, -1 if none
  std::string key_buf_;          // reused packed-key scratch (fixed width)
  /// Packed bytes of the current window's epoch; lets the packed path skip
  /// the per-tuple AdvanceWindow Value comparison (the encoding is
  /// invertible, so equal bytes means equal epoch). Invalidated on flush.
  char epoch_bytes_[9] = {};
  bool epoch_bytes_valid_ = false;
  Tuple internal_scratch_;       // reused key+aggregates tuple during flush
  TupleBatch flush_batch_;       // reused window-flush output scratch

  // Columnar-path kernels, compiled at construction.
  bool columnar_ok_ = false;      // packable + WHERE/keys/args vectorizable
  std::vector<ColumnEvaluator> col_where_;  // cost-ordered WHERE clauses
  /// Per group slot / aggregate argument: evaluator for computed
  /// expressions (nullopt = bare column or zero-argument aggregate).
  std::vector<std::optional<ColumnEvaluator>> col_group_evals_;
  std::vector<std::optional<ColumnEvaluator>> col_arg_evals_;
  SelectionVector col_sel_;                // surviving-row scratch
  std::vector<const Column*> col_gcols_;   // resolved group column per slot
  std::vector<const Column*> col_acols_;   // resolved argument column per agg

  // Telemetry instruments (null unless bound; see metrics/stats.h).
  Counter* t_window_flushes_ = nullptr;
  Counter* t_groups_flushed_ = nullptr;
  Histogram* t_window_groups_ = nullptr;
  Gauge* t_groups_peak_ = nullptr;
};

/// \brief Tumbling-window hash equijoin (inner/left/right/full outer).
///
/// Temporal equality predicates define the window key; tuples buffer per
/// window until both inputs' watermarks pass it, then the window is joined
/// with a hash join on the remaining equality predicates, the residual
/// predicate is applied, and (for outer joins) unmatched tuples are padded
/// with NULLs. Without a temporal predicate the join buffers everything and
/// runs at end-of-stream.
class JoinOp : public Operator {
 public:
  explicit JoinOp(QueryNodePtr node);

  std::string label() const override { return "join(" + node_->name + ")"; }

  /// \brief Buffered join windows and the tuples (both sides) inside them.
  OpenState open_state() const override {
    OpenState s;
    s.windows = windows_.size();
    for (const auto& [key, w] : windows_) {
      s.tuples += w.left.size() + w.right.size();
    }
    return s;
  }

  void CheckpointState(std::string* out) const override;
  Status RestoreState(std::string_view data) override;

  /// Shed tuples break join pairings with no computable bound.
  bool ShedSampleable() const override { return false; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoFinish() override;
  void DoBindTelemetry(StatsScope* scope) override;

 private:
  struct BufferedTuple {
    Tuple tuple;
    bool matched = false;
  };
  struct Window {
    std::vector<BufferedTuple> left;
    std::vector<BufferedTuple> right;
  };

  std::vector<Value> EvalKeys(const std::vector<ExprPtr>& exprs,
                              const Tuple& t) const;
  void EvictBelow(const std::vector<Value>& min_watermark);
  void JoinWindow(const std::vector<Value>& key, Window* w);
  void EmitJoined(const Tuple& left, const Tuple& right);
  void EmitPadded(const Tuple& one_side, bool is_left);

  QueryNodePtr node_;
  // Temporal-key expressions per side (define the window).
  std::vector<ExprPtr> window_left_, window_right_;
  // Non-temporal equi-key expressions per side (hash-join keys).
  std::vector<ExprPtr> key_left_, key_right_;
  std::map<std::vector<Value>, Window> windows_;
  std::optional<std::vector<Value>> watermark_[2];
  size_t left_width_ = 0;
  size_t right_width_ = 0;

  // Telemetry instruments (null unless bound; see metrics/stats.h).
  Counter* t_join_windows_ = nullptr;
  Histogram* t_join_window_tuples_ = nullptr;
};

/// \brief Ordered stream union of N inputs (the merge node of paper §5.1).
///
/// When the schema has a temporal attribute, inputs are merged in
/// non-decreasing order of it (each input must itself be ordered); the output
/// is then a valid ordered stream, which downstream tumbling windows rely on.
/// Without a temporal attribute tuples pass through unordered.
class MergeOp : public Operator {
 public:
  /// \param schema the merged stream's schema. \param num_inputs ports.
  MergeOp(std::string name, SchemaPtr schema, size_t num_inputs);

  std::string label() const override { return "merge(" + name_ + ")"; }

  /// \brief Tuples queued awaiting the merge watermark (no window notion).
  OpenState open_state() const override {
    OpenState s;
    for (const auto& q : queues_) s.tuples += q.size();
    return s;
  }

  void CheckpointState(std::string* out) const override;
  Status RestoreState(std::string_view data) override;

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoPushBatch(size_t port, TupleSpan batch) override;
  /// Pass-through merges forward the columnar view untouched; ordered
  /// merges need row queues and fall back to the materializing default.
  void DoPushColumns(size_t port, const ColumnBatch& batch,
                     const SelectionVector& sel) override;
  void DoFinish() override;
  void OnPortFinished(size_t port) override;

 private:
  void Drain(bool final);

  std::string name_;
  SchemaPtr schema_;
  int temporal_idx_ = -1;
  std::vector<std::deque<Tuple>> queues_;
  std::vector<bool> port_done_;
  TupleBatch drain_batch_;  // scratch: tuples released by one Drain pass
};

/// \brief Builds the executing operator for a query node (select/aggregate/
/// join dispatch). Merge operators are constructed directly.
Result<OperatorPtr> MakeOperator(QueryNodePtr node,
                                 const UdafRegistry* registry);

}  // namespace streampart
