#include "exec/sliding.h"

#include <algorithm>

#include "types/serde.h"

namespace streampart {

namespace {

/// \brief Bound tuple index of a bare column-reference expression, or -1
/// when the expression needs interpretation (mirrors ops.cc).
int ColumnFastPath(const ExprPtr& expr) {
  if (expr != nullptr && expr->is_column() && expr->is_bound()) {
    return static_cast<int>(expr->bound_index());
  }
  return -1;
}

}  // namespace

SlidingAggregateOp::SlidingAggregateOp(QueryNodePtr node,
                                       const UdafRegistry* registry,
                                       SlidingSpec spec)
    : Operator(/*num_ports=*/1),
      node_(std::move(node)),
      registry_(registry),
      spec_(spec) {}

Result<std::unique_ptr<SlidingAggregateOp>> SlidingAggregateOp::Make(
    QueryNodePtr node, const UdafRegistry* registry, SlidingSpec spec) {
  if (node->kind != QueryKind::kAggregate) {
    return Status::InvalidArgument("sliding evaluation needs an aggregation");
  }
  if (!node->temporal_group_idx.has_value()) {
    return Status::InvalidArgument(
        "sliding evaluation needs a temporal (pane) group key");
  }
  if (spec.window_panes == 0 || spec.slide_panes == 0) {
    return Status::InvalidArgument("window and slide must be positive");
  }
  const NamedExpr& pane_key = node->group_by[*node->temporal_group_idx];
  if (pane_key.type != DataType::kUint) {
    return Status::NotImplemented("pane key must be an unsigned integer");
  }
  std::unique_ptr<SlidingAggregateOp> op(
      new SlidingAggregateOp(std::move(node), registry, spec));
  SP_RETURN_NOT_OK(op->Init());
  return op;
}

Status SlidingAggregateOp::Init() {
  temporal_idx_ = *node_->temporal_group_idx;
  for (const AggregateSpec& spec : node_->aggregates) {
    agg_arg_types_.push_back(spec.args.empty() ? DataType::kNull
                                               : spec.args[0]->result_type());
    SP_ASSIGN_OR_RETURN(std::shared_ptr<const Udaf> udaf,
                        registry_->Get(spec.udaf));
    const UdafSplit& split = udaf->split();
    SlotSplit slot;
    slot.combine = split.combine;
    for (size_t c = 0; c < split.sub_udafs.size(); ++c) {
      SP_ASSIGN_OR_RETURN(std::shared_ptr<const Udaf> sub,
                          registry_->Get(split.sub_udafs[c]));
      SP_ASSIGN_OR_RETURN(std::shared_ptr<const Udaf> super,
                          registry_->Get(split.super_udafs[c]));
      std::vector<DataType> sub_args;
      if (split.sub_udafs[c] != "count") {
        sub_args.push_back(agg_arg_types_.back());
      }
      SP_ASSIGN_OR_RETURN(DataType sub_type, sub->ResultType(sub_args));
      slot.sub_result_types.push_back(sub_type);
      slot.sub.push_back(std::move(sub));
      slot.super.push_back(std::move(super));
    }
    sub_offset_.push_back(total_components_);
    total_components_ += slot.sub.size();
    splits_.push_back(std::move(slot));
  }
  // Columnar eligibility mirrors AggregateOp: vectorizable WHERE, group-by,
  // and argument expressions (the pane key is already known to be kUint).
  columnar_ok_ = node_->where == nullptr || ExprVectorizable(node_->where);
  for (const NamedExpr& g : node_->group_by) {
    if (!ExprVectorizable(g.expr) || g.type == DataType::kString) {
      columnar_ok_ = false;
    }
  }
  for (const AggregateSpec& spec : node_->aggregates) {
    if (!spec.args.empty() && !ExprVectorizable(spec.args[0])) {
      columnar_ok_ = false;
    }
  }
  if (columnar_ok_) {
    col_where_ = CompileOrderedClauses(node_->where);
    group_cols_.reserve(node_->group_by.size());
    col_group_evals_.resize(node_->group_by.size());
    for (size_t i = 0; i < node_->group_by.size(); ++i) {
      group_cols_.push_back(ColumnFastPath(node_->group_by[i].expr));
      if (group_cols_[i] < 0) {
        col_group_evals_[i].emplace(node_->group_by[i].expr);
      }
    }
    arg_cols_.reserve(node_->aggregates.size());
    col_arg_evals_.resize(node_->aggregates.size());
    for (size_t i = 0; i < node_->aggregates.size(); ++i) {
      const AggregateSpec& spec = node_->aggregates[i];
      arg_cols_.push_back(spec.args.empty() ? kNoArg
                                            : ColumnFastPath(spec.args[0]));
      if (arg_cols_[i] == kEvalExpr) col_arg_evals_[i].emplace(spec.args[0]);
    }
    col_gcols_.resize(node_->group_by.size(), nullptr);
    col_acols_.resize(node_->aggregates.size(), nullptr);
  }
  return Status::OK();
}

std::vector<std::unique_ptr<UdafState>> SlidingAggregateOp::NewSubStates()
    const {
  std::vector<std::unique_ptr<UdafState>> states;
  states.reserve(total_components_);
  for (size_t j = 0; j < splits_.size(); ++j) {
    for (size_t c = 0; c < splits_[j].sub.size(); ++c) {
      // "count" components take no argument; others fold the aggregate's arg.
      states.push_back(splits_[j].sub[c]->NewState(agg_arg_types_[j]));
    }
  }
  return states;
}

void SlidingAggregateOp::DoPush(size_t, const Tuple& tuple) {
  ProcessTuple(tuple);
}

void SlidingAggregateOp::DoPushBatch(size_t, TupleSpan batch) {
  for (const Tuple& t : batch) ProcessTuple(t);
}

void SlidingAggregateOp::ProcessTuple(const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  // Group key without the pane slot; the pane id separately. The key is
  // built in a scratch vector reused across tuples; probes of existing
  // groups (the common case) therefore allocate nothing.
  std::vector<Value>& key = key_scratch_;
  key.clear();
  uint64_t pane = 0;
  for (size_t i = 0; i < node_->group_by.size(); ++i) {
    Value v = node_->group_by[i].expr->Eval(tuple);
    if (i == temporal_idx_) {
      pane = v.AsUint64();
    } else {
      key.push_back(std::move(v));
    }
  }

  std::vector<std::unique_ptr<UdafState>>* states = AdvancePaneAndProbe(pane);
  for (size_t j = 0; j < splits_.size(); ++j) {
    const AggregateSpec& spec = node_->aggregates[j];
    Value arg = spec.args.empty() ? Value::Null() : spec.args[0]->Eval(tuple);
    for (size_t c = 0; c < splits_[j].sub.size(); ++c) {
      (*states)[sub_offset_[j] + c]->Update(arg);
    }
  }
}

std::vector<std::unique_ptr<UdafState>>* SlidingAggregateOp::AdvancePaneAndProbe(
    uint64_t pane) {
  if (current_pane_.has_value() && pane != *current_pane_) {
    ClosePane();
    current_pane_ = pane;
    // Emit every window whose end pane is now complete (strictly before the
    // newly opened pane). Large pane gaps fast-forward over windows that
    // would cover no data.
    while (!panes_.empty()) {
      uint64_t front = panes_.front().first;
      if (next_end_ < front) {
        uint64_t steps = (front - next_end_ + spec_.slide_panes - 1) /
                         spec_.slide_panes;
        next_end_ += steps * spec_.slide_panes;
      }
      uint64_t end = next_window_end();
      if (end >= pane) break;
      EmitWindow(end);
      advance_window();
    }
  } else if (!current_pane_.has_value()) {
    current_pane_ = pane;
    // First aligned window end at or after the first pane.
    uint64_t first = pane;
    uint64_t aligned =
        ((first + spec_.slide_panes) / spec_.slide_panes) * spec_.slide_panes -
        1;
    if (aligned < first) aligned += spec_.slide_panes;
    next_end_ = aligned;
  }

  auto it = open_.find(key_scratch_);
  if (it == open_.end()) {
    ++stats_.group_inserts;
    it = open_.emplace(key_scratch_, NewSubStates()).first;
  } else {
    ++stats_.group_probes;
  }
  return &it->second;
}

void SlidingAggregateOp::DoPushColumns(size_t port, const ColumnBatch& batch,
                                       const SelectionVector& sel) {
  if (!columnar_ok_) {
    Operator::DoPushColumns(port, batch, sel);
    return;
  }
  ProcessColumns(batch, sel);
}

void SlidingAggregateOp::ProcessColumns(const ColumnBatch& batch,
                                        const SelectionVector& sel) {
  const SelectionVector* live = &sel;
  if (node_->where != nullptr) {
    stats_.predicate_evals += sel.size();
    col_sel_.assign(sel.begin(), sel.end());
    for (ColumnEvaluator& clause : col_where_) {
      if (col_sel_.empty()) break;
      clause.Filter(batch, &col_sel_);
    }
    live = &col_sel_;
  }
  if (live->empty()) return;
  for (size_t i = 0; i < group_cols_.size(); ++i) {
    col_gcols_[i] =
        group_cols_[i] >= 0
            ? &batch.col(static_cast<size_t>(group_cols_[i]))
            : col_group_evals_[i]->Evaluate(batch, *live);
  }
  for (size_t i = 0; i < arg_cols_.size(); ++i) {
    if (arg_cols_[i] == kNoArg) {
      col_acols_[i] = nullptr;
    } else if (arg_cols_[i] >= 0) {
      col_acols_[i] = &batch.col(static_cast<size_t>(arg_cols_[i]));
    } else {
      col_acols_[i] = col_arg_evals_[i]->Evaluate(batch, *live);
    }
  }
  for (uint32_t row : *live) {
    key_scratch_.clear();
    uint64_t pane = 0;
    for (size_t i = 0; i < group_cols_.size(); ++i) {
      const Column& c = *col_gcols_[i];
      if (i == temporal_idx_) {
        pane = c.ValueAt(row).AsUint64();
      } else {
        key_scratch_.push_back(c.ValueAt(row));
      }
    }
    std::vector<std::unique_ptr<UdafState>>* states =
        AdvancePaneAndProbe(pane);
    for (size_t j = 0; j < splits_.size(); ++j) {
      const Column* ac = col_acols_[j];
      const Value arg = ac == nullptr ? Value::Null() : ac->ValueAt(row);
      for (size_t c = 0; c < splits_[j].sub.size(); ++c) {
        (*states)[sub_offset_[j] + c]->Update(arg);
      }
    }
  }
}

void SlidingAggregateOp::DoBindTelemetry(StatsScope* scope) {
  t_pane_flushes_ = scope->counter(stats::kPaneFlushes);
  t_window_flushes_ = scope->counter(stats::kWindowFlushes);
  t_groups_flushed_ = scope->counter(stats::kGroupsFlushed);
  t_window_groups_ = scope->histogram(stats::kWindowGroups);
  t_groups_peak_ = scope->gauge(stats::kGroupsPeak);
}

void SlidingAggregateOp::ClosePane() {
  if (!current_pane_.has_value()) return;
  if (t_pane_flushes_ != nullptr) {
    t_pane_flushes_->Inc();
    t_groups_peak_->SetMax(open_.size());
  }
  PaneResult result;
  for (const auto& [key, states] : open_) {
    std::vector<Value> components;
    components.reserve(states.size());
    for (const auto& state : states) components.push_back(state->Final());
    result.emplace(key, std::move(components));
  }
  panes_.emplace_back(*current_pane_, std::move(result));
  open_.clear();
  current_pane_.reset();
}

void SlidingAggregateOp::EmitWindow(uint64_t end_pane) {
  uint64_t begin_pane =
      end_pane >= spec_.window_panes - 1 ? end_pane - (spec_.window_panes - 1)
                                         : 0;
  // Collect participating panes (the deque is ordered by pane id).
  std::vector<const PaneResult*> in_range;
  for (const auto& [id, result] : panes_) {
    if (id >= begin_pane && id <= end_pane) in_range.push_back(&result);
  }
  // Union of groups across the window, processed in sorted key order.
  std::map<std::vector<Value>, std::vector<std::unique_ptr<UdafState>>> groups;
  for (const PaneResult* pane : in_range) {
    for (const auto& [key, components] : *pane) {
      auto it = groups.find(key);
      if (it == groups.end()) {
        std::vector<std::unique_ptr<UdafState>> supers;
        supers.reserve(total_components_);
        for (size_t j = 0; j < splits_.size(); ++j) {
          for (size_t c = 0; c < splits_[j].super.size(); ++c) {
            supers.push_back(
                splits_[j].super[c]->NewState(splits_[j].sub_result_types[c]));
          }
        }
        it = groups.emplace(key, std::move(supers)).first;
      }
      for (size_t k = 0; k < components.size(); ++k) {
        it->second[k]->Update(components[k]);
      }
    }
  }

  const uint64_t window_groups = groups.size();
  if (t_window_flushes_ != nullptr) {
    t_window_flushes_->Inc();
    t_groups_flushed_->Add(window_groups);
    t_window_groups_->Record(window_groups);
  }

  window_batch_.clear();
  for (const auto& [key, supers] : groups) {
    // Combined aggregate values per original slot.
    std::vector<Value> agg_values;
    for (size_t j = 0; j < splits_.size(); ++j) {
      std::vector<Value> comps;
      for (size_t c = 0; c < splits_[j].super.size(); ++c) {
        comps.push_back(supers[sub_offset_[j] + c]->Final());
      }
      if (splits_[j].combine == nullptr) {
        agg_values.push_back(comps[0]);
      } else {
        std::vector<ExprPtr> lits;
        for (const Value& v : comps) lits.push_back(Expr::Literal(v));
        agg_values.push_back(splits_[j].combine(lits)->Eval(Tuple()));
      }
    }
    // Internal tuple: group keys (pane slot = window end) + aggregates.
    Tuple internal;
    internal.values().reserve(node_->group_by.size() +
                              node_->aggregates.size());
    size_t k = 0;
    for (size_t i = 0; i < node_->group_by.size(); ++i) {
      if (i == temporal_idx_) {
        internal.Append(Value::Uint(end_pane));
      } else {
        internal.Append(key[k++]);
      }
    }
    for (Value& v : agg_values) internal.Append(std::move(v));
    if (node_->having) {
      ++stats_.predicate_evals;
      if (!node_->having->Eval(internal).Truthy()) continue;
    }
    Tuple out;
    out.values().reserve(node_->outputs.size());
    for (const NamedExpr& o : node_->outputs) {
      out.Append(o.expr->Eval(internal));
    }
    window_batch_.push_back(std::move(out));
  }
  if (trace_events_enabled()) {
    RecordTraceEvent("window_flush", std::to_string(end_pane), window_groups,
                     window_batch_.size());
  }
  // One window's results travel downstream as one batch.
  EmitBatch(window_batch_);

  // Evict panes no future window needs (next end = end_pane + slide).
  uint64_t next_begin = end_pane + spec_.slide_panes >= spec_.window_panes - 1
                            ? end_pane + spec_.slide_panes -
                                  (spec_.window_panes - 1)
                            : 0;
  while (!panes_.empty() && panes_.front().first < next_begin) {
    panes_.pop_front();
  }
}

void SlidingAggregateOp::CheckpointState(std::string* out) const {
  // Layout: u8 has-open-pane [varint pane id], varint next_end_, varint
  // open-group count then per group (varint key arity, key values, one blob
  // per sub-component), varint closed-pane count then per pane (varint id,
  // varint group count, per group: key arity + values, varint component
  // count + component values). The open table is walked in sorted key order
  // so the bytes are a pure function of the logical state.
  out->push_back(current_pane_.has_value() ? 1 : 0);
  if (current_pane_.has_value()) PutVarint(*current_pane_, out);
  PutVarint(next_end_, out);

  std::vector<const PaneStates::value_type*> entries;
  entries.reserve(open_.size());
  for (const auto& kv : open_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  PutVarint(entries.size(), out);
  for (const auto* entry : entries) {
    PutVarint(entry->first.size(), out);
    for (const Value& v : entry->first) EncodeValue(v, out);
    for (const auto& state : entry->second) state->Save(out);
  }

  PutVarint(panes_.size(), out);
  for (const auto& [id, result] : panes_) {
    PutVarint(id, out);
    PutVarint(result.size(), out);
    for (const auto& [key, components] : result) {
      PutVarint(key.size(), out);
      for (const Value& v : key) EncodeValue(v, out);
      PutVarint(components.size(), out);
      for (const Value& v : components) EncodeValue(v, out);
    }
  }
}

Status SlidingAggregateOp::RestoreState(std::string_view data) {
  current_pane_.reset();
  next_end_ = 0;
  open_.clear();
  panes_.clear();

  size_t offset = 0;
  if (data.empty()) {
    return Status::InvalidArgument(label(), ": empty checkpoint blob");
  }
  if (data[offset++] != 0) {
    uint64_t pane = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &pane));
    current_pane_ = pane;
  }
  SP_RETURN_NOT_OK(GetVarint(data, &offset, &next_end_));

  uint64_t open_groups = 0;
  SP_RETURN_NOT_OK(GetVarint(data, &offset, &open_groups));
  if (open_groups > data.size()) {
    return Status::InvalidArgument(label(), ": implausible group count ",
                                   open_groups);
  }
  for (uint64_t g = 0; g < open_groups; ++g) {
    uint64_t arity = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &arity));
    if (arity > data.size()) {
      return Status::InvalidArgument(label(), ": implausible key arity ",
                                     arity);
    }
    std::vector<Value> key(arity);
    for (Value& v : key) SP_RETURN_NOT_OK(DecodeValue(data, &offset, &v));
    std::vector<std::unique_ptr<UdafState>> states = NewSubStates();
    for (size_t i = 0; i < states.size(); ++i) {
      if (!states[i]->Load(data, &offset)) {
        return Status::InvalidArgument(label(), ": malformed sub-accumulator ",
                                       i);
      }
    }
    if (!open_.emplace(std::move(key), std::move(states)).second) {
      return Status::InvalidArgument(label(),
                                     ": duplicate group key in checkpoint");
    }
  }

  uint64_t num_panes = 0;
  SP_RETURN_NOT_OK(GetVarint(data, &offset, &num_panes));
  if (num_panes > data.size()) {
    return Status::InvalidArgument(label(), ": implausible pane count ",
                                   num_panes);
  }
  for (uint64_t p = 0; p < num_panes; ++p) {
    uint64_t id = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &id));
    uint64_t groups = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &groups));
    if (groups > data.size()) {
      return Status::InvalidArgument(label(), ": implausible group count ",
                                     groups);
    }
    PaneResult result;
    for (uint64_t g = 0; g < groups; ++g) {
      uint64_t arity = 0;
      SP_RETURN_NOT_OK(GetVarint(data, &offset, &arity));
      if (arity > data.size()) {
        return Status::InvalidArgument(label(), ": implausible key arity ",
                                       arity);
      }
      std::vector<Value> key(arity);
      for (Value& v : key) SP_RETURN_NOT_OK(DecodeValue(data, &offset, &v));
      uint64_t comps = 0;
      SP_RETURN_NOT_OK(GetVarint(data, &offset, &comps));
      if (comps > data.size()) {
        return Status::InvalidArgument(label(), ": implausible component count ",
                                       comps);
      }
      std::vector<Value> components(comps);
      for (Value& v : components) {
        SP_RETURN_NOT_OK(DecodeValue(data, &offset, &v));
      }
      if (!result.emplace(std::move(key), std::move(components)).second) {
        return Status::InvalidArgument(label(),
                                       ": duplicate group key in pane ", id);
      }
    }
    if (!panes_.empty() && panes_.back().first >= id) {
      return Status::InvalidArgument(label(), ": pane ids out of order");
    }
    panes_.emplace_back(id, std::move(result));
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(label(), ": checkpoint has ",
                                   data.size() - offset, " trailing bytes");
  }
  return Status::OK();
}

void SlidingAggregateOp::DoFinish() {
  std::optional<uint64_t> last = current_pane_;
  if (!last.has_value() && !panes_.empty()) last = panes_.back().first;
  ClosePane();
  if (!last.has_value()) return;
  // Drain: emit every remaining window whose range still touches the data.
  while (next_end_ - std::min<uint64_t>(next_end_, spec_.window_panes - 1) <=
         *last) {
    EmitWindow(next_end_);
    advance_window();
    if (panes_.empty()) break;
  }
}

}  // namespace streampart
