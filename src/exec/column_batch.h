#pragma once

/// \file column_batch.h
/// \brief Column-major batches with selection vectors — the columnar
/// execution path.
///
/// A ColumnBatch holds the same rows as a TupleSpan, transposed: one
/// fixed-width vector of raw 8-byte payloads per attribute, plus an optional
/// per-row null flag. Only fixed-width types (everything but kString) are
/// representable; ColumnBatch::FromTuples refuses string cells and
/// mixed-type columns, and callers fall back to the row-batch path.
///
/// The selection-vector contract: a columnar delivery is a (batch, sel)
/// pair, where `sel` lists the *live* row indexes of the batch in ascending
/// order. Operators never compact the batch — filters shrink the selection
/// vector, and projections alias unmodified columns by shared_ptr — so one
/// physical batch flows through a filter→project→aggregate chain with zero
/// row materialization. Both are borrowed views, valid only for the duration
/// of the PushColumns call (exactly like TupleSpan in PushBatch).
///
/// Payload encoding matches the packed group-key slots of ops.cc
/// (PackValueTo): kUint/kIp/kBool store the unsigned payload, kInt the
/// two's-complement bits, kDouble the IEEE-754 bits. A null cell stores 0
/// with its null flag set. This bit-compatibility is what lets the columnar
/// aggregate kernel memcpy key payloads straight into packed keys.
///
/// ColumnEvaluator evaluates a bound scalar expression over the selected
/// rows of a batch. It must mirror Expr::Eval *exactly* — same promotion
/// ladder, same NULL propagation, same division-by-zero behaviour — because
/// tests/columnar_exec_test.cc holds the three execution paths to byte-
/// identical ledgers. Calls and string literals are not vectorizable;
/// operators detect that at construction and keep the row path.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "expr/expr.h"
#include "types/tuple.h"
#include "types/value.h"

namespace streampart {

/// \brief Execution-path selector: the per-tuple reference path, the
/// row-batch path (PR 1), or the columnar path. The per-tuple and row-batch
/// paths are kept intact as differential oracles for the columnar kernels.
enum class ExecMode : uint8_t {
  kTuple,
  kBatch,
  kColumnar,
};

const char* ExecModeToString(ExecMode mode);
/// \brief Parses "tuple" / "batch" / "columnar"; false on anything else.
bool ParseExecMode(std::string_view text, ExecMode* out);

/// \brief Ascending live-row indexes into a ColumnBatch.
using SelectionVector = std::vector<uint32_t>;

/// \brief Rebuilds \p sel as the identity selection [0, n).
inline void IdentitySelection(size_t n, SelectionVector* sel) {
  sel->resize(n);
  for (size_t i = 0; i < n; ++i) (*sel)[i] = static_cast<uint32_t>(i);
}

/// \brief Materializes one cell back into a tagged Value. Inverse of the
/// payload encoding above (and of ops.cc's PackValueTo payload bytes).
inline Value UnpackCell(DataType type, uint64_t payload) {
  switch (type) {
    case DataType::kUint:
      return Value::Uint(payload);
    case DataType::kIp:
      return Value::Ip(static_cast<uint32_t>(payload));
    case DataType::kBool:
      return Value::Bool(payload != 0);
    case DataType::kInt:
      return Value::Int(static_cast<int64_t>(payload));
    case DataType::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(double));
      return Value::Double(d);
    }
    default:
      return Value::Null();
  }
}

/// \brief Raw 8-byte payload of a non-string Value (see the encoding note
/// in the file comment). Inverse of UnpackCell for non-null values.
inline uint64_t PackCellPayload(const Value& v) {
  switch (v.type()) {
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      return v.uint_value();
    case DataType::kInt:
      return static_cast<uint64_t>(v.int_value());
    case DataType::kDouble: {
      uint64_t bits;
      double d = v.double_value();
      std::memcpy(&bits, &d, sizeof(double));
      return bits;
    }
    default:
      return 0;  // kNull
  }
}

/// \brief One fixed-width attribute vector.
struct Column {
  DataType type = DataType::kNull;
  /// Raw 8-byte payloads, one per row of the owning batch.
  std::vector<uint64_t> data;
  /// Per-row null flags; empty means "no nulls in this column".
  std::vector<uint8_t> nulls;

  bool has_nulls() const { return !nulls.empty(); }
  bool is_null(size_t row) const { return !nulls.empty() && nulls[row] != 0; }
  Value ValueAt(size_t row) const {
    return is_null(row) ? Value::Null() : UnpackCell(type, data[row]);
  }
  /// \brief Marks \p row null (allocating the flag vector on first use).
  void SetNull(size_t row, size_t batch_rows) {
    if (nulls.empty()) nulls.assign(batch_rows, 0);
    nulls[row] = 1;
  }
};

using ColumnPtr = std::shared_ptr<Column>;

/// \brief True when the cell reads as NULL: either flagged, or the whole
/// column is typeless (all-null). Kernels must use this rather than
/// Column::is_null so all-null columns behave like NULL operands.
inline bool CellIsNull(const Column& c, size_t row) {
  return c.type == DataType::kNull || c.is_null(row);
}

/// \brief A column-major batch. Columns are shared by pointer so that
/// projections alias their inputs instead of copying payload vectors.
class ColumnBatch {
 public:
  size_t rows() const { return rows_; }
  size_t num_columns() const { return cols_.size(); }
  const Column& col(size_t i) const { return *cols_[i]; }
  const ColumnPtr& col_ptr(size_t i) const { return cols_[i]; }

  void Clear() {
    rows_ = 0;
    cols_.clear();
  }
  void SetRows(size_t rows) { rows_ = rows; }
  void AddColumn(ColumnPtr c) { cols_.push_back(std::move(c)); }

  /// \brief Transposes \p batch into this ColumnBatch, reusing column
  /// storage across calls. Returns false — leaving the batch cleared — when
  /// the rows are not columnar-representable: a string cell anywhere, or a
  /// column mixing two non-null types. Column types are inferred from the
  /// first non-null cell (an all-null column has type kNull).
  bool FromTuples(TupleSpan batch);

  /// \brief Materializes row \p row into \p out (slots overwritten in
  /// place; \p out is a reusable scratch tuple).
  void MaterializeRow(size_t row, Tuple* out) const;

  /// \brief Wire-model size of row \p row — equals the WireSize() of the
  /// materialized tuple, so columnar bytes_out accounting matches the row
  /// paths exactly.
  size_t RowWireBytes(size_t row) const;
  /// \brief Row wire size assuming no null cells (the common case);
  /// constant across rows.
  size_t FixedRowWireBytes() const;
  /// \brief True when any column carries a null flag vector.
  bool AnyNulls() const;

 private:
  size_t rows_ = 0;
  std::vector<ColumnPtr> cols_;
};

/// \brief Encodes the selected rows in the standard row wire format —
/// byte-identical to serde's EncodeBatch over the materialized rows, so
/// cross-host transfer accounting is independent of the execution mode.
void EncodeColumns(const ColumnBatch& batch, const SelectionVector& sel,
                   std::string* out);

/// \brief True when a bound expression can run on the columnar path:
/// column references, non-string literals, and binary/unary operators.
/// Calls are not vectorizable; string *columns* never arise because
/// FromTuples refuses them.
bool ExprVectorizable(const ExprPtr& expr);

/// \brief Compiled columnar evaluator for one bound expression.
///
/// The tree is flattened to a post-order program at construction, with one
/// reusable scratch column per interior node, so steady-state evaluation
/// allocates nothing. Evaluate() computes cells for the selected rows only;
/// cells outside the selection are unspecified.
class ColumnEvaluator {
 public:
  /// \pre ExprVectorizable(expr).
  explicit ColumnEvaluator(ExprPtr expr);

  const ExprPtr& expr() const { return expr_; }

  /// \brief Evaluates over the selected rows; the returned column is either
  /// a batch column (bare column refs) or internal scratch, valid until the
  /// next Evaluate() call.
  const Column* Evaluate(const ColumnBatch& batch, const SelectionVector& sel);

  /// \brief Filter kernel: shrinks \p sel in place to the rows whose value
  /// is truthy (NULL collapses to false, matching Eval().Truthy()).
  void Filter(const ColumnBatch& batch, SelectionVector* sel);

 private:
  enum class OpCode : uint8_t { kColumn, kLiteral, kBinary, kUnary };
  struct Node {
    OpCode code;
    BinaryOp bin_op = BinaryOp::kAdd;
    UnaryOp un_op = UnaryOp::kNegate;
    size_t column = 0;     // kColumn: bound input column index
    Value literal;         // kLiteral
    int left = -1;         // kBinary/kUnary: node index of child
    int right = -1;        // kBinary: node index of right child
    Column scratch;        // interior/literal result storage
  };

  int Flatten(const ExprPtr& expr);
  const Column* EvalNode(size_t idx, const ColumnBatch& batch,
                         const SelectionVector& sel);

  ExprPtr expr_;
  std::vector<Node> nodes_;  // post-order; the last node is the root
  std::vector<const Column*> results_;  // per-node result, one Evaluate pass
};

/// \brief Splits a bound WHERE into cost-ordered columnar clause kernels
/// (see optimizer/filter_order.h for the weighting rule). Returns an empty
/// vector when \p where is null. \pre every conjunct is vectorizable.
std::vector<ColumnEvaluator> CompileOrderedClauses(const ExprPtr& where);

}  // namespace streampart
