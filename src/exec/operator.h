#pragma once

/// \file operator.h
/// \brief Push-based streaming operator interface.
///
/// Operators form a dataflow graph: producers Emit() tuples, which are pushed
/// into each consumer's input port. End-of-stream is signalled per port with
/// Finish(); an operator flushes its state and propagates Finish downstream
/// once all of its ports have finished.
///
/// Two delivery granularities exist. Push()/Emit() move one tuple at a time —
/// the reference path. PushBatch()/EmitBatch() move a contiguous TupleSpan;
/// the default DoPushBatch falls back to a per-tuple loop, and operators with
/// vectorized implementations override it. Both paths must account identical
/// OpStats and produce identical outputs; tests/batch_exec_test.cc enforces
/// this differentially.
///
/// Every operator maintains OpStats work counters. The distributed runtime
/// maps these counters to simulated CPU cycles (src/metrics), so operators
/// must account their work honestly rather than being instrumented
/// externally.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "exec/column_batch.h"
#include "metrics/stats.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Work counters; the currency of the CPU-cost model.
struct OpStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t bytes_out = 0;
  /// Hash-table probes that found an existing group.
  uint64_t group_probes = 0;
  /// New groups created.
  uint64_t group_inserts = 0;
  /// Join pair evaluations.
  uint64_t join_probes = 0;
  /// Tuples evaluated against a predicate (WHERE/HAVING/residual).
  uint64_t predicate_evals = 0;
  /// Tuples that arrived after their tumbling window already closed and were
  /// dropped (the Gigascope policy; nonzero indicates an unordered input).
  uint64_t late_tuples = 0;

  friend bool operator==(const OpStats&, const OpStats&) = default;

  OpStats& operator+=(const OpStats& o) {
    tuples_in += o.tuples_in;
    tuples_out += o.tuples_out;
    bytes_out += o.bytes_out;
    group_probes += o.group_probes;
    late_tuples += o.late_tuples;
    group_inserts += o.group_inserts;
    join_probes += o.join_probes;
    predicate_evals += o.predicate_evals;
    return *this;
  }
};

/// \brief Base class of all streaming operators.
class Operator {
 public:
  explicit Operator(size_t num_ports)
      : finished_(num_ports, false), ports_remaining_(num_ports) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  size_t num_ports() const { return finished_.size(); }

  /// \brief Delivers one tuple to \p port.
  void Push(size_t port, const Tuple& tuple) {
    SP_DCHECK(port < finished_.size());
    ++stats_.tuples_in;
    if (telemetry_) telemetry_->ports[port].tuples_in->Inc();
    DoPush(port, tuple);
  }

  /// \brief Delivers a batch of tuples to \p port in one call, amortizing
  /// virtual dispatch and (in overriding operators) scratch allocation.
  /// Equivalent to pushing each tuple of \p batch in order.
  void PushBatch(size_t port, TupleSpan batch) {
    SP_DCHECK(port < finished_.size());
    if (batch.empty()) return;
    stats_.tuples_in += batch.size();
    if (telemetry_) {
      telemetry_->ports[port].tuples_in->Add(batch.size());
      telemetry_->ports[port].batches_in->Inc();
    }
    DoPushBatch(port, batch);
  }

  /// \brief Delivers the selected rows of a column-major batch to \p port —
  /// the third delivery granularity. Equivalent to pushing the materialized
  /// selected rows in order; OpStats accounting is identical to PushBatch
  /// over those rows. \p batch and \p sel are borrowed for the duration of
  /// the call. Operators without a columnar kernel fall back to the row
  /// path via the default DoPushColumns.
  void PushColumns(size_t port, const ColumnBatch& batch,
                   const SelectionVector& sel) {
    SP_DCHECK(port < finished_.size());
    if (sel.empty()) return;
    stats_.tuples_in += sel.size();
    if (telemetry_) {
      telemetry_->ports[port].tuples_in->Add(sel.size());
      telemetry_->ports[port].batches_in->Inc();
      telemetry_->col_batches_in->Inc();
      telemetry_->col_rows_in->Add(sel.size());
    }
    DoPushColumns(port, batch, sel);
  }

  /// \brief Signals end-of-stream on \p port. When all ports have finished,
  /// the operator flushes and propagates Finish to its consumers.
  void Finish(size_t port) {
    SP_DCHECK(port < finished_.size());
    if (finished_[port]) return;
    finished_[port] = true;
    --ports_remaining_;
    OnPortFinished(port);
    if (ports_remaining_ == 0) {
      DoFinish();
      ExportTelemetry();
      PropagateFinish();
    }
  }

  /// \brief Binds this operator to telemetry scope \p scope_name of
  /// \p registry. No-op (and zero recording cost beyond one predictable
  /// branch per delivery) when \p registry is null, runtime-disabled, or
  /// telemetry is compiled out. Must be called before data flows; the
  /// OpStats work counters are exported into the scope when the operator
  /// finishes.
  void BindTelemetry(StatsRegistry* registry, const std::string& scope_name) {
    if (registry == nullptr) return;
    StatsScope* scope = registry->GetScope(scope_name);
    if (scope == nullptr) return;  // disabled or compiled out
    telemetry_ = std::make_unique<Telemetry>();
    telemetry_->registry = registry;
    telemetry_->scope = scope;
    telemetry_->ports.resize(num_ports());
    for (size_t p = 0; p < num_ports(); ++p) {
      telemetry_->ports[p].tuples_in = scope->counter(stats::kPortTuplesIn, p);
      telemetry_->ports[p].batches_in =
          scope->counter(stats::kPortBatchesIn, p);
    }
    telemetry_->batches_out = scope->counter(stats::kBatchesOut);
    telemetry_->col_batches_in = scope->counter(stats::kColBatchesIn);
    telemetry_->col_rows_in = scope->counter(stats::kColRowsIn);
    telemetry_->col_fallback_rows = scope->counter(stats::kColFallbackRows);
    // Create the OpStats mirrors eagerly so every operator exports the same
    // instrument set regardless of observed traffic.
    telemetry_->tuples_in = scope->counter(stats::kTuplesIn);
    telemetry_->tuples_out = scope->counter(stats::kTuplesOut);
    telemetry_->bytes_out = scope->counter(stats::kBytesOut);
    telemetry_->group_probes = scope->counter(stats::kGroupProbes);
    telemetry_->group_inserts = scope->counter(stats::kGroupInserts);
    telemetry_->join_probes = scope->counter(stats::kJoinProbes);
    telemetry_->predicate_evals = scope->counter(stats::kPredicateEvals);
    telemetry_->late_tuples = scope->counter(stats::kLateTuples);
    DoBindTelemetry(scope);
  }

  /// \brief Wires this operator's output into \p consumer's \p port.
  void AddConsumer(Operator* consumer, size_t port) {
    consumers_.push_back({consumer, port});
  }

  /// \brief Additionally delivers output tuples to a terminal sink (result
  /// collection, network channels in the distributed runtime). The sink is
  /// called once per tuple on both execution paths.
  void AddSink(std::function<void(const Tuple&)> sink) {
    sinks_.push_back({std::move(sink), nullptr});
  }

  /// \brief Sink with a batch-aware variant: \p per_batch receives whole
  /// emitted batches (cross-host channels amortize serialization this way);
  /// \p per_tuple serves the tuple-at-a-time path. Exactly one of the two is
  /// invoked per emission.
  void AddSink(std::function<void(const Tuple&)> per_tuple,
               std::function<void(TupleSpan)> per_batch) {
    sinks_.push_back({std::move(per_tuple), std::move(per_batch)});
  }

  /// \brief Callback run when this operator finishes (after flushing).
  void AddFinishHook(std::function<void()> hook) {
    finish_hooks_.push_back(std::move(hook));
  }

  const OpStats& stats() const { return stats_; }

  /// \brief Open (not yet flushed) state held by this operator: how many
  /// windows/panes would be lost on an abrupt kill, and how many buffered
  /// tuples or group states back them. Fault injection (dist/fault.h) reads
  /// this to emit window-invalidation markers; stateless operators report
  /// zeros.
  struct OpenState {
    uint64_t windows = 0;  ///< open windows/panes/queues
    uint64_t tuples = 0;   ///< buffered tuples / group states behind them
  };
  virtual OpenState open_state() const { return {}; }

  /// \brief Appends a compact, deterministic encoding of this operator's
  /// volatile state (open windows, group tables, buffered tuples, UDAF
  /// partials) to \p out. RestoreState() on a freshly-constructed operator
  /// of the same plan node must reproduce the state exactly: feeding both
  /// operators the same subsequent input yields identical emissions, and
  /// Checkpoint-Restore-Checkpoint round-trips byte-identically. The
  /// default encodes nothing — correct for stateless operators only.
  ///
  /// The encoding is a per-operator payload; the checkpoint coordinator
  /// (dist/checkpoint.h) adds the versioned header and per-partition
  /// framing around it.
  virtual void CheckpointState(std::string* out) const { (void)out; }

  /// \brief Restores the state encoded by CheckpointState() into this
  /// freshly-constructed operator. Fails (without side-effect guarantees)
  /// on truncated or malformed input; must consume \p data exactly.
  virtual Status RestoreState(std::string_view data) {
    if (!data.empty()) {
      return Status::InvalidArgument(label(),
                                     " holds no state but checkpoint has ",
                                     data.size(), " bytes");
    }
    return Status::OK();
  }

  /// \brief Binds the ambient Horvitz–Thompson shed weight (dist/overload.h):
  /// \p weight points at the controller's current keep-1-in-m factor, valid
  /// for the operator's lifetime. Returns true when this operator consumes
  /// the weight (applies it to its accumulators); stateless and
  /// weight-oblivious operators return false and the runtime keeps searching
  /// downstream. Only the *first* weight-consuming operator on each path
  /// from a source is bound, so partials emitted upstream are never scaled
  /// twice.
  virtual bool BindShedWeight(const uint64_t* weight) {
    (void)weight;
    return false;
  }

  /// \brief False when tuples shed upstream of this operator degrade its
  /// answer without a computable Horvitz–Thompson bound (joins, and
  /// aggregates containing non-sampleable UDAFs). The overload controller
  /// marks such runs `exact=false` in the ledger.
  virtual bool ShedSampleable() const { return true; }

  /// \brief Human-readable operator label for plan dumps and debugging.
  virtual std::string label() const = 0;

 protected:
  /// \brief Sends one output tuple downstream.
  void Emit(const Tuple& tuple) {
    ++stats_.tuples_out;
    stats_.bytes_out += tuple.WireSize();
    for (const auto& [op, port] : consumers_) op->Push(port, tuple);
    for (const auto& sink : sinks_) sink.per_tuple(tuple);
  }

  /// \brief Sends a batch downstream in one consumer call per edge. Work
  /// accounting (tuples_out/bytes_out) is identical to per-tuple Emit.
  void EmitBatch(TupleSpan batch) {
    if (batch.empty()) return;
    stats_.tuples_out += batch.size();
    for (const Tuple& t : batch) stats_.bytes_out += t.WireSize();
    if (telemetry_) telemetry_->batches_out->Inc();
    for (const auto& [op, port] : consumers_) op->PushBatch(port, batch);
    for (const auto& sink : sinks_) {
      if (sink.per_batch) {
        sink.per_batch(batch);
      } else {
        for (const Tuple& t : batch) sink.per_tuple(t);
      }
    }
  }

  /// \brief Sends the selected rows of a column-major batch downstream.
  /// Columnar consumers receive the (batch, sel) view directly; sinks
  /// receive materialized rows. tuples_out/bytes_out accounting equals
  /// EmitBatch over the materialized rows.
  void EmitColumns(const ColumnBatch& batch, const SelectionVector& sel) {
    if (sel.empty()) return;
    stats_.tuples_out += sel.size();
    if (batch.AnyNulls()) {
      for (uint32_t row : sel) stats_.bytes_out += batch.RowWireBytes(row);
    } else {
      stats_.bytes_out += sel.size() * batch.FixedRowWireBytes();
    }
    if (telemetry_) telemetry_->batches_out->Inc();
    for (const auto& [op, port] : consumers_) op->PushColumns(port, batch, sel);
    if (!sinks_.empty()) {
      MaterializeSelection(batch, sel, &columnar_out_scratch_);
      for (const auto& sink : sinks_) {
        if (sink.per_batch) {
          sink.per_batch(columnar_out_scratch_);
        } else {
          for (const Tuple& t : columnar_out_scratch_) sink.per_tuple(t);
        }
      }
    }
  }

  virtual void DoPush(size_t port, const Tuple& tuple) = 0;
  /// \brief Batch delivery; the default devolves to the per-tuple path.
  virtual void DoPushBatch(size_t port, TupleSpan batch) {
    for (const Tuple& t : batch) DoPush(port, t);
  }
  /// \brief Columnar delivery; the default materializes the selected rows
  /// and devolves to the row-batch path (counted in col_fallback_rows).
  /// PushColumns has already accounted tuples_in, so the fallback calls
  /// DoPushBatch directly rather than PushBatch.
  virtual void DoPushColumns(size_t port, const ColumnBatch& batch,
                             const SelectionVector& sel) {
    MaterializeSelection(batch, sel, &columnar_in_scratch_);
    if (telemetry_) telemetry_->col_fallback_rows->Add(sel.size());
    DoPushBatch(port, columnar_in_scratch_);
  }
  /// \brief Flush remaining state; called once after every port finished.
  virtual void DoFinish() {}
  /// \brief Materializes the selected rows of \p batch into \p out (reused
  /// scratch storage; slots overwritten in place).
  static void MaterializeSelection(const ColumnBatch& batch,
                                   const SelectionVector& sel,
                                   TupleBatch* out) {
    out->resize(sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      batch.MaterializeRow(sel[i], &(*out)[i]);
    }
  }
  /// \brief Per-port end-of-stream notification (before DoFinish).
  virtual void OnPortFinished(size_t /*port*/) {}
  /// \brief Hook for operator-specific instruments (window flushes, group
  /// occupancy, join windows). Called once from BindTelemetry.
  virtual void DoBindTelemetry(StatsScope* /*scope*/) {}

  /// \brief True when structured trace events should be recorded.
  bool trace_events_enabled() const {
    return telemetry_ != nullptr && telemetry_->registry->events_enabled();
  }
  /// \brief Records one trace event (only meaningful when
  /// trace_events_enabled()).
  void RecordTraceEvent(const char* kind, std::string epoch, uint64_t groups,
                        uint64_t emitted) {
    telemetry_->registry->RecordEvent(TraceEvent{
        telemetry_->scope->name(), kind, std::move(epoch), groups, emitted});
  }

  OpStats stats_;

 private:
  void PropagateFinish() {
    for (const auto& [op, port] : consumers_) op->Finish(port);
    for (const auto& hook : finish_hooks_) hook();
  }

  /// \brief Folds the OpStats work counters into the bound scope. Runs once,
  /// after the final flush, so the mirrors see post-flush totals.
  void ExportTelemetry() {
    if (!telemetry_) return;
    telemetry_->tuples_in->Add(stats_.tuples_in);
    telemetry_->tuples_out->Add(stats_.tuples_out);
    telemetry_->bytes_out->Add(stats_.bytes_out);
    telemetry_->group_probes->Add(stats_.group_probes);
    telemetry_->group_inserts->Add(stats_.group_inserts);
    telemetry_->join_probes->Add(stats_.join_probes);
    telemetry_->predicate_evals->Add(stats_.predicate_evals);
    telemetry_->late_tuples->Add(stats_.late_tuples);
  }

  struct Sink {
    std::function<void(const Tuple&)> per_tuple;
    std::function<void(TupleSpan)> per_batch;  // null -> per_tuple loop
  };

  struct PortTelemetry {
    Counter* tuples_in = nullptr;
    Counter* batches_in = nullptr;
  };
  /// Live instruments; null unless BindTelemetry attached an enabled scope.
  struct Telemetry {
    StatsRegistry* registry = nullptr;
    StatsScope* scope = nullptr;
    std::vector<PortTelemetry> ports;
    Counter* batches_out = nullptr;
    Counter* col_batches_in = nullptr;
    Counter* col_rows_in = nullptr;
    Counter* col_fallback_rows = nullptr;
    Counter* tuples_in = nullptr;
    Counter* tuples_out = nullptr;
    Counter* bytes_out = nullptr;
    Counter* group_probes = nullptr;
    Counter* group_inserts = nullptr;
    Counter* join_probes = nullptr;
    Counter* predicate_evals = nullptr;
    Counter* late_tuples = nullptr;
  };

  std::vector<std::pair<Operator*, size_t>> consumers_;
  std::vector<Sink> sinks_;
  std::vector<std::function<void()>> finish_hooks_;
  std::vector<bool> finished_;
  size_t ports_remaining_;
  std::unique_ptr<Telemetry> telemetry_;
  /// Reused row-materialization scratch for the columnar fallbacks: one for
  /// incoming deliveries (default DoPushColumns), one for sink emission.
  TupleBatch columnar_in_scratch_;
  TupleBatch columnar_out_scratch_;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace streampart
