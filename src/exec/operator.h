#pragma once

/// \file operator.h
/// \brief Push-based streaming operator interface.
///
/// Operators form a dataflow graph: producers Emit() tuples, which are pushed
/// into each consumer's input port. End-of-stream is signalled per port with
/// Finish(); an operator flushes its state and propagates Finish downstream
/// once all of its ports have finished.
///
/// Two delivery granularities exist. Push()/Emit() move one tuple at a time —
/// the reference path. PushBatch()/EmitBatch() move a contiguous TupleSpan;
/// the default DoPushBatch falls back to a per-tuple loop, and operators with
/// vectorized implementations override it. Both paths must account identical
/// OpStats and produce identical outputs; tests/batch_exec_test.cc enforces
/// this differentially.
///
/// Every operator maintains OpStats work counters. The distributed runtime
/// maps these counters to simulated CPU cycles (src/metrics), so operators
/// must account their work honestly rather than being instrumented
/// externally.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Work counters; the currency of the CPU-cost model.
struct OpStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t bytes_out = 0;
  /// Hash-table probes that found an existing group.
  uint64_t group_probes = 0;
  /// New groups created.
  uint64_t group_inserts = 0;
  /// Join pair evaluations.
  uint64_t join_probes = 0;
  /// Tuples evaluated against a predicate (WHERE/HAVING/residual).
  uint64_t predicate_evals = 0;
  /// Tuples that arrived after their tumbling window already closed and were
  /// dropped (the Gigascope policy; nonzero indicates an unordered input).
  uint64_t late_tuples = 0;

  friend bool operator==(const OpStats&, const OpStats&) = default;

  OpStats& operator+=(const OpStats& o) {
    tuples_in += o.tuples_in;
    tuples_out += o.tuples_out;
    bytes_out += o.bytes_out;
    group_probes += o.group_probes;
    late_tuples += o.late_tuples;
    group_inserts += o.group_inserts;
    join_probes += o.join_probes;
    predicate_evals += o.predicate_evals;
    return *this;
  }
};

/// \brief Base class of all streaming operators.
class Operator {
 public:
  explicit Operator(size_t num_ports)
      : finished_(num_ports, false), ports_remaining_(num_ports) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  size_t num_ports() const { return finished_.size(); }

  /// \brief Delivers one tuple to \p port.
  void Push(size_t port, const Tuple& tuple) {
    SP_DCHECK(port < finished_.size());
    ++stats_.tuples_in;
    DoPush(port, tuple);
  }

  /// \brief Delivers a batch of tuples to \p port in one call, amortizing
  /// virtual dispatch and (in overriding operators) scratch allocation.
  /// Equivalent to pushing each tuple of \p batch in order.
  void PushBatch(size_t port, TupleSpan batch) {
    SP_DCHECK(port < finished_.size());
    if (batch.empty()) return;
    stats_.tuples_in += batch.size();
    DoPushBatch(port, batch);
  }

  /// \brief Signals end-of-stream on \p port. When all ports have finished,
  /// the operator flushes and propagates Finish to its consumers.
  void Finish(size_t port) {
    SP_DCHECK(port < finished_.size());
    if (finished_[port]) return;
    finished_[port] = true;
    --ports_remaining_;
    OnPortFinished(port);
    if (ports_remaining_ == 0) {
      DoFinish();
      PropagateFinish();
    }
  }

  /// \brief Wires this operator's output into \p consumer's \p port.
  void AddConsumer(Operator* consumer, size_t port) {
    consumers_.push_back({consumer, port});
  }

  /// \brief Additionally delivers output tuples to a terminal sink (result
  /// collection, network channels in the distributed runtime). The sink is
  /// called once per tuple on both execution paths.
  void AddSink(std::function<void(const Tuple&)> sink) {
    sinks_.push_back({std::move(sink), nullptr});
  }

  /// \brief Sink with a batch-aware variant: \p per_batch receives whole
  /// emitted batches (cross-host channels amortize serialization this way);
  /// \p per_tuple serves the tuple-at-a-time path. Exactly one of the two is
  /// invoked per emission.
  void AddSink(std::function<void(const Tuple&)> per_tuple,
               std::function<void(TupleSpan)> per_batch) {
    sinks_.push_back({std::move(per_tuple), std::move(per_batch)});
  }

  /// \brief Callback run when this operator finishes (after flushing).
  void AddFinishHook(std::function<void()> hook) {
    finish_hooks_.push_back(std::move(hook));
  }

  const OpStats& stats() const { return stats_; }

  /// \brief Human-readable operator label for plan dumps and debugging.
  virtual std::string label() const = 0;

 protected:
  /// \brief Sends one output tuple downstream.
  void Emit(const Tuple& tuple) {
    ++stats_.tuples_out;
    stats_.bytes_out += tuple.WireSize();
    for (const auto& [op, port] : consumers_) op->Push(port, tuple);
    for (const auto& sink : sinks_) sink.per_tuple(tuple);
  }

  /// \brief Sends a batch downstream in one consumer call per edge. Work
  /// accounting (tuples_out/bytes_out) is identical to per-tuple Emit.
  void EmitBatch(TupleSpan batch) {
    if (batch.empty()) return;
    stats_.tuples_out += batch.size();
    for (const Tuple& t : batch) stats_.bytes_out += t.WireSize();
    for (const auto& [op, port] : consumers_) op->PushBatch(port, batch);
    for (const auto& sink : sinks_) {
      if (sink.per_batch) {
        sink.per_batch(batch);
      } else {
        for (const Tuple& t : batch) sink.per_tuple(t);
      }
    }
  }

  virtual void DoPush(size_t port, const Tuple& tuple) = 0;
  /// \brief Batch delivery; the default devolves to the per-tuple path.
  virtual void DoPushBatch(size_t port, TupleSpan batch) {
    for (const Tuple& t : batch) DoPush(port, t);
  }
  /// \brief Flush remaining state; called once after every port finished.
  virtual void DoFinish() {}
  /// \brief Per-port end-of-stream notification (before DoFinish).
  virtual void OnPortFinished(size_t /*port*/) {}

  OpStats stats_;

 private:
  void PropagateFinish() {
    for (const auto& [op, port] : consumers_) op->Finish(port);
    for (const auto& hook : finish_hooks_) hook();
  }

  struct Sink {
    std::function<void(const Tuple&)> per_tuple;
    std::function<void(TupleSpan)> per_batch;  // null -> per_tuple loop
  };

  std::vector<std::pair<Operator*, size_t>> consumers_;
  std::vector<Sink> sinks_;
  std::vector<std::function<void()>> finish_hooks_;
  std::vector<bool> finished_;
  size_t ports_remaining_;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace streampart
