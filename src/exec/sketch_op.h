#pragma once

/// \file sketch_op.h
/// \brief The sketch execution leg: bounded-error aggregation when neither a
/// compatible partition set nor raw-tuple shipping is affordable.
///
/// The §5 optimizer's third outcome (docs/SKETCHES.md) splits an
/// incompatible tumbling-window aggregate into two operators. On every host
/// a SketchOp folds the host's share of the stream into one count-min sketch
/// per aggregate slot plus a candidate-key set, and at each epoch boundary
/// ships a single serialized *summary tuple* — {epoch, summary blob} —
/// instead of the epoch's raw tuples. At the aggregator a SketchMergeOp
/// folds the per-host summaries of each epoch together (count-min merge is
/// exact cell-wise addition; candidate sets union) and answers the query
/// from the merged sketch: one approximate group row per candidate key,
/// passed through HAVING and the output projection like the exact leg.
///
/// Guarantees carried to the RunLedger (marked exact=false there):
/// per-epoch, every estimate over-counts its true value by at most
/// eps * N_epoch with probability >= 1 - delta, where N_epoch is the epoch's
/// total stream mass folded into that aggregate's sketch — and never
/// under-counts. Candidate keys are the *observed* group keys, so no true
/// group is ever missing from the output; HAVING may pass spurious groups
/// only within the over-count band.
///
/// Both operators honor the engine-wide determinism contracts: per-tuple and
/// batched delivery produce identical outputs and counters, checkpoints are
/// a pure function of logical state (dist/checkpoint.h), and the host leg
/// consumes the ambient Horvitz–Thompson shed weight (dist/overload.h) by
/// scaling update deltas, so overload control composes with sketching.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "plan/query_node.h"
#include "sketch/sketch.h"

namespace streampart {

/// \brief Error-budget parameters the optimizer stamps into the plan; both
/// legs must be built from equal specs or the summaries will not merge.
struct SketchSpec {
  double eps = 0.05;         ///< relative over-count budget per epoch
  double confidence = 0.99;  ///< probability the eps bound holds per estimate
  uint64_t seed = 0x5eedc0de;

  /// \brief The count-min grid realizing this budget.
  sketch::CmParams Grid() const {
    return sketch::CmParams::FromErrorBound(eps, 1.0 - confidence, seed);
  }

  friend bool operator==(const SketchSpec&, const SketchSpec&) = default;
};

/// \brief Host-side sketch builder over a kAggregate node.
///
/// Applies the node's WHERE, evaluates the group-by expressions, and folds
/// each admitted tuple into one count-min sketch per aggregate slot (COUNT
/// updates mass 1, SUM updates the argument's numeric value), keyed by the
/// serde encoding of the non-temporal group values. Epochs tumble on the
/// node's temporal group key exactly like AggregateOp windows, including the
/// drop-and-count policy for late tuples.
class SketchOp : public Operator {
 public:
  SketchOp(QueryNodePtr node, SketchSpec spec);

  std::string label() const override { return "sketch(" + node_->name + ")"; }

  const SketchSpec& spec() const { return spec_; }

  /// \brief Deterministic work totals for the ledger's sketch section
  /// (independent of telemetry, identical on both delivery paths).
  struct Accounting {
    uint64_t updates = 0;        ///< count-min point updates applied
    uint64_t summaries = 0;      ///< summary tuples emitted
    uint64_t summary_bytes = 0;  ///< serialized bytes of those summaries
    uint64_t epochs = 0;         ///< epochs closed
  };
  const Accounting& accounting() const { return acc_; }

  /// \brief The open epoch (if any) and its candidate keys.
  OpenState open_state() const override {
    uint64_t n = candidates_.size();
    return {n > 0 ? uint64_t{1} : uint64_t{0}, n};
  }

  void CheckpointState(std::string* out) const override;
  Status RestoreState(std::string_view data) override;

  /// \brief Shed weight scales every update delta (Horvitz–Thompson), so
  /// sketch totals — and the error bound's N — track the estimated, not the
  /// observed, stream mass.
  bool BindShedWeight(const uint64_t* weight) override {
    shed_weight_ = weight;
    return true;
  }
  bool ShedSampleable() const override { return true; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoFinish() override;
  void DoBindTelemetry(StatsScope* scope) override;

 private:
  /// Tumbling-epoch boundary check; false when \p epoch is late.
  bool AdvanceEpoch(const Value& epoch);
  /// Serializes and emits the open epoch's summary, then resets.
  void FlushEpoch();

  QueryNodePtr node_;
  SketchSpec spec_;
  size_t temporal_idx_ = 0;       // index into group_by of the epoch key
  std::vector<int> group_cols_;   // bound column index per group slot
  std::vector<int> arg_cols_;     // bound column index per aggregate arg
  std::vector<sketch::CmSketch> sketches_;  // one per aggregate slot
  /// Observed group keys of the open epoch: serde-encoded non-temporal
  /// group values -> their 64-bit hash. Sorted, so summaries serialize
  /// deterministically.
  std::map<std::string, uint64_t> candidates_;
  std::optional<Value> current_epoch_;
  const uint64_t* shed_weight_ = nullptr;
  std::vector<Value> key_vals_;  // reused group-value scratch
  std::string key_buf_;          // reused encoded-key scratch
  Accounting acc_;

  // Telemetry instruments (null unless bound; see metrics/stats.h).
  Counter* t_updates_ = nullptr;
  Counter* t_summaries_ = nullptr;
  Counter* t_summary_bytes_ = nullptr;
  Counter* t_epoch_flushes_ = nullptr;
};

/// \brief Aggregator-side summary merge and answer extraction.
///
/// Consumes the ordered stream of per-host summary tuples (the cross-host
/// merge upstream orders them by epoch), merges all summaries of one epoch,
/// and on epoch advance emits the approximate result rows: one internal
/// tuple per candidate key — group values decoded from the key, aggregate
/// slots answered by count-min point estimates — filtered through HAVING and
/// projected through the node's outputs, in sorted candidate order.
class SketchMergeOp : public Operator {
 public:
  SketchMergeOp(QueryNodePtr node, SketchSpec spec);

  std::string label() const override {
    return "sketch_merge(" + node_->name + ")";
  }

  const SketchSpec& spec() const { return spec_; }

  /// \brief Deterministic totals for the ledger's sketch section.
  struct Accounting {
    uint64_t merged_summaries = 0;  ///< host summaries folded in
    uint64_t merged_bytes = 0;      ///< serialized bytes of those summaries
    uint64_t epochs = 0;            ///< epochs answered
    uint64_t estimates = 0;         ///< approximate group rows computed
    /// Largest per-epoch sketch mass seen; eps * max_epoch_mass is the
    /// widest absolute over-count bound any emitted estimate carries.
    uint64_t max_epoch_mass = 0;
  };
  const Accounting& accounting() const { return acc_; }

  OpenState open_state() const override {
    uint64_t n = candidates_.size();
    return {n > 0 ? uint64_t{1} : uint64_t{0}, n};
  }

  void CheckpointState(std::string* out) const override;
  Status RestoreState(std::string_view data) override;

  /// Estimates inherit the host legs' Horvitz–Thompson scaling; nothing to
  /// bind here, but shed answers stay boundable.
  bool ShedSampleable() const override { return true; }

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoFinish() override;
  void DoBindTelemetry(StatsScope* scope) override;

 private:
  void FlushEpoch();
  /// HAVING + output projection of internal_scratch_ into flush_batch_.
  void FlushInternal();

  QueryNodePtr node_;
  SketchSpec spec_;
  size_t temporal_idx_ = 0;
  std::vector<int> out_cols_;  // bound internal-tuple index per output
  std::vector<sketch::CmSketch> sketches_;  // merged; one per aggregate slot
  std::map<std::string, uint64_t> candidates_;  // encoded key -> hash
  std::optional<Value> current_epoch_;
  Tuple internal_scratch_;  // reused key+estimates tuple during flush
  TupleBatch flush_batch_;  // reused epoch-flush output scratch
  Accounting acc_;

  // Telemetry instruments (null unless bound; see metrics/stats.h).
  Counter* t_merged_summaries_ = nullptr;
  Counter* t_merged_bytes_ = nullptr;
  Counter* t_estimates_ = nullptr;
  Counter* t_epoch_flushes_ = nullptr;
};

/// \brief The schema of the summary stream between the two legs:
/// {<temporal field name>: source temporal type (ordered), "summary":
/// string}. Built by the optimizer when it wires the sketch leg.
SchemaPtr SketchSummarySchema(const QueryNode& node);

}  // namespace streampart
