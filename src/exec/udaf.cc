#include "exec/udaf.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "types/serde.h"

namespace streampart {

namespace {

// ---------------------------------------------------------------------------
// Accumulator serde helpers (checkpointing). Built on the wire-format
// primitives of types/serde.h so the encodings stay deterministic and
// compact; the bool-returning readers fold Status into the UdafState::Load
// contract.
// ---------------------------------------------------------------------------

bool ReadVarint(std::string_view data, size_t* offset, uint64_t* out) {
  return GetVarint(data, offset, out).ok();
}

void PutDouble(double d, std::string* out) {
  char buf[sizeof(double)];
  std::memcpy(buf, &d, sizeof(double));
  out->append(buf, sizeof(double));
}

bool ReadDouble(std::string_view data, size_t* offset, double* out) {
  if (*offset + sizeof(double) > data.size()) return false;
  std::memcpy(out, data.data() + *offset, sizeof(double));
  *offset += sizeof(double);
  return true;
}

// ---------------------------------------------------------------------------
// Accumulators
// ---------------------------------------------------------------------------

class CountState : public UdafState {
 public:
  void Update(const Value&) override { ++count_; }
  void UpdateWeighted(const Value&, uint64_t weight) override {
    count_ += weight;
  }
  Value Final() const override { return Value::Uint(count_); }
  bool Reset() override {
    count_ = 0;
    return true;
  }
  void Save(std::string* out) const override { PutVarint(count_, out); }
  bool Load(std::string_view data, size_t* offset) override {
    return ReadVarint(data, offset, &count_);
  }

 private:
  uint64_t count_ = 0;
};

class SumState : public UdafState {
 public:
  explicit SumState(DataType arg_type) : arg_type_(arg_type) {}
  void Update(const Value& v) override {
    if (v.is_null()) return;
    seen_ = true;
    if (arg_type_ == DataType::kDouble) {
      dsum_ += v.AsDouble();
    } else if (arg_type_ == DataType::kInt) {
      isum_ += v.AsInt64();
    } else {
      usum_ += v.AsUint64();
    }
  }
  void UpdateWeighted(const Value& v, uint64_t weight) override {
    if (v.is_null()) return;
    seen_ = true;
    // Integer weights keep integer sums exact: sum scales by w with no
    // float round-trip, so an unshed run (w == 1 everywhere) is bit-equal
    // to plain Update.
    if (arg_type_ == DataType::kDouble) {
      dsum_ += v.AsDouble() * static_cast<double>(weight);
    } else if (arg_type_ == DataType::kInt) {
      isum_ += v.AsInt64() * static_cast<int64_t>(weight);
    } else {
      usum_ += v.AsUint64() * weight;
    }
  }
  Value Final() const override {
    if (!seen_) return Value::Null();
    if (arg_type_ == DataType::kDouble) return Value::Double(dsum_);
    if (arg_type_ == DataType::kInt) return Value::Int(isum_);
    return Value::Uint(usum_);
  }
  bool Reset() override {
    seen_ = false;
    usum_ = 0;
    isum_ = 0;
    dsum_ = 0;
    return true;
  }
  void Save(std::string* out) const override {
    // Final() already encodes (seen_, the active sum) losslessly per
    // arg_type_, so the checkpoint is just that value.
    EncodeValue(Final(), out);
  }
  bool Load(std::string_view data, size_t* offset) override {
    Value v;
    if (!DecodeValue(data, offset, &v).ok()) return false;
    Reset();
    if (v.is_null()) return true;
    seen_ = true;
    if (arg_type_ == DataType::kDouble) {
      dsum_ = v.AsDouble();
    } else if (arg_type_ == DataType::kInt) {
      isum_ = v.AsInt64();
    } else {
      usum_ = v.AsUint64();
    }
    return true;
  }

 private:
  DataType arg_type_;
  bool seen_ = false;
  uint64_t usum_ = 0;
  int64_t isum_ = 0;
  double dsum_ = 0;
};

class MinMaxState : public UdafState {
 public:
  explicit MinMaxState(bool is_min) : is_min_(is_min) {}
  void Update(const Value& v) override {
    if (v.is_null()) return;
    if (best_.is_null()) {
      best_ = v;
      return;
    }
    bool smaller = v < best_;
    if (smaller == is_min_ && v != best_) best_ = v;
  }
  Value Final() const override { return best_; }
  bool Reset() override {
    best_ = Value();
    return true;
  }
  void Save(std::string* out) const override { EncodeValue(best_, out); }
  bool Load(std::string_view data, size_t* offset) override {
    return DecodeValue(data, offset, &best_).ok();
  }

 private:
  bool is_min_;
  Value best_;
};

class AvgState : public UdafState {
 public:
  void Update(const Value& v) override {
    if (v.is_null()) return;
    sum_ += v.AsDouble();
    ++count_;
  }
  void UpdateWeighted(const Value& v, uint64_t weight) override {
    if (v.is_null()) return;
    sum_ += v.AsDouble() * static_cast<double>(weight);
    count_ += weight;
  }
  Value Final() const override {
    return count_ == 0 ? Value::Null() : Value::Double(sum_ / count_);
  }
  bool Reset() override {
    sum_ = 0;
    count_ = 0;
    return true;
  }
  void Save(std::string* out) const override {
    PutDouble(sum_, out);
    PutVarint(count_, out);
  }
  bool Load(std::string_view data, size_t* offset) override {
    return ReadDouble(data, offset, &sum_) &&
           ReadVarint(data, offset, &count_);
  }

 private:
  double sum_ = 0;
  uint64_t count_ = 0;
};

class BitAggrState : public UdafState {
 public:
  explicit BitAggrState(bool is_or) : is_or_(is_or), acc_(is_or ? 0 : ~0ULL) {}
  void Update(const Value& v) override {
    if (v.is_null()) return;
    seen_ = true;
    if (is_or_) {
      acc_ |= v.AsUint64();
    } else {
      acc_ &= v.AsUint64();
    }
  }
  Value Final() const override {
    return seen_ ? Value::Uint(acc_) : Value::Null();
  }
  bool Reset() override {
    seen_ = false;
    acc_ = is_or_ ? 0 : ~0ULL;
    return true;
  }
  void Save(std::string* out) const override {
    out->push_back(seen_ ? 1 : 0);
    PutVarint(acc_, out);
  }
  bool Load(std::string_view data, size_t* offset) override {
    if (*offset >= data.size()) return false;
    seen_ = data[(*offset)++] != 0;
    return ReadVarint(data, offset, &acc_);
  }

 private:
  bool is_or_;
  bool seen_ = false;
  uint64_t acc_;
};

// ---------------------------------------------------------------------------
// Type functions
// ---------------------------------------------------------------------------

Result<DataType> CountType(const std::vector<DataType>& args) {
  if (!args.empty()) {
    return Status::AnalysisError("count(*) takes no arguments");
  }
  return DataType::kUint;
}

Result<DataType> NumericPassthroughType(const std::string& name,
                                        const std::vector<DataType>& args) {
  if (args.size() != 1) {
    return Status::AnalysisError(name, " takes exactly one argument");
  }
  if (!IsNumeric(args[0])) {
    return Status::AnalysisError(name, " requires a numeric argument, got ",
                                 DataTypeToString(args[0]));
  }
  return args[0];
}

Result<DataType> AvgType(const std::vector<DataType>& args) {
  if (args.size() != 1 || !IsNumeric(args[0])) {
    return Status::AnalysisError("avg requires one numeric argument");
  }
  return DataType::kDouble;
}

Result<DataType> BitAggrType(const std::string& name,
                             const std::vector<DataType>& args) {
  if (args.size() != 1 || !IsIntegral(args[0])) {
    return Status::AnalysisError(name, " requires one integral argument");
  }
  return DataType::kUint;
}

/// Identity split: sub = self, super = \p super_name, no combiner.
UdafSplit SimpleSplit(const std::string& sub, const std::string& super) {
  UdafSplit s;
  s.sub_udafs = {sub};
  s.super_udafs = {super};
  s.combine = nullptr;
  return s;
}

UdafRegistry BuildDefaultRegistry() {
  UdafRegistry registry;
  auto add = [&registry](std::shared_ptr<const Udaf> u) {
    SP_CHECK(registry.Register(std::move(u)).ok());
  };

  add(std::make_shared<Udaf>(
      "count", CountType,
      [](DataType) { return std::make_unique<CountState>(); },
      SimpleSplit("count", "sum"), /*sampleable=*/true));

  add(std::make_shared<Udaf>(
      "sum",
      [](const std::vector<DataType>& a) {
        return NumericPassthroughType("sum", a);
      },
      [](DataType t) { return std::make_unique<SumState>(t); },
      SimpleSplit("sum", "sum"), /*sampleable=*/true));

  add(std::make_shared<Udaf>(
      "min",
      [](const std::vector<DataType>& a) {
        return NumericPassthroughType("min", a);
      },
      [](DataType) { return std::make_unique<MinMaxState>(/*is_min=*/true); },
      SimpleSplit("min", "min")));

  add(std::make_shared<Udaf>(
      "max",
      [](const std::vector<DataType>& a) {
        return NumericPassthroughType("max", a);
      },
      [](DataType) { return std::make_unique<MinMaxState>(/*is_min=*/false); },
      SimpleSplit("max", "max")));

  {
    // avg splits into (sum, count) subs combined as sum-of-sums over
    // sum-of-counts.
    UdafSplit split;
    split.sub_udafs = {"sum", "count"};
    split.super_udafs = {"sum", "sum"};
    split.combine = [](const std::vector<ExprPtr>& cols) {
      SP_CHECK(cols.size() == 2);
      // Multiply by 1.0 to force double division.
      ExprPtr scaled = Expr::Binary(BinaryOp::kMul, cols[0],
                                    Expr::Literal(Value::Double(1.0)));
      return Expr::Binary(BinaryOp::kDiv, std::move(scaled), cols[1]);
    };
    add(std::make_shared<Udaf>(
        "avg", AvgType,
        [](DataType) { return std::make_unique<AvgState>(); },
        std::move(split), /*sampleable=*/true));
  }

  add(std::make_shared<Udaf>(
      "or_aggr",
      [](const std::vector<DataType>& a) { return BitAggrType("or_aggr", a); },
      [](DataType) { return std::make_unique<BitAggrState>(/*is_or=*/true); },
      SimpleSplit("or_aggr", "or_aggr")));

  add(std::make_shared<Udaf>(
      "and_aggr",
      [](const std::vector<DataType>& a) { return BitAggrType("and_aggr", a); },
      [](DataType) { return std::make_unique<BitAggrState>(/*is_or=*/false); },
      SimpleSplit("and_aggr", "and_aggr")));

  return registry;
}

}  // namespace

const UdafRegistry& UdafRegistry::Default() {
  static const UdafRegistry* kRegistry = new UdafRegistry(BuildDefaultRegistry());
  return *kRegistry;
}

Status UdafRegistry::Register(std::shared_ptr<const Udaf> udaf) {
  const std::string& name = udaf->name();
  if (udafs_.count(name) > 0) {
    return Status::AlreadyExists("UDAF '", name, "' already registered");
  }
  udafs_[name] = std::move(udaf);
  return Status::OK();
}

Result<std::shared_ptr<const Udaf>> UdafRegistry::Get(
    const std::string& name) const {
  auto it = udafs_.find(name);
  if (it == udafs_.end()) {
    return Status::NotFound("no UDAF named '", name, "'");
  }
  return it->second;
}

Result<DataType> UdafRegistry::ResolveCall(
    const std::string& name, const std::vector<DataType>& arg_types) const {
  SP_ASSIGN_OR_RETURN(std::shared_ptr<const Udaf> udaf, Get(name));
  return udaf->ResultType(arg_types);
}

}  // namespace streampart
