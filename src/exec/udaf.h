#pragma once

/// \file udaf.h
/// \brief User-Defined Aggregate Function registry with sub/super splitting.
///
/// Every aggregate exposes, besides its streaming accumulator, a *split*
/// into a sub-aggregate (evaluated per partition / per host) and a
/// super-aggregate (combining sub results), per paper §5.2.2 and the
/// splittable-UDAF design of Cormode et al. [10]. The partial-aggregation
/// transform of the distributed optimizer is driven entirely by these specs,
/// so new UDAFs become distributable by registering a split.
///
/// Built-ins: count, sum, min, max, avg, or_aggr, and_aggr.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/data_type.h"
#include "types/value.h"

namespace streampart {

/// \brief Streaming accumulator for one (group, aggregate) pair.
class UdafState {
 public:
  virtual ~UdafState() = default;
  /// \brief Folds one input value (ignored by zero-arg aggregates like
  /// count). NULL inputs are skipped by SQL convention except for count(*).
  virtual void Update(const Value& v) = 0;
  /// \brief Folds \p v as if it had been observed \p weight times — the
  /// Horvitz–Thompson scale-up applied when load shedding keeps 1 tuple in m
  /// (dist/overload.h). The default ignores the weight, which is the correct
  /// passthrough for weight-insensitive accumulators (min/max, bit OR/AND):
  /// their answers under shedding are degraded-but-unbiased-by-scaling, and
  /// the run is marked inexact instead. Sampleable aggregates override.
  virtual void UpdateWeighted(const Value& v, uint64_t weight) {
    (void)weight;
    Update(v);
  }
  /// \brief Produces the aggregate result.
  virtual Value Final() const = 0;
  /// \brief Returns the accumulator to its freshly-constructed state and
  /// returns true, letting window flushes recycle allocations. The default
  /// returns false (no in-place reset); callers must then construct a new
  /// state. All built-in aggregates reset in place.
  virtual bool Reset() { return false; }

  /// \brief Appends a compact, deterministic encoding of the accumulator to
  /// \p out (operator checkpointing, exec/operator.h). Load() on a fresh
  /// state of the same UDAF and argument type must restore it exactly:
  /// Save-Load-Save round-trips byte-identically. The defaults encode
  /// nothing / consume nothing, which is only correct for stateless
  /// accumulators; every built-in overrides both.
  virtual void Save(std::string* out) const { (void)out; }
  /// \brief Restores the accumulator from \p data at \p *offset, advancing
  /// it. Returns false on truncated or malformed input.
  virtual bool Load(std::string_view data, size_t* offset) {
    (void)data;
    (void)offset;
    return true;
  }
};

/// \brief How to split an aggregate into per-partition sub-aggregates and a
/// combining super-aggregate (paper §5.2.2).
struct UdafSplit {
  /// Sub-aggregate UDAF names; each is applied to the original arguments
  /// (except "count", which takes none). Usually a single entry; avg needs
  /// two (sum and count).
  std::vector<std::string> sub_udafs;
  /// Super-aggregate names, positionally combining the sub columns.
  std::vector<std::string> super_udafs;
  /// Builds the final output expression from the super-aggregate columns;
  /// null means the first super column is the result unchanged.
  std::function<ExprPtr(const std::vector<ExprPtr>&)> combine;
};

/// \brief One registered aggregate function.
class Udaf {
 public:
  Udaf(std::string name, std::function<Result<DataType>(const std::vector<DataType>&)> type_fn,
       std::function<std::unique_ptr<UdafState>(DataType arg_type)> state_fn,
       UdafSplit split, bool sampleable = false)
      : name_(std::move(name)),
        type_fn_(std::move(type_fn)),
        state_fn_(std::move(state_fn)),
        split_(std::move(split)),
        sampleable_(sampleable) {}

  const std::string& name() const { return name_; }

  /// \brief True when the aggregate scales correctly under uniform tuple
  /// shedding via UpdateWeighted (count/sum/avg). Non-sampleable aggregates
  /// (min/max, or_aggr/and_aggr) force shed runs to be marked inexact.
  bool sampleable() const { return sampleable_; }

  /// \brief Result type for the given argument types (validates arity).
  Result<DataType> ResultType(const std::vector<DataType>& arg_types) const {
    return type_fn_(arg_types);
  }

  /// \brief Fresh accumulator; \p arg_type is the single argument's type
  /// (kNull for zero-arg aggregates).
  std::unique_ptr<UdafState> NewState(DataType arg_type) const {
    return state_fn_(arg_type);
  }

  const UdafSplit& split() const { return split_; }

 private:
  std::string name_;
  std::function<Result<DataType>(const std::vector<DataType>&)> type_fn_;
  std::function<std::unique_ptr<UdafState>(DataType)> state_fn_;
  UdafSplit split_;
  bool sampleable_ = false;
};

/// \brief Name-keyed registry of aggregates; also serves as the
/// FunctionTypeResolver handed to expression binding.
class UdafRegistry : public FunctionTypeResolver {
 public:
  /// \brief Registry pre-populated with the built-in aggregates.
  static const UdafRegistry& Default();

  /// \brief Creates an empty registry (for tests registering custom UDAFs).
  UdafRegistry() = default;

  Status Register(std::shared_ptr<const Udaf> udaf);

  /// \brief Lookup by lower-case name.
  Result<std::shared_ptr<const Udaf>> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return udafs_.count(name) > 0;
  }

  // FunctionTypeResolver:
  Result<DataType> ResolveCall(
      const std::string& name,
      const std::vector<DataType>& arg_types) const override;
  bool IsAggregate(const std::string& name) const override {
    return Contains(name);
  }

 private:
  std::map<std::string, std::shared_ptr<const Udaf>> udafs_;
};

}  // namespace streampart
