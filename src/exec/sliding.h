#pragma once

/// \file sliding.h
/// \brief Pane-based sliding-window aggregation (Li et al., "No pane, no
/// gain", cited as [17] by the paper).
///
/// The paper assumes tumbling windows because sliding windows reduce to them:
/// a sliding window of W panes advancing by S panes is evaluated by
/// sub-aggregating each pane (a tumbling window) and super-aggregating the W
/// most recent pane partials. This operator implements exactly that
/// construction on top of the UDAF split registry — the same sub/super
/// machinery the distributed optimizer uses for partial aggregation.
///
/// It is also why §3.5.1 excludes temporal attributes from partitioning
/// sets: pane partials for one group must all land on one host across the
/// whole window, and partitioning on time would reassign the group mid-
/// window.
///
/// The wrapped aggregation node's temporal group key defines the *pane*
/// (e.g. `GROUP BY time/60 as tb` makes 60-second panes); windows contain
/// `window_panes` consecutive panes and advance every `slide_panes` panes.
/// A window is emitted when its last pane closes, keyed by that pane's
/// temporal value.

#include <deque>
#include <map>
#include <optional>

#include "exec/operator.h"
#include "exec/udaf.h"
#include "plan/query_node.h"

namespace streampart {

/// \brief Sliding-window evaluation parameters, in panes.
struct SlidingSpec {
  /// Panes per window (W). A window covers W consecutive pane values.
  size_t window_panes = 1;
  /// Panes between successive window ends (S). 1 = emit every pane;
  /// window_panes = tumbling behaviour.
  size_t slide_panes = 1;
};

/// \brief Pane-based sliding-window aggregation over a kAggregate node.
///
/// Requires the node to have a temporal group key (the pane key) and every
/// aggregate to be splittable (all built-ins are). Output schema equals the
/// node's output schema; the pane key column carries the window-end pane.
class SlidingAggregateOp : public Operator {
 public:
  /// \brief Validating factory.
  static Result<std::unique_ptr<SlidingAggregateOp>> Make(
      QueryNodePtr node, const UdafRegistry* registry, SlidingSpec spec);

  std::string label() const override {
    return "sliding(" + node_->name + ")";
  }

  /// \brief Closed-but-unemitted panes plus the open pane, and the group
  /// states buffered inside them.
  OpenState open_state() const override {
    OpenState s;
    s.windows = panes_.size() + (open_.empty() ? 0 : 1);
    for (const auto& [pane, result] : panes_) s.tuples += result.size();
    s.tuples += open_.size();
    return s;
  }

  void CheckpointState(std::string* out) const override;
  Status RestoreState(std::string_view data) override;

 protected:
  void DoPush(size_t port, const Tuple& tuple) override;
  void DoPushBatch(size_t port, TupleSpan batch) override;
  void DoPushColumns(size_t port, const ColumnBatch& batch,
                     const SelectionVector& sel) override;
  void DoFinish() override;
  void DoBindTelemetry(StatsScope* scope) override;

 private:
  struct VecHash {
    size_t operator()(const std::vector<Value>& key) const {
      uint64_t h = Mix64(key.size());
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      return static_cast<size_t>(h);
    }
  };

  /// Per-group accumulators for the open pane. Component c of aggregate j
  /// lives at sub_states[sub_offset_[j] + c].
  using PaneStates =
      std::unordered_map<std::vector<Value>,
                         std::vector<std::unique_ptr<UdafState>>, VecHash>;
  /// Finalized pane: group key -> sub component values.
  using PaneResult = std::map<std::vector<Value>, std::vector<Value>>;

  SlidingAggregateOp(QueryNodePtr node, const UdafRegistry* registry,
                     SlidingSpec spec);

  Status Init();
  std::vector<std::unique_ptr<UdafState>> NewSubStates() const;
  /// Shared per-tuple core of the row execution paths; the group key is
  /// built in a reused scratch vector (copied into the table only on
  /// insert).
  void ProcessTuple(const Tuple& tuple);
  /// Columnar kernel: cost-ordered WHERE filtering over the selection
  /// vector, group/argument expressions evaluated as columns, then the
  /// shared pane machinery per surviving row.
  void ProcessColumns(const ColumnBatch& batch, const SelectionVector& sel);
  /// Shared pane/window-advance tail of both kernels: handles pane change
  /// (close + window emission + alignment) for \p pane, then probes open_
  /// with key_scratch_ and returns the group's sub-component states.
  std::vector<std::unique_ptr<UdafState>>* AdvancePaneAndProbe(uint64_t pane);
  void ClosePane();
  /// Emits the window whose last pane is \p end_pane.
  void EmitWindow(uint64_t end_pane);

  QueryNodePtr node_;
  const UdafRegistry* registry_;
  SlidingSpec spec_;
  size_t temporal_idx_ = 0;  // index of the pane key within group_by

  // Split metadata per aggregate slot.
  struct SlotSplit {
    std::vector<std::shared_ptr<const Udaf>> sub;
    std::vector<std::shared_ptr<const Udaf>> super;
    std::vector<DataType> sub_result_types;
    std::function<ExprPtr(const std::vector<ExprPtr>&)> combine;
  };
  std::vector<SlotSplit> splits_;
  std::vector<size_t> sub_offset_;
  size_t total_components_ = 0;
  std::vector<DataType> agg_arg_types_;

  /// Smallest aligned window end not yet emitted; aligned ends e satisfy
  /// (e + 1) % slide_panes == 0 relative to the first observed pane.
  uint64_t next_window_end() const { return next_end_; }
  void advance_window() { next_end_ += spec_.slide_panes; }
  uint64_t next_end_ = 0;

  // Open pane.
  std::optional<uint64_t> current_pane_;
  PaneStates open_;
  // Closed panes awaiting window completion: (pane id, partials).
  std::deque<std::pair<uint64_t, PaneResult>> panes_;
  // Scratch buffers reused across tuples/windows.
  std::vector<Value> key_scratch_;
  TupleBatch window_batch_;

  // Columnar-path kernels, compiled in Init().
  static constexpr int kEvalExpr = -1;  // slot needs expression evaluation
  static constexpr int kNoArg = -2;     // zero-argument aggregate (count)
  bool columnar_ok_ = false;
  std::vector<ColumnEvaluator> col_where_;  // cost-ordered WHERE clauses
  /// Per group slot / aggregate argument: evaluator for computed
  /// expressions (nullopt = bare column or zero-argument aggregate).
  std::vector<std::optional<ColumnEvaluator>> col_group_evals_;
  std::vector<std::optional<ColumnEvaluator>> col_arg_evals_;
  std::vector<int> group_cols_;  // bound column index per group slot
  std::vector<int> arg_cols_;    // bound column index per argument
  SelectionVector col_sel_;                // surviving-row scratch
  std::vector<const Column*> col_gcols_;   // resolved group column per slot
  std::vector<const Column*> col_acols_;   // resolved argument column per agg

  // Telemetry instruments (null unless bound; see metrics/stats.h).
  Counter* t_pane_flushes_ = nullptr;
  Counter* t_window_flushes_ = nullptr;
  Counter* t_groups_flushed_ = nullptr;
  Histogram* t_window_groups_ = nullptr;
  Gauge* t_groups_peak_ = nullptr;
};

}  // namespace streampart
