#include "exec/local_engine.h"

#include <algorithm>
#include <set>

namespace streampart {

LocalEngine::LocalEngine(const QueryGraph* graph, Options options)
    : graph_(graph), options_(options) {}

Status LocalEngine::Build() {
  if (built_) return Status::Internal("LocalEngine::Build called twice");
  built_ = true;

  // Instantiate one operator per query, in topological order.
  for (const QueryNodePtr& node : graph_->TopologicalOrder()) {
    SP_ASSIGN_OR_RETURN(OperatorPtr op,
                        MakeOperator(node, &graph_->udaf_registry()));
    if (!options_.deterministic_output) {
      if (auto* agg = dynamic_cast<AggregateOp*>(op.get())) {
        agg->set_sorted_flush(false);
      }
    }
    if (options_.stats != nullptr) {
      op->BindTelemetry(options_.stats, op->label());
    }
    ops_[node->name] = std::move(op);
  }

  // Wire edges: query input port p reads inputs[p].
  std::set<std::string> collected;
  for (const QueryNodePtr& node : graph_->TopologicalOrder()) {
    Operator* op = ops_.at(node->name).get();
    for (size_t port = 0; port < node->inputs.size(); ++port) {
      const std::string& in = node->inputs[port];
      if (graph_->IsSource(in)) {
        source_consumers_[in].push_back({op, port});
      } else {
        ops_.at(in)->AddConsumer(op, port);
      }
    }
    bool is_root = graph_->Parents(node->name).empty();
    if (options_.collect_all || is_root) {
      const std::string& name = node->name;
      results_[name];  // ensure entry exists
      op->AddSink([this, name](const Tuple& t) { results_[name].push_back(t); });
    }
  }
  return Status::OK();
}

void LocalEngine::PushSource(const std::string& source, const Tuple& tuple) {
  auto it = source_consumers_.find(source);
  if (it == source_consumers_.end()) return;
  for (const auto& [op, port] : it->second) op->Push(port, tuple);
}

void LocalEngine::PushSourceBatch(const std::string& source, TupleSpan batch) {
  auto it = source_consumers_.find(source);
  if (it == source_consumers_.end()) return;
  for (const auto& [op, port] : it->second) op->PushBatch(port, batch);
}

void LocalEngine::PushSourceColumns(const std::string& source,
                                    TupleSpan batch) {
  if (batch.empty()) return;
  auto it = source_consumers_.find(source);
  if (it == source_consumers_.end()) return;
  if (!source_columns_.FromTuples(batch)) {
    // Not fixed-width representable; the row path is the oracle.
    for (const auto& [op, port] : it->second) op->PushBatch(port, batch);
    return;
  }
  IdentitySelection(batch.size(), &source_sel_);
  for (const auto& [op, port] : it->second) {
    op->PushColumns(port, source_columns_, source_sel_);
  }
}

void LocalEngine::PushSourceColumns(const std::string& source,
                                    const ColumnBatch& batch,
                                    const SelectionVector& sel) {
  auto it = source_consumers_.find(source);
  if (it == source_consumers_.end()) return;
  for (const auto& [op, port] : it->second) op->PushColumns(port, batch, sel);
}

void LocalEngine::FinishSources() {
  for (const auto& [source, consumers] : source_consumers_) {
    for (const auto& [op, port] : consumers) op->Finish(port);
  }
}

const TupleBatch& LocalEngine::Results(const std::string& name) const {
  static const TupleBatch kEmpty;
  auto it = results_.find(name);
  return it == results_.end() ? kEmpty : it->second;
}

Result<OpStats> LocalEngine::StatsFor(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("no operator for query '", name, "'");
  }
  return it->second->stats();
}

OpStats LocalEngine::TotalStats() const {
  OpStats total;
  for (const auto& [name, op] : ops_) total += op->stats();
  return total;
}

Result<std::map<std::string, TupleBatch>> RunCentralized(
    const QueryGraph& graph, const std::string& source,
    const TupleBatch& tuples) {
  LocalEngine::Options options;
  options.collect_all = true;
  LocalEngine engine(&graph, options);
  SP_RETURN_NOT_OK(engine.Build());
  TupleSpan all(tuples);
  for (size_t off = 0; off < all.size(); off += kDefaultSourceBatch) {
    engine.PushSourceBatch(
        source, all.subspan(off, std::min(kDefaultSourceBatch,
                                          all.size() - off)));
  }
  engine.FinishSources();
  std::map<std::string, TupleBatch> out;
  for (const QueryNodePtr& node : graph.TopologicalOrder()) {
    out[node->name] = engine.Results(node->name);
  }
  return out;
}

}  // namespace streampart
