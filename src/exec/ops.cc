#include "exec/ops.h"

#include <algorithm>

namespace streampart {

// ---------------------------------------------------------------------------
// SelectProjectOp
// ---------------------------------------------------------------------------

SelectProjectOp::SelectProjectOp(QueryNodePtr node)
    : Operator(/*num_ports=*/1), node_(std::move(node)) {
  SP_CHECK(node_->kind == QueryKind::kSelectProject)
      << "SelectProjectOp over non-select node " << node_->name;
}

void SelectProjectOp::DoPush(size_t, const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) out.Append(o.expr->Eval(tuple));
  Emit(out);
}

// ---------------------------------------------------------------------------
// AggregateOp
// ---------------------------------------------------------------------------

AggregateOp::AggregateOp(QueryNodePtr node, const UdafRegistry* registry)
    : Operator(/*num_ports=*/1), node_(std::move(node)), registry_(registry) {
  SP_CHECK(node_->kind == QueryKind::kAggregate)
      << "AggregateOp over non-aggregate node " << node_->name;
  for (const AggregateSpec& spec : node_->aggregates) {
    agg_arg_types_.push_back(spec.args.empty() ? DataType::kNull
                                               : spec.args[0]->result_type());
  }
}

std::vector<std::unique_ptr<UdafState>> AggregateOp::NewStates() const {
  std::vector<std::unique_ptr<UdafState>> states;
  states.reserve(node_->aggregates.size());
  for (size_t i = 0; i < node_->aggregates.size(); ++i) {
    auto udaf = registry_->Get(node_->aggregates[i].udaf);
    SP_CHECK(udaf.ok()) << "unregistered UDAF " << node_->aggregates[i].udaf;
    states.push_back((*udaf)->NewState(agg_arg_types_[i]));
  }
  return states;
}

void AggregateOp::DoPush(size_t, const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  std::vector<Value> key;
  key.reserve(node_->group_by.size());
  for (const NamedExpr& g : node_->group_by) key.push_back(g.expr->Eval(tuple));

  // Tumbling-window boundary: the temporal key advanced. Late tuples —
  // belonging to an already-flushed window — are dropped and counted, the
  // policy a production DSMS applies (ordered merges prevent this in
  // well-formed plans).
  if (node_->temporal_group_idx.has_value()) {
    const Value& epoch = key[*node_->temporal_group_idx];
    if (current_epoch_.has_value() && !(epoch == *current_epoch_)) {
      if (epoch < *current_epoch_) {
        ++stats_.late_tuples;
        return;
      }
      FlushWindow();
    }
    current_epoch_ = epoch;
  }

  auto [it, inserted] = groups_.try_emplace(std::move(key));
  if (inserted) {
    ++stats_.group_inserts;
    it->second = NewStates();
  } else {
    ++stats_.group_probes;
  }
  for (size_t i = 0; i < node_->aggregates.size(); ++i) {
    const AggregateSpec& spec = node_->aggregates[i];
    Value arg = spec.args.empty() ? Value::Null() : spec.args[0]->Eval(tuple);
    it->second[i]->Update(arg);
  }
}

void AggregateOp::FlushWindow() {
  if (groups_.empty()) return;
  // Deterministic emission: sort group keys.
  std::vector<const GroupMap::value_type*> entries;
  entries.reserve(groups_.size());
  for (const auto& kv : groups_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  for (const auto* entry : entries) {
    Tuple internal;
    internal.values().reserve(entry->first.size() +
                              node_->aggregates.size());
    for (const Value& v : entry->first) internal.Append(v);
    for (const auto& state : entry->second) internal.Append(state->Final());
    if (node_->having) {
      ++stats_.predicate_evals;
      if (!node_->having->Eval(internal).Truthy()) continue;
    }
    Tuple out;
    out.values().reserve(node_->outputs.size());
    for (const NamedExpr& o : node_->outputs) {
      out.Append(o.expr->Eval(internal));
    }
    Emit(out);
  }
  groups_.clear();
}

void AggregateOp::DoFinish() { FlushWindow(); }

// ---------------------------------------------------------------------------
// JoinOp
// ---------------------------------------------------------------------------

JoinOp::JoinOp(QueryNodePtr node)
    : Operator(/*num_ports=*/2), node_(std::move(node)) {
  SP_CHECK(node_->kind == QueryKind::kJoin)
      << "JoinOp over non-join node " << node_->name;
  for (const EquiPred& pred : node_->equi_preds) {
    if (pred.temporal) {
      window_left_.push_back(pred.left);
      window_right_.push_back(pred.right);
    } else {
      key_left_.push_back(pred.left);
      key_right_.push_back(pred.right);
    }
  }
  left_width_ = node_->input_schemas[0]->num_fields();
  right_width_ = node_->input_schemas[1]->num_fields();
}

std::vector<Value> JoinOp::EvalKeys(const std::vector<ExprPtr>& exprs,
                                    const Tuple& t) const {
  std::vector<Value> out;
  out.reserve(exprs.size());
  for (const ExprPtr& e : exprs) out.push_back(e->Eval(t));
  return out;
}

void JoinOp::DoPush(size_t port, const Tuple& tuple) {
  std::vector<Value> wkey =
      EvalKeys(port == 0 ? window_left_ : window_right_, tuple);
  Window& w = windows_[wkey];
  if (port == 0) {
    w.left.push_back({tuple, false});
  } else {
    w.right.push_back({tuple, false});
  }
  if (!window_left_.empty()) {
    auto& wm = watermark_[port];
    if (!wm.has_value() || *wm < wkey) wm = wkey;
    if (watermark_[0].has_value() && watermark_[1].has_value()) {
      EvictBelow(std::min(*watermark_[0], *watermark_[1]));
    }
  }
}

void JoinOp::EvictBelow(const std::vector<Value>& min_watermark) {
  while (!windows_.empty() && windows_.begin()->first < min_watermark) {
    JoinWindow(&windows_.begin()->second);
    windows_.erase(windows_.begin());
  }
}

void JoinOp::DoFinish() {
  // Join remaining windows in key order.
  for (auto& [key, w] : windows_) JoinWindow(&w);
  windows_.clear();
}

void JoinOp::EmitJoined(const Tuple& left, const Tuple& right) {
  Tuple concat = Tuple::Concat(left, right);
  if (node_->residual) {
    ++stats_.predicate_evals;
    if (!node_->residual->Eval(concat).Truthy()) return;
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) out.Append(o.expr->Eval(concat));
  Emit(out);
}

void JoinOp::EmitPadded(const Tuple& one_side, bool is_left) {
  Tuple padded;
  padded.values().reserve(left_width_ + right_width_);
  if (is_left) {
    for (const Value& v : one_side.values()) padded.Append(v);
    for (size_t i = 0; i < right_width_; ++i) padded.Append(Value::Null());
  } else {
    for (size_t i = 0; i < left_width_; ++i) padded.Append(Value::Null());
    for (const Value& v : one_side.values()) padded.Append(v);
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) out.Append(o.expr->Eval(padded));
  Emit(out);
}

void JoinOp::JoinWindow(Window* w) {
  // Hash the right side on its equi keys.
  struct VecHash {
    size_t operator()(const std::vector<Value>& key) const {
      uint64_t h = Mix64(key.size());
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<Value>, std::vector<size_t>, VecHash> hash;
  for (size_t i = 0; i < w->right.size(); ++i) {
    hash[EvalKeys(key_right_, w->right[i].tuple)].push_back(i);
  }
  for (BufferedTuple& lt : w->left) {
    auto it = hash.find(EvalKeys(key_left_, lt.tuple));
    if (it == hash.end()) continue;
    for (size_t ri : it->second) {
      ++stats_.join_probes;
      BufferedTuple& rt = w->right[ri];
      Tuple concat = Tuple::Concat(lt.tuple, rt.tuple);
      bool pass = true;
      if (node_->residual) {
        ++stats_.predicate_evals;
        pass = node_->residual->Eval(concat).Truthy();
      }
      if (!pass) continue;
      lt.matched = true;
      rt.matched = true;
      Tuple out;
      out.values().reserve(node_->outputs.size());
      for (const NamedExpr& o : node_->outputs) {
        out.Append(o.expr->Eval(concat));
      }
      Emit(out);
    }
  }
  // Outer padding.
  if (node_->join_type == JoinType::kLeftOuter ||
      node_->join_type == JoinType::kFullOuter) {
    for (const BufferedTuple& lt : w->left) {
      if (!lt.matched) EmitPadded(lt.tuple, /*is_left=*/true);
    }
  }
  if (node_->join_type == JoinType::kRightOuter ||
      node_->join_type == JoinType::kFullOuter) {
    for (const BufferedTuple& rt : w->right) {
      if (!rt.matched) EmitPadded(rt.tuple, /*is_left=*/false);
    }
  }
}

// ---------------------------------------------------------------------------
// MergeOp
// ---------------------------------------------------------------------------

MergeOp::MergeOp(std::string name, SchemaPtr schema, size_t num_inputs)
    : Operator(num_inputs),
      name_(std::move(name)),
      schema_(std::move(schema)),
      queues_(num_inputs),
      port_done_(num_inputs, false) {
  for (size_t i = 0; i < schema_->num_fields(); ++i) {
    if (schema_->field(i).is_temporal()) {
      temporal_idx_ = static_cast<int>(i);
      break;
    }
  }
}

void MergeOp::DoPush(size_t port, const Tuple& tuple) {
  if (temporal_idx_ < 0) {
    Emit(tuple);
    return;
  }
  queues_[port].push_back(tuple);
  Drain(/*final=*/false);
}

void MergeOp::OnPortFinished(size_t port) {
  port_done_[port] = true;
  if (temporal_idx_ >= 0) Drain(/*final=*/false);
}

void MergeOp::DoFinish() {
  if (temporal_idx_ >= 0) Drain(/*final=*/true);
}

void MergeOp::Drain(bool final) {
  const size_t t = static_cast<size_t>(temporal_idx_);
  while (true) {
    // Ordered merge: we can emit only when every live (unfinished) port has a
    // tuple buffered, or when finalizing.
    int best = -1;
    bool blocked = false;
    for (size_t p = 0; p < queues_.size(); ++p) {
      if (queues_[p].empty()) {
        if (!port_done_[p] && !final) {
          blocked = true;
          break;
        }
        continue;
      }
      if (best < 0 ||
          queues_[p].front().at(t) < queues_[best].front().at(t)) {
        best = static_cast<int>(p);
      }
    }
    if (blocked || best < 0) return;
    Emit(queues_[best].front());
    queues_[best].pop_front();
  }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<OperatorPtr> MakeOperator(QueryNodePtr node,
                                 const UdafRegistry* registry) {
  switch (node->kind) {
    case QueryKind::kSelectProject:
      return OperatorPtr(std::make_unique<SelectProjectOp>(std::move(node)));
    case QueryKind::kAggregate:
      return OperatorPtr(
          std::make_unique<AggregateOp>(std::move(node), registry));
    case QueryKind::kJoin:
      return OperatorPtr(std::make_unique<JoinOp>(std::move(node)));
  }
  return Status::Internal("unknown query kind");
}

}  // namespace streampart
