#include "exec/ops.h"

#include <algorithm>
#include <cstring>

#include "types/serde.h"

namespace streampart {

namespace {

/// \brief One packed group-key slot: a type tag byte plus 8 payload bytes.
constexpr size_t kPackedSlotWidth = 9;

/// \brief True for types a packed key slot can carry (everything but
/// variable-length strings).
bool IsPackableType(DataType type) { return type != DataType::kString; }

/// \brief Writes the tag+payload encoding of \p v at \p p (which must have
/// kPackedSlotWidth bytes of room) and returns the advanced pointer. The
/// encoding is invertible, so flushes can reconstruct the exact key Values,
/// and two Values encode identically iff they compare equal.
char* PackValueTo(const Value& v, char* p) {
  SP_DCHECK(v.type() != DataType::kString);
  *p++ = static_cast<char>(v.type());
  uint64_t payload = 0;
  switch (v.type()) {
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      payload = v.uint_value();
      break;
    case DataType::kInt:
      payload = static_cast<uint64_t>(v.int_value());
      break;
    case DataType::kDouble: {
      double d = v.double_value();
      std::memcpy(&payload, &d, sizeof(double));
      break;
    }
    default:
      break;  // kNull: zero payload
  }
  std::memcpy(p, &payload, sizeof(uint64_t));
  return p + sizeof(uint64_t);
}

Value DecodePackedValue(const char* p) {
  DataType type = static_cast<DataType>(static_cast<uint8_t>(*p));
  uint64_t payload;
  std::memcpy(&payload, p + 1, sizeof(uint64_t));
  switch (type) {
    case DataType::kUint:
      return Value::Uint(payload);
    case DataType::kIp:
      return Value::Ip(static_cast<uint32_t>(payload));
    case DataType::kBool:
      return Value::Bool(payload != 0);
    case DataType::kInt:
      return Value::Int(static_cast<int64_t>(payload));
    case DataType::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(double));
      return Value::Double(d);
    }
    default:
      return Value::Null();
  }
}

std::vector<Value> DecodePackedKey(std::string_view key) {
  std::vector<Value> out;
  out.reserve(key.size() / kPackedSlotWidth);
  for (size_t off = 0; off + kPackedSlotWidth <= key.size();
       off += kPackedSlotWidth) {
    out.push_back(DecodePackedValue(key.data() + off));
  }
  return out;
}

/// \brief Bound tuple index of a bare column-reference expression, or
/// kEvalExpr(-1) when the expression needs interpretation.
int ColumnFastPath(const ExprPtr& expr) {
  if (expr != nullptr && expr->is_column() && expr->is_bound()) {
    return static_cast<int>(expr->bound_index());
  }
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// SelectProjectOp
// ---------------------------------------------------------------------------

SelectProjectOp::SelectProjectOp(QueryNodePtr node)
    : Operator(/*num_ports=*/1), node_(std::move(node)) {
  SP_CHECK(node_->kind == QueryKind::kSelectProject)
      << "SelectProjectOp over non-select node " << node_->name;
  output_cols_.reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) {
    output_cols_.push_back(ColumnFastPath(o.expr));
  }
  // Columnar eligibility: every WHERE clause and output expression must be
  // vectorizable (string outputs disqualify via their literal/column types).
  columnar_ok_ =
      node_->where == nullptr || ExprVectorizable(node_->where);
  for (const NamedExpr& o : node_->outputs) {
    if (!ExprVectorizable(o.expr) || o.type == DataType::kString) {
      columnar_ok_ = false;
    }
  }
  if (columnar_ok_) {
    col_where_ = CompileOrderedClauses(node_->where);
    col_outputs_.resize(node_->outputs.size());
    for (size_t i = 0; i < node_->outputs.size(); ++i) {
      if (output_cols_[i] < 0) {
        col_outputs_[i].emplace(node_->outputs[i].expr);
      }
    }
  }
}

void SelectProjectOp::DoPush(size_t, const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) out.Append(o.expr->Eval(tuple));
  Emit(out);
}

void SelectProjectOp::DoPushBatch(size_t, TupleSpan batch) {
  // Overwrite out_batch_ slots in place instead of clear()+push_back: that
  // pattern frees and reallocates every output tuple's value vector per
  // batch, which dominates a cheap projection. Slots past the live prefix
  // keep their capacity; EmitBatch only sees the prefix.
  size_t n = 0;
  const size_t width = node_->outputs.size();
  for (const Tuple& tuple : batch) {
    if (node_->where) {
      ++stats_.predicate_evals;
      if (!node_->where->Eval(tuple).Truthy()) continue;
    }
    if (n == out_batch_.size()) out_batch_.emplace_back();
    std::vector<Value>& vals = out_batch_[n].values();
    vals.resize(width);
    for (size_t i = 0; i < width; ++i) {
      if (output_cols_[i] >= 0) {
        vals[i] = tuple.at(static_cast<size_t>(output_cols_[i]));
      } else {
        vals[i] = node_->outputs[i].expr->Eval(tuple);
      }
    }
    ++n;
  }
  EmitBatch(TupleSpan(out_batch_.data(), n));
}

void SelectProjectOp::DoPushColumns(size_t port, const ColumnBatch& batch,
                                    const SelectionVector& sel) {
  if (!columnar_ok_) {
    Operator::DoPushColumns(port, batch, sel);
    return;
  }
  col_sel_.assign(sel.begin(), sel.end());
  if (node_->where != nullptr) {
    // One predicate evaluation per delivered tuple, like the row paths —
    // clause-at-a-time filtering is an implementation detail, not extra
    // predicate work in the cost model.
    stats_.predicate_evals += col_sel_.size();
    for (ColumnEvaluator& clause : col_where_) {
      if (col_sel_.empty()) break;
      clause.Filter(batch, &col_sel_);
    }
  }
  if (col_sel_.empty()) return;
  col_out_.Clear();
  col_out_.SetRows(batch.rows());
  for (size_t i = 0; i < node_->outputs.size(); ++i) {
    if (output_cols_[i] >= 0) {
      col_out_.AddColumn(batch.col_ptr(static_cast<size_t>(output_cols_[i])));
    } else {
      const Column* r = col_outputs_[i]->Evaluate(batch, col_sel_);
      // Non-owning alias of the evaluator's scratch: downstream borrows it
      // only for the duration of EmitColumns, and each output owns its own
      // evaluator, so nothing is overwritten before the call returns.
      col_out_.AddColumn(ColumnPtr(ColumnPtr(), const_cast<Column*>(r)));
    }
  }
  EmitColumns(col_out_, col_sel_);
}

// ---------------------------------------------------------------------------
// AggregateOp
// ---------------------------------------------------------------------------

AggregateOp::AggregateOp(QueryNodePtr node, const UdafRegistry* registry)
    : Operator(/*num_ports=*/1), node_(std::move(node)), registry_(registry) {
  SP_CHECK(node_->kind == QueryKind::kAggregate)
      << "AggregateOp over non-aggregate node " << node_->name;
  for (const AggregateSpec& spec : node_->aggregates) {
    agg_arg_types_.push_back(spec.args.empty() ? DataType::kNull
                                               : spec.args[0]->result_type());
    arg_cols_.push_back(spec.args.empty() ? kNoArg
                                          : ColumnFastPath(spec.args[0]));
  }
  // The packed representation requires every group-by column to have a
  // fixed-width static type. Runtime values then have that type or are NULL
  // (expression anomalies), both of which pack losslessly.
  packable_ = true;
  group_cols_.reserve(node_->group_by.size());
  for (const NamedExpr& g : node_->group_by) {
    if (!IsPackableType(g.type)) packable_ = false;
    group_cols_.push_back(ColumnFastPath(g.expr));
  }
  out_cols_.reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) {
    out_cols_.push_back(ColumnFastPath(o.expr));
  }
  key_buf_.assign(node_->group_by.size() * kPackedSlotWidth, '\0');
  temporal_slot_ = node_->temporal_group_idx.has_value()
                       ? static_cast<int>(*node_->temporal_group_idx)
                       : -1;
  static_assert(sizeof(epoch_bytes_) == kPackedSlotWidth);
  // Resolve the UDAF definitions once; group inserts are far too hot for a
  // registry (std::map) lookup per state.
  udafs_.reserve(node_->aggregates.size());
  for (const AggregateSpec& spec : node_->aggregates) {
    auto udaf = registry_->Get(spec.udaf);
    SP_CHECK(udaf.ok()) << "unregistered UDAF " << spec.udaf;
    udafs_.push_back(*udaf);
  }
  // Columnar eligibility: the packed key representation plus vectorizable
  // WHERE, group-by, and aggregate-argument expressions. HAVING runs at
  // flush over row tuples on every path, so it never disqualifies.
  columnar_ok_ = packable_ && (node_->where == nullptr ||
                               ExprVectorizable(node_->where));
  for (const NamedExpr& g : node_->group_by) {
    if (!ExprVectorizable(g.expr)) columnar_ok_ = false;
  }
  for (const AggregateSpec& spec : node_->aggregates) {
    if (!spec.args.empty() && !ExprVectorizable(spec.args[0])) {
      columnar_ok_ = false;
    }
  }
  if (columnar_ok_) {
    col_where_ = CompileOrderedClauses(node_->where);
    col_group_evals_.resize(group_cols_.size());
    for (size_t i = 0; i < group_cols_.size(); ++i) {
      if (group_cols_[i] < 0) {
        col_group_evals_[i].emplace(node_->group_by[i].expr);
      }
    }
    col_arg_evals_.resize(arg_cols_.size());
    for (size_t i = 0; i < arg_cols_.size(); ++i) {
      if (arg_cols_[i] == kEvalExpr) {
        col_arg_evals_[i].emplace(node_->aggregates[i].args[0]);
      }
    }
    col_gcols_.resize(group_cols_.size(), nullptr);
    col_acols_.resize(arg_cols_.size(), nullptr);
  }
}

std::vector<std::unique_ptr<UdafState>> AggregateOp::NewStates() const {
  std::vector<std::unique_ptr<UdafState>> states;
  states.reserve(udafs_.size());
  for (size_t i = 0; i < udafs_.size(); ++i) {
    states.push_back(udafs_[i]->NewState(agg_arg_types_[i]));
  }
  return states;
}

AggregateOp::GroupStates AggregateOp::AcquireStates() {
  while (pool_states_ && !state_pool_.empty()) {
    GroupStates states = std::move(state_pool_.back());
    state_pool_.pop_back();
    bool reset_ok = true;
    for (const auto& state : states) reset_ok = reset_ok && state->Reset();
    if (reset_ok) return states;
    // A registered UDAF without in-place reset: stop pooling entirely
    // (mixing recycled and fresh states per group would be error-prone).
    pool_states_ = false;
    state_pool_.clear();
  }
  return NewStates();
}

void AggregateOp::DoPush(size_t, const Tuple& tuple) {
  // Stay on whichever key representation opened the current window: mixing
  // representations mid-window would split a group across the two tables.
  if (!packed_table_.empty()) {
    ProcessPacked(tuple);
  } else {
    ProcessGeneric(tuple);
  }
}

void AggregateOp::DoPushBatch(size_t, TupleSpan batch) {
  if (!packable_ || !groups_.empty()) {
    for (const Tuple& t : batch) ProcessGeneric(t);
    return;
  }
  for (const Tuple& t : batch) ProcessPacked(t);
}

void AggregateOp::DoPushColumns(size_t port, const ColumnBatch& batch,
                                const SelectionVector& sel) {
  // Same mixed-window rule as DoPushBatch: a window opened by the generic
  // representation must finish on it. The fallback rematerializes rows and
  // DoPushBatch re-applies the rule.
  if (!columnar_ok_ || !groups_.empty()) {
    Operator::DoPushColumns(port, batch, sel);
    return;
  }
  ProcessColumns(batch, sel);
}

void AggregateOp::ProcessColumns(const ColumnBatch& batch,
                                 const SelectionVector& sel) {
  const SelectionVector* live = &sel;
  if (node_->where != nullptr) {
    stats_.predicate_evals += sel.size();
    col_sel_.assign(sel.begin(), sel.end());
    for (ColumnEvaluator& clause : col_where_) {
      if (col_sel_.empty()) break;
      clause.Filter(batch, &col_sel_);
    }
    live = &col_sel_;
  }
  if (live->empty()) return;
  // Resolve each group slot / aggregate argument to a column once per
  // batch: either an input column or the evaluator's result over the
  // surviving rows.
  const size_t num_slots = group_cols_.size();
  for (size_t i = 0; i < num_slots; ++i) {
    col_gcols_[i] =
        group_cols_[i] >= 0
            ? &batch.col(static_cast<size_t>(group_cols_[i]))
            : col_group_evals_[i]->Evaluate(batch, *live);
  }
  for (size_t i = 0; i < arg_cols_.size(); ++i) {
    if (arg_cols_[i] == kNoArg) {
      col_acols_[i] = nullptr;
    } else if (arg_cols_[i] >= 0) {
      col_acols_[i] = &batch.col(static_cast<size_t>(arg_cols_[i]));
    } else {
      col_acols_[i] = col_arg_evals_[i]->Evaluate(batch, *live);
    }
  }
  const uint64_t w = shed_weight_ != nullptr ? *shed_weight_ : 1;
  for (uint32_t row : *live) {
    // Pack the key straight from the cells — the column payload encoding is
    // PackValueTo's payload encoding, so this produces byte-identical keys
    // to the row paths.
    char* p = key_buf_.data();
    bool drop = false;
    for (size_t i = 0; i < num_slots; ++i) {
      const Column& c = *col_gcols_[i];
      if (CellIsNull(c, row)) {
        *p = static_cast<char>(DataType::kNull);
        std::memset(p + 1, 0, sizeof(uint64_t));
      } else {
        *p = static_cast<char>(c.type);
        std::memcpy(p + 1, &c.data[row], sizeof(uint64_t));
      }
      p += kPackedSlotWidth;
      if (static_cast<int>(i) == temporal_slot_ &&
          !(epoch_bytes_valid_ &&
            std::memcmp(epoch_bytes_, p - kPackedSlotWidth,
                        kPackedSlotWidth) == 0)) {
        if (!AdvanceWindow(DecodePackedValue(p - kPackedSlotWidth))) {
          drop = true;  // late row: dropped and counted by AdvanceWindow
          break;
        }
        std::memcpy(epoch_bytes_, p - kPackedSlotWidth, kPackedSlotWidth);
        epoch_bytes_valid_ = true;
      }
    }
    if (drop) continue;
    bool inserted = false;
    GroupStates* states = packed_table_.FindOrInsert(
        key_buf_, HashBytesWide(key_buf_.data(), key_buf_.size()), &inserted);
    if (inserted) {
      ++stats_.group_inserts;
      *states = AcquireStates();
    } else {
      ++stats_.group_probes;
    }
    for (size_t i = 0; i < arg_cols_.size(); ++i) {
      static const Value kNullArg;
      const Column* ac = col_acols_[i];
      const Value arg = ac == nullptr ? kNullArg : ac->ValueAt(row);
      if (w > 1) {
        (*states)[i]->UpdateWeighted(arg, w);
      } else {
        (*states)[i]->Update(arg);
      }
    }
  }
}

bool AggregateOp::AdvanceWindow(const Value& epoch) {
  // Tumbling-window boundary: the temporal key advanced. Late tuples —
  // belonging to an already-flushed window — are dropped and counted, the
  // policy a production DSMS applies (ordered merges prevent this in
  // well-formed plans).
  if (current_epoch_.has_value() && !(epoch == *current_epoch_)) {
    if (epoch < *current_epoch_) {
      ++stats_.late_tuples;
      return false;
    }
    FlushWindow();
  }
  current_epoch_ = epoch;
  return true;
}

void AggregateOp::ProcessGeneric(const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  std::vector<Value> key;
  key.reserve(node_->group_by.size());
  for (const NamedExpr& g : node_->group_by) key.push_back(g.expr->Eval(tuple));

  if (node_->temporal_group_idx.has_value() &&
      !AdvanceWindow(key[*node_->temporal_group_idx])) {
    return;
  }

  auto [it, inserted] = groups_.try_emplace(std::move(key));
  if (inserted) {
    ++stats_.group_inserts;
    it->second = NewStates();
  } else {
    ++stats_.group_probes;
  }
  // Ambient shed weight: while the overload controller keeps 1 tuple in m,
  // each admitted tuple stands for m observations (Horvitz–Thompson).
  const uint64_t w = shed_weight_ != nullptr ? *shed_weight_ : 1;
  for (size_t i = 0; i < node_->aggregates.size(); ++i) {
    const AggregateSpec& spec = node_->aggregates[i];
    Value arg = spec.args.empty() ? Value::Null() : spec.args[0]->Eval(tuple);
    if (w > 1) {
      it->second[i]->UpdateWeighted(arg, w);
    } else {
      it->second[i]->Update(arg);
    }
  }
}

void AggregateOp::ProcessPacked(const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  // Build the packed key over the fixed-width scratch buffer with raw
  // pointer writes, reading bare column references straight out of the
  // tuple (no Value materialization, no per-tuple key allocation). The
  // window check compares packed epoch bytes first: equal bytes means the
  // epoch Value is unchanged, so the common within-window tuple skips
  // AdvanceWindow entirely.
  char* p = key_buf_.data();
  const size_t num_slots = group_cols_.size();
  for (size_t i = 0; i < num_slots; ++i) {
    if (group_cols_[i] >= 0) {
      p = PackValueTo(tuple.at(static_cast<size_t>(group_cols_[i])), p);
    } else {
      p = PackValueTo(node_->group_by[i].expr->Eval(tuple), p);
    }
    if (static_cast<int>(i) == temporal_slot_ &&
        !(epoch_bytes_valid_ &&
          std::memcmp(epoch_bytes_, p - kPackedSlotWidth,
                      kPackedSlotWidth) == 0)) {
      if (!AdvanceWindow(DecodePackedValue(p - kPackedSlotWidth))) return;
      // AdvanceWindow may have flushed (invalidating the cache); the bytes
      // just written are the new current window's epoch.
      std::memcpy(epoch_bytes_, p - kPackedSlotWidth, kPackedSlotWidth);
      epoch_bytes_valid_ = true;
    }
  }

  bool inserted = false;
  GroupStates* states = packed_table_.FindOrInsert(
      key_buf_, HashBytesWide(key_buf_.data(), key_buf_.size()), &inserted);
  if (inserted) {
    ++stats_.group_inserts;
    *states = AcquireStates();
  } else {
    ++stats_.group_probes;
  }
  const uint64_t w = shed_weight_ != nullptr ? *shed_weight_ : 1;
  if (w > 1) {
    for (size_t i = 0; i < node_->aggregates.size(); ++i) {
      if (arg_cols_[i] == kNoArg) {
        static const Value kNullArg;
        (*states)[i]->UpdateWeighted(kNullArg, w);
      } else if (arg_cols_[i] >= 0) {
        (*states)[i]->UpdateWeighted(tuple.at(static_cast<size_t>(arg_cols_[i])),
                                     w);
      } else {
        (*states)[i]->UpdateWeighted(node_->aggregates[i].args[0]->Eval(tuple),
                                     w);
      }
    }
    return;
  }
  for (size_t i = 0; i < node_->aggregates.size(); ++i) {
    if (arg_cols_[i] == kNoArg) {
      static const Value kNullArg;
      (*states)[i]->Update(kNullArg);
    } else if (arg_cols_[i] >= 0) {
      (*states)[i]->Update(tuple.at(static_cast<size_t>(arg_cols_[i])));
    } else {
      (*states)[i]->Update(node_->aggregates[i].args[0]->Eval(tuple));
    }
  }
}

bool AggregateOp::ShedSampleable() const {
  for (const auto& udaf : udafs_) {
    if (!udaf->sampleable()) return false;
  }
  return true;
}

void AggregateOp::FlushEntry(const std::vector<Value>& key,
                             const GroupStates& states) {
  std::vector<Value>& vals = internal_scratch_.values();
  vals.resize(key.size() + states.size());
  size_t n = 0;
  for (const Value& v : key) vals[n++] = v;
  for (const auto& state : states) vals[n++] = state->Final();
  FlushInternal();
}

void AggregateOp::FlushEntryPacked(std::string_view key,
                                   const GroupStates& states) {
  std::vector<Value>& vals = internal_scratch_.values();
  const size_t num_keys = key.size() / kPackedSlotWidth;
  vals.resize(num_keys + states.size());
  for (size_t i = 0; i < num_keys; ++i) {
    vals[i] = DecodePackedValue(key.data() + i * kPackedSlotWidth);
  }
  for (size_t j = 0; j < states.size(); ++j) {
    vals[num_keys + j] = states[j]->Final();
  }
  FlushInternal();
}

void AggregateOp::FlushInternal() {
  const Tuple& internal = internal_scratch_;
  if (node_->having) {
    ++stats_.predicate_evals;
    if (!node_->having->Eval(internal).Truthy()) return;
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (size_t i = 0; i < node_->outputs.size(); ++i) {
    if (out_cols_[i] >= 0) {
      out.Append(internal.at(static_cast<size_t>(out_cols_[i])));
    } else {
      out.Append(node_->outputs[i].expr->Eval(internal));
    }
  }
  flush_batch_.push_back(std::move(out));
}

void AggregateOp::DoBindTelemetry(StatsScope* scope) {
  t_window_flushes_ = scope->counter(stats::kWindowFlushes);
  t_groups_flushed_ = scope->counter(stats::kGroupsFlushed);
  t_window_groups_ = scope->histogram(stats::kWindowGroups);
  t_groups_peak_ = scope->gauge(stats::kGroupsPeak);
}

void AggregateOp::FlushWindow() {
  epoch_bytes_valid_ = false;  // a new window begins after any flush
  if (groups_.empty() && packed_table_.empty()) return;
  // Occupancy is the group count regardless of key representation, so the
  // instruments are identical on the per-tuple and batched paths.
  const uint64_t occupancy = groups_.size() + packed_table_.size();
  if (t_window_flushes_ != nullptr) {
    t_window_flushes_->Inc();
    t_groups_flushed_->Add(occupancy);
    t_window_groups_->Record(occupancy);
    t_groups_peak_->SetMax(static_cast<int64_t>(occupancy));
  }
  flush_batch_.clear();
  if (!groups_.empty()) {
    if (sorted_flush_) {
      // Deterministic emission: sort group keys.
      std::vector<const GroupMap::value_type*> entries;
      entries.reserve(groups_.size());
      for (const auto& kv : groups_) entries.push_back(&kv);
      std::sort(entries.begin(), entries.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      for (const auto* entry : entries) FlushEntry(entry->first, entry->second);
    } else {
      for (const auto& kv : groups_) FlushEntry(kv.first, kv.second);
    }
    groups_.clear();
  } else if (sorted_flush_) {
    // Decode each packed key back to Values once; sorting uses the decoded
    // keys so emission order matches the generic path exactly.
    std::vector<std::pair<std::vector<Value>, const GroupStates*>> entries;
    entries.reserve(packed_table_.size());
    packed_table_.ForEach([&entries](std::string_view key, GroupStates& s) {
      entries.emplace_back(DecodePackedKey(key), &s);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, states] : entries) FlushEntry(key, *states);
    packed_table_.Recycle(pool_states_ ? &state_pool_ : nullptr);
  } else {
    // Hash-order emission: one pass over the table, decoding each key into
    // the reused internal tuple — no key vectors, no entry list, no sort.
    packed_table_.ForEach([this](std::string_view key, GroupStates& s) {
      FlushEntryPacked(key, s);
    });
    packed_table_.Recycle(pool_states_ ? &state_pool_ : nullptr);
  }
  if (trace_events_enabled()) {
    RecordTraceEvent("window_flush",
                     current_epoch_.has_value() ? current_epoch_->ToString()
                                                : std::string(),
                     occupancy, flush_batch_.size());
  }
  EmitBatch(flush_batch_);
}

void AggregateOp::DoFinish() { FlushWindow(); }

void AggregateOp::CheckpointState(std::string* out) const {
  // Layout: u8 has-epoch [value], varint generic-group count then per group
  // (varint key arity, key values, accumulator blobs), varint packed-entry
  // count then per entry (raw fixed-width key bytes, accumulator blobs).
  // Both tables are walked in sorted key order so the bytes are a pure
  // function of the logical state, independent of hash-table history.
  out->push_back(current_epoch_.has_value() ? 1 : 0);
  if (current_epoch_.has_value()) EncodeValue(*current_epoch_, out);

  std::vector<const GroupMap::value_type*> entries;
  entries.reserve(groups_.size());
  for (const auto& kv : groups_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  PutVarint(entries.size(), out);
  for (const auto* entry : entries) {
    PutVarint(entry->first.size(), out);
    for (const Value& v : entry->first) EncodeValue(v, out);
    for (const auto& state : entry->second) state->Save(out);
  }

  std::vector<std::pair<std::string_view, const GroupStates*>> packed;
  packed.reserve(packed_table_.size());
  packed_table_.ForEach(
      [&packed](std::string_view key, const GroupStates& states) {
        packed.emplace_back(key, &states);
      });
  std::sort(packed.begin(), packed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PutVarint(packed.size(), out);
  for (const auto& [key, states] : packed) {
    out->append(key.data(), key.size());
    for (const auto& state : *states) state->Save(out);
  }
}

Status AggregateOp::RestoreState(std::string_view data) {
  groups_.clear();
  packed_table_.Recycle(nullptr);
  state_pool_.clear();
  current_epoch_.reset();
  epoch_bytes_valid_ = false;

  size_t offset = 0;
  if (data.empty()) {
    return Status::InvalidArgument(label(), ": empty checkpoint blob");
  }
  if (data[offset++] != 0) {
    Value epoch;
    SP_RETURN_NOT_OK(DecodeValue(data, &offset, &epoch));
    current_epoch_ = std::move(epoch);
  }

  uint64_t generic = 0;
  SP_RETURN_NOT_OK(GetVarint(data, &offset, &generic));
  if (generic > data.size()) {
    return Status::InvalidArgument(label(), ": implausible group count ",
                                   generic);
  }
  for (uint64_t g = 0; g < generic; ++g) {
    uint64_t arity = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &arity));
    if (arity > data.size()) {
      return Status::InvalidArgument(label(), ": implausible key arity ",
                                     arity);
    }
    std::vector<Value> key(arity);
    for (Value& v : key) SP_RETURN_NOT_OK(DecodeValue(data, &offset, &v));
    GroupStates states = NewStates();
    for (size_t i = 0; i < states.size(); ++i) {
      if (!states[i]->Load(data, &offset)) {
        return Status::InvalidArgument(label(), ": malformed accumulator ", i,
                                       " (", node_->aggregates[i].udaf, ")");
      }
    }
    if (!groups_.try_emplace(std::move(key), std::move(states)).second) {
      return Status::InvalidArgument(label(),
                                     ": duplicate group key in checkpoint");
    }
  }

  uint64_t packed = 0;
  SP_RETURN_NOT_OK(GetVarint(data, &offset, &packed));
  const size_t width = node_->group_by.size() * kPackedSlotWidth;
  for (uint64_t g = 0; g < packed; ++g) {
    if (offset + width > data.size()) {
      return Status::InvalidArgument(label(), ": truncated packed key");
    }
    std::string_view key = data.substr(offset, width);
    offset += width;
    bool inserted = false;
    GroupStates* states = packed_table_.FindOrInsert(
        key, HashBytesWide(key.data(), key.size()), &inserted);
    if (!inserted) {
      return Status::InvalidArgument(label(),
                                     ": duplicate packed key in checkpoint");
    }
    *states = NewStates();
    for (size_t i = 0; i < states->size(); ++i) {
      if (!(*states)[i]->Load(data, &offset)) {
        return Status::InvalidArgument(label(), ": malformed accumulator ", i,
                                       " (", node_->aggregates[i].udaf, ")");
      }
    }
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(label(), ": checkpoint has ",
                                   data.size() - offset, " trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// JoinOp
// ---------------------------------------------------------------------------

JoinOp::JoinOp(QueryNodePtr node)
    : Operator(/*num_ports=*/2), node_(std::move(node)) {
  SP_CHECK(node_->kind == QueryKind::kJoin)
      << "JoinOp over non-join node " << node_->name;
  for (const EquiPred& pred : node_->equi_preds) {
    if (pred.temporal) {
      window_left_.push_back(pred.left);
      window_right_.push_back(pred.right);
    } else {
      key_left_.push_back(pred.left);
      key_right_.push_back(pred.right);
    }
  }
  left_width_ = node_->input_schemas[0]->num_fields();
  right_width_ = node_->input_schemas[1]->num_fields();
}

std::vector<Value> JoinOp::EvalKeys(const std::vector<ExprPtr>& exprs,
                                    const Tuple& t) const {
  std::vector<Value> out;
  out.reserve(exprs.size());
  for (const ExprPtr& e : exprs) out.push_back(e->Eval(t));
  return out;
}

void JoinOp::DoPush(size_t port, const Tuple& tuple) {
  std::vector<Value> wkey =
      EvalKeys(port == 0 ? window_left_ : window_right_, tuple);
  Window& w = windows_[wkey];
  if (port == 0) {
    w.left.push_back({tuple, false});
  } else {
    w.right.push_back({tuple, false});
  }
  if (!window_left_.empty()) {
    auto& wm = watermark_[port];
    if (!wm.has_value() || *wm < wkey) wm = wkey;
    if (watermark_[0].has_value() && watermark_[1].has_value()) {
      EvictBelow(std::min(*watermark_[0], *watermark_[1]));
    }
  }
}

void JoinOp::DoBindTelemetry(StatsScope* scope) {
  t_join_windows_ = scope->counter(stats::kJoinWindows);
  t_join_window_tuples_ = scope->histogram(stats::kJoinWindowTuples);
}

void JoinOp::EvictBelow(const std::vector<Value>& min_watermark) {
  while (!windows_.empty() && windows_.begin()->first < min_watermark) {
    JoinWindow(windows_.begin()->first, &windows_.begin()->second);
    windows_.erase(windows_.begin());
  }
}

void JoinOp::DoFinish() {
  // Join remaining windows in key order.
  for (auto& [key, w] : windows_) JoinWindow(key, &w);
  windows_.clear();
}

void JoinOp::EmitJoined(const Tuple& left, const Tuple& right) {
  Tuple concat = Tuple::Concat(left, right);
  if (node_->residual) {
    ++stats_.predicate_evals;
    if (!node_->residual->Eval(concat).Truthy()) return;
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) out.Append(o.expr->Eval(concat));
  Emit(out);
}

void JoinOp::EmitPadded(const Tuple& one_side, bool is_left) {
  Tuple padded;
  padded.values().reserve(left_width_ + right_width_);
  if (is_left) {
    for (const Value& v : one_side.values()) padded.Append(v);
    for (size_t i = 0; i < right_width_; ++i) padded.Append(Value::Null());
  } else {
    for (size_t i = 0; i < left_width_; ++i) padded.Append(Value::Null());
    for (const Value& v : one_side.values()) padded.Append(v);
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) out.Append(o.expr->Eval(padded));
  Emit(out);
}

void JoinOp::JoinWindow(const std::vector<Value>& key, Window* w) {
  const uint64_t buffered = w->left.size() + w->right.size();
  const uint64_t out_before = stats_.tuples_out;
  if (t_join_windows_ != nullptr) {
    t_join_windows_->Inc();
    t_join_window_tuples_->Record(buffered);
  }
  // Hash the right side on its equi keys.
  struct VecHash {
    size_t operator()(const std::vector<Value>& key) const {
      uint64_t h = Mix64(key.size());
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<Value>, std::vector<size_t>, VecHash> hash;
  for (size_t i = 0; i < w->right.size(); ++i) {
    hash[EvalKeys(key_right_, w->right[i].tuple)].push_back(i);
  }
  for (BufferedTuple& lt : w->left) {
    auto it = hash.find(EvalKeys(key_left_, lt.tuple));
    if (it == hash.end()) continue;
    for (size_t ri : it->second) {
      ++stats_.join_probes;
      BufferedTuple& rt = w->right[ri];
      Tuple concat = Tuple::Concat(lt.tuple, rt.tuple);
      bool pass = true;
      if (node_->residual) {
        ++stats_.predicate_evals;
        pass = node_->residual->Eval(concat).Truthy();
      }
      if (!pass) continue;
      lt.matched = true;
      rt.matched = true;
      Tuple out;
      out.values().reserve(node_->outputs.size());
      for (const NamedExpr& o : node_->outputs) {
        out.Append(o.expr->Eval(concat));
      }
      Emit(out);
    }
  }
  // Outer padding.
  if (node_->join_type == JoinType::kLeftOuter ||
      node_->join_type == JoinType::kFullOuter) {
    for (const BufferedTuple& lt : w->left) {
      if (!lt.matched) EmitPadded(lt.tuple, /*is_left=*/true);
    }
  }
  if (node_->join_type == JoinType::kRightOuter ||
      node_->join_type == JoinType::kFullOuter) {
    for (const BufferedTuple& rt : w->right) {
      if (!rt.matched) EmitPadded(rt.tuple, /*is_left=*/false);
    }
  }
  if (trace_events_enabled()) {
    std::string epoch;
    for (const Value& v : key) {
      if (!epoch.empty()) epoch += ",";
      epoch += v.ToString();
    }
    RecordTraceEvent("window_join", std::move(epoch), buffered,
                     stats_.tuples_out - out_before);
  }
}

void JoinOp::CheckpointState(std::string* out) const {
  // Layout: per side u8 has-watermark [varint arity, values], varint window
  // count then per window (varint key arity, key values, per side varint
  // tuple count then tuple + u8 matched). windows_ is a std::map, so the
  // walk is already in deterministic key order.
  for (const auto& wm : watermark_) {
    out->push_back(wm.has_value() ? 1 : 0);
    if (wm.has_value()) {
      PutVarint(wm->size(), out);
      for (const Value& v : *wm) EncodeValue(v, out);
    }
  }
  PutVarint(windows_.size(), out);
  for (const auto& [key, w] : windows_) {
    PutVarint(key.size(), out);
    for (const Value& v : key) EncodeValue(v, out);
    for (const std::vector<BufferedTuple>* side : {&w.left, &w.right}) {
      PutVarint(side->size(), out);
      for (const BufferedTuple& bt : *side) {
        EncodeTuple(bt.tuple, out);
        out->push_back(bt.matched ? 1 : 0);
      }
    }
  }
}

Status JoinOp::RestoreState(std::string_view data) {
  windows_.clear();
  watermark_[0].reset();
  watermark_[1].reset();

  size_t offset = 0;
  for (auto& wm : watermark_) {
    if (offset >= data.size()) {
      return Status::InvalidArgument(label(), ": truncated watermark flag");
    }
    if (data[offset++] != 0) {
      uint64_t arity = 0;
      SP_RETURN_NOT_OK(GetVarint(data, &offset, &arity));
      if (arity > data.size()) {
        return Status::InvalidArgument(label(),
                                       ": implausible watermark arity ", arity);
      }
      std::vector<Value> key(arity);
      for (Value& v : key) SP_RETURN_NOT_OK(DecodeValue(data, &offset, &v));
      wm = std::move(key);
    }
  }
  uint64_t num_windows = 0;
  SP_RETURN_NOT_OK(GetVarint(data, &offset, &num_windows));
  if (num_windows > data.size()) {
    return Status::InvalidArgument(label(), ": implausible window count ",
                                   num_windows);
  }
  for (uint64_t i = 0; i < num_windows; ++i) {
    uint64_t arity = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &arity));
    if (arity > data.size()) {
      return Status::InvalidArgument(label(), ": implausible key arity ",
                                     arity);
    }
    std::vector<Value> key(arity);
    for (Value& v : key) SP_RETURN_NOT_OK(DecodeValue(data, &offset, &v));
    Window w;
    for (std::vector<BufferedTuple>* side : {&w.left, &w.right}) {
      uint64_t count = 0;
      SP_RETURN_NOT_OK(GetVarint(data, &offset, &count));
      if (count > data.size()) {
        return Status::InvalidArgument(label(), ": implausible tuple count ",
                                       count);
      }
      side->reserve(count);
      for (uint64_t t = 0; t < count; ++t) {
        BufferedTuple bt;
        SP_RETURN_NOT_OK(DecodeTuple(data, &offset, &bt.tuple));
        if (offset >= data.size()) {
          return Status::InvalidArgument(label(), ": truncated matched flag");
        }
        bt.matched = data[offset++] != 0;
        side->push_back(std::move(bt));
      }
    }
    if (!windows_.emplace(std::move(key), std::move(w)).second) {
      return Status::InvalidArgument(label(),
                                     ": duplicate window key in checkpoint");
    }
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(label(), ": checkpoint has ",
                                   data.size() - offset, " trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MergeOp
// ---------------------------------------------------------------------------

MergeOp::MergeOp(std::string name, SchemaPtr schema, size_t num_inputs)
    : Operator(num_inputs),
      name_(std::move(name)),
      schema_(std::move(schema)),
      queues_(num_inputs),
      port_done_(num_inputs, false) {
  for (size_t i = 0; i < schema_->num_fields(); ++i) {
    if (schema_->field(i).is_temporal()) {
      temporal_idx_ = static_cast<int>(i);
      break;
    }
  }
}

void MergeOp::DoPush(size_t port, const Tuple& tuple) {
  if (temporal_idx_ < 0) {
    Emit(tuple);
    return;
  }
  queues_[port].push_back(tuple);
  Drain(/*final=*/false);
}

void MergeOp::DoPushBatch(size_t port, TupleSpan batch) {
  if (temporal_idx_ < 0) {
    EmitBatch(batch);
    return;
  }
  queues_[port].insert(queues_[port].end(), batch.begin(), batch.end());
  Drain(/*final=*/false);
}

void MergeOp::DoPushColumns(size_t port, const ColumnBatch& batch,
                            const SelectionVector& sel) {
  if (temporal_idx_ < 0) {
    EmitColumns(batch, sel);
    return;
  }
  Operator::DoPushColumns(port, batch, sel);
}

void MergeOp::OnPortFinished(size_t port) {
  port_done_[port] = true;
  if (temporal_idx_ >= 0) Drain(/*final=*/false);
}

void MergeOp::DoFinish() {
  if (temporal_idx_ >= 0) Drain(/*final=*/true);
}

void MergeOp::Drain(bool final) {
  const size_t t = static_cast<size_t>(temporal_idx_);
  drain_batch_.clear();
  while (true) {
    // Ordered merge: we can emit only when every live (unfinished) port has a
    // tuple buffered, or when finalizing.
    int best = -1;
    bool blocked = false;
    for (size_t p = 0; p < queues_.size(); ++p) {
      if (queues_[p].empty()) {
        if (!port_done_[p] && !final) {
          blocked = true;
          break;
        }
        continue;
      }
      if (best < 0 ||
          queues_[p].front().at(t) < queues_[best].front().at(t)) {
        best = static_cast<int>(p);
      }
    }
    if (blocked || best < 0) break;
    drain_batch_.push_back(std::move(queues_[best].front()));
    queues_[best].pop_front();
  }
  // Tuples released by this pass travel downstream as one batch.
  EmitBatch(drain_batch_);
}

void MergeOp::CheckpointState(std::string* out) const {
  // Layout: per port u8 done + varint queue length + queued tuples, in port
  // order (deterministic: the queues are FIFO).
  for (size_t p = 0; p < queues_.size(); ++p) {
    out->push_back(port_done_[p] ? 1 : 0);
    PutVarint(queues_[p].size(), out);
    for (const Tuple& t : queues_[p]) EncodeTuple(t, out);
  }
}

Status MergeOp::RestoreState(std::string_view data) {
  size_t offset = 0;
  for (size_t p = 0; p < queues_.size(); ++p) {
    queues_[p].clear();
    if (offset >= data.size()) {
      return Status::InvalidArgument(label(), ": truncated port ", p);
    }
    port_done_[p] = data[offset++] != 0;
    uint64_t count = 0;
    SP_RETURN_NOT_OK(GetVarint(data, &offset, &count));
    if (count > data.size()) {
      return Status::InvalidArgument(label(), ": implausible queue length ",
                                     count);
    }
    for (uint64_t t = 0; t < count; ++t) {
      Tuple tuple;
      SP_RETURN_NOT_OK(DecodeTuple(data, &offset, &tuple));
      queues_[p].push_back(std::move(tuple));
    }
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(label(), ": checkpoint has ",
                                   data.size() - offset, " trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<OperatorPtr> MakeOperator(QueryNodePtr node,
                                 const UdafRegistry* registry) {
  switch (node->kind) {
    case QueryKind::kSelectProject:
      return OperatorPtr(std::make_unique<SelectProjectOp>(std::move(node)));
    case QueryKind::kAggregate:
      return OperatorPtr(
          std::make_unique<AggregateOp>(std::move(node), registry));
    case QueryKind::kJoin:
      return OperatorPtr(std::make_unique<JoinOp>(std::move(node)));
  }
  return Status::Internal("unknown query kind");
}

}  // namespace streampart
