#include "exec/column_batch.h"

#include <algorithm>

#include "optimizer/filter_order.h"
#include "types/serde.h"

namespace streampart {

namespace {

// Cell-level widening helpers. These must produce exactly what
// Value::AsUint64 / AsInt64 / AsDouble produce for the same cell, so the
// columnar ladders below match the row interpreter bit-for-bit.
uint64_t CellAsU64(DataType type, uint64_t payload) {
  switch (type) {
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      return payload;
    case DataType::kInt:
      return payload;  // same two's-complement bits
    case DataType::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(double));
      return static_cast<uint64_t>(d);
    }
    default:
      return 0;
  }
}

int64_t CellAsI64(DataType type, uint64_t payload) {
  switch (type) {
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
    case DataType::kInt:
      return static_cast<int64_t>(payload);
    case DataType::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(double));
      return static_cast<int64_t>(d);
    }
    default:
      return 0;
  }
}

double CellAsF64(DataType type, uint64_t payload) {
  switch (type) {
    case DataType::kUint:
    case DataType::kIp:
    case DataType::kBool:
      return static_cast<double>(payload);
    case DataType::kInt:
      return static_cast<double>(static_cast<int64_t>(payload));
    case DataType::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(double));
      return d;
    }
    default:
      return 0.0;
  }
}

// Matches Value::Truthy for fixed-width cells: NULL is false, doubles
// compare against 0.0 (so -0.0 is false and NaN is true), everything else
// is nonzero-payload. For kInt the payload is the two's-complement bit
// pattern, which is nonzero iff the signed value is.
bool CellTruthy(const Column& c, size_t row) {
  if (CellIsNull(c, row)) return false;
  if (c.type == DataType::kDouble) {
    double d;
    std::memcpy(&d, &c.data[row], sizeof(double));
    return d != 0.0;
  }
  return c.data[row] != 0;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(double));
  return bits;
}

}  // namespace

const char* ExecModeToString(ExecMode mode) {
  switch (mode) {
    case ExecMode::kTuple:
      return "tuple";
    case ExecMode::kBatch:
      return "batch";
    case ExecMode::kColumnar:
      return "columnar";
  }
  return "unknown";
}

bool ParseExecMode(std::string_view text, ExecMode* out) {
  if (text == "tuple") {
    *out = ExecMode::kTuple;
  } else if (text == "batch") {
    *out = ExecMode::kBatch;
  } else if (text == "columnar") {
    *out = ExecMode::kColumnar;
  } else {
    return false;
  }
  return true;
}

bool ColumnBatch::FromTuples(TupleSpan batch) {
  const size_t rows = batch.size();
  const size_t width = rows == 0 ? 0 : batch[0].size();
  if (cols_.size() != width) {
    cols_.clear();
    cols_.reserve(width);
    for (size_t j = 0; j < width; ++j) {
      cols_.push_back(std::make_shared<Column>());
    }
  }
  rows_ = rows;
  for (size_t j = 0; j < width; ++j) {
    Column& c = *cols_[j];
    c.type = DataType::kNull;
    c.data.resize(rows);
    c.nulls.clear();
  }
  for (size_t r = 0; r < rows; ++r) {
    const Tuple& t = batch[r];
    if (t.size() != width) {
      Clear();
      return false;
    }
    for (size_t j = 0; j < width; ++j) {
      const Value& v = t.at(j);
      Column& c = *cols_[j];
      if (v.is_null()) {
        c.SetNull(r, rows);
        c.data[r] = 0;
        continue;
      }
      const DataType vt = v.type();
      if (vt == DataType::kString ||
          (c.type != DataType::kNull && c.type != vt)) {
        Clear();
        return false;
      }
      c.type = vt;
      c.data[r] = PackCellPayload(v);
    }
  }
  return true;
}

void ColumnBatch::MaterializeRow(size_t row, Tuple* out) const {
  std::vector<Value>& vals = out->values();
  vals.resize(cols_.size());
  for (size_t j = 0; j < cols_.size(); ++j) {
    vals[j] = cols_[j]->ValueAt(row);
  }
}

size_t ColumnBatch::RowWireBytes(size_t row) const {
  size_t bytes = 0;
  for (const ColumnPtr& c : cols_) {
    bytes += DataTypeWireSize(CellIsNull(*c, row) ? DataType::kNull : c->type);
  }
  return bytes;
}

size_t ColumnBatch::FixedRowWireBytes() const {
  size_t bytes = 0;
  for (const ColumnPtr& c : cols_) bytes += DataTypeWireSize(c->type);
  return bytes;
}

bool ColumnBatch::AnyNulls() const {
  for (const ColumnPtr& c : cols_) {
    if (c->has_nulls() || c->type == DataType::kNull) return true;
  }
  return false;
}

void EncodeColumns(const ColumnBatch& batch, const SelectionVector& sel,
                   std::string* out) {
  Tuple scratch;
  for (uint32_t row : sel) {
    batch.MaterializeRow(row, &scratch);
    EncodeTuple(scratch, out);
  }
}

bool ExprVectorizable(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
      return expr->is_bound();
    case ExprKind::kLiteral:
      return expr->literal().type() != DataType::kString;
    case ExprKind::kBinary:
      return ExprVectorizable(expr->left()) && ExprVectorizable(expr->right());
    case ExprKind::kUnary:
      return ExprVectorizable(expr->operand());
    case ExprKind::kCall:
      return false;
  }
  return false;
}

ColumnEvaluator::ColumnEvaluator(ExprPtr expr) : expr_(std::move(expr)) {
  SP_CHECK(expr_ != nullptr);
  Flatten(expr_);
  results_.resize(nodes_.size(), nullptr);
}

int ColumnEvaluator::Flatten(const ExprPtr& expr) {
  Node n;
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
      SP_CHECK(expr->is_bound());
      n.code = OpCode::kColumn;
      n.column = static_cast<size_t>(expr->bound_index());
      break;
    case ExprKind::kLiteral:
      n.code = OpCode::kLiteral;
      n.literal = expr->literal();
      break;
    case ExprKind::kBinary:
      n.left = Flatten(expr->left());
      n.right = Flatten(expr->right());
      n.code = OpCode::kBinary;
      n.bin_op = expr->binary_op();
      break;
    case ExprKind::kUnary:
      n.left = Flatten(expr->operand());
      n.code = OpCode::kUnary;
      n.un_op = expr->unary_op();
      break;
    default:
      SP_CHECK(false);  // kCall is not vectorizable
  }
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

const Column* ColumnEvaluator::Evaluate(const ColumnBatch& batch,
                                        const SelectionVector& sel) {
  // nodes_ is in post-order, so children are always evaluated before their
  // parent; one linear pass computes the whole program.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    results_[i] = EvalNode(i, batch, sel);
  }
  return results_.back();
}

void ColumnEvaluator::Filter(const ColumnBatch& batch, SelectionVector* sel) {
  const Column* v = Evaluate(batch, *sel);
  size_t kept = 0;
  for (uint32_t row : *sel) {
    if (CellTruthy(*v, row)) (*sel)[kept++] = row;
  }
  sel->resize(kept);
}

const Column* ColumnEvaluator::EvalNode(size_t idx, const ColumnBatch& batch,
                                        const SelectionVector& sel) {
  Node& n = nodes_[idx];
  if (n.code == OpCode::kColumn) {
    return &batch.col(n.column);
  }

  Column& out = n.scratch;
  out.nulls.clear();
  out.data.resize(batch.rows());

  if (n.code == OpCode::kLiteral) {
    const Value& lit = n.literal;
    out.type = lit.type();
    if (lit.is_null()) {
      // All-null constant: kNull type alone marks every cell null.
      return &out;
    }
    const uint64_t payload = PackCellPayload(lit);
    for (uint32_t row : sel) out.data[row] = payload;
    return &out;
  }

  if (n.code == OpCode::kUnary) {
    const Column& c = *results_[n.left];
    switch (n.un_op) {
      case UnaryOp::kNot:
        out.type = DataType::kBool;
        for (uint32_t row : sel) {
          out.data[row] = CellTruthy(c, row) ? 0 : 1;
        }
        return &out;
      case UnaryOp::kBitNot:
        out.type = DataType::kUint;
        for (uint32_t row : sel) {
          if (CellIsNull(c, row)) {
            out.SetNull(row, batch.rows());
            out.data[row] = 0;
            continue;
          }
          out.data[row] = ~CellAsU64(c.type, c.data[row]);
        }
        return &out;
      case UnaryOp::kNegate:
        if (c.type == DataType::kDouble) {
          out.type = DataType::kDouble;
          for (uint32_t row : sel) {
            if (CellIsNull(c, row)) {
              out.SetNull(row, batch.rows());
              out.data[row] = 0;
              continue;
            }
            out.data[row] = DoubleBits(-CellAsF64(c.type, c.data[row]));
          }
        } else {
          out.type = DataType::kInt;
          for (uint32_t row : sel) {
            if (CellIsNull(c, row)) {
              out.SetNull(row, batch.rows());
              out.data[row] = 0;
              continue;
            }
            out.data[row] =
                static_cast<uint64_t>(-CellAsI64(c.type, c.data[row]));
          }
        }
        return &out;
    }
    SP_CHECK(false);
  }

  // Binary node.
  const Column& l = *results_[n.left];
  const Column& r = *results_[n.right];
  const BinaryOp op = n.bin_op;

  if (IsLogical(op)) {
    // Expr::Eval collapses NULL to false via Truthy(), so logical results
    // are never null and clause order cannot change a conjunction's value.
    out.type = DataType::kBool;
    if (op == BinaryOp::kAnd) {
      for (uint32_t row : sel) {
        out.data[row] = (CellTruthy(l, row) && CellTruthy(r, row)) ? 1 : 0;
      }
    } else {
      for (uint32_t row : sel) {
        out.data[row] = (CellTruthy(l, row) || CellTruthy(r, row)) ? 1 : 0;
      }
    }
    return &out;
  }

  if (IsComparison(op)) {
    // CompareValues's promotion ladder, keyed on the static column types
    // (string columns cannot arise; null cells short-circuit before the
    // ladder, exactly as EvalComparison nulls out on a null operand).
    out.type = DataType::kBool;
    const bool dbl =
        l.type == DataType::kDouble || r.type == DataType::kDouble;
    const bool sgn =
        !dbl && (l.type == DataType::kInt || r.type == DataType::kInt);
    for (uint32_t row : sel) {
      if (CellIsNull(l, row) || CellIsNull(r, row)) {
        out.SetNull(row, batch.rows());
        out.data[row] = 0;
        continue;
      }
      int c;
      if (dbl) {
        const double a = CellAsF64(l.type, l.data[row]);
        const double b = CellAsF64(r.type, r.data[row]);
        c = a < b ? -1 : (a > b ? 1 : 0);
      } else if (sgn) {
        const int64_t a = CellAsI64(l.type, l.data[row]);
        const int64_t b = CellAsI64(r.type, r.data[row]);
        c = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        const uint64_t a = CellAsU64(l.type, l.data[row]);
        const uint64_t b = CellAsU64(r.type, r.data[row]);
        c = a < b ? -1 : (a > b ? 1 : 0);
      }
      bool v = false;
      switch (op) {
        case BinaryOp::kEq:
          v = c == 0;
          break;
        case BinaryOp::kNe:
          v = c != 0;
          break;
        case BinaryOp::kLt:
          v = c < 0;
          break;
        case BinaryOp::kLe:
          v = c <= 0;
          break;
        case BinaryOp::kGt:
          v = c > 0;
          break;
        case BinaryOp::kGe:
          v = c >= 0;
          break;
        default:
          SP_CHECK(false);
      }
      out.data[row] = v ? 1 : 0;
    }
    return &out;
  }

  if (IsBitwise(op)) {
    out.type = DataType::kUint;
    for (uint32_t row : sel) {
      if (CellIsNull(l, row) || CellIsNull(r, row)) {
        out.SetNull(row, batch.rows());
        out.data[row] = 0;
        continue;
      }
      const uint64_t a = CellAsU64(l.type, l.data[row]);
      const uint64_t b = CellAsU64(r.type, r.data[row]);
      uint64_t v = 0;
      switch (op) {
        case BinaryOp::kBitAnd:
          v = a & b;
          break;
        case BinaryOp::kBitOr:
          v = a | b;
          break;
        case BinaryOp::kBitXor:
          v = a ^ b;
          break;
        case BinaryOp::kShiftLeft:
          v = b >= 64 ? 0 : a << b;
          break;
        case BinaryOp::kShiftRight:
          v = b >= 64 ? 0 : a >> b;
          break;
        default:
          SP_CHECK(false);
      }
      out.data[row] = v;
    }
    return &out;
  }

  // Arithmetic: EvalArithmetic's promotion ladder on the static column
  // types. Null cells (and whole-column kNull operands) null the result;
  // the ladder then degenerates to unsigned but never runs for those rows.
  const bool dbl = l.type == DataType::kDouble || r.type == DataType::kDouble;
  const bool sgn =
      !dbl && (l.type == DataType::kInt || r.type == DataType::kInt);
  out.type = dbl ? DataType::kDouble
                 : (sgn ? DataType::kInt : DataType::kUint);
  for (uint32_t row : sel) {
    if (CellIsNull(l, row) || CellIsNull(r, row)) {
      out.SetNull(row, batch.rows());
      out.data[row] = 0;
      continue;
    }
    if (dbl) {
      const double a = CellAsF64(l.type, l.data[row]);
      const double b = CellAsF64(r.type, r.data[row]);
      double v = 0.0;
      switch (op) {
        case BinaryOp::kAdd:
          v = a + b;
          break;
        case BinaryOp::kSub:
          v = a - b;
          break;
        case BinaryOp::kMul:
          v = a * b;
          break;
        case BinaryOp::kDiv:
          if (b == 0.0) {
            out.SetNull(row, batch.rows());
            out.data[row] = 0;
            continue;
          }
          v = a / b;
          break;
        case BinaryOp::kMod:
          // Double modulo is NULL in the row interpreter.
          out.SetNull(row, batch.rows());
          out.data[row] = 0;
          continue;
        default:
          SP_CHECK(false);
      }
      out.data[row] = DoubleBits(v);
    } else if (sgn) {
      const int64_t a = CellAsI64(l.type, l.data[row]);
      const int64_t b = CellAsI64(r.type, r.data[row]);
      int64_t v = 0;
      switch (op) {
        case BinaryOp::kAdd:
          v = a + b;
          break;
        case BinaryOp::kSub:
          v = a - b;
          break;
        case BinaryOp::kMul:
          v = a * b;
          break;
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          if (b == 0) {
            out.SetNull(row, batch.rows());
            out.data[row] = 0;
            continue;
          }
          v = op == BinaryOp::kDiv ? a / b : a % b;
          break;
        default:
          SP_CHECK(false);
      }
      out.data[row] = static_cast<uint64_t>(v);
    } else {
      const uint64_t a = CellAsU64(l.type, l.data[row]);
      const uint64_t b = CellAsU64(r.type, r.data[row]);
      uint64_t v = 0;
      switch (op) {
        case BinaryOp::kAdd:
          v = a + b;
          break;
        case BinaryOp::kSub:
          v = a - b;
          break;
        case BinaryOp::kMul:
          v = a * b;
          break;
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          if (b == 0) {
            out.SetNull(row, batch.rows());
            out.data[row] = 0;
            continue;
          }
          v = op == BinaryOp::kDiv ? a / b : a % b;
          break;
        default:
          SP_CHECK(false);
      }
      out.data[row] = v;
    }
  }
  return &out;
}

std::vector<ColumnEvaluator> CompileOrderedClauses(const ExprPtr& where) {
  std::vector<ColumnEvaluator> out;
  if (where == nullptr) return out;
  // Heuristic weights order the kernels; the plan-time measured reorder
  // (optimizer/filter_order) feeds through as the tie-break order because
  // the sort is stable.
  for (const ExprPtr& clause : OrderClauses(where, {})) {
    out.emplace_back(clause);
  }
  return out;
}

}  // namespace streampart
