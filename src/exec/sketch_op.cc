#include "exec/sketch_op.h"

#include <algorithm>

#include "common/hash.h"
#include "types/serde.h"

namespace streampart {

namespace {

/// \brief Summary blob framing version/magic ("SKS1").
constexpr uint32_t kSummaryMagic = 0x534b5331;

/// \brief Bound tuple index of a bare column-reference expression, or -1
/// when the expression needs interpretation.
int ColumnFastPath(const ExprPtr& expr) {
  if (expr != nullptr && expr->is_column() && expr->is_bound()) {
    return static_cast<int>(expr->bound_index());
  }
  return -1;
}

/// \brief Zero-argument aggregate (count) sentinel for arg_cols_.
constexpr int kNoArg = -2;

/// \brief An estimate as a Value of the aggregate slot's declared type.
Value EstimateValue(uint64_t est, DataType type) {
  switch (type) {
    case DataType::kInt:
      return Value::Int(static_cast<int64_t>(est));
    case DataType::kDouble:
      return Value::Double(static_cast<double>(est));
    default:
      return Value::Uint(est);
  }
}

/// \brief Serializes one epoch's sketches + candidate keys into \p out.
/// Layout: u32 magic, u32 aggregate count, the serialized count-min grids,
/// u64 candidate count, then each encoded candidate key (length-prefixed).
/// Candidates iterate a sorted map, so the bytes are a pure function of the
/// logical state.
void SerializeSummary(const std::vector<sketch::CmSketch>& sketches,
                      const std::map<std::string, uint64_t>& candidates,
                      std::string* out) {
  sketch::PutU32(out, kSummaryMagic);
  sketch::PutU32(out, static_cast<uint32_t>(sketches.size()));
  for (const sketch::CmSketch& s : sketches) s.Serialize(out);
  sketch::PutU64(out, candidates.size());
  for (const auto& [key, hash] : candidates) sketch::PutBytes(out, key);
}

/// \brief Parses a summary blob and folds it into \p sketches /
/// \p candidates (merging grids cell-wise, unioning keys).
Status MergeSummary(std::string_view blob,
                    std::vector<sketch::CmSketch>* sketches,
                    std::map<std::string, uint64_t>* candidates) {
  size_t offset = 0;
  uint32_t magic = 0;
  SP_RETURN_NOT_OK(sketch::GetU32(blob, &offset, &magic));
  if (magic != kSummaryMagic) {
    return Status::InvalidArgument("bad sketch summary magic ", magic);
  }
  uint32_t count = 0;
  SP_RETURN_NOT_OK(sketch::GetU32(blob, &offset, &count));
  if (count != sketches->size()) {
    return Status::InvalidArgument("sketch summary has ", count,
                                   " grids, expected ", sketches->size());
  }
  for (sketch::CmSketch& mine : *sketches) {
    auto theirs = sketch::CmSketch::Deserialize(blob, &offset);
    SP_RETURN_NOT_OK(theirs.status());
    SP_RETURN_NOT_OK(mine.Merge(*theirs));
  }
  uint64_t num_keys = 0;
  SP_RETURN_NOT_OK(sketch::GetU64(blob, &offset, &num_keys));
  if (num_keys > blob.size()) {
    return Status::InvalidArgument("implausible candidate count ", num_keys);
  }
  for (uint64_t i = 0; i < num_keys; ++i) {
    std::string key;
    SP_RETURN_NOT_OK(sketch::GetBytes(blob, &offset, &key));
    uint64_t hash = HashBytes(key);
    candidates->emplace(std::move(key), hash);
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes in sketch summary");
  }
  return Status::OK();
}

}  // namespace

SchemaPtr SketchSummarySchema(const QueryNode& node) {
  SP_CHECK(node.temporal_group_idx.has_value())
      << "sketch leg over non-windowed aggregate " << node.name;
  const NamedExpr& t = node.group_by[*node.temporal_group_idx];
  return Schema::Make({{t.name, t.type, TemporalOrder::kIncreasing},
                       {"summary", DataType::kString, TemporalOrder::kNone}});
}

// ---------------------------------------------------------------------------
// SketchOp (host leg)
// ---------------------------------------------------------------------------

SketchOp::SketchOp(QueryNodePtr node, SketchSpec spec)
    : Operator(/*num_ports=*/1), node_(std::move(node)), spec_(spec) {
  SP_CHECK(node_->kind == QueryKind::kAggregate)
      << "SketchOp over non-aggregate node " << node_->name;
  SP_CHECK(node_->temporal_group_idx.has_value())
      << "SketchOp requires a tumbling-window aggregate " << node_->name;
  temporal_idx_ = *node_->temporal_group_idx;
  group_cols_.reserve(node_->group_by.size());
  for (const NamedExpr& g : node_->group_by) {
    group_cols_.push_back(ColumnFastPath(g.expr));
  }
  const sketch::CmParams grid = spec_.Grid();
  arg_cols_.reserve(node_->aggregates.size());
  for (const AggregateSpec& a : node_->aggregates) {
    arg_cols_.push_back(a.args.empty() ? kNoArg : ColumnFastPath(a.args[0]));
    sketches_.emplace_back(grid);
  }
}

bool SketchOp::AdvanceEpoch(const Value& epoch) {
  if (current_epoch_.has_value() && !(epoch == *current_epoch_)) {
    if (epoch < *current_epoch_) {
      ++stats_.late_tuples;
      return false;
    }
    FlushEpoch();
  }
  current_epoch_ = epoch;
  return true;
}

void SketchOp::DoPush(size_t, const Tuple& tuple) {
  if (node_->where) {
    ++stats_.predicate_evals;
    if (!node_->where->Eval(tuple).Truthy()) return;
  }
  const size_t num_groups = node_->group_by.size();
  key_vals_.resize(num_groups);
  for (size_t i = 0; i < num_groups; ++i) {
    key_vals_[i] = group_cols_[i] >= 0
                       ? tuple.at(static_cast<size_t>(group_cols_[i]))
                       : node_->group_by[i].expr->Eval(tuple);
  }
  if (!AdvanceEpoch(key_vals_[temporal_idx_])) return;

  key_buf_.clear();
  for (size_t i = 0; i < num_groups; ++i) {
    if (i != temporal_idx_) EncodeValue(key_vals_[i], &key_buf_);
  }
  auto [it, inserted] = candidates_.try_emplace(key_buf_, 0);
  if (inserted) {
    ++stats_.group_inserts;
    it->second = HashBytes(it->first);
  } else {
    ++stats_.group_probes;
  }
  const uint64_t hash = it->second;

  // Ambient shed weight: each admitted tuple stands for w observations.
  const uint64_t w = shed_weight_ != nullptr ? *shed_weight_ : 1;
  for (size_t i = 0; i < arg_cols_.size(); ++i) {
    uint64_t delta = 1;
    if (arg_cols_[i] == kNoArg) {
      // COUNT(*): unit mass.
    } else if (arg_cols_[i] >= 0) {
      delta = tuple.at(static_cast<size_t>(arg_cols_[i])).AsUint64();
    } else {
      delta = node_->aggregates[i].args[0]->Eval(tuple).AsUint64();
    }
    if (delta == 0) continue;  // zero mass leaves the sketch untouched
    sketches_[i].UpdateConservative(hash, delta * w);
    ++acc_.updates;
  }
}

void SketchOp::FlushEpoch() {
  if (candidates_.empty()) return;
  std::string blob;
  SerializeSummary(sketches_, candidates_, &blob);
  const uint64_t blob_bytes = blob.size();

  Tuple out;
  out.values().reserve(2);
  out.Append(*current_epoch_);
  out.Append(Value::String(std::move(blob)));

  ++acc_.summaries;
  acc_.summary_bytes += blob_bytes;
  ++acc_.epochs;
  if (t_epoch_flushes_ != nullptr) {
    t_updates_->Add(acc_.updates - t_updates_->value());
    t_summaries_->Inc();
    t_summary_bytes_->Add(blob_bytes);
    t_epoch_flushes_->Inc();
  }
  if (trace_events_enabled()) {
    RecordTraceEvent("sketch_flush", current_epoch_->ToString(),
                     candidates_.size(), 1);
  }
  Emit(out);

  const sketch::CmParams grid = spec_.Grid();
  for (sketch::CmSketch& s : sketches_) s = sketch::CmSketch(grid);
  candidates_.clear();
}

void SketchOp::DoFinish() { FlushEpoch(); }

void SketchOp::DoBindTelemetry(StatsScope* scope) {
  t_updates_ = scope->counter(stats::kSketchUpdates);
  t_summaries_ = scope->counter(stats::kSketchSummaries);
  t_summary_bytes_ = scope->counter(stats::kSketchSummaryBytes);
  t_epoch_flushes_ = scope->counter(stats::kSketchEpochFlushes);
}

void SketchOp::CheckpointState(std::string* out) const {
  // Layout: u8 has-epoch [value], the open epoch's serialized grids, u64
  // candidate count then each encoded key. Candidates iterate sorted, so the
  // bytes are a pure function of the logical state.
  out->push_back(current_epoch_.has_value() ? 1 : 0);
  if (current_epoch_.has_value()) EncodeValue(*current_epoch_, out);
  for (const sketch::CmSketch& s : sketches_) s.Serialize(out);
  sketch::PutU64(out, candidates_.size());
  for (const auto& [key, hash] : candidates_) sketch::PutBytes(out, key);
}

Status SketchOp::RestoreState(std::string_view data) {
  candidates_.clear();
  current_epoch_.reset();

  size_t offset = 0;
  if (data.empty()) {
    return Status::InvalidArgument(label(), ": empty checkpoint blob");
  }
  if (data[offset++] != 0) {
    Value epoch;
    SP_RETURN_NOT_OK(DecodeValue(data, &offset, &epoch));
    current_epoch_ = std::move(epoch);
  }
  for (sketch::CmSketch& s : sketches_) {
    auto restored = sketch::CmSketch::Deserialize(data, &offset);
    SP_RETURN_NOT_OK(restored.status());
    if (!(restored->params() == spec_.Grid())) {
      return Status::InvalidArgument(label(),
                                     ": checkpoint grid differs from spec");
    }
    s = std::move(*restored);
  }
  uint64_t num_keys = 0;
  SP_RETURN_NOT_OK(sketch::GetU64(data, &offset, &num_keys));
  if (num_keys > data.size()) {
    return Status::InvalidArgument(label(), ": implausible candidate count ",
                                   num_keys);
  }
  for (uint64_t i = 0; i < num_keys; ++i) {
    std::string key;
    SP_RETURN_NOT_OK(sketch::GetBytes(data, &offset, &key));
    uint64_t hash = HashBytes(key);
    candidates_.emplace(std::move(key), hash);
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(label(), ": trailing checkpoint bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SketchMergeOp (aggregator leg)
// ---------------------------------------------------------------------------

SketchMergeOp::SketchMergeOp(QueryNodePtr node, SketchSpec spec)
    : Operator(/*num_ports=*/1), node_(std::move(node)), spec_(spec) {
  SP_CHECK(node_->kind == QueryKind::kAggregate)
      << "SketchMergeOp over non-aggregate node " << node_->name;
  SP_CHECK(node_->temporal_group_idx.has_value())
      << "SketchMergeOp requires a tumbling-window aggregate " << node_->name;
  temporal_idx_ = *node_->temporal_group_idx;
  out_cols_.reserve(node_->outputs.size());
  for (const NamedExpr& o : node_->outputs) {
    out_cols_.push_back(ColumnFastPath(o.expr));
  }
  const sketch::CmParams grid = spec_.Grid();
  for (size_t i = 0; i < node_->aggregates.size(); ++i) {
    sketches_.emplace_back(grid);
  }
}

void SketchMergeOp::DoPush(size_t, const Tuple& tuple) {
  const Value& epoch = tuple.at(0);
  if (current_epoch_.has_value() && !(epoch == *current_epoch_)) {
    if (epoch < *current_epoch_) {
      ++stats_.late_tuples;
      return;
    }
    FlushEpoch();
  }
  current_epoch_ = epoch;

  const std::string& blob = tuple.at(1).string_value();
  Status merged = MergeSummary(blob, &sketches_, &candidates_);
  SP_CHECK(merged.ok()) << label() << ": " << merged.message();
  ++acc_.merged_summaries;
  acc_.merged_bytes += blob.size();
  if (t_merged_summaries_ != nullptr) {
    t_merged_summaries_->Inc();
    t_merged_bytes_->Add(blob.size());
  }
}

void SketchMergeOp::FlushInternal() {
  const Tuple& internal = internal_scratch_;
  if (node_->having) {
    ++stats_.predicate_evals;
    if (!node_->having->Eval(internal).Truthy()) return;
  }
  Tuple out;
  out.values().reserve(node_->outputs.size());
  for (size_t i = 0; i < node_->outputs.size(); ++i) {
    if (out_cols_[i] >= 0) {
      out.Append(internal.at(static_cast<size_t>(out_cols_[i])));
    } else {
      out.Append(node_->outputs[i].expr->Eval(internal));
    }
  }
  flush_batch_.push_back(std::move(out));
}

void SketchMergeOp::FlushEpoch() {
  if (candidates_.empty()) return;
  const size_t num_groups = node_->group_by.size();
  const size_t num_aggs = node_->aggregates.size();
  flush_batch_.clear();
  for (const auto& [key, hash] : candidates_) {
    std::vector<Value>& vals = internal_scratch_.values();
    vals.resize(num_groups + num_aggs);
    size_t offset = 0;
    for (size_t i = 0; i < num_groups; ++i) {
      if (i == temporal_idx_) {
        vals[i] = *current_epoch_;
      } else {
        Status decoded = DecodeValue(key, &offset, &vals[i]);
        SP_CHECK(decoded.ok()) << label() << ": " << decoded.message();
      }
    }
    for (size_t j = 0; j < num_aggs; ++j) {
      vals[num_groups + j] = EstimateValue(sketches_[j].Estimate(hash),
                                           node_->aggregates[j].out_type);
      ++acc_.estimates;
    }
    FlushInternal();
  }
  ++acc_.epochs;
  for (const sketch::CmSketch& s : sketches_) {
    acc_.max_epoch_mass = std::max(acc_.max_epoch_mass, s.total());
  }
  if (t_epoch_flushes_ != nullptr) {
    t_estimates_->Add(acc_.estimates - t_estimates_->value());
    t_epoch_flushes_->Inc();
  }
  if (trace_events_enabled()) {
    RecordTraceEvent("sketch_answer", current_epoch_->ToString(),
                     candidates_.size(), flush_batch_.size());
  }
  EmitBatch(flush_batch_);

  const sketch::CmParams grid = spec_.Grid();
  for (sketch::CmSketch& s : sketches_) s = sketch::CmSketch(grid);
  candidates_.clear();
}

void SketchMergeOp::DoFinish() { FlushEpoch(); }

void SketchMergeOp::DoBindTelemetry(StatsScope* scope) {
  t_merged_summaries_ = scope->counter(stats::kSketchMergedSummaries);
  t_merged_bytes_ = scope->counter(stats::kSketchMergedBytes);
  t_estimates_ = scope->counter(stats::kSketchEstimates);
  t_epoch_flushes_ = scope->counter(stats::kSketchEpochFlushes);
}

void SketchMergeOp::CheckpointState(std::string* out) const {
  out->push_back(current_epoch_.has_value() ? 1 : 0);
  if (current_epoch_.has_value()) EncodeValue(*current_epoch_, out);
  for (const sketch::CmSketch& s : sketches_) s.Serialize(out);
  sketch::PutU64(out, candidates_.size());
  for (const auto& [key, hash] : candidates_) sketch::PutBytes(out, key);
}

Status SketchMergeOp::RestoreState(std::string_view data) {
  candidates_.clear();
  current_epoch_.reset();

  size_t offset = 0;
  if (data.empty()) {
    return Status::InvalidArgument(label(), ": empty checkpoint blob");
  }
  if (data[offset++] != 0) {
    Value epoch;
    SP_RETURN_NOT_OK(DecodeValue(data, &offset, &epoch));
    current_epoch_ = std::move(epoch);
  }
  for (sketch::CmSketch& s : sketches_) {
    auto restored = sketch::CmSketch::Deserialize(data, &offset);
    SP_RETURN_NOT_OK(restored.status());
    if (!(restored->params() == spec_.Grid())) {
      return Status::InvalidArgument(label(),
                                     ": checkpoint grid differs from spec");
    }
    s = std::move(*restored);
  }
  uint64_t num_keys = 0;
  SP_RETURN_NOT_OK(sketch::GetU64(data, &offset, &num_keys));
  if (num_keys > data.size()) {
    return Status::InvalidArgument(label(), ": implausible candidate count ",
                                   num_keys);
  }
  for (uint64_t i = 0; i < num_keys; ++i) {
    std::string key;
    SP_RETURN_NOT_OK(sketch::GetBytes(data, &offset, &key));
    uint64_t hash = HashBytes(key);
    candidates_.emplace(std::move(key), hash);
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(label(), ": trailing checkpoint bytes");
  }
  return Status::OK();
}

}  // namespace streampart
