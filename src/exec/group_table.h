#pragma once

/// \file group_table.h
/// \brief Flat open-addressed hash table for packed fixed-width group keys.
///
/// The vectorized aggregation path probes one hash table per input tuple, so
/// the probe is the hottest loop in the engine. A node-based
/// std::unordered_map<std::string, ...> pays for it three times over: a
/// byte-serial hash, a pointer chase into the bucket list, and a second
/// chase into the heap-allocated key string. PackedKeyTable stores 64-bit
/// hashes, keys, and mapped values in three parallel contiguous arrays with
/// linear probing, so a probe is one hash over 8-byte words, one predictable
/// array walk, and one memcmp against an arena slice — no per-key
/// allocations, and Recycle() retains capacity (and hands back the mapped
/// values for reuse) across tumbling windows.
///
/// Keys must all have the same byte width, fixed at first insert; the
/// aggregate operator's packed encoding guarantees this (slot count times
/// kPackedSlotWidth). Not a general-purpose map: no erase, values are
/// reachable only through ForEach/Recycle.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace streampart {

template <typename T>
class PackedKeyTable {
 public:
  /// \brief Mapped value for \p key, inserting a default-constructed slot on
  /// miss. \p hash must be HashBytesWide(key). \p inserted reports which.
  T* FindOrInsert(std::string_view key, uint64_t hash, bool* inserted) {
    if (slots_ == 0) Rehash(kMinSlots, key.size());
    SP_DCHECK(key.size() == key_width_) << "packed key width changed";
    hash |= kOccupied;
    size_t idx = hash & mask_;
    while (true) {
      uint64_t h = hashes_[idx];
      if (h == kEmpty) break;
      if (h == hash &&
          std::memcmp(keys_.data() + idx * key_width_, key.data(),
                      key_width_) == 0) {
        *inserted = false;
        return &values_[idx];
      }
      idx = (idx + 1) & mask_;
    }
    if (size_ + 1 > (slots_ / 2) + (slots_ / 4)) {  // max load 0.75
      Rehash(slots_ * 2, key_width_);
      idx = hash & mask_;
      while (hashes_[idx] != kEmpty) idx = (idx + 1) & mask_;
    }
    hashes_[idx] = hash;
    std::memcpy(keys_.data() + idx * key_width_, key.data(), key_width_);
    ++size_;
    *inserted = true;
    return &values_[idx];
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Visits every occupied slot as fn(key_view, value&). Iteration
  /// order is unspecified (hash order).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_; ++i) {
      if (hashes_[i] != kEmpty) {
        fn(std::string_view(keys_.data() + i * key_width_, key_width_),
           values_[i]);
      }
    }
  }

  /// \brief Read-only ForEach (checkpoint serialization).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_; ++i) {
      if (hashes_[i] != kEmpty) {
        fn(std::string_view(keys_.data() + i * key_width_, key_width_),
           values_[i]);
      }
    }
  }

  /// \brief Empties the table, keeping capacity, and moves every occupied
  /// value into \p pool so the next window can reuse it (nullptr discards).
  void Recycle(std::vector<T>* pool) {
    if (size_ == 0) return;
    for (size_t i = 0; i < slots_; ++i) {
      if (hashes_[i] != kEmpty) {
        if (pool != nullptr) pool->push_back(std::move(values_[i]));
        values_[i] = T();
        hashes_[i] = kEmpty;
      }
    }
    size_ = 0;
  }

 private:
  static constexpr uint64_t kEmpty = 0;
  /// Forces stored hashes nonzero so 0 can mean "empty slot".
  static constexpr uint64_t kOccupied = 1ULL << 63;
  static constexpr size_t kMinSlots = 16;

  void Rehash(size_t new_slots, size_t key_width) {
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::string old_keys = std::move(keys_);
    std::vector<T> old_values = std::move(values_);
    size_t old_slots = slots_;

    key_width_ = key_width;
    slots_ = new_slots;
    mask_ = new_slots - 1;
    hashes_.assign(new_slots, kEmpty);
    keys_.resize(new_slots * key_width_);
    values_.clear();
    values_.resize(new_slots);

    for (size_t i = 0; i < old_slots; ++i) {
      if (old_hashes[i] == kEmpty) continue;
      size_t idx = old_hashes[i] & mask_;
      while (hashes_[idx] != kEmpty) idx = (idx + 1) & mask_;
      hashes_[idx] = old_hashes[i];
      std::memcpy(keys_.data() + idx * key_width_,
                  old_keys.data() + i * key_width_, key_width_);
      values_[idx] = std::move(old_values[i]);
    }
  }

  size_t key_width_ = 0;
  size_t slots_ = 0;  // always zero or a power of two
  size_t mask_ = 0;
  size_t size_ = 0;
  std::vector<uint64_t> hashes_;
  std::string keys_;  // slot i's key bytes at [i * key_width_, +key_width_)
  std::vector<T> values_;
};

}  // namespace streampart
