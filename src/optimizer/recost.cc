#include "optimizer/recost.h"

#include <algorithm>

#include "common/logging.h"

namespace streampart {
namespace {

double ReceiveCharge(const RecostEdge& edge, const RecostWeights& w) {
  return edge.tuples * w.cycles_per_remote_tuple +
         edge.bytes * w.cycles_per_remote_byte;
}

}  // namespace

std::vector<double> ProjectHostLoads(int num_hosts,
                                     const std::vector<double>& base_load,
                                     const StageRates& moved, int to,
                                     const RecostWeights& weights) {
  SP_CHECK(static_cast<int>(base_load.size()) == num_hosts);
  SP_CHECK(to >= 0 && to < num_hosts);
  SP_CHECK(moved.host >= 0 && moved.host < num_hosts);
  std::vector<double> loads = base_load;
  int from = moved.host;
  if (to == from) return loads;
  // The stage's compute follows it.
  loads[from] -= moved.compute_cycles;
  loads[to] += moved.compute_cycles;
  // Input edges charge their receiver; an edge whose producer shares the
  // stage's host is local and free on that side of the move.
  for (const RecostEdge& edge : moved.inputs) {
    if (edge.peer_host != from) loads[from] -= ReceiveCharge(edge, weights);
    if (edge.peer_host != to) loads[to] += ReceiveCharge(edge, weights);
  }
  // Output edges charge the consumer host; moving the producer only changes
  // whether the edge is local at that consumer.
  for (const RecostEdge& edge : moved.outputs) {
    if (edge.peer_host < 0 || edge.peer_host >= num_hosts) continue;
    if (edge.peer_host == from && edge.peer_host != to) {
      loads[edge.peer_host] += ReceiveCharge(edge, weights);
    } else if (edge.peer_host == to && edge.peer_host != from) {
      loads[edge.peer_host] -= ReceiveCharge(edge, weights);
    }
  }
  return loads;
}

double Bottleneck(const std::vector<double>& loads) {
  double max = 0;
  for (double load : loads) max = std::max(max, load);
  return max;
}

}  // namespace streampart
