#include "optimizer/dist_plan.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace streampart {

const char* DistOpKindToString(DistOpKind kind) {
  switch (kind) {
    case DistOpKind::kSource:
      return "source";
    case DistOpKind::kQuery:
      return "query";
    case DistOpKind::kMerge:
      return "merge";
  }
  return "?";
}

std::string DistOperator::Label() const {
  std::string out;
  switch (kind) {
    case DistOpKind::kSource:
      out = stream_name + "[part " + std::to_string(partition) + "]";
      break;
    case DistOpKind::kQuery:
      switch (sketch_role) {
        case SketchRole::kHost:
          out = "sketch(" + stream_name + ")";
          break;
        case SketchRole::kMerge:
          out = "sketch_merge(" + stream_name + ")";
          break;
        case SketchRole::kNone:
          out = std::string(QueryKindToString(query->kind)) + "(" +
                stream_name + ")";
          break;
      }
      break;
    case DistOpKind::kMerge:
      out = "merge(" + stream_name + ")";
      break;
  }
  out += " @host" + std::to_string(host);
  if (kind != DistOpKind::kSource && partition >= 0) {
    out += " [part " + std::to_string(partition) + "]";
  }
  return out;
}

int DistPlan::AddOp(DistOperator op) {
  op.id = static_cast<int>(ops_.size());
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

std::vector<int> DistPlan::TopoOrder() const {
  std::vector<int> order;
  std::vector<int> state(ops_.size(), 0);  // 0=unvisited 1=visiting 2=done
  std::function<void(int)> visit = [&](int id) {
    if (!ops_[id].alive || state[id] == 2) return;
    SP_CHECK(state[id] != 1) << "cycle in distributed plan at op " << id;
    state[id] = 1;
    for (int c : ops_[id].children) visit(c);
    state[id] = 2;
    order.push_back(id);
  };
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].alive) visit(static_cast<int>(i));
  }
  return order;
}

std::vector<int> DistPlan::Consumers(int id) const {
  std::vector<int> out;
  for (const DistOperator& op : ops_) {
    if (!op.alive) continue;
    if (std::find(op.children.begin(), op.children.end(), id) !=
        op.children.end()) {
      out.push_back(op.id);
    }
  }
  return out;
}

void DistPlan::ReplaceOp(int old_id, int new_id) {
  for (DistOperator& op : ops_) {
    if (!op.alive) continue;
    for (int& c : op.children) {
      if (c == old_id) c = new_id;
    }
  }
  Kill(old_id);
}

std::vector<int> DistPlan::ProducersOf(const std::string& name) const {
  std::vector<int> out;
  for (const DistOperator& op : ops_) {
    if (op.alive && op.stream_name == name) out.push_back(op.id);
  }
  return out;
}

std::vector<int> DistPlan::Sinks() const {
  std::vector<bool> consumed(ops_.size(), false);
  for (const DistOperator& op : ops_) {
    if (!op.alive) continue;
    for (int c : op.children) consumed[c] = true;
  }
  std::vector<int> out;
  for (const DistOperator& op : ops_) {
    if (op.alive && !consumed[op.id]) out.push_back(op.id);
  }
  return out;
}

void DistPlan::PrintRec(int id, const std::string& prefix, bool last,
                        bool is_root, std::vector<bool>* printed,
                        std::string* out) const {
  std::string connector = is_root ? "" : prefix + (last ? "`-- " : "|-- ");
  std::string child_prefix = is_root ? "" : prefix + (last ? "    " : "|   ");
  const DistOperator& op = ops_[id];
  if ((*printed)[id]) {
    *out += connector + "#" + std::to_string(id) + " (see above)\n";
    return;
  }
  (*printed)[id] = true;
  *out += connector + "#" + std::to_string(id) + " " + op.Label() + "\n";
  for (size_t i = 0; i < op.children.size(); ++i) {
    PrintRec(op.children[i], child_prefix, i + 1 == op.children.size(),
             /*is_root=*/false, printed, out);
  }
}

std::string DistPlan::ToString() const {
  std::string out;
  std::vector<bool> printed(ops_.size(), false);
  for (int sink : Sinks()) {
    PrintRec(sink, "", /*last=*/true, /*is_root=*/true, &printed, &out);
  }
  return out;
}

}  // namespace streampart
