#pragma once

/// \file dist_plan.h
/// \brief Physical distributed query plans: operators placed on hosts.
///
/// A DistPlan is what the partition-aware optimizer (paper §5) produces and
/// what the simulated cluster executes. Operators are:
///   * kSource — one partition of a partitioned source stream, pinned to the
///     host its capture NIC feeds;
///   * kQuery  — a streaming query node (select/aggregate/join) from the
///     logical graph or synthesized by a transformation rule;
///   * kMerge  — ordered stream union (§5.1).
///
/// `partition >= 0` tags operators whose entire input derives from a single
/// source partition — the property the Opt_Eligible tests of §5.2/§5.3 check
/// ("each child node of M is operating on a single partition").

#include <string>
#include <vector>

#include "plan/query_node.h"

namespace streampart {

/// \brief Operator kind in a physical plan.
enum class DistOpKind : uint8_t { kSource, kQuery, kMerge };

const char* DistOpKindToString(DistOpKind kind);

/// \brief Role of a kQuery operator inside a sketch leg (docs/SKETCHES.md).
/// The kind stays kQuery — only the runtime's operator factory dispatches on
/// the role — so every other plan consumer treats sketch ops like queries.
enum class SketchRole : uint8_t {
  kNone = 0,
  kHost = 1,   ///< per-host summary builder (exec SketchOp)
  kMerge = 2,  ///< aggregator summary merge + answer (exec SketchMergeOp)
};

/// \brief One placed operator.
struct DistOperator {
  int id = -1;
  DistOpKind kind = DistOpKind::kQuery;
  /// Logical stream this operator produces (source or query name).
  std::string stream_name;
  /// Semantic payload for kQuery ops.
  QueryNodePtr query;
  /// Output schema (used by merges and the runtime).
  SchemaPtr schema;
  /// Producer operator ids, positionally aligned with input ports.
  std::vector<int> children;
  int host = 0;
  /// Source partition this operator's data derives from; -1 = multiple.
  int partition = -1;
  bool alive = true;

  /// Sketch-leg annotation (meaningful when sketch_role != kNone): the error
  /// budget both legs must share so host summaries merge at the aggregator.
  SketchRole sketch_role = SketchRole::kNone;
  double sketch_eps = 0;
  double sketch_confidence = 0;
  uint64_t sketch_seed = 0;

  std::string Label() const;
};

/// \brief Cluster shape used for plan construction (paper §6: 1-4 hosts, two
/// partitions per host, aggregator = host executing the query-tree root).
struct ClusterConfig {
  int num_hosts = 4;
  int partitions_per_host = 2;
  int aggregator_host = 0;

  int num_partitions() const { return num_hosts * partitions_per_host; }
  /// Host that partition \p p's capture NIC feeds.
  int HostOfPartition(int p) const { return p / partitions_per_host; }
};

/// \brief A physical plan: an operator DAG with host placement.
class DistPlan {
 public:
  /// \brief Adds an operator, assigning its id. Returns the id.
  int AddOp(DistOperator op);

  DistOperator& op(int id) { return ops_[id]; }
  const DistOperator& op(int id) const { return ops_[id]; }
  size_t size() const { return ops_.size(); }

  /// \brief Ids of alive operators, children-before-parents.
  std::vector<int> TopoOrder() const;

  /// \brief Alive operators consuming \p id (an op consuming on two ports
  /// appears once).
  std::vector<int> Consumers(int id) const;

  /// \brief Redirects every consumer edge of \p old_id to \p new_id and
  /// tombstones \p old_id.
  void ReplaceOp(int old_id, int new_id);

  void Kill(int id) { ops_[id].alive = false; }

  /// \brief Alive ops producing logical stream \p name.
  std::vector<int> ProducersOf(const std::string& name) const;

  /// \brief Alive ops with no alive consumer (plan outputs).
  std::vector<int> Sinks() const;

  /// \brief Indented tree rendering with host/partition annotations —
  /// regenerates the paper's plan figures.
  std::string ToString() const;

 private:
  void PrintRec(int id, const std::string& prefix, bool last, bool is_root,
                std::vector<bool>* printed, std::string* out) const;

  std::vector<DistOperator> ops_;
};

}  // namespace streampart
