#pragma once

/// \file filter_order.h
/// \brief Cost-ordered CNF filter clauses (the `optimize_filter`
/// clause-weighting idiom).
///
/// A WHERE clause is a conjunction of clauses (CNF: AND-chains split at the
/// top level). Filter semantics collapse NULL to false (Expr::Eval treats a
/// NULL conjunct as a failed one), so the conjunction is truthy iff every
/// conjunct is truthy and evaluation order cannot change the outcome —
/// clause reordering is a pure cost transformation, and the property test
/// (tests/columnar_property_test.cc) fuzzes exactly this invariant.
///
/// The weighting rule: each clause gets weight = selectivity × cost, where
/// cost is the interpreter node count and selectivity the estimated pass
/// fraction. Clauses run in ascending weight: cheap, selective clauses first
/// so later (more expensive) clauses see fewer surviving rows. Selectivity
/// is a per-comparison-operator heuristic by default, and is re-costed from
/// measured pass rates when a trace sample is available (the optimizer
/// passes one at plan time). The sort is stable, so equal-weight clauses
/// keep their source order and plans stay deterministic.
///
/// This module depends only on the expression layer: the exec operators use
/// it at construction for their columnar kernels, and the distributed
/// optimizer applies it to plan nodes — without creating a dependency cycle
/// through the partitioning layer.

#include <vector>

#include "expr/expr.h"
#include "types/tuple.h"

namespace streampart {

/// \brief Splits a (possibly null) predicate into its top-level AND
/// conjuncts, in source order. A null predicate yields an empty vector; a
/// non-AND predicate yields itself.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& predicate);

/// \brief Rebuilds a left-deep AND chain from \p clauses (null when empty).
ExprPtr ConjunctionOf(const std::vector<ExprPtr>& clauses);

/// \brief Per-clause evaluation cost: the interpreter node count.
double EstimateClauseCost(const ExprPtr& clause);

/// \brief Heuristic pass fraction of one clause, keyed on its top-level
/// comparison operator (equality is selective, inequality is not).
double EstimateClauseSelectivity(const ExprPtr& clause);

/// \brief Measured pass fraction of \p clause over \p sample (bound rows).
/// Empty samples fall back to the heuristic.
double MeasureClauseSelectivity(const ExprPtr& clause, TupleSpan sample);

/// \brief One weighted clause.
struct ClauseWeight {
  ExprPtr clause;
  double selectivity = 1.0;
  double cost = 1.0;
  /// selectivity × cost; clauses run in ascending weight.
  double weight = 1.0;
};

/// \brief Weighs \p clauses, re-costing selectivity from \p sample when
/// non-empty (pass \p sample = {} for the pure heuristic).
std::vector<ClauseWeight> WeighClauses(const std::vector<ExprPtr>& clauses,
                                       TupleSpan sample);

/// \brief Splits \p predicate into conjuncts and stable-sorts them by
/// ascending weight. The result evaluates identically to \p predicate in
/// filter context for every clause order.
std::vector<ExprPtr> OrderClauses(const ExprPtr& predicate, TupleSpan sample);

/// \brief Convenience: OrderClauses rebuilt into a single predicate. Returns
/// \p predicate unchanged when reordering is a no-op (0 or 1 clause, or the
/// order did not change), preserving expression identity for plan printing.
ExprPtr ReorderPredicate(const ExprPtr& predicate, TupleSpan sample);

}  // namespace streampart
