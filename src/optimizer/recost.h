#pragma once

/// \file recost.h
/// \brief Re-costing the running placement from measured rates.
///
/// The §5 optimizer prices a plan once from static selectivity estimates;
/// the adaptive controller (dist/adaptive.h) re-prices it every epoch from
/// what the cluster actually measured. The currency is the same host-cycles
/// model (metrics/cpu_model.h): a host pays for the compute of the stages it
/// runs plus the receiver-side network charge of every tuple/byte shipped to
/// it — senders pay nothing for egress, exactly like HostCycles.
///
/// Everything here is a pure function over plain numbers (mirroring
/// optimizer.h's CostWeights: the optimizer layer must not depend on
/// sp_metrics), so candidate placements can be projected and compared
/// without touching the runtime.

#include <cstdint>
#include <vector>

namespace streampart {

/// \brief Network cycle weights, plain numbers so this layer stays free of
/// sp_metrics (copy them from CpuCostParams at the call site).
struct RecostWeights {
  double cycles_per_remote_tuple = 0;
  double cycles_per_remote_byte = 0;
};

/// \brief One input edge of a stage, with the rates measured over the
/// costing window. `peer_host` is the host of the producing end (a source
/// partition's host or the producing stage's host).
struct RecostEdge {
  int peer_host = -1;
  double tuples = 0;
  double bytes = 0;
};

/// \brief Measured per-window rates of one movable stage.
struct StageRates {
  int host = -1;          ///< where the stage currently runs
  double compute_cycles = 0;  ///< stage operator compute per window
  std::vector<RecostEdge> inputs;   ///< traffic arriving at the stage
  std::vector<RecostEdge> outputs;  ///< traffic the stage ships downstream
                                    ///< (peer_host = the consuming host)
};

/// \brief Projects per-host cycle loads with stage `moved` placed on host
/// `to`. `base_load` is the measured per-window load of each host (size
/// num_hosts); the projection adjusts only the deltas the move causes:
/// the stage's compute and the receiver-side charge of its input edges
/// leave the old host and land on the new one (edges whose producer sits on
/// the stage's host are local and free, on either side of the move), and
/// each output edge re-prices at its consumer once the producer moved.
/// Pass `moved`'s current host as `to` to project the status quo.
std::vector<double> ProjectHostLoads(int num_hosts,
                                     const std::vector<double>& base_load,
                                     const StageRates& moved, int to,
                                     const RecostWeights& weights);

/// \brief The bottleneck (max) host load — what the adaptive controller
/// minimizes, because the slowest host paces a monitoring cluster.
double Bottleneck(const std::vector<double>& loads);

}  // namespace streampart
